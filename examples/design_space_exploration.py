#!/usr/bin/env python3
"""Design-space exploration: which §6 improvement buys what?

The paper's methodology "allows the identification of critical part of
a circuit and the exploration of possible implementations for best
safety as well".  This example drives :mod:`repro.explore` — the
automated version of that sentence: a criticality-seeded Pareto walk
over the mitigation library, each candidate evaluated as a real
injection campaign routed through the durable job queue and deduped
by the content-addressed store, so each step re-simulates only the
fault cones it touched.

Run:  python examples/design_space_exploration.py
"""

import tempfile

from repro.explore import (
    TRANSFORM_LIBRARY,
    DesignPoint,
    ExploreConfig,
    explore,
    render_explore_dossier,
    structural_cost,
)
from repro.iec61508 import max_sil
from repro.reporting import pct, render_table
from repro.service.core import CampaignService


def ablation_table(variant: str = "small-baseline",
                   banks: int = 2) -> str:
    """One transform at a time (applied to every bank), analytic.

    The claimed-SFF/cost ablation behind the search: no simulation,
    just the worksheet of each single-mechanism design point.
    """
    base = DesignPoint(variant=variant, banks=banks)
    base_sub = base.build()
    base_sff = base_sub.worksheet().totals().sff
    rows = [["base", pct(base_sff), "-", 0, _sil(base_sff)]]
    for key, transform in TRANSFORM_LIBRARY.items():
        point = base
        for bank in range(banks):
            point = point.with_transform(bank, key)
        totals = point.build().worksheet().totals()
        cost = structural_cost(point, base=base,
                               base_subsystem=base_sub)
        rows.append([f"+ {transform.title}", pct(totals.sff),
                     f"{(totals.sff - base_sff) * 100:+.2f} pt",
                     cost.scalar, _sil(totals.sff)])
    return render_table(
        ["design point", "SFF", "ΔSFF", "cost", "SIL@HFT0"], rows,
        title="=== one mechanism at a time (analytic, all banks) ===")


def main():
    print(ablation_table())
    print()

    # the search proper: greedy criticality-seeded Pareto walk with
    # campaign evidence, on a throwaway store
    with tempfile.TemporaryDirectory() as tmp:
        service = CampaignService(tmp)
        config = ExploreConfig(variant="small-baseline", banks=2,
                               target_sff=0.95, budget=8)
        result = explore(service, config, progress=print)
        print()
        print(render_explore_dossier(result))


def _sil(sff: float) -> str:
    granted = max_sil(sff, hft=0)
    return granted.name if granted else "none"


if __name__ == "__main__":
    main()
