#!/usr/bin/env python3
"""Design-space exploration: which §6 improvement buys what?

The paper's methodology "allows the identification of critical part of
a circuit and the exploration of possible implementations for best
safety as well".  This example enables the improvements one at a time
on top of the baseline and tracks SFF/DC — the ablation behind the
baseline -> improved jump — and then stacks them cumulatively.

Run:  python examples/design_space_exploration.py
"""

from repro.iec61508 import max_sil
from repro.reporting import pct, render_table
from repro.soc import MemorySubsystem, SubsystemConfig

IMPROVEMENTS = [
    ("address_in_ecc", "address folded into the ECC"),
    ("write_buffer_parity", "parity bits on the write buffer"),
    ("coder_checker", "error checker after the coder (i)"),
    ("redundant_pipe_checker", "double-redundant post-pipe checker (ii)"),
    ("distributed_syndrome", "distributed syndrome checking (iii)"),
    ("sw_startup_tests", "SW start-up tests for the controller"),
    ("scrub_parity", "parity on the repair-engine registers"),
]


def measure(cfg: SubsystemConfig):
    sub = MemorySubsystem(cfg)
    totals = sub.worksheet().totals()
    return totals


def main():
    base_cfg = SubsystemConfig.baseline()
    base = measure(base_cfg)

    rows = [["baseline", pct(base.sff), pct(base.dc), "-",
             _sil(base.sff)]]

    # each improvement alone
    for flag, label in IMPROVEMENTS:
        cfg = base_cfg.with_flags(
            name=f"memss_{flag}", **{flag: True})
        totals = measure(cfg)
        rows.append([f"+ {label}", pct(totals.sff), pct(totals.dc),
                     f"{(totals.sff - base.sff) * 100:+.2f} pt",
                     _sil(totals.sff)])
    print(render_table(
        ["design point", "SFF", "DC", "ΔSFF vs baseline", "SIL@HFT0"],
        rows, title="=== one improvement at a time ==="))

    # cumulative stacking in the paper's order
    print()
    rows = [["baseline", pct(base.sff), _sil(base.sff)]]
    flags = {}
    prev = base.sff
    for flag, label in IMPROVEMENTS:
        flags[flag] = True
        cfg = base_cfg.with_flags(name=f"memss_stack_{flag}", **flags)
        totals = measure(cfg)
        rows.append([f"+ {label}",
                     f"{pct(totals.sff)} ({(totals.sff - prev) * 100:+.2f})",
                     _sil(totals.sff)])
        prev = totals.sff
    print(render_table(["cumulative design", "SFF (step gain)",
                        "SIL@HFT0"], rows,
                       title="=== stacking the improvements ==="))

    improved = measure(SubsystemConfig.improved())
    print(f"\nfull improved design: SFF {pct(improved.sff)} "
          f"(paper: 99.38%) -> {_sil(improved.sff)}")

    # --- the other road to SIL3 (§2): HFT = 1 -------------------------
    # "With a HFT equal to one, the SFF should be greater than 90%."
    from repro.soc import DualChannelSubsystem
    dual = DualChannelSubsystem(
        SubsystemConfig.baseline(name="memss_dual"))
    dual_totals = dual.worksheet().totals()
    granted = max_sil(dual_totals.sff, hft=1)
    print(f"\nalternative route — dual-channel 1oo2 of the *baseline* "
          f"(HFT=1):\n  SFF {pct(dual_totals.sff)} at HFT=1 -> "
          f"{granted.name if granted else 'none'} "
          f"(bar is only 90%), at "
          f"{dual.circuit.gate_count() / MemorySubsystem(base_cfg).circuit.gate_count():.1f}x "
          f"the gates")


def _sil(sff: float) -> str:
    granted = max_sil(sff, hft=0)
    return granted.name if granted else "none"


if __name__ == "__main__":
    main()
