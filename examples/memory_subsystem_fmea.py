#!/usr/bin/env python3
"""The paper's §6 experiment: baseline vs improved memory sub-system.

Reproduces the narrative:

* extract the sensible zones of the F-MEM/MCE memory sub-system
  (paper: "about 170 sensible zones resulted");
* baseline implementation: SEC-DED with write buffer + decoder pipeline
  — "resulting SFF (around 95%) was not enough to reach SIL3";
* improved implementation (address in the ECC, write-buffer parity,
  coder checker, double-redundant post-pipeline checker, distributed
  syndrome checking, SW start-up tests) — "the resulting SFF of this
  second implementation was 99,38%";
* the criticality ranking that drove the redesign.

Run:  python examples/memory_subsystem_fmea.py
"""

from repro.fmea import criticality_report, stability_report, \
    summary_report
from repro.iec61508 import SIL, max_sil
from repro.soc import MemorySubsystem, SubsystemConfig


def analyze(label: str, cfg: SubsystemConfig):
    sub = MemorySubsystem(cfg)
    zone_set = sub.extract_zones()
    sheet = sub.worksheet(zone_set)
    totals = sheet.totals()
    granted = max_sil(totals.sff, hft=0)

    print(f"\n{'=' * 66}\n{label}: {cfg.name}\n{'=' * 66}")
    print(f"netlist: {sub.circuit.stats()}")
    print(f"sensible zones extracted: {len(zone_set)} "
          f"({zone_set.summary()})")
    print()
    print(summary_report(sheet))
    print()
    print(criticality_report(sheet, top=10))
    verdict = "reaches SIL3" if granted and granted >= SIL.SIL3 \
        else "NOT enough for SIL3"
    print(f"\n=> SFF {totals.sff * 100:.2f}% at HFT=0: {verdict}")
    return sheet, totals


def main():
    baseline_sheet, baseline = analyze(
        "First implementation (baseline)", SubsystemConfig.baseline())
    improved_sheet, improved = analyze(
        "Second implementation (improved)", SubsystemConfig.improved())

    print(f"\n{'=' * 66}\nPaper vs reproduction\n{'=' * 66}")
    print(f"{'':<26}{'paper':>12}{'this repo':>14}")
    print(f"{'baseline SFF':<26}{'~95%':>12}"
          f"{baseline.sff * 100:>13.2f}%")
    print(f"{'improved SFF':<26}{'99.38%':>12}"
          f"{improved.sff * 100:>13.2f}%")
    print(f"{'SIL3 bar (HFT=0)':<26}{'99%':>12}{'99%':>14}")

    # §4/§6: the improved result must be *stable* under assumption spans
    print("\nsensitivity of the improved design "
          "(spans on fault models, S, DDF, F):")
    report = stability_report(improved_sheet)
    print(report.summary())
    print(f"=> stable (max swing {report.max_delta_sff * 100:.2f} pt, "
          f"min SFF {report.min_sff * 100:.2f}%): "
          f"{'yes' if report.min_sff >= 0.99 else 'no'} — "
          f"SIL3 holds across all spans"
          if report.min_sff >= 0.99 else "=> NOT stable")


if __name__ == "__main__":
    main()
