#!/usr/bin/env python3
"""Power-user tour of the fault-injection machinery.

The high-level flow (`run_validation`) wraps everything; this example
drives the pieces by hand, the way a bring-up or debug session would:

1. hand-craft a fault list mixing every fault model;
2. run a campaign and read the raw per-fault records;
3. build a fault dictionary and diagnose an 'unknown' field return;
4. dump a VCD waveform of one faulty run for GTKWave.

Run:  python examples/custom_fault_campaign.py
"""

from repro.faultinjection import (
    BridgeFault,
    CandidateList,
    FaultDictionary,
    FaultInjectionManager,
    MbuFault,
    MemFlipFault,
    ResultAnalyzer,
    SeuFault,
    StuckNetFault,
)
from repro.hdl import Simulator, VcdTracer
from repro.soc import (
    MemorySubsystem,
    SubsystemConfig,
    march_test,
    random_traffic,
)


def build_fault_list(sub: MemorySubsystem) -> CandidateList:
    """One of everything, hand-placed."""
    circuit = sub.circuit
    zone_of = {}
    zone_set = sub.extract_zones()
    for zone in zone_set.zones:
        for flop in zone.flops:
            zone_of[flop] = zone.name

    pipe_flop = next(f.name for f in circuit.flops
                     if "pipe_data" in f.name)
    wbuf_flop = next(f.name for f in circuit.flops
                     if f.name.startswith("fmem/wbuf/data"))
    faults = [
        SeuFault(target=pipe_flop, zone=zone_of[pipe_flop], offset=30),
        SeuFault(target=wbuf_flop, zone=zone_of[wbuf_flop], offset=18),
        StuckNetFault(target=circuit.net_names[
            circuit.flops[0].q], zone=None, value=1),
        MemFlipFault(target="memarray/array", zone=None, word=2,
                     bit=3, offset=24),
        MbuFault(target="memarray/array", zone=None, word=2, bit=0,
                 span=2, offset=24),
        BridgeFault(target=circuit.net_names[circuit.flops[2].q],
                    victim=circuit.net_names[circuit.flops[3].q],
                    zone=None),
    ]
    return CandidateList(faults=faults)


def main():
    sub = MemorySubsystem(SubsystemConfig.small_improved())
    workload = march_test(sub, addresses=range(4), scrub_en=1) \
        + random_traffic(sub, n_ops=10, seed=3)
    zone_set = sub.extract_zones()

    manager = FaultInjectionManager(
        sub.circuit, list(workload), zone_set=zone_set,
        setup=lambda sim: sub.preload(sim, {}))

    faults = build_fault_list(sub)
    campaign = manager.run(faults)
    print(f"campaign: {len(campaign.results)} faults, "
          f"{campaign.passes} pass(es), "
          f"{campaign.cycles_simulated} simulated cycles")
    for res in campaign.results:
        outcome = campaign.outcome_of(res)
        effects = ", ".join(sorted(res.effects)) or "-"
        print(f"  {res.fault.name:<44} {outcome:<20} "
              f"effects: {effects}")

    # a larger automatic campaign feeds the fault dictionary
    from repro.faultinjection import build_environment
    env = build_environment(sub, quick=True)
    dictionary = FaultDictionary.build(
        env.manager().run(env.candidates()))
    print(f"\n{dictionary.summary()}")
    field_return = {"alarm_ce": 5, "alarm_synd_data": 5, "hrdata": 5}
    print(f"diagnosing field signature {sorted(field_return)}:")
    for candidate in dictionary.diagnose(field_return, top=4):
        print(f"  {candidate}")

    # waveform of one faulty run (golden machine view of alarms)
    sim = Simulator(sub.circuit, machines=1)
    sub.preload(sim, {})
    sim.schedule_mem_flip("memarray/array", 2, 3, cycle=24)
    tracer = VcdTracer(sub.circuit,
                       ["haddr", "hrdata", "rvalid", "alarm_ce",
                        "alarm_ue", "alarm_synd_data"])
    for op in workload:
        sim.step_eval(op)
        tracer.sample(sim)
        sim.step_commit()
    path = "/tmp/faulty_run.vcd"
    tracer.write(path)
    print(f"\nwaveform of the faulty run written to {path} "
          f"({len(tracer.dumps().splitlines())} lines, GTKWave-ready)")


if __name__ == "__main__":
    main()
