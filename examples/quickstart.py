#!/usr/bin/env python3
"""Quickstart: run the SoC-level FMEA flow on your own design.

This walks the full public API on a small custom block:

1. describe a design with the builder DSL (it lowers to a gate-level
   netlist, the 'synthesized RTL' the methodology works on);
2. extract the sensible zones and observation points;
3. build the FMEA worksheet with a diagnostic plan;
4. read the IEC 61508 verdict (DC, SFF, claimable SIL).

Run:  python examples/quickstart.py
"""

from repro.fmea import DiagnosticPlan, build_worksheet, full_report
from repro.hdl import Module, library
from repro.iec61508 import SIL, max_sil, required_sff
from repro.zones import extract_zones


def build_design():
    """A toy safety block: an accumulator with a parity-checked bus."""
    m = Module("quickstart")
    data = m.input("data", 8)
    data_par = m.input("data_par")      # parity bit travelling with data
    enable = m.input("enable")
    rst = m.input("rst")

    with m.scope("buscheck"):
        # parity checker on the incoming bus (a diagnostic!)
        from repro.ecc import build_parity_checker
        bus_alarm = build_parity_checker(m, data, data_par) & enable

    with m.scope("datapath"):
        acc = m.declare_reg("acc", 8, en=enable, rst=rst)
        summed, _carry = library.ripple_add(m, acc, data)
        m.connect_reg(acc, summed)

    m.output("result", acc)
    m.output("alarm_parity", bus_alarm)
    return m.build()


def main():
    circuit = build_design()
    print(f"built {circuit.name!r}: {circuit.stats()}")

    # 1. sensible-zone extraction (§3 of the paper)
    zone_set = extract_zones(circuit)
    print(f"\nsensible zones: {zone_set.summary()}")
    for zone in zone_set.zones:
        print(f"  {zone.name:<22} {zone.kind.value:<14} "
              f"bits={zone.size_bits} cone={zone.cone_gates}")

    # 2. the diagnostic plan: which technique covers which zones
    plan = DiagnosticPlan("quickstart-plan")
    plan.cover("pi:data", "bus_parity", 0.60)       # the bus checker
    plan.cover("datapath/*", "cpu_self_test_sw", 0.55,
               persistence="permanent")             # a startup self-test

    # 3. price the worksheet and compute the IEC metrics (§4)
    sheet = build_worksheet(zone_set, plan=plan, name="quickstart")
    print()
    print(full_report(sheet))

    # 4. the verdict
    totals = sheet.totals()
    granted = max_sil(totals.sff, hft=0)
    print(f"\nthis block claims {granted.name if granted else 'no SIL'}"
          f" at HFT=0 (SIL3 would need SFF >= "
          f"{required_sff(SIL.SIL3, 0) * 100:.0f}%)")


if __name__ == "__main__":
    main()
