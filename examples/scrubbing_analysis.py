#!/usr/bin/env python3
"""Scrub-interval analysis: do we need more than SEC-DED? (refs 13/15)

SEC-DED leaves one dangerous residual in the memory array: a second
upset in the same word before the first is repaired.  The F-MEM's
scrubbing feature bounds that window.  This example:

* sweeps the scrub interval and prints the uncorrectable (DUE) rate;
* finds the largest interval meeting a SIL3-ish FIT budget;
* validates the analytic model with a Monte-Carlo accumulation run;
* demonstrates the repair on the actual gate-level subsystem.

Run:  python examples/scrubbing_analysis.py
"""

from repro.analysis import ScrubModel, scrub_benefit_table, \
    simulate_accumulation
from repro.reporting import render_table
from repro.soc import AhbMaster, MemorySubsystem, SubsystemConfig


def analytic_part():
    cfg = SubsystemConfig.improved()
    model = ScrubModel(words=cfg.depth, word_bits=cfg.word_bits,
                       bit_fit=0.01)
    print(f"array: {cfg.depth} x {cfg.word_bits} bits, "
          f"{model.word_rate_per_hour / 1e-9:.2f} FIT/word")

    mission = 20_000.0  # hours, automotive-lifetime order
    intervals = [0.1, 1.0, 24.0, 24.0 * 30, 24.0 * 365]
    rows = []
    for row in scrub_benefit_table(model, mission, intervals):
        rows.append([f"{row['interval_h']:g} h",
                     f"{row['due_fit']:.3e}",
                     f"{row['improvement']:.1e}x"])
    rows.append([f"no scrub ({mission:g} h mission)",
                 f"{model.unscrubbed_fit(mission):.3e}", "1x"])
    print(render_table(
        ["scrub interval", "uncorrectable FIT", "vs no scrubbing"],
        rows, title="=== double-error accumulation vs scrub period ==="))

    target = 1e-3  # FIT budget for the DUE residual
    interval = model.required_interval(target)
    print(f"\nlargest interval meeting {target:g} FIT: "
          f"{interval:.1f} h")

    mc_model = ScrubModel(words=1, word_bits=cfg.word_bits,
                          bit_fit=2e6)  # exaggerated for statistics
    result = simulate_accumulation(mc_model, interval_hours=1.0,
                                   trials=30000, seed=7)
    print(f"Monte-Carlo check: measured "
          f"P2={result.measured_probability:.4f} vs model "
          f"{result.modeled_probability:.4f} -> "
          f"{'agree' if result.agrees() else 'DISAGREE'}")


def gate_level_part():
    print("\n=== gate-level demonstration of the repair ===")
    sub = MemorySubsystem(SubsystemConfig.small_improved())
    master = AhbMaster(sub, scrub_en=1)
    master.reset()
    master.write(7, 0x5A)
    # plant a soft error in the stored word
    master.sim.schedule_mem_flip("memarray/array", 7, 1,
                                 cycle=master.sim.cycle)
    result = master.read(7)
    print(f"read after SEU: data=0x{result.data:02X} "
          f"(corrected), alarm_ce={result.alarms['alarm_ce']}")
    master.idle(20)  # bus idle: the scrubber repairs in background
    stored = master.sim.read_mem_word("memarray/array", 7)
    expected = sub.encode_word(0x5A, 7)
    print(f"stored word after scrub window: 0x{stored:X} "
          f"({'repaired' if stored == expected else 'still corrupt'})")


if __name__ == "__main__":
    analytic_part()
    gate_level_part()
