#!/usr/bin/env python3
"""Processing-unit case study: measuring IEC table A.4's lock-step claim.

The paper's memory sub-system claims its coverage from table A.6
techniques; for processing units table A.4 assesses "HW redundancy
(e.g. lock-step dual core)" as a *high* (99 %) technique — this is the
fault-robust-CPU line of the companion papers [8][16][17].

This example applies the unchanged methodology to a small gate-level
accumulator CPU:

1. run a program on the bare core and on the lock-step pair;
2. build the FMEA for both (the lock-step plan claims
   ``cpu_hw_redundancy`` on the core registers);
3. *measure* the diagnostic coverage by SEU/stuck-at injection into
   every core register — the bare core leaks silent corruptions, the
   lock-step comparator flags essentially all of them.

Run:  python examples/lockstep_cpu.py
"""

from repro.faultinjection import (
    CandidateList,
    FaultInjectionManager,
    SeuFault,
    StuckNetFault,
)
from repro.fmea import DiagnosticPlan, build_worksheet
from repro.reporting import render_table, pct
from repro.soc.minicpu import CpuConfig, MiniCpu, assemble
from repro.zones import ZoneKind, extract_zones

PROGRAM = [("ldi", 5), ("st", 0), ("ldi", 3), ("add", 0), ("out",),
           ("ldi", 0), ("jnz", 0), ("out",)]


def campaign(cpu: MiniCpu):
    """SEU + stuck-at on every core_a register bit."""
    zone_set = extract_zones(cpu.circuit)
    stimuli = [cpu.idle(rst=1)] * 2 + [cpu.idle()] * 80
    zone_of = {}
    for zone in zone_set.of_kind(ZoneKind.REGISTER):
        for flop in zone.flops:
            zone_of[flop] = zone.name
    faults = []
    targets = [f.name for f in cpu.circuit.flops
               if f.name.startswith("core_a/")]
    for i, flop in enumerate(targets):
        faults.append(SeuFault(target=flop, zone=zone_of[flop],
                               offset=6 + (i % 9)))
        faults.append(StuckNetFault(target=flop, zone=zone_of[flop],
                                    value=i % 2))
    manager = FaultInjectionManager(
        cpu.circuit, stimuli, zone_set=zone_set,
        setup=lambda sim: sim.load_mem("imem/rom", assemble(PROGRAM)))
    return manager.run(CandidateList(faults=faults))


def fmea_for(cpu: MiniCpu, lockstep: bool):
    zone_set = extract_zones(cpu.circuit)
    plan = DiagnosticPlan("cpu-plan")
    if lockstep:
        plan.cover("core_a/*", "cpu_hw_redundancy", 0.99)
        plan.cover("core_b/*", "cpu_hw_redundancy", 0.99)
    plan.cover("imem/*", "rom_signature_double", 0.90)
    plan.cover("dmem/*", "ram_test_walkpath", 0.85,
               persistence="permanent")
    return build_worksheet(zone_set, plan=plan, name=cpu.cfg.name)


def core_register_dc(sheet):
    """Claimed DC restricted to the core register zones (the zones
    the injection campaign targets)."""
    from repro.iec61508 import FailureRates
    rates = FailureRates.sum(
        e.rates() for e in sheet.entries
        if e.zone.startswith("core_"))
    return rates.dc


def main():
    plain = MiniCpu(CpuConfig.plain())
    lockstep = MiniCpu(CpuConfig.lockstep_pair())

    _, outs = plain.execute(PROGRAM, cycles=60)
    print(f"program output on the bare core: {outs} "
          f"(5 + 3 = {outs[0]})")
    print(f"bare core:  {plain.circuit.stats()}")
    print(f"lock-step:  {lockstep.circuit.stats()}")

    rows = []
    for label, cpu, is_lk in (("bare core", plain, False),
                              ("lock-step pair", lockstep, True)):
        result = campaign(cpu)
        sheet = fmea_for(cpu, is_lk)
        rows.append([label,
                     len(result.results),
                     pct(result.measured_dc()),
                     pct(core_register_dc(sheet)),
                     pct(sheet.totals().sff)])
    print()
    print(render_table(
        ["design", "injections", "measured DC",
         "claimed core DC (FMEA)", "SFF"],
        rows,
        title="=== lock-step: claimed vs measured (IEC table A.4) ==="))
    print("\nIEC 61508 table A.4 assesses lock-step HW redundancy as "
          "'high' (99 %).\nThe measurement above is how §5 validates "
          "such a claim before the FMEA may use it.")


if __name__ == "__main__":
    main()
