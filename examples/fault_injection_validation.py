#!/usr/bin/env python3
"""The §5 validation flow end to end, plus the SRS compliance verdict.

Runs on the improved memory sub-system:

a) exhaustive sensible-zone fault injection, cross-checked against the
   FMEA's S/DDF claims and the predicted main/secondary effects table;
b) workload completeness (toggle coverage >= 99 %);
c) selective local (gate-level stuck-at) injection in the critical
   areas + fault simulation of permanent faults;
d) selective wide/global fault injection;
e) SENS/OBSE/DIAG campaign-completeness (must be 100 %).

Finally the evidence is bundled into a Safety Requirements
Specification and assessed for IEC 61508 compliance — the programmatic
equivalent of the TÜV-SÜD assessment the paper reports.

Run:  python examples/fault_injection_validation.py
      (add --paper-size for the 32-bit configuration; slower)
"""

import sys
import time

from repro.faultinjection import (
    ResultAnalyzer,
    ValidationConfig,
    build_environment,
    run_validation,
)
from repro.iec61508 import SIL, SafetyRequirementsSpecification
from repro.soc import MemorySubsystem, SubsystemConfig


def main():
    paper_size = "--paper-size" in sys.argv
    cfg = SubsystemConfig.improved() if paper_size \
        else SubsystemConfig.small_improved()
    sub = MemorySubsystem(cfg)
    print(f"design: {cfg.name}  {sub.circuit.stats()}")

    env = build_environment(sub, quick=True)
    print(f"injection environment: {env.as_config_dict()}")

    started = time.time()
    report = run_validation(sub, env=env, config=ValidationConfig())
    print(f"\n{report.summary()}")
    print(f"\n(validation wall time: {time.time() - started:.1f}s)")

    if report.coverage is not None:
        print()
        print(report.coverage.report())

    # the analyzer's detailed views
    if report.campaign is not None:
        analyzer = ResultAnalyzer(report.campaign)
        print()
        print(analyzer.outcome_report())
        print()
        print(analyzer.agreement_report(env.worksheet))

    # bundle everything into the SRS and assess.  The reduced (8-bit,
    # 16-word) configuration trades memory/logic ratio for runtime and
    # honestly lands at SIL2; the paper-size design reaches SIL3 (run
    # with --paper-size, or see examples/memory_subsystem_fmea.py).
    target = SIL.SIL3 if paper_size else SIL.SIL2
    srs = SafetyRequirementsSpecification(
        name=f"SRS-{cfg.name}", target_sil=target, hft=0,
        fmea=env.worksheet, validation=report,
        toggle_report=report.toggle)
    print()
    print(srs.assess().summary())

    if not paper_size:
        full = MemorySubsystem(SubsystemConfig.improved())
        sff = full.worksheet().totals().sff
        print(f"\n(paper-size improved design: FMEA SFF "
              f"{sff * 100:.2f}% -> SIL3; rerun with --paper-size "
              f"to validate it by injection)")


if __name__ == "__main__":
    main()
