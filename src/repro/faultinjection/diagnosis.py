"""Fault dictionary: locating faults from their alarm signatures.

§6's distributed syndrome checking exists "to allow a finer error
detection (i.e. to discriminate if an error is in the code field, or in
data field or if it was an addressing error)" — diagnosis, not just
detection.  This module generalizes that: an injection campaign builds
a dictionary mapping each fault to its *signature* (the set of
observation points it perturbed, with relative latencies); at run time,
an observed signature is looked up to produce ranked candidate zones.

The classic use: a field return raises `alarm_pipe` + a data mismatch —
the dictionary says which sensible zones produce exactly that picture.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .manager import CampaignResult


def signature_of(effects: dict[str, int],
                 with_latency: bool = False) -> tuple:
    """Canonical signature of an effects table.

    Default: the frozenset of perturbed observation points.  With
    ``with_latency``: points paired with their latency order (finer,
    but more sensitive to workload differences).
    """
    if with_latency:
        ordered = sorted(effects.items(), key=lambda kv: (kv[1], kv[0]))
        return tuple(name for name, _ in ordered)
    return tuple(sorted(effects))


@dataclass
class Candidate:
    """One diagnosis candidate."""

    zone: str
    matches: int
    total: int

    @property
    def confidence(self) -> float:
        return self.matches / self.total if self.total else 0.0

    def __str__(self) -> str:
        return f"{self.zone} ({self.confidence * 100:.0f}%)"


@dataclass
class FaultDictionary:
    """signature -> {zone: hit count} built from campaign results."""

    with_latency: bool = False
    table: dict[tuple, dict[str, int]] = field(default_factory=dict)
    zone_faults: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, campaign: CampaignResult,
              with_latency: bool = False) -> "FaultDictionary":
        dictionary = cls(with_latency=with_latency)
        for res in campaign.results:
            zone = res.fault.zone
            if zone is None or not res.effects:
                continue
            sig = signature_of(res.effects, with_latency)
            bucket = dictionary.table.setdefault(sig, {})
            bucket[zone] = bucket.get(zone, 0) + 1
            dictionary.zone_faults[zone] = \
                dictionary.zone_faults.get(zone, 0) + 1
        return dictionary

    # ------------------------------------------------------------------
    def diagnose(self, effects: dict[str, int],
                 top: int = 5) -> list[Candidate]:
        """Ranked candidate zones for an observed effects picture.

        Falls back to subset matching (observed ⊆ dictionary signature)
        when the exact signature is unknown — a fault caught early may
        show only a prefix of its full signature.
        """
        sig = signature_of(effects, self.with_latency)
        bucket = self.table.get(sig)
        if bucket is None:
            observed = set(sig)
            bucket = {}
            for known_sig, zones in self.table.items():
                if observed <= set(known_sig):
                    for zone, hits in zones.items():
                        bucket[zone] = bucket.get(zone, 0) + hits
        total = sum(bucket.values())
        candidates = [Candidate(zone=z, matches=n, total=total)
                      for z, n in bucket.items()]
        candidates.sort(key=lambda c: (-c.matches, c.zone))
        return candidates[:top]

    # ------------------------------------------------------------------
    @property
    def distinct_signatures(self) -> int:
        return len(self.table)

    def ambiguity(self) -> float:
        """Average number of candidate zones per signature (1.0 =
        perfect diagnosability)."""
        if not self.table:
            return 0.0
        return sum(len(zones) for zones in self.table.values()) \
            / len(self.table)

    def resolution(self) -> float:
        """Fraction of signatures pointing at a single zone."""
        if not self.table:
            return 0.0
        unique = sum(1 for zones in self.table.values()
                     if len(zones) == 1)
        return unique / len(self.table)

    def summary(self) -> str:
        return (f"fault dictionary: {self.distinct_signatures} "
                f"signatures over {len(self.zone_faults)} zones, "
                f"resolution {self.resolution() * 100:.0f}%, "
                f"ambiguity {self.ambiguity():.2f} zones/signature")
