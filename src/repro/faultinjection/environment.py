"""Environment Builder (paper §5, Figure 4).

"this block extracts from the FMEA all the information related to the
environment for the injection campaign and builds all the required
environment configuration files."

:class:`InjectionEnvironment` bundles everything a campaign needs —
circuit, zones, FMEA worksheet, workload, observation points, simulator
setup — and hands out configured profilers, fault lists and managers.
"""

from __future__ import annotations

from ..fmea.worksheet import FmeaWorksheet
from ..hdl.netlist import Circuit
from ..zones.extractor import ZoneSet
from .faultlist import (
    CandidateList,
    FaultListConfig,
    generate_zone_faults,
)
from .manager import CampaignConfig, FaultInjectionManager
from .profiler import OperationalProfile, profile_workload


class StimuliValidationError(ValueError):
    """The workload's stimuli don't match the circuit's input ports."""


def validate_stimuli(circuit: Circuit, stimuli) -> None:
    """Check stimuli keys against the circuit's primary inputs.

    Catches the two silent campaign-invalidating mistakes up front,
    before hours of fault simulation produce meaningless coverage:

    * an **unknown** key (driven in some cycle but not an input port
      of the circuit) would be ignored by the simulator — typically a
      typo or a stale signal name after a netlist edit;
    * a **missing** input (a port no cycle ever drives) silently
      holds its reset value for the whole workload.

    Raises :class:`StimuliValidationError` naming the offending
    signals and where they first occur; returns ``None`` when the
    stimuli are consistent.  Empty stimuli are vacuously valid.
    """
    stimuli = list(stimuli)
    known = set(circuit.inputs)
    unknown: dict[str, int] = {}
    driven: set[str] = set()
    for cycle, vector in enumerate(stimuli):
        for name in vector:
            if name in known:
                driven.add(name)
            elif name not in unknown:
                unknown[name] = cycle
    problems = []
    if unknown:
        names = ", ".join(
            f"{name!r} (first driven in cycle {cycle})"
            for name, cycle in sorted(unknown.items()))
        problems.append(
            f"stimuli drive signal(s) that are not primary inputs "
            f"of {circuit.name!r}: {names}")
    missing = known - driven
    if missing and driven:
        names = ", ".join(repr(n) for n in sorted(missing))
        problems.append(
            f"primary input(s) of {circuit.name!r} never driven in "
            f"any of the {len(stimuli)} stimuli cycle(s): "
            f"{names} (they would hold their reset value for the "
            f"whole workload)")
    if problems:
        known_names = ", ".join(repr(n) for n in sorted(known))
        problems.append(f"known primary inputs: {known_names}")
        raise StimuliValidationError("\n".join(problems))


class InjectionEnvironment:
    """A ready-to-run injection environment."""

    def __init__(self, circuit: Circuit, zone_set: ZoneSet,
                 worksheet: FmeaWorksheet, stimuli,
                 workload_name="workload", setup=None,
                 read_strobes=None, test_windows=()):
        self.circuit = circuit
        self.zone_set = zone_set
        self.worksheet = worksheet
        self.stimuli = list(stimuli)
        self.workload_name = workload_name
        self.setup = setup
        self.read_strobes = read_strobes or {}
        self.test_windows = tuple(test_windows)
        self._profile = None

    # ------------------------------------------------------------------
    def profile(self) -> OperationalProfile:
        """The (cached) operational profile of the workload."""
        if self._profile is None:
            self._profile = profile_workload(
                self.circuit, self.stimuli, setup=self.setup,
                read_strobes=self.read_strobes)
        return self._profile

    def candidates(self, config: FaultListConfig | None = None
                   ) -> CandidateList:
        return generate_zone_faults(self.zone_set, self.circuit,
                                    profile=self.profile(),
                                    config=config)

    def manager(self, config: CampaignConfig | None = None
                ) -> FaultInjectionManager:
        config = config or CampaignConfig()
        if not config.test_windows:
            config.test_windows = self.test_windows
        return FaultInjectionManager(
            self.circuit, self.stimuli, zone_set=self.zone_set,
            setup=self.setup, config=config)

    def spec(self, config: CampaignConfig | None = None):
        """A picklable campaign spec for multi-process runs."""
        from .parallel import CampaignSpec
        return CampaignSpec.from_environment(self, config=config)

    def runner(self, workers: int | None = None,
               config: CampaignConfig | None = None, **kw):
        """A :class:`ParallelCampaignRunner` over this environment."""
        from .parallel import ParallelCampaignRunner
        return ParallelCampaignRunner(self.spec(config), workers=workers,
                                      **kw)

    def supervisor(self, workers: int | None = None,
                   config: CampaignConfig | None = None, **kw):
        """A fault-tolerant :class:`CampaignSupervisor` over this
        environment (see :mod:`~repro.faultinjection.supervisor`)."""
        from .supervisor import CampaignSupervisor
        return CampaignSupervisor(self.spec(config), workers=workers,
                                  **kw)

    def validate_stimuli(self) -> None:
        """Raise :class:`StimuliValidationError` on bad stimuli."""
        validate_stimuli(self.circuit, self.stimuli)

    # ------------------------------------------------------------------
    def as_config_dict(self) -> dict:
        """The 'environment configuration file' view of the setup."""
        return {
            "design": self.circuit.name,
            "workload": self.workload_name,
            "cycles": len(self.stimuli),
            "zones": len(self.zone_set.zones),
            "fmea_rows": len(self.worksheet),
            "observation_points": [p.name for p in
                                   self.zone_set.functional_points()],
            "diagnostic_points": [p.name for p in
                                  self.zone_set.diagnostic_points()],
            "read_strobes": dict(self.read_strobes),
        }


def build_environment(subsystem, workload=None,
                      zone_set: ZoneSet | None = None,
                      worksheet: FmeaWorksheet | None = None,
                      quick: bool = True) -> InjectionEnvironment:
    """Wire an environment for a :class:`~repro.soc.MemorySubsystem`."""
    from ..soc.workloads import validation_workload
    if workload is None:
        workload = validation_workload(subsystem, quick=quick)
    if zone_set is None:
        zone_set = subsystem.extract_zones()
    if worksheet is None:
        worksheet = subsystem.worksheet(zone_set)
    return InjectionEnvironment(
        circuit=subsystem.circuit,
        zone_set=zone_set,
        worksheet=worksheet,
        stimuli=list(workload),
        workload_name=workload.name,
        setup=lambda sim: subsystem.preload(sim, {}),
        read_strobes=subsystem.read_strobes(),
        test_windows=workload.test_windows())
