"""Environment Builder (paper §5, Figure 4).

"this block extracts from the FMEA all the information related to the
environment for the injection campaign and builds all the required
environment configuration files."

:class:`InjectionEnvironment` bundles everything a campaign needs —
circuit, zones, FMEA worksheet, workload, observation points, simulator
setup — and hands out configured profilers, fault lists and managers.
"""

from __future__ import annotations

import json

from ..diagnostics import DiagnosticError, DiagnosticReport
from ..fmea.worksheet import FmeaWorksheet
from ..hdl.netlist import Circuit
from ..zones.extractor import ZoneSet
from .faultlist import (
    CandidateList,
    FaultListConfig,
    generate_zone_faults,
)
from .manager import CampaignConfig, FaultInjectionManager
from .profiler import OperationalProfile, profile_workload

STIMULI_SCHEMA_VERSION = 1


class StimuliValidationError(DiagnosticError, ValueError):
    """The workload's stimuli don't match the circuit's input ports."""


def validate_stimuli_report(circuit: Circuit, stimuli,
                            report: DiagnosticReport,
                            source: str | None = None) -> None:
    """Cross-check stimuli keys against the circuit's primary inputs.

    Catches the two silent campaign-invalidating mistakes up front,
    before hours of fault simulation produce meaningless coverage:

    * ``E211``: an **unknown** key (driven in some cycle but not an
      input port of the circuit) would be ignored by the simulator —
      typically a typo or a stale signal name after a netlist edit;
    * ``E212``: a **missing** input (a port no cycle ever drives)
      silently holds its reset value for the whole workload.

    Appends one diagnostic per offending signal to ``report``.  Empty
    stimuli are vacuously valid.
    """
    stimuli = list(stimuli)
    known = set(circuit.inputs)
    unknown: dict[str, int] = {}
    driven: set[str] = set()
    for cycle, vector in enumerate(stimuli):
        for name in vector:
            if name in known:
                driven.add(name)
            elif name not in unknown:
                unknown[name] = cycle
    known_names = ", ".join(repr(n) for n in sorted(known))
    for name, cycle in sorted(unknown.items()):
        report.error(
            "E211",
            f"stimuli drive signal {name!r} (first driven in cycle "
            f"{cycle}) that is not a primary input of "
            f"{circuit.name!r}",
            file=source,
            hint=f"known primary inputs: {known_names}")
    missing = known - driven
    if missing and driven:
        for name in sorted(missing):
            report.error(
                "E212",
                f"primary input {name!r} of {circuit.name!r} is "
                f"never driven in any of the {len(stimuli)} stimuli "
                f"cycle(s) (it would hold its reset value for the "
                f"whole workload)",
                file=source)


def validate_stimuli(circuit: Circuit, stimuli) -> None:
    """Raise :class:`StimuliValidationError` on inconsistent stimuli.

    Thin fail-fast wrapper around :func:`validate_stimuli_report`;
    returns ``None`` when the stimuli are consistent.
    """
    report = DiagnosticReport()
    validate_stimuli_report(circuit, stimuli, report)
    report.raise_if_errors(StimuliValidationError)


def load_stimuli(path, *,
                 report: DiagnosticReport | None = None
                 ) -> list[dict] | None:
    """Read a stimuli file (``{"schema": 1, "cycles": [{sig: val}]}``).

    Structural defects are ``E210``/``E213`` diagnostics; with
    ``report=None`` they raise :class:`StimuliValidationError`,
    otherwise they are appended to the caller's report and ``None``
    is returned.  Signal-name consistency against a circuit is a
    separate step (:func:`validate_stimuli_report`).
    """
    collect = DiagnosticReport() if report is None else report
    before = len(collect.errors)
    data = None
    try:
        with open(path) as handle:
            data = json.load(handle)
    except OSError as err:
        collect.error("E210", f"cannot read stimuli: {err}",
                      file=str(path))
    except json.JSONDecodeError as err:
        collect.error(
            "E210", f"stimuli file is not valid JSON: {err.msg}",
            file=str(path), line=err.lineno, column=err.colno)
    cycles = None
    if data is not None:
        cycles = _check_stimuli_shape(data, str(path), collect)
    if report is None and len(collect.errors) > before:
        raise StimuliValidationError(collect)
    return cycles


def _check_stimuli_shape(data, source: str,
                         collect: DiagnosticReport
                         ) -> list[dict] | None:
    if not isinstance(data, dict):
        collect.error(
            "E210", f"stimuli root must be a JSON object, got "
                    f"{type(data).__name__}", file=source)
        return None
    schema = data.get("schema")
    if schema != STIMULI_SCHEMA_VERSION:
        collect.error(
            "E210", f"unsupported stimuli schema {schema!r} "
                    f"(current: {STIMULI_SCHEMA_VERSION})",
            file=source)
        return None
    cycles = data.get("cycles")
    if not isinstance(cycles, list):
        collect.error("E210", "field 'cycles' must be a list",
                      file=source)
        return None
    clean: list[dict] = []
    bad = False
    for i, vector in enumerate(cycles):
        if not isinstance(vector, dict):
            collect.error(
                "E213", f"cycles[{i}] must be an object mapping "
                        f"signal names to values", file=source)
            bad = True
            continue
        for name, value in vector.items():
            if not isinstance(value, int) or isinstance(value, bool):
                collect.error(
                    "E213", f"cycles[{i}].{name} must be an integer "
                            f"value, got {type(value).__name__} "
                            f"({value!r})", file=source)
                bad = True
        if not bad:
            clean.append(vector)
    return None if bad else clean


def save_stimuli(stimuli, path) -> None:
    """Write stimuli cycles in the :func:`load_stimuli` format."""
    with open(path, "w") as handle:
        json.dump({"schema": STIMULI_SCHEMA_VERSION,
                   "cycles": list(stimuli)}, handle)


class InjectionEnvironment:
    """A ready-to-run injection environment."""

    def __init__(self, circuit: Circuit, zone_set: ZoneSet,
                 worksheet: FmeaWorksheet, stimuli,
                 workload_name="workload", setup=None,
                 read_strobes=None, test_windows=()):
        self.circuit = circuit
        self.zone_set = zone_set
        self.worksheet = worksheet
        self.stimuli = list(stimuli)
        self.workload_name = workload_name
        self.setup = setup
        self.read_strobes = read_strobes or {}
        self.test_windows = tuple(test_windows)
        self._profile = None

    # ------------------------------------------------------------------
    def profile(self) -> OperationalProfile:
        """The (cached) operational profile of the workload."""
        if self._profile is None:
            self._profile = profile_workload(
                self.circuit, self.stimuli, setup=self.setup,
                read_strobes=self.read_strobes)
        return self._profile

    def candidates(self, config: FaultListConfig | None = None
                   ) -> CandidateList:
        return generate_zone_faults(self.zone_set, self.circuit,
                                    profile=self.profile(),
                                    config=config)

    def manager(self, config: CampaignConfig | None = None
                ) -> FaultInjectionManager:
        config = config or CampaignConfig()
        if not config.test_windows:
            config.test_windows = self.test_windows
        return FaultInjectionManager(
            self.circuit, self.stimuli, zone_set=self.zone_set,
            setup=self.setup, config=config)

    def spec(self, config: CampaignConfig | None = None):
        """A picklable campaign spec for multi-process runs."""
        from .parallel import CampaignSpec
        return CampaignSpec.from_environment(self, config=config)

    def runner(self, workers: int | None = None,
               config: CampaignConfig | None = None, **kw):
        """A :class:`ParallelCampaignRunner` over this environment."""
        from .parallel import ParallelCampaignRunner
        return ParallelCampaignRunner(self.spec(config), workers=workers,
                                      **kw)

    def supervisor(self, workers: int | None = None,
                   config: CampaignConfig | None = None, **kw):
        """A fault-tolerant :class:`CampaignSupervisor` over this
        environment (see :mod:`~repro.faultinjection.supervisor`)."""
        from .supervisor import CampaignSupervisor
        return CampaignSupervisor(self.spec(config), workers=workers,
                                  **kw)

    def validate_stimuli(self) -> None:
        """Raise :class:`StimuliValidationError` on bad stimuli."""
        validate_stimuli(self.circuit, self.stimuli)

    # ------------------------------------------------------------------
    def as_config_dict(self) -> dict:
        """The 'environment configuration file' view of the setup."""
        return {
            "design": self.circuit.name,
            "workload": self.workload_name,
            "cycles": len(self.stimuli),
            "zones": len(self.zone_set.zones),
            "fmea_rows": len(self.worksheet),
            "observation_points": [p.name for p in
                                   self.zone_set.functional_points()],
            "diagnostic_points": [p.name for p in
                                  self.zone_set.diagnostic_points()],
            "read_strobes": dict(self.read_strobes),
        }


def build_environment(subsystem, workload=None,
                      zone_set: ZoneSet | None = None,
                      worksheet: FmeaWorksheet | None = None,
                      quick: bool = True) -> InjectionEnvironment:
    """Wire an environment for a :class:`~repro.soc.MemorySubsystem`."""
    from ..soc.workloads import validation_workload
    if workload is None:
        workload = validation_workload(subsystem, quick=quick)
    if zone_set is None:
        zone_set = subsystem.extract_zones()
    if worksheet is None:
        worksheet = subsystem.worksheet(zone_set)
    return InjectionEnvironment(
        circuit=subsystem.circuit,
        zone_set=zone_set,
        worksheet=worksheet,
        stimuli=list(workload),
        workload_name=workload.name,
        setup=lambda sim: subsystem.preload(sim, {}),
        read_strobes=subsystem.read_strobes(),
        test_windows=workload.test_windows())
