"""Candidate fault lists, the Collapser and the Randomiser (§5).

"this block extracts the Operational Profile (OP) from a given
workload ... to ensure that only faults which will produce an error are
selected during the fault list generation process.  In this way the
generated fault list is compacted and non trivial."

Generation walks the sensible zones and emits the faults realizing each
zone's IEC failure modes; the collapser removes structural duplicates
and zones the OP proves dead under the workload; the randomiser samples
injection instants from the OP activity windows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..hdl.netlist import Circuit
from ..zones.extractor import ZoneSet
from ..zones.model import SensibleZone, ZoneKind
from .faults import (
    Fault,
    MemFlipFault,
    MemStuckFault,
    SeuFault,
    StuckNetFault,
)
from .profiler import OperationalProfile


@dataclass
class FaultListConfig:
    """Sampling knobs for candidate generation."""

    transient_per_zone: int = 2
    permanent_per_zone: int = 2
    mem_words_sampled: int = 2
    seed: int = 2007
    include_permanent: bool = True
    include_transient: bool = True


@dataclass
class CandidateList:
    """The generated fault population, grouped by zone."""

    faults: list[Fault] = field(default_factory=list)
    skipped_zones: list[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.faults)

    def by_zone(self) -> dict[str, list[Fault]]:
        groups: dict[str, list[Fault]] = {}
        for fault in self.faults:
            groups.setdefault(fault.zone or "?", []).append(fault)
        return groups


def generate_zone_faults(zone_set: ZoneSet, circuit: Circuit,
                         profile: OperationalProfile | None = None,
                         config: FaultListConfig | None = None
                         ) -> CandidateList:
    """Exhaustive sensible-zone failure list (§5 validation step a).

    Register zones get SEU flips (transient) and output stuck-ats
    (permanent); memory zones get cell flips and stuck cells on words
    the workload actually reads.  Zones the OP shows untriggered are
    reported (they make SENS coverage < 100 %) and skipped.
    """
    config = config or FaultListConfig()
    out = CandidateList()

    for zone in zone_set.zones:
        # a fresh per-zone stream keeps each zone's fault list a pure
        # function of (seed, zone, that zone's OP activity): adding or
        # removing zones elsewhere in the design — e.g. a mitigation
        # applied to another bank — cannot shift the draws here, which
        # the cross-variant store reuse depends on
        rng = random.Random(f"{config.seed}:{zone.name}")
        if zone.kind is ZoneKind.REGISTER:
            _register_faults(zone, circuit, profile, config, rng, out)
        elif zone.kind is ZoneKind.MEMORY:
            _memory_faults(zone, profile, config, rng, out)
    return collapse(out)


def _register_faults(zone: SensibleZone, circuit: Circuit, profile,
                     config: FaultListConfig, rng: random.Random,
                     out: CandidateList) -> None:
    if profile is not None and not profile.zone_triggered(zone):
        out.skipped_zones.append(zone.name)
        return
    flops = list(zone.flops)
    if config.include_transient:
        cycles = profile.injection_cycles(zone, rng,
                                          config.transient_per_zone) \
            if profile is not None else [0] * config.transient_per_zone
        for cycle in cycles:
            out.faults.append(SeuFault(target=rng.choice(flops),
                                       zone=zone.name, offset=cycle))
    if config.include_permanent:
        by_name = {f.name: f for f in circuit.flops}
        for _ in range(config.permanent_per_zone):
            flop = by_name[rng.choice(flops)]
            out.faults.append(StuckNetFault(
                target=circuit.net_names[flop.q], zone=zone.name,
                value=rng.getrandbits(1)))


def _memory_faults(zone: SensibleZone, profile,
                   config: FaultListConfig, rng: random.Random,
                   out: CandidateList) -> None:
    lo, hi = zone.mem_words or (0, 0)
    width = zone.size_bits // max(1, hi - lo + 1)
    if profile is not None:
        reads = profile.reads_in_region(zone.memory, lo, hi)
        if not reads:
            out.skipped_zones.append(zone.name)
            return
    else:
        reads = None

    for _ in range(config.mem_words_sampled):
        if reads:
            access = rng.choice(reads)
            word, cycle = access.addr, access.cycle
        else:
            word, cycle = rng.randint(lo, hi), 0
        bit = rng.randrange(width)
        if config.include_transient:
            out.faults.append(MemFlipFault(
                target=zone.memory, zone=zone.name, word=word, bit=bit,
                offset=cycle))
        if config.include_permanent:
            out.faults.append(MemStuckFault(
                target=zone.memory, zone=zone.name, word=word,
                bit=rng.randrange(width), value=rng.getrandbits(1)))


def generate_gate_faults(circuit: Circuit, paths: tuple[str, ...] = (),
                         zone_of=None) -> CandidateList:
    """Gate-level stuck-at fault universe (both polarities).

    ``paths`` restricts to instance-path prefixes (§5 step c injects
    local faults only in critical areas); buffers and constants are
    skipped (collapsed onto their driver / meaningless).
    """
    out = CandidateList()
    for gate in circuit.gates:
        if gate.op_name in ("buf", "const0", "const1"):
            continue
        if paths and not any(gate.path.startswith(p) for p in paths):
            continue
        net_name = circuit.net_names[gate.out]
        zone = zone_of(gate) if zone_of is not None else None
        for value in (0, 1):
            out.faults.append(StuckNetFault(target=net_name, zone=zone,
                                            value=value))
    return collapse(out)


def generate_cone_faults(zone_set: ZoneSet, circuit: Circuit,
                         zones: list[str], per_zone: int | None = None,
                         seed: int = 31) -> CandidateList:
    """Local stuck-at faults inside the logic cones of given zones.

    This is §5 step c: "for critical areas ... a selective HW fault
    injection is performed, injecting local faults with fault
    injector."  Faults are attributed to the zone whose cone they sit
    in, so results can be cross-checked against the zone-level numbers.
    """
    rng = random.Random(seed)
    out = CandidateList()
    skip_ops = ("buf", "const0", "const1")
    for zone_name in zones:
        cone = zone_set.cones.get(zone_name)
        if cone is None:
            continue
        gates = [gi for gi in sorted(cone.gates)
                 if circuit.gates[gi].op_name not in skip_ops]
        if per_zone is not None and len(gates) > per_zone:
            gates = rng.sample(gates, per_zone)
        for gi in gates:
            net_name = circuit.net_names[circuit.gates[gi].out]
            out.faults.append(StuckNetFault(
                target=net_name, zone=zone_name,
                value=rng.getrandbits(1)))
    return collapse(out)


def collapse(candidates: CandidateList) -> CandidateList:
    """Structural collapsing: drop duplicate (kind, target, params)."""
    seen: set[str] = set()
    unique: list[Fault] = []
    for fault in candidates.faults:
        key = fault.name + f"@{getattr(fault, 'offset', '')}"
        if key in seen:
            continue
        seen.add(key)
        unique.append(fault)
    return CandidateList(faults=unique,
                         skipped_zones=candidates.skipped_zones)


def randomize(candidates: CandidateList, sample: int,
              seed: int = 77) -> CandidateList:
    """Random down-sampling of a (collapsed) fault list."""
    if sample >= len(candidates.faults):
        return candidates
    rng = random.Random(seed)
    picked = rng.sample(candidates.faults, sample)
    return CandidateList(faults=picked,
                         skipped_zones=candidates.skipped_zones)
