"""Fault descriptors for the injection environment (paper §5).

A :class:`Fault` is a self-contained description of one physical fault
plus the code to arm it on a simulator machine.  Supported models cover
the IEC failure-mode catalog: SEU bit flips on flip-flops, SET glitches
on nets, permanent stuck-ats, memory-cell soft errors/stuck cells and
cell coupling, bridging between nets, and multi-net global faults
(clock/reset/power style).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hdl.simulator import BRIDGE_DOMINANT, Simulator
from ..zones.model import FaultPersistence


@dataclass(frozen=True)
class Fault:
    """Base class: one injectable fault."""

    target: str
    zone: str | None = None

    persistence = FaultPersistence.PERMANENT
    kind = "fault"

    @property
    def name(self) -> str:
        return f"{self.kind}:{self.target}"

    def arm(self, sim: Simulator, machine: int, t0: int) -> None:
        raise NotImplementedError


@dataclass(frozen=True)
class SeuFault(Fault):
    """Single-event upset: flip a flip-flop at ``t0 + offset``."""

    offset: int = 0
    kind = "seu"
    persistence = FaultPersistence.TRANSIENT

    def arm(self, sim, machine, t0):
        sim.schedule_flop_flip(self.target, cycle=t0 + self.offset,
                               machines=1 << machine)


@dataclass(frozen=True)
class SetFault(Fault):
    """Single-event transient: invert a net for one evaluation."""

    offset: int = 0
    kind = "set"
    persistence = FaultPersistence.TRANSIENT

    def arm(self, sim, machine, t0):
        sim.schedule_net_glitch(self.target, cycle=t0 + self.offset,
                                machines=1 << machine)


@dataclass(frozen=True)
class StuckNetFault(Fault):
    """Permanent stuck-at on a net (DC fault model)."""

    value: int = 0
    kind = "stuck"
    persistence = FaultPersistence.PERMANENT

    @property
    def name(self) -> str:
        return f"stuck{self.value}:{self.target}"

    def arm(self, sim, machine, t0):
        sim.stick_net(self.target, self.value, machines=1 << machine)


@dataclass(frozen=True)
class MemFlipFault(Fault):
    """Soft error in a memory cell."""

    word: int = 0
    bit: int = 0
    offset: int = 0
    kind = "mem_flip"
    persistence = FaultPersistence.TRANSIENT

    @property
    def name(self) -> str:
        return f"mem_flip:{self.target}[{self.word}].{self.bit}"

    def arm(self, sim, machine, t0):
        sim.schedule_mem_flip(self.target, self.word, self.bit,
                              cycle=t0 + self.offset,
                              machines=1 << machine)


@dataclass(frozen=True)
class MemStuckFault(Fault):
    """Permanent stuck memory cell (DC fault model for data)."""

    word: int = 0
    bit: int = 0
    value: int = 0
    kind = "mem_stuck"
    persistence = FaultPersistence.PERMANENT

    @property
    def name(self) -> str:
        return (f"mem_stuck{self.value}:"
                f"{self.target}[{self.word}].{self.bit}")

    def arm(self, sim, machine, t0):
        sim.set_mem_cell_stuck(self.target, self.word, self.bit,
                               self.value, machines=1 << machine)


@dataclass(frozen=True)
class MbuFault(Fault):
    """Multi-bit upset: adjacent memory cells flipped together.

    Adjacent double-bit upsets are the dangerous residual of SEC-DED
    (detected but not corrected when both land in the same word) and
    the reason real arrays interleave logical bits physically.
    """

    word: int = 0
    bit: int = 0
    span: int = 2
    offset: int = 0
    kind = "mbu"
    persistence = FaultPersistence.TRANSIENT

    @property
    def name(self) -> str:
        return (f"mbu{self.span}:{self.target}"
                f"[{self.word}].{self.bit}")

    def arm(self, sim, machine, t0):
        for i in range(self.span):
            sim.schedule_mem_flip(self.target, self.word,
                                  self.bit + i,
                                  cycle=t0 + self.offset,
                                  machines=1 << machine)


@dataclass(frozen=True)
class MemCouplingFault(Fault):
    """Dynamic cross-over: writes to the aggressor flip the victim."""

    aggressor: tuple[int, int] = (0, 0)
    victim: tuple[int, int] = (0, 0)
    kind = "mem_coupling"
    persistence = FaultPersistence.PERMANENT

    @property
    def name(self) -> str:
        return (f"coupling:{self.target}{self.aggressor}"
                f"->{self.victim}")

    def arm(self, sim, machine, t0):
        sim.add_mem_coupling(self.target, self.aggressor, self.victim,
                             machines=1 << machine)


@dataclass(frozen=True)
class BridgeFault(Fault):
    """Bridging between two nets (wide fault, §3 figure 2)."""

    victim: str = ""
    mode: str = BRIDGE_DOMINANT
    kind = "bridge"
    persistence = FaultPersistence.PERMANENT

    @property
    def name(self) -> str:
        return f"bridge:{self.target}->{self.victim}"

    def arm(self, sim, machine, t0):
        sim.add_bridge(self.target, self.victim, mode=self.mode,
                       machines=1 << machine)


@dataclass(frozen=True)
class GlobalStuckFault(Fault):
    """Global fault: several nets stuck at once (clock-tree root,
    power-domain collapse, §3 'global' class)."""

    nets: tuple[str, ...] = ()
    value: int = 0
    kind = "global"
    persistence = FaultPersistence.PERMANENT

    @property
    def name(self) -> str:
        return f"global{self.value}:{self.target}"

    def arm(self, sim, machine, t0):
        for net in self.nets:
            sim.stick_net(net, self.value, machines=1 << machine)


@dataclass
class ArmedFault:
    """A fault bound to a machine inside a campaign pass."""

    fault: Fault
    machine: int
    inject_cycle: int = 0
    meta: dict = field(default_factory=dict)
