"""Parallel sharded fault-injection campaigns.

The serial :class:`~repro.faultinjection.manager.FaultInjectionManager`
already multiplexes up to 63 faulty machines per simulator pass, but the
passes themselves run one after another in a single Python process.
This module distributes the passes across worker *processes*:

* the candidate list is **deterministically sharded** into contiguous
  per-worker batches (:func:`shard_candidates`) so that concatenating
  the per-shard result lists in shard order reproduces the exact
  per-fault ordering of the serial run;
* every worker is created from a **picklable**
  :class:`CampaignSpec` — circuit, stimuli, zones, observation points,
  configuration and a picklable setup (see :class:`MemoryImageSetup`)
  — and rebuilds its own manager once per process;
* the **golden (fault-free) trace** is computed once in the parent
  (:func:`compute_golden_trace`) and its activity bits are merged into
  the final coverage ledger, instead of every batch re-deriving the
  golden bookkeeping cycle by cycle;
* per-shard wall-clock / fault-count statistics and a progress
  callback give campaign observability.

Because each fault occupies its own machine-bit and is only ever
compared against machine 0 of its own pass, per-fault results are
independent of how faults are grouped into passes; the merged
:class:`~repro.faultinjection.manager.CampaignResult` is therefore
bit-identical to the serial one in outcome counts, ``measured_dc`` and
``measured_safe_fraction`` regardless of worker count or shard order
(``tests/test_parallel_campaign.py`` proves this differentially).
"""

from __future__ import annotations

import os
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from multiprocessing import get_context

from ..hdl.netlist import Circuit
from ..hdl.simulator import Simulator
from ..zones.extractor import ZoneSet
from ..zones.model import ObservationPoint, SensibleZone
from .faultlist import CandidateList
from .faults import Fault
from .manager import (
    CampaignConfig,
    CampaignResult,
    FaultInjectionManager,
)


# ----------------------------------------------------------------------
# deterministic sharding
# ----------------------------------------------------------------------
def shard_candidates(faults: list[Fault],
                     shards: int) -> list[list[Fault]]:
    """Split ``faults`` into at most ``shards`` contiguous batches.

    The split is a partition — every fault lands in exactly one shard —
    and order-preserving: ``sum(shard_candidates(f, n), [])`` equals
    ``list(f)`` for every ``n``, which is what makes the parallel merge
    order independent of the worker count.  Shard sizes differ by at
    most one, the earlier shards taking the remainder.
    """
    if shards < 1:
        raise ValueError("need at least one shard")
    shards = min(shards, len(faults)) or 1
    base, extra = divmod(len(faults), shards)
    out: list[list[Fault]] = []
    lo = 0
    for index in range(shards):
        hi = lo + base + (1 if index < extra else 0)
        out.append(list(faults[lo:hi]))
        lo = hi
    return out


# ----------------------------------------------------------------------
# picklable campaign description
# ----------------------------------------------------------------------
@dataclass
class MemoryImageSetup:
    """Picklable stand-in for an arbitrary simulator ``setup`` callable.

    Campaign setups in this repo load memory images (code preloads,
    program ROMs) and occasionally force flop state; both are captured
    here as plain data so worker processes can replay them.
    """

    mem_images: dict[str, list[int]] = field(default_factory=dict)
    flop_values: dict[str, int] = field(default_factory=dict)

    def __call__(self, sim: Simulator) -> None:
        for name, image in self.mem_images.items():
            sim.load_mem(name, image)
        for name, value in self.flop_values.items():
            sim.set_flop(name, value)


def snapshot_setup(circuit: Circuit, setup) -> MemoryImageSetup | None:
    """Run ``setup`` on a scratch simulator and capture its effect.

    Only memory contents and flop state are captured; a setup that
    programs fault overlays or drives inputs cannot be snapshotted and
    must be given to :class:`CampaignSpec` as a picklable callable
    directly.
    """
    if setup is None:
        return None
    if isinstance(setup, MemoryImageSetup):
        return setup
    probe = Simulator(circuit, machines=1)
    setup(probe)
    if probe._forced or probe._flop_flips or probe._net_glitches or \
            probe._mem_flips or probe._bridges or probe._mem_stuck or \
            probe._mem_coupling:
        raise ValueError(
            "setup programs fault overlays; pass a picklable setup "
            "callable to CampaignSpec instead of snapshotting")
    images = {}
    for mi, mem in enumerate(circuit.memories):
        images[mem.name] = [probe.read_mem_word(mi, w)
                            for w in range(mem.depth)]
    flops = {flop.name: probe.flop_value(fi)
             for fi, flop in enumerate(circuit.flops)
             if probe.flop_value(fi) != flop.init}
    return MemoryImageSetup(mem_images=images, flop_values=flops)


@dataclass
class CampaignSpec:
    """Everything a worker process needs to rebuild a campaign manager.

    All fields are plain data (or picklable callables for ``setup``),
    so the spec can cross a process boundary under any multiprocessing
    start method.
    """

    circuit: Circuit
    stimuli: list[dict[str, int]]
    zones: list[SensibleZone] = field(default_factory=list)
    observation_points: list[ObservationPoint] = field(
        default_factory=list)
    config: CampaignConfig = field(default_factory=CampaignConfig)
    setup: MemoryImageSetup | None = None

    @classmethod
    def from_environment(cls, env, config: CampaignConfig | None = None
                         ) -> "CampaignSpec":
        """Derive a spec from an :class:`InjectionEnvironment`."""
        config = config or CampaignConfig()
        if not config.test_windows:
            config.test_windows = env.test_windows
        return cls(circuit=env.circuit,
                   stimuli=list(env.stimuli),
                   zones=list(env.zone_set.zones),
                   observation_points=list(
                       env.zone_set.observation_points),
                   config=config,
                   setup=snapshot_setup(env.circuit, env.setup))

    @classmethod
    def from_zone_set(cls, circuit: Circuit, stimuli, zone_set: ZoneSet,
                      setup=None, config: CampaignConfig | None = None
                      ) -> "CampaignSpec":
        return cls(circuit=circuit, stimuli=list(stimuli),
                   zones=list(zone_set.zones),
                   observation_points=list(zone_set.observation_points),
                   config=config or CampaignConfig(),
                   setup=snapshot_setup(circuit, setup))

    def manager(self) -> FaultInjectionManager:
        zone_set = ZoneSet(circuit=self.circuit,
                           zones=list(self.zones),
                           observation_points=list(
                               self.observation_points))
        return FaultInjectionManager(self.circuit, self.stimuli,
                                     zone_set=zone_set,
                                     setup=self.setup,
                                     config=self.config)


# ----------------------------------------------------------------------
# golden-run cache
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GoldenTrace:
    """Fault-free reference activity, computed once per campaign.

    ``obse_active`` are the functional points the workload itself
    toggles (they self-cover their OBSE items); ``diag_active`` are the
    diagnostics the workload exercises without any fault present.
    Workers run with golden bookkeeping disabled and these bits are
    merged into the final coverage ledger exactly once.
    """

    cycles: int
    obse_active: tuple[str, ...]
    diag_active: tuple[str, ...]
    wall_seconds: float = 0.0


def compute_golden_trace(manager: FaultInjectionManager) -> GoldenTrace:
    """One fault-free run of the workload, recording activity bits."""
    start = time.time()
    sim = Simulator(manager.circuit, machines=1)
    if manager.setup is not None:
        manager.setup(sim)
    stimuli = manager.stimuli
    if manager.config.max_cycles is not None:
        stimuli = stimuli[:manager.config.max_cycles]
    func_nets = {p.name: list(p.nets) for p in manager.functional}
    diag_nets = {p.name: list(p.nets) for p in manager.diagnostic}
    prev: dict[str, int] = {}
    obse: set[str] = set()
    diag: set[str] = set()
    for inputs in stimuli:
        sim.step_eval(inputs)
        for name, nets in func_nets.items():
            value = sim.value_of(nets)
            if name in prev and prev[name] != value:
                obse.add(name)
            prev[name] = value
        for name, nets in diag_nets.items():
            if name not in diag and \
                    any(sim.peek(net) & 1 for net in nets):
                diag.add(name)
        sim.step_commit()
    return GoldenTrace(cycles=len(stimuli),
                       obse_active=tuple(sorted(obse)),
                       diag_active=tuple(sorted(diag)),
                       wall_seconds=time.time() - start)


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def run_shard(spec: CampaignSpec, shard: list[Fault],
              track_golden: bool = True) -> CampaignResult:
    """Pure per-shard core: spec + faults in, raw results out.

    Stateless and picklable end to end — this is the function the
    campaign is really made of; everything else is distribution and
    merging.
    """
    return spec.manager().run_batches(list(shard),
                                      track_golden=track_golden)


_WORKER_MANAGER: FaultInjectionManager | None = None


def _worker_init(spec: CampaignSpec) -> None:
    global _WORKER_MANAGER
    _WORKER_MANAGER = spec.manager()


def _worker_run(index: int, shard: list[Fault]):
    start = time.time()
    result = _WORKER_MANAGER.run_batches(list(shard),
                                         track_golden=False)
    return index, os.getpid(), result, time.time() - start


# ----------------------------------------------------------------------
# observability
# ----------------------------------------------------------------------
class SafeProgress:
    """Shield a campaign from a misbehaving ``progress`` callback.

    The callback is user code; an exception inside it must not abort
    an hours-long campaign.  The first failure is reported once as a
    :class:`RuntimeWarning` and the callback is disabled for the rest
    of the run.
    """

    def __init__(self, callback):
        self.callback = callback
        self.disabled = False

    @classmethod
    def wrap(cls, callback):
        """``None`` stays ``None``; wrapping is idempotent."""
        if callback is None or isinstance(callback, cls):
            return callback
        return cls(callback)

    def __call__(self, done: int, total: int) -> None:
        if self.disabled:
            return
        try:
            self.callback(done, total)
        except Exception as exc:
            self.disabled = True
            warnings.warn(
                f"progress callback raised {exc!r}; disabling it for "
                f"the rest of the campaign", RuntimeWarning,
                stacklevel=2)


@dataclass
class ShardStats:
    """Timing and volume of one shard's execution."""

    shard: int
    worker: int          # OS pid of the executing worker
    faults: int
    passes: int
    cycles: int
    wall_seconds: float


@dataclass
class CampaignStats:
    """Per-worker observability for one parallel campaign run."""

    workers: int
    total_faults: int = 0
    golden_seconds: float = 0.0
    wall_seconds: float = 0.0
    shards: list[ShardStats] = field(default_factory=list)
    #: set by :class:`~repro.faultinjection.supervisor.\
    #: CampaignSupervisor`: retry/quarantine/degradation counters
    health: "object | None" = None

    def by_worker(self) -> dict[int, list[ShardStats]]:
        groups: dict[int, list[ShardStats]] = {}
        for stats in self.shards:
            groups.setdefault(stats.worker, []).append(stats)
        return groups

    def summary(self) -> str:
        lines = [f"=== campaign: {self.total_faults} faults, "
                 f"{self.workers} worker(s), "
                 f"{len(self.shards)} shard(s), "
                 f"{self.wall_seconds:.2f}s wall "
                 f"(golden trace {self.golden_seconds:.2f}s) ==="]
        for pid, shards in sorted(self.by_worker().items()):
            faults = sum(s.faults for s in shards)
            busy = sum(s.wall_seconds for s in shards)
            lines.append(f"worker {pid}: {faults} faults in "
                         f"{len(shards)} shard(s), {busy:.2f}s busy")
        if self.health is not None:
            lines.append(self.health.summary())
        return "\n".join(lines)


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------
class ParallelCampaignRunner:
    """Runs a campaign spec across worker processes, deterministically.

    ``workers=1`` falls back to the in-process serial manager.  For
    ``workers=N`` the candidates are sharded (``shards`` defaults to
    the worker count), executed by a process pool, and merged in shard
    order; ``progress(done, total)`` is invoked in the parent each
    time a shard completes.  ``last_stats`` holds the
    :class:`CampaignStats` of the most recent run.
    """

    def __init__(self, spec: CampaignSpec, workers: int | None = None,
                 shards: int | None = None, progress=None,
                 start_method: str | None = None, cache=None):
        if workers is not None and workers < 1:
            raise ValueError("need at least one worker")
        self.spec = spec
        self.workers = workers if workers is not None \
            else (os.cpu_count() or 1)
        self.shards = shards
        self.progress = SafeProgress.wrap(progress)
        self.start_method = start_method
        #: optional :class:`repro.store.CampaignCache`: cached faults
        #: are served from the store, only misses are sharded
        self.cache = cache
        self.last_stats: CampaignStats | None = None

    # ------------------------------------------------------------------
    def run(self, candidates: CandidateList) -> CampaignResult:
        if self.cache is not None:
            return self.cache.run_parallel(self, candidates)
        return self.run_uncached(candidates)

    def run_uncached(self, candidates: CandidateList) -> CampaignResult:
        faults = list(candidates.faults)
        if self.workers == 1 or len(faults) <= 1:
            return self._run_serial(candidates)
        return self._run_sharded(candidates)

    # ------------------------------------------------------------------
    def _run_serial(self, candidates: CandidateList) -> CampaignResult:
        start = time.time()
        result = self.spec.manager().run(candidates)
        stats = CampaignStats(workers=1,
                              total_faults=len(result.results),
                              wall_seconds=time.time() - start)
        stats.shards.append(ShardStats(
            shard=0, worker=os.getpid(), faults=len(result.results),
            passes=result.passes, cycles=result.cycles_simulated,
            wall_seconds=result.wall_seconds))
        self.last_stats = stats
        if self.progress is not None:
            self.progress(len(result.results), len(result.results))
        return result

    def _run_sharded(self, candidates: CandidateList) -> CampaignResult:
        start = time.time()
        manager = self.spec.manager()
        golden = compute_golden_trace(manager)
        shards = shard_candidates(list(candidates.faults),
                                  self.shards or self.workers)
        total = len(candidates.faults)

        stats = CampaignStats(workers=min(self.workers, len(shards)),
                              total_faults=total,
                              golden_seconds=golden.wall_seconds)
        method = self.start_method or _default_start_method()
        outputs: dict[int, CampaignResult] = {}
        done = 0
        with ProcessPoolExecutor(
                max_workers=min(self.workers, len(shards)),
                mp_context=get_context(method),
                initializer=_worker_init,
                initargs=(self.spec,)) as pool:
            futures = [pool.submit(_worker_run, index, shard)
                       for index, shard in enumerate(shards)]
            for future in as_completed(futures):
                index, pid, shard_result, seconds = future.result()
                outputs[index] = shard_result
                stats.shards.append(ShardStats(
                    shard=index, worker=pid,
                    faults=len(shard_result.results),
                    passes=shard_result.passes,
                    cycles=shard_result.cycles_simulated,
                    wall_seconds=seconds))
                done += len(shard_result.results)
                if self.progress is not None:
                    self.progress(done, total)

        result = manager.new_result()
        manager._init_coverage(result.coverage, candidates)
        for index in range(len(shards)):
            result.merge_run(outputs[index])
        for name in golden.obse_active:
            result.coverage.obse[name] = True
        for name in golden.diag_active:
            result.coverage.diag[name] = True
        manager.fill_coverage(result)
        result.wall_seconds = time.time() - start
        stats.wall_seconds = result.wall_seconds
        stats.shards.sort(key=lambda s: s.shard)
        self.last_stats = stats
        return result


def _default_start_method() -> str:
    """``fork`` where available (cheap on Linux), else ``spawn``.

    Every payload crossing the pool boundary is picklable either way;
    fork merely skips re-importing the package per worker.
    """
    import multiprocessing
    return "fork" if "fork" in multiprocessing.get_all_start_methods() \
        else "spawn"
