"""Fault Injection Manager (paper §5, Figure 4).

"this function runs all the injection campaign based on automatically
generated fault lists and collects all the results."

The manager packs faults onto the parallel machines of the bit-parallel
simulator (machine 0 stays golden), replays the workload once per pass,
and records for every fault:

* **SENS** — the first cycle its zone's state deviated from golden;
* **OBSE** — the first cycle a functional observation point deviated,
  plus the per-point effects table (for main/secondary validation);
* **DIAG** — the first cycle a diagnostic alarm asserted in the faulty
  machine while the golden machine was quiet.

Outcomes are then classified into the IEC classes: safe, detected-safe
(alarm without corruption), dangerous-detected (corruption with a
timely alarm) and dangerous-undetected.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..hdl.netlist import Circuit
from ..hdl.simulator import Simulator
from ..zones.extractor import ZoneSet
from ..zones.model import ObservationPoint, SensibleZone, ZoneKind
from .faultlist import CandidateList
from .faults import Fault
from .monitors import CoverageCollection

OUTCOME_SAFE = "safe"
OUTCOME_DETECTED_SAFE = "detected_safe"
OUTCOME_DD = "dangerous_detected"
OUTCOME_DU = "dangerous_undetected"

ENGINE_COMPILED = "compiled"
ENGINE_INTERPRETED = "interpreted"

#: engine-specific defaults for faulty machines per pass: the
#: interpreted big-int simulator stops gaining past a few dozen lanes,
#: while the compiled kernel amortizes its fixed per-cycle cost best
#: when a full fault shard rides in one pass
DEFAULT_MACHINES_INTERPRETED = 48
DEFAULT_MACHINES_COMPILED = 1023


@dataclass
class CampaignConfig:
    #: faulty machines per simulator pass; ``None`` picks the engine
    #: default (48 interpreted, 1023 compiled)
    machines_per_pass: int | None = None
    detection_window: int = 12     # cycles an alarm may trail corruption
    max_cycles: int | None = None  # optionally trim the workload
    collect_toggles: bool = False  # any-machine toggles (step b credit)
    #: runaway watchdog: a pass simulating more than this many cycles
    #: raises :class:`~repro.hdl.simulator.CycleBudgetExceeded` (the
    #: supervisor quarantines the offending faults as hangs)
    cycle_budget: int | None = None
    #: cycle ranges of software/hardware test phases: a mismatch
    #: observed inside one counts as detected (the test's compare step
    #: flags it) — the detection model of the SW start-up test claims
    test_windows: tuple[tuple[int, int], ...] = ()
    #: simulation engine: :data:`ENGINE_COMPILED` (numpy kernel with
    #: automatic per-pass fallback) or :data:`ENGINE_INTERPRETED`
    #: (the big-int oracle).  Outcomes are bit-identical either way;
    #: store fingerprints never include this knob.
    engine: str = ENGINE_COMPILED

    def resolved_machines_per_pass(self) -> int:
        """The effective pass width, applying the engine default."""
        if self.machines_per_pass is not None:
            return max(1, self.machines_per_pass)
        return DEFAULT_MACHINES_COMPILED \
            if self.engine == ENGINE_COMPILED \
            else DEFAULT_MACHINES_INTERPRETED


@dataclass
class FaultResult:
    """Everything measured for one injected fault."""

    fault: Fault
    sens_cycle: int | None = None
    obse_cycle: int | None = None
    diag_cycle: int | None = None
    first_alarm: str | None = None
    effects: dict[str, int] = field(default_factory=dict)

    def outcome(self, window: int,
                test_windows: tuple[tuple[int, int], ...] = ()) -> str:
        if self.obse_cycle is None:
            return OUTCOME_DETECTED_SAFE if self.diag_cycle is not None \
                else OUTCOME_SAFE
        if self.diag_cycle is not None and \
                self.diag_cycle <= self.obse_cycle + window:
            return OUTCOME_DD
        for lo, hi in test_windows:
            if lo <= self.obse_cycle < hi:
                return OUTCOME_DD   # the test's compare flags it
        return OUTCOME_DU


@dataclass
class CampaignResult:
    """All fault results plus coverage and bookkeeping."""

    results: list[FaultResult] = field(default_factory=list)
    coverage: CoverageCollection = field(
        default_factory=CoverageCollection)
    window: int = 12
    test_windows: tuple[tuple[int, int], ...] = ()
    passes: int = 0
    cycles_simulated: int = 0
    wall_seconds: float = 0.0
    seen0: bytearray | None = None
    seen1: bytearray | None = None

    def toggled_nets(self) -> set[int]:
        """Nets seen at both values in any machine of any pass."""
        if self.seen0 is None or self.seen1 is None:
            return set()
        return {net for net in range(len(self.seen0))
                if self.seen0[net] and self.seen1[net]}

    def outcome_of(self, res: FaultResult) -> str:
        return res.outcome(self.window, self.test_windows)

    def outcomes(self) -> dict[str, int]:
        counts = {OUTCOME_SAFE: 0, OUTCOME_DETECTED_SAFE: 0,
                  OUTCOME_DD: 0, OUTCOME_DU: 0}
        for res in self.results:
            counts[self.outcome_of(res)] += 1
        return counts

    def by_zone(self) -> dict[str, list[FaultResult]]:
        groups: dict[str, list[FaultResult]] = {}
        for res in self.results:
            groups.setdefault(res.fault.zone or "?", []).append(res)
        return groups

    def measured_dc(self) -> float:
        """Campaign-wide diagnostic coverage of dangerous failures.

        An empty campaign claims no coverage (0.0): with zero
        injections there is no evidence for the optimistic reading.
        """
        if not self.results:
            return 0.0
        counts = self.outcomes()
        dangerous = counts[OUTCOME_DD] + counts[OUTCOME_DU]
        return counts[OUTCOME_DD] / dangerous if dangerous else 1.0

    def measured_safe_fraction(self) -> float:
        if not self.results:
            return 0.0
        counts = self.outcomes()
        safe = counts[OUTCOME_SAFE] + counts[OUTCOME_DETECTED_SAFE]
        return safe / len(self.results)

    def merge_run(self, other: "CampaignResult") -> None:
        """Append another run's raw per-fault output to this one.

        Used by the sharded campaign path: per-shard results are
        concatenated in shard order so the merged ``results`` list is
        identical to what a single serial run over the same candidate
        order would produce.  Coverage bookkeeping is *not* merged here
        — the campaign driver recomputes it over the merged results.
        """
        self.results.extend(other.results)
        self.passes += other.passes
        self.cycles_simulated += other.cycles_simulated
        if other.seen0 is not None and other.seen1 is not None:
            if self.seen0 is None:
                self.seen0 = bytearray(len(other.seen0))
                self.seen1 = bytearray(len(other.seen1))
            for net, seen in enumerate(other.seen0):
                if seen:
                    self.seen0[net] = 1
            for net, seen in enumerate(other.seen1):
                if seen:
                    self.seen1[net] = 1


class FaultInjectionManager:
    """Runs campaigns for one circuit + workload + observation set."""

    def __init__(self, circuit: Circuit, stimuli,
                 zone_set: ZoneSet | None = None,
                 observation_points: list[ObservationPoint] | None = None,
                 setup=None, config: CampaignConfig | None = None):
        self.circuit = circuit
        self.stimuli = list(stimuli)
        self.setup = setup
        self.config = config or CampaignConfig()
        if observation_points is None:
            if zone_set is None:
                raise ValueError("need zone_set or observation_points")
            observation_points = zone_set.observation_points
        from ..zones.model import ObservationKind
        self.functional = [p for p in observation_points
                           if p.kind is ObservationKind.OUTPUT]
        self.status = [p for p in observation_points
                       if p.kind is ObservationKind.FUNCTION]
        self.diagnostic = [p for p in observation_points
                           if p.is_diagnostic]
        self.zone_set = zone_set
        self._zones_by_name: dict[str, SensibleZone] = {}
        if zone_set is not None:
            self._zones_by_name = {z.name: z for z in zone_set.zones}
        self._flop_index = {f.name: i
                            for i, f in enumerate(circuit.flops)}
        self._compiled = None
        self._compile_failed = False

    # ------------------------------------------------------------------
    def new_result(self) -> CampaignResult:
        """An empty result carrying this campaign's outcome rules."""
        cfg = self.config
        return CampaignResult(window=cfg.detection_window,
                              test_windows=tuple(cfg.test_windows))

    def run(self, candidates: CandidateList,
            cache=None) -> CampaignResult:
        """Run the campaign; with ``cache`` (a
        :class:`repro.store.CampaignCache`) previously stored outcomes
        are served from the content-addressed store and only cache
        misses are simulated — bit-identical either way."""
        if cache is not None:
            return cache.run_serial(self, candidates)
        start = time.time()
        result = self.new_result()
        self._init_coverage(result.coverage, candidates)
        self.run_batches(list(candidates.faults), into=result)
        self.fill_coverage(result)
        result.wall_seconds = time.time() - start
        return result

    def run_batches(self, faults: list[Fault],
                    into: CampaignResult | None = None,
                    track_golden: bool = True) -> CampaignResult:
        """The raw pass loop: simulate ``faults`` in per-pass batches.

        This is the per-shard core shared by :meth:`run` and the
        worker processes of the parallel campaign runner.  It performs
        no coverage initialisation or post-processing; when
        ``track_golden`` is false the golden-activity bookkeeping is
        skipped too (the parallel runner computes the fault-free trace
        once and shares it instead of recomputing it per batch).
        """
        result = into if into is not None else self.new_result()
        per_pass = self.config.resolved_machines_per_pass()
        for lo in range(0, len(faults), per_pass):
            batch = faults[lo:lo + per_pass]
            self._run_pass(batch, result, track_golden=track_golden)
            result.passes += 1
        return result

    def fill_coverage(self, result: CampaignResult) -> None:
        """Derive the coverage ledger from the per-fault results."""
        result.coverage.injections = len(result.results)
        for res in result.results:
            if res.sens_cycle is not None and res.fault.zone:
                result.coverage.sens[res.fault.zone] = True
            if res.obse_cycle is not None:
                result.coverage.mismatches += 1
            for point in res.effects:
                if point in result.coverage.obse:
                    result.coverage.obse[point] = True
                if point in result.coverage.diag:
                    result.coverage.diag[point] = True

    def _init_coverage(self, cov: CoverageCollection,
                       candidates: CandidateList) -> None:
        # SENS completeness items are the injectable state zones; wide
        # faults attributed to structural (sub-block / net) zones are
        # tracked in the results but carry no 100 %-SENS obligation.
        for fault in candidates.faults:
            if not fault.zone:
                continue
            zone = self._zones_by_name.get(fault.zone)
            if zone is not None and zone.kind not in (
                    ZoneKind.REGISTER, ZoneKind.MEMORY):
                continue
            cov.sens.setdefault(fault.zone, False)
        for point in self.functional:
            cov.obse.setdefault(point.name, False)
        for point in self.diagnostic:
            cov.diag.setdefault(point.name, False)

    # ------------------------------------------------------------------
    def compiled_circuit(self):
        """The compiled program for this circuit, or ``None`` when the
        circuit has no compiled representation (then every pass runs
        interpreted).  Compiled once per manager and shared by all
        passes; a :class:`~repro.hdl.compiled.CompileError` (e.g. a
        combinational loop) propagates — it would break the
        interpreted levelizer just the same."""
        if self._compile_failed:
            return None
        if self._compiled is None:
            from ..hdl.compiled import CompiledUnsupported, \
                compile_circuit
            try:
                self._compiled = compile_circuit(self.circuit)
            except CompiledUnsupported:
                self._compile_failed = True
                return None
        return self._compiled

    def _run_pass(self, batch: list[Fault], result: CampaignResult,
                  track_golden: bool = True) -> None:
        if self.config.engine == ENGINE_COMPILED:
            from .compiled_pass import run_pass_compiled
            if run_pass_compiled(self, batch, result,
                                 track_golden=track_golden):
                return
        self._run_pass_interpreted(batch, result,
                                   track_golden=track_golden)

    def _run_pass_interpreted(self, batch: list[Fault],
                              result: CampaignResult,
                              track_golden: bool = True) -> None:
        machines = len(batch) + 1
        sim = Simulator(self.circuit, machines=machines,
                        collect_toggles=self.config.collect_toggles,
                        toggle_any_machine=True,
                        cycle_budget=self.config.cycle_budget)
        if self.setup is not None:
            self.setup(sim)

        results = [FaultResult(fault=f) for f in batch]
        for k, fault in enumerate(batch, start=1):
            fault.arm(sim, machine=k, t0=0)

        # group SENS probes (one state compare per distinct probe/cycle);
        # memory probes are per-word, register probes per-zone
        probe_members: dict[tuple, list[int]] = {}
        for idx, fault in enumerate(batch):
            zone = self._zones_by_name.get(fault.zone or "")
            if zone is None:
                continue
            probe = self._zone_probe(zone, fault)
            if probe is None:
                continue
            probe_members.setdefault(probe, []).append(idx)

        func_nets = {p.name: list(p.nets) for p in self.functional}
        status_nets = {p.name: list(p.nets) for p in self.status}
        diag_nets = {p.name: list(p.nets) for p in self.diagnostic}
        full = sim.full_mask

        stimuli = self.stimuli
        if self.config.max_cycles is not None:
            stimuli = stimuli[:self.config.max_cycles]

        golden_prev: dict[str, int] = {}
        for cycle, inputs in enumerate(stimuli):
            sim.step_eval(inputs)

            for name, nets in func_nets.items():
                mask = sim.mismatch_mask(nets)
                if mask:
                    for idx, res in enumerate(results):
                        if mask >> (idx + 1) & 1:
                            res.effects.setdefault(name, cycle)
                            if res.obse_cycle is None:
                                res.obse_cycle = cycle
                # golden activity covers the OBSE item by itself
                if track_golden:
                    value = sim.value_of(nets)
                    if name in golden_prev and \
                            golden_prev[name] != value:
                        result.coverage.obse[name] = True
                    golden_prev[name] = value

            for name, nets in status_nets.items():
                # status points: recorded in the effects table only
                mask = sim.mismatch_mask(nets)
                if mask:
                    for idx, res in enumerate(results):
                        if mask >> (idx + 1) & 1:
                            res.effects.setdefault(name, cycle)

            for name, nets in diag_nets.items():
                raised = 0
                golden_raised = False
                for net in nets:
                    v = sim.peek(net)
                    golden = full if v & 1 else 0
                    golden_raised = golden_raised or bool(v & 1)
                    raised |= v & ~golden
                if golden_raised and track_golden:
                    # the workload itself exercises the diagnostic
                    result.coverage.diag[name] = True
                if raised:
                    for idx, res in enumerate(results):
                        if raised >> (idx + 1) & 1:
                            res.effects.setdefault(name, cycle)
                            if res.diag_cycle is None:
                                res.diag_cycle = cycle
                                res.first_alarm = name

            # SENS: sample zone state while the injected deviation is
            # still live (a flipped flop may be overwritten at the edge)
            for probe, members in probe_members.items():
                mask = self._probe_mismatch(sim, probe)
                if mask:
                    for idx in members:
                        if mask >> (idx + 1) & 1 and \
                                results[idx].sens_cycle is None:
                            results[idx].sens_cycle = cycle

            sim.step_commit()
            result.cycles_simulated += 1

        if self.config.collect_toggles:
            if result.seen0 is None:
                result.seen0 = bytearray(self.circuit.num_nets)
                result.seen1 = bytearray(self.circuit.num_nets)
            for net in range(self.circuit.num_nets):
                if sim._seen0[net]:
                    result.seen0[net] = 1
                if sim._seen1[net]:
                    result.seen1[net] = 1

        result.results.extend(results)

    # ------------------------------------------------------------------
    def _zone_probe(self, zone: SensibleZone, fault: Fault):
        if zone.kind is ZoneKind.REGISTER:
            idxs = tuple(self._flop_index[name] for name in zone.flops
                         if name in self._flop_index)
            return ("flops", idxs)
        if zone.kind is ZoneKind.MEMORY:
            word = getattr(fault, "word", None)
            if word is None:
                return None
            return ("mem", zone.memory, word)
        return ("nets", tuple(zone.nets))

    @staticmethod
    def _probe_mismatch(sim: Simulator, probe) -> int:
        if probe[0] == "flops":
            return sim.flop_state_mismatch(probe[1])
        if probe[0] == "mem":
            return sim.mem_word_mismatch(probe[1], probe[2])
        return sim.mismatch_mask(probe[1])
