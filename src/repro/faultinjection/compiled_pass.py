"""One campaign pass on the compiled numpy kernel.

:func:`run_pass_compiled` mirrors
``FaultInjectionManager._run_pass_interpreted`` record for record —
same ``FaultResult`` fields, same coverage bookkeeping, same toggle
merge — but evaluates the whole pass on
:class:`~repro.hdl.compiled.CompiledSimulator` and replaces the
per-point Python observation loop with vectorized group reductions:

* all observation points and net-shaped SENS probes are concatenated
  into one row gather; a single segmented OR (``reduceat``) yields the
  per-point golden-diff words each cycle;
* diagnostic points occupy the tail of that concatenation so their
  different semantics (``raised = v & ~golden`` instead of
  ``v ^ golden``) are one in-place slice operation;
* flop- and memory-word SENS probes get the same treatment over the
  flop-state array and the transposed memory store;
* per-point *seen* masks ensure the Python recording loop only ever
  touches a (point, machine) pair once — after the first divergence is
  recorded the steady-state per-cycle cost is a handful of numpy calls.

The function returns ``False`` — recording **nothing** — whenever the
pass cannot run compiled (a fault kind without a compiled overlay, or
a circuit construct the compiler rejects), and the caller re-runs the
batch interpreted.  Results are bit-identical between the engines;
``tests/test_compiled_differential.py`` proves it differentially.
"""

from __future__ import annotations

import numpy as np

from ..hdl.compiled import CompiledSimulator, CompiledUnsupported
from .manager import FaultResult

_U64 = np.uint64

#: fault kinds with no compiled overlay — checked up front so the
#: common fallback costs no wasted compile/arm work
UNSUPPORTED_KINDS = frozenset({"bridge", "mem_coupling"})

_FUNC, _STATUS, _PROBE, _DIAG = 0, 1, 2, 3


class _Group:
    """One concatenated observation family sharing a gather axis."""

    __slots__ = ("index", "starts", "pts", "seen", "buf")

    def __init__(self, index: list[int], starts: list[int],
                 pts: list[tuple], words: int):
        self.index = np.asarray(index, dtype=np.intp)
        self.starts = np.asarray(starts, dtype=np.intp)
        self.pts = pts                       # (kind, name, members)
        self.seen = np.zeros((len(pts), words), dtype=_U64)
        self.buf = np.empty((len(index), words), dtype=_U64)


def _build_groups(manager, cc, batch, words):
    """Partition points + SENS probes into vectorizable groups.

    Returns ``(net_group, diag_seg_lo, func_count, flop_group,
    mem_groups)``; any group may be ``None``/empty.  Zero-net points
    are dropped — they can never mismatch (and ``reduceat`` cannot
    represent empty segments).
    """
    rows: list[int] = []
    starts: list[int] = []
    pts: list[tuple] = []
    perm = cc.perm

    def add_point(kind, name, nets, members=None):
        if not nets:
            return
        starts.append(len(rows))
        rows.extend(int(perm[n]) for n in nets)
        pts.append((kind, name, members))

    for p in manager.functional:
        add_point(_FUNC, p.name, list(p.nets))
    func_count = len(pts)
    for p in manager.status:
        add_point(_STATUS, p.name, list(p.nets))

    probe_members: dict[tuple, list[int]] = {}
    for idx, fault in enumerate(batch):
        zone = manager._zones_by_name.get(fault.zone or "")
        if zone is None:
            continue
        probe = manager._zone_probe(zone, fault)
        if probe is None:
            continue
        probe_members.setdefault(probe, []).append(idx)

    flop_idx: list[int] = []
    flop_starts: list[int] = []
    flop_pts: list[tuple] = []
    mem_index = {m.name: i
                 for i, m in enumerate(manager.circuit.memories)}
    by_mem: dict[int, tuple[list[int], list[tuple]]] = {}
    for probe, members in probe_members.items():
        if probe[0] == "nets":
            add_point(_PROBE, None, list(probe[1]), members)
        elif probe[0] == "flops":
            if not probe[1]:
                continue
            flop_starts.append(len(flop_idx))
            flop_idx.extend(probe[1])
            flop_pts.append((_PROBE, None, members))
        else:                                # ("mem", name, word)
            mi = mem_index[probe[1]]
            mwords, mpts = by_mem.setdefault(mi, ([], []))
            mwords.append(probe[2])
            mpts.append((_PROBE, None, members))

    # diagnostic points go LAST: their raised-while-golden-quiet
    # semantics become one in-place masking of the tail slice
    diag_seg_lo = len(pts)
    for p in manager.diagnostic:
        add_point(_DIAG, p.name, list(p.nets))

    net_group = _Group(rows, starts, pts, words) if pts else None
    flop_group = _Group(flop_idx, flop_starts, flop_pts, words) \
        if flop_pts else None
    mem_groups = [(mi, _Group(mwords, list(range(len(mwords))),
                              mpts, words))
                  for mi, (mwords, mpts) in by_mem.items()]
    return net_group, diag_seg_lo, func_count, flop_group, mem_groups


def run_pass_compiled(manager, batch, result,
                      track_golden: bool = True) -> bool:
    """Run one campaign pass compiled; ``False`` = caller falls back.

    Nothing is recorded into ``result`` until the pass is guaranteed
    to run, so falling back to the interpreted engine is always safe.
    A :class:`~repro.hdl.simulator.CycleBudgetExceeded` raised mid-pass
    propagates exactly as it does from the interpreted loop (the
    supervisor's hang quarantine relies on it).
    """
    if any(f.kind in UNSUPPORTED_KINDS for f in batch):
        return False
    cc = manager.compiled_circuit()
    if cc is None:
        return False
    cfg = manager.config
    try:
        sim = CompiledSimulator(cc, machines=len(batch) + 1,
                                collect_toggles=cfg.collect_toggles,
                                toggle_any_machine=True,
                                cycle_budget=cfg.cycle_budget)
        if manager.setup is not None:
            manager.setup(sim)
        for k, fault in enumerate(batch, start=1):
            fault.arm(sim, machine=k, t0=0)
    except CompiledUnsupported:
        return False

    results = [FaultResult(fault=f) for f in batch]
    net, diag_lo, nfunc, flopg, memgs = _build_groups(
        manager, cc, batch, sim.words)
    diag_row_lo = int(net.starts[diag_lo]) \
        if net is not None and diag_lo < len(net.pts) \
        else (len(net.index) if net is not None else 0)

    stimuli = manager.stimuli
    if cfg.max_cycles is not None:
        stimuli = stimuli[:cfg.max_cycles]

    one = _U64(1)
    full = sim._full
    vals = sim._vals
    coverage = result.coverage

    def record(point_words, group):
        """Route newly-diverged (point, machine) pairs to results."""
        new = point_words & ~group.seen
        if not new.any():
            return
        group.seen |= point_words
        for p in np.nonzero(new.any(axis=1))[0]:
            kind, name, members = group.pts[p]
            mask = int.from_bytes(
                new[p].astype("<u8").tobytes(), "little")
            if kind == _PROBE:
                for idx in members:
                    if (mask >> (idx + 1)) & 1 and \
                            results[idx].sens_cycle is None:
                        results[idx].sens_cycle = cycle
                continue
            while mask:
                low = mask & -mask
                mask ^= low
                res = results[low.bit_length() - 2]
                if kind == _FUNC:
                    res.effects.setdefault(name, cycle)
                    if res.obse_cycle is None:
                        res.obse_cycle = cycle
                elif kind == _STATUS:
                    res.effects.setdefault(name, cycle)
                else:
                    res.effects.setdefault(name, cycle)
                    if res.diag_cycle is None:
                        res.diag_cycle = cycle
                        res.first_alarm = name

    prev_b0 = None
    for cycle, inputs in enumerate(stimuli):
        sim.step_eval(inputs)

        if net is not None:
            vals.take(net.index, axis=0, out=net.buf)
            sub = net.buf
            b0 = sub[:, 0] & one
            gw = b0[:, None] * full
            diff = sub ^ gw
            if diag_row_lo < diff.shape[0]:
                tail = diff[diag_row_lo:]
                np.bitwise_and(tail, ~gw[diag_row_lo:], out=tail)
            record(np.bitwise_or.reduceat(diff, net.starts, axis=0),
                   net)
            if track_golden:
                b0b = b0.astype(bool)
                if prev_b0 is not None and nfunc:
                    changed = b0b != prev_b0
                    if changed.any():
                        cseg = np.logical_or.reduceat(changed,
                                                      net.starts)
                        for p in range(nfunc):
                            if cseg[p]:
                                coverage.obse[net.pts[p][1]] = True
                prev_b0 = b0b
                if diag_lo < len(net.pts):
                    gseg = np.logical_or.reduceat(b0b, net.starts)
                    for p in range(diag_lo, len(net.pts)):
                        if gseg[p]:
                            coverage.diag[net.pts[p][1]] = True

        if flopg is not None:
            subf = sim._flop_state[flopg.index]
            gwf = (subf[:, 0] & one)[:, None] * full
            record(np.bitwise_or.reduceat(subf ^ gwf, flopg.starts,
                                          axis=0), flopg)

        for mi, mg in memgs:
            subm = sim._mem_store[mi][mg.index]     # (P, W, width)
            gm = (subm[:, 0, :] & one)[:, None, :] \
                * full[None, :, None]
            record(np.bitwise_or.reduce(subm ^ gm, axis=2), mg)

        sim.step_commit()
        result.cycles_simulated += 1

    if cfg.collect_toggles:
        if result.seen0 is None:
            result.seen0 = bytearray(manager.circuit.num_nets)
            result.seen1 = bytearray(manager.circuit.num_nets)
        seen0, seen1 = sim._seen0, sim._seen1
        for net_id in range(manager.circuit.num_nets):
            if seen0[net_id]:
                result.seen0[net_id] = 1
            if seen1[net_id]:
                result.seen1[net_id] = 1

    result.results.extend(results)
    return True
