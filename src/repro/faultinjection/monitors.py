"""SENS / OBSE / DIAG monitors and coverage collection (paper §5).

"In this context, coverage means a measure of the completeness of the
fault injection experiment.  It is measured how many times a fault
injection (SENS) is triggered by an injection, how many changes
occurred on the observation (OBSE), how many mismatches occurred
between faulty and golden DUT, how many times the diagnostic (DIAG)
changed and so forth.  Only when all the coverage items are covered at
100% we can consider complete the fault injection experiment."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..reporting.tables import pct, render_kv


@dataclass
class CoverageCollection:
    """Campaign-completeness ledger.

    * ``sens[zone]``: at least one injection in the zone actually
      perturbed its state;
    * ``obse[point]``: at least one deviation was measured at the
      observation point;
    * ``diag[alarm]``: the alarm asserted at least once during the
      campaign (attributable to a fault);
    * ``mismatches``: total golden/faulty mismatch events.
    """

    sens: dict[str, bool] = field(default_factory=dict)
    obse: dict[str, bool] = field(default_factory=dict)
    diag: dict[str, bool] = field(default_factory=dict)
    mismatches: int = 0
    injections: int = 0

    # ------------------------------------------------------------------
    def merge(self, other: "CoverageCollection") -> None:
        """OR-merge another campaign's ledger (steps a/c/d combine)."""
        for table, theirs in ((self.sens, other.sens),
                              (self.obse, other.obse),
                              (self.diag, other.diag)):
            for key, value in theirs.items():
                table[key] = table.get(key, False) or value
        self.mismatches += other.mismatches
        self.injections += other.injections

    def mark_golden_activity(self, output_toggles: dict[str, list[int]]
                             ) -> None:
        """Count workload-driven toggles as OBSE/DIAG exercise."""
        for name, cycles in output_toggles.items():
            if not cycles:
                continue
            if name in self.obse:
                self.obse[name] = True
            if name in self.diag:
                self.diag[name] = True

    def sens_coverage(self) -> float:
        return _ratio(self.sens)

    def obse_coverage(self) -> float:
        return _ratio(self.obse)

    def diag_coverage(self) -> float:
        return _ratio(self.diag)

    @property
    def complete(self) -> bool:
        return (self.sens_coverage() == 1.0
                and self.obse_coverage() == 1.0
                and self.diag_coverage() == 1.0)

    def uncovered(self) -> dict[str, list[str]]:
        return {
            "sens": [k for k, v in self.sens.items() if not v],
            "obse": [k for k, v in self.obse.items() if not v],
            "diag": [k for k, v in self.diag.items() if not v],
        }

    def report(self) -> str:
        pairs = [
            ("injections", self.injections),
            ("mismatch events", self.mismatches),
            ("SENS coverage", pct(self.sens_coverage())),
            ("OBSE coverage", pct(self.obse_coverage())),
            ("DIAG coverage", pct(self.diag_coverage())),
            ("complete", "yes" if self.complete else "no"),
        ]
        text = render_kv(pairs, title="=== injection coverage ===")
        holes = self.uncovered()
        for kind, items in holes.items():
            if items:
                text += f"\n  uncovered {kind}: {', '.join(items[:6])}"
                if len(items) > 6:
                    text += f" (+{len(items) - 6} more)"
        return text


def _ratio(table: dict[str, bool]) -> float:
    if not table:
        return 1.0
    return sum(1 for v in table.values() if v) / len(table)
