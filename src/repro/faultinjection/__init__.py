"""The §5 validation flow: profiler, fault lists, campaigns, analysis."""

from .faults import (
    ArmedFault,
    BridgeFault,
    Fault,
    GlobalStuckFault,
    MbuFault,
    MemCouplingFault,
    MemFlipFault,
    MemStuckFault,
    SetFault,
    SeuFault,
    StuckNetFault,
)
from .profiler import MemAccess, OperationalProfile, profile_workload
from .faultlist import (
    CandidateList,
    FaultListConfig,
    collapse,
    generate_cone_faults,
    generate_gate_faults,
    generate_zone_faults,
    randomize,
)
from .monitors import CoverageCollection
from .manager import (
    CampaignConfig,
    CampaignResult,
    ENGINE_COMPILED,
    ENGINE_INTERPRETED,
    FaultInjectionManager,
    FaultResult,
    OUTCOME_DD,
    OUTCOME_DETECTED_SAFE,
    OUTCOME_DU,
    OUTCOME_SAFE,
)
from .parallel import (
    CampaignSpec,
    CampaignStats,
    GoldenTrace,
    MemoryImageSetup,
    ParallelCampaignRunner,
    SafeProgress,
    ShardStats,
    compute_golden_trace,
    run_shard,
    shard_candidates,
    snapshot_setup,
)
from .supervisor import (
    ANOMALY_CRASH,
    ANOMALY_EXCEPTION,
    ANOMALY_HANG,
    CampaignAborted,
    CampaignHealth,
    CampaignSupervisor,
    FaultAnomaly,
    SupervisorConfig,
)
from .analyzer import (
    EffectComparison,
    ResultAnalyzer,
    ZoneMeasurement,
)
from .diagnosis import Candidate, FaultDictionary, signature_of
from .environment import (
    STIMULI_SCHEMA_VERSION,
    InjectionEnvironment,
    StimuliValidationError,
    build_environment,
    load_stimuli,
    save_stimuli,
    validate_stimuli,
    validate_stimuli_report,
)
from .faultsim import FaultSimReport, simulate_faults
from .validation import (
    StepResult,
    ValidationConfig,
    ValidationReport,
    run_validation,
)

# Campaign-store types re-exported lazily (PEP 562): repro.store
# imports the campaign engines above, so a module-level import here
# would be circular.
_STORE_EXPORTS = (
    "BlobStore", "CacheStats", "CampaignCache", "CampaignPlan",
    "CorruptBlobError", "FingerprintContext", "OutcomeRow", "StoreDB",
    "SupportIndex",
)


def __getattr__(name: str):
    if name in _STORE_EXPORTS:
        from .. import store
        return getattr(store, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ArmedFault", "BridgeFault", "Fault", "GlobalStuckFault",
    "MbuFault", "MemCouplingFault", "MemFlipFault", "MemStuckFault", "SetFault",
    "SeuFault", "StuckNetFault",
    "MemAccess", "OperationalProfile", "profile_workload",
    "CandidateList", "FaultListConfig", "collapse",
    "generate_cone_faults", "generate_gate_faults",
    "generate_zone_faults", "randomize",
    "CoverageCollection",
    "CampaignConfig", "CampaignResult", "ENGINE_COMPILED",
    "ENGINE_INTERPRETED", "FaultInjectionManager",
    "FaultResult", "OUTCOME_DD", "OUTCOME_DETECTED_SAFE", "OUTCOME_DU",
    "OUTCOME_SAFE",
    "CampaignSpec", "CampaignStats", "GoldenTrace", "MemoryImageSetup",
    "ParallelCampaignRunner", "SafeProgress", "ShardStats",
    "compute_golden_trace",
    "run_shard", "shard_candidates", "snapshot_setup",
    "ANOMALY_CRASH", "ANOMALY_EXCEPTION", "ANOMALY_HANG",
    "CampaignAborted", "CampaignHealth", "CampaignSupervisor",
    "FaultAnomaly", "SupervisorConfig",
    "EffectComparison", "ResultAnalyzer", "ZoneMeasurement",
    "Candidate", "FaultDictionary", "signature_of",
    "InjectionEnvironment", "STIMULI_SCHEMA_VERSION",
    "StimuliValidationError", "build_environment", "load_stimuli",
    "save_stimuli", "validate_stimuli", "validate_stimuli_report",
    "FaultSimReport", "simulate_faults",
    "StepResult", "ValidationConfig", "ValidationReport",
    "run_validation",
    *_STORE_EXPORTS,
]
