"""The four-step FMEA validation procedure (paper §5).

a) exhaustive fault injection of sensible-zone failures, cross-checked
   against the FMEA (measured S/DDF and the effects table) with
   SENS/OBSE/DIAG coverage collection;
b) workload-completeness measurement (toggle coverage >= 99 % by
   default, or a standard fault coverage);
c) selective local HW fault injection in the critical areas, plus
   fault simulation of permanent faults against the claimed DDF;
d) selective wide/global HW fault injection, checked for consistency
   with the zone-level analysis (no unexplained new effects).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..fmea.ranking import rank_zones
from ..hdl.coverage import ToggleReport, measure_toggle_coverage
from ..zones.effects import predict_effects_table
from ..zones.model import ZoneKind
from .analyzer import ResultAnalyzer
from .environment import InjectionEnvironment, build_environment
from .faultlist import (
    CandidateList,
    FaultListConfig,
    generate_cone_faults,
)
from .faults import BridgeFault, GlobalStuckFault
from .faultsim import simulate_faults
from .manager import CampaignConfig, CampaignResult
from .monitors import CoverageCollection


@dataclass
class ValidationConfig:
    """Tolerances and effort knobs of the validation flow."""

    quick: bool = True
    ddf_tolerance: float = 0.35
    aggregate_dc_tolerance: float = 0.25
    toggle_threshold: float = 0.99
    critical_areas: int = 3
    cone_faults_per_zone: int = 24
    wide_fault_pairs: int = 4
    global_faults: int = 2
    transient_per_zone: int = 2
    permanent_per_zone: int = 2
    campaign: CampaignConfig = field(default_factory=CampaignConfig)
    seed: int = 2007


@dataclass
class StepResult:
    name: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        return (f"step {self.name}: "
                f"{'PASS' if self.passed else 'FAIL'} — {self.detail}")


@dataclass
class ValidationReport:
    """Evidence bundle produced by the flow (attached to the SRS)."""

    steps: list[StepResult] = field(default_factory=list)
    campaign: CampaignResult | None = None
    toggle: ToggleReport | None = None
    local_campaign: CampaignResult | None = None
    wide_campaign: CampaignResult | None = None
    topup_campaign: CampaignResult | None = None
    fault_coverage: float | None = None
    coverage: CoverageCollection | None = None

    @property
    def passed(self) -> bool:
        return all(step.passed for step in self.steps)

    @property
    def failures(self) -> list[str]:
        return [str(s) for s in self.steps if not s.passed]

    def summary(self) -> str:
        lines = ["=== FMEA validation flow ==="]
        lines.extend(str(s) for s in self.steps)
        lines.append(f"overall: {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(lines)


def run_validation(subsystem, env: InjectionEnvironment | None = None,
                   config: ValidationConfig | None = None
                   ) -> ValidationReport:
    """Run steps a) - d) on a memory subsystem."""
    config = config or ValidationConfig()
    if env is None:
        env = build_environment(subsystem, quick=config.quick)
    report = ValidationReport()

    # campaigns first (a, c, d + coverage top-up), then the workload-
    # completeness measurement (b) which credits diagnostic-only nets
    # with the toggles observed across all faulty machines
    config.campaign.collect_toggles = True
    _step_a(env, config, report)
    _step_c(subsystem, env, config, report)
    _step_d(subsystem, env, config, report)
    _step_coverage(config, report, env)
    _step_b(subsystem, env, config, report)
    report.steps.sort(key=lambda s: s.name)
    return report


# ----------------------------------------------------------------------
def _step_a(env: InjectionEnvironment, config: ValidationConfig,
            report: ValidationReport) -> None:
    """Exhaustive sensible-zone injection + FMEA cross-check."""
    fl_config = FaultListConfig(
        transient_per_zone=config.transient_per_zone,
        permanent_per_zone=config.permanent_per_zone,
        seed=config.seed)
    candidates = env.candidates(fl_config)
    campaign = env.manager(config.campaign).run(candidates)
    report.campaign = campaign

    analyzer = ResultAnalyzer(campaign)
    analyzer.fill_worksheet(env.worksheet)

    # aggregate agreement: campaign DC vs worksheet claimed DC
    claimed_dc = env.worksheet.totals().dc
    measured_dc = campaign.measured_dc()
    dc_ok = measured_dc >= claimed_dc - config.aggregate_dc_tolerance

    # per-zone agreement (overclaims beyond tolerance fail)
    rows = analyzer.agreement_rows(env.worksheet, config.ddf_tolerance)
    bad = [r for r in rows if not r["agrees"]]
    zone_ok = not bad

    # effects-table consistency with the structural prediction
    predicted = predict_effects_table(env.zone_set)
    effects = analyzer.compare_effects(predicted)

    detail = (f"{len(campaign.results)} injections, "
              f"measured DC {measured_dc * 100:.1f}% vs claimed "
              f"{claimed_dc * 100:.1f}%, "
              f"{len(bad)} zone mismatches, {effects.summary()}")
    report.steps.append(StepResult("a:zone-injection",
                                   dc_ok and zone_ok
                                   and effects.consistent, detail))


def _step_b(subsystem, env: InjectionEnvironment,
            config: ValidationConfig, report: ValidationReport) -> None:
    """Workload completeness: toggle coverage of the full workload.

    The requirement is split: *functional* nets must toggle under the
    fault-free workload; *diagnostic-only* nets (checker-disagreement
    logic that is structurally silent without a fault — see
    :func:`repro.zones.effects.diagnostic_only_nets`) are credited
    when they toggled in any faulty machine of the step-a campaign.
    """
    from ..hdl.netlist import OP_CONST0, OP_CONST1
    from ..hdl.simulator import Simulator
    from ..soc.workloads import validation_workload
    from ..zones.effects import diagnostic_only_nets
    from .profiler import profile_workload

    circuit = subsystem.circuit
    full = validation_workload(subsystem, quick=False)
    sim = Simulator(circuit, machines=1, collect_toggles=True)
    subsystem.preload(sim, {})
    for inputs in full:
        sim.step(inputs)

    diag_only = diagnostic_only_nets(
        circuit, env.zone_set.observation_points)
    const_nets = {g.out for g in circuit.gates
                  if g.op in (OP_CONST0, OP_CONST1)}
    campaign_toggled: set[int] = set()
    for campaign in (report.campaign, report.local_campaign,
                     report.wide_campaign, report.topup_campaign):
        if campaign is not None:
            campaign_toggled |= campaign.toggled_nets()

    func_total = func_hit = diag_total = diag_hit = 0
    func_untoggled: list[str] = []
    for net in range(circuit.num_nets):
        if net in const_nets:
            continue
        golden = sim._seen0[net] and sim._seen1[net]
        if net in diag_only:
            diag_total += 1
            if golden or net in campaign_toggled:
                diag_hit += 1
        else:
            func_total += 1
            if golden:
                func_hit += 1
            else:
                func_untoggled.append(circuit.net_names[net])

    toggle = ToggleReport(toggled=func_hit, total=func_total,
                          untoggled=func_untoggled,
                          threshold=config.toggle_threshold)
    report.toggle = toggle
    diag_cov = diag_hit / diag_total if diag_total else 1.0
    passed = toggle.passed and diag_cov >= config.toggle_threshold
    detail = (f"functional {toggle.summary()}; diagnostic-only nets "
              f"{diag_cov * 100:.2f}% ({diag_hit}/{diag_total}, "
              f"golden + injection credit)")
    report.steps.append(StepResult("b:workload-completeness", passed,
                                   detail))

    # the full workload's golden output activity also counts toward
    # OBSE/DIAG completeness (the monitors fire on these changes)
    if report.campaign is not None:
        profile = profile_workload(
            circuit, full,
            setup=lambda s: subsystem.preload(s, {}),
            read_strobes=subsystem.read_strobes())
        report.campaign.coverage.mark_golden_activity(
            profile.output_toggles)


def _step_c(subsystem, env: InjectionEnvironment,
            config: ValidationConfig, report: ValidationReport) -> None:
    """Selective local gate-level injection in the critical areas."""
    ranking = rank_zones(env.worksheet)
    paths: list[str] = []
    zones_in_areas: list[str] = []
    for row in ranking:
        try:
            zone = env.zone_set.by_name(row.zone)
        except KeyError:
            continue
        if zone.kind is not ZoneKind.REGISTER or not zone.path:
            continue
        if zone.path not in paths:
            paths.append(zone.path)
        zones_in_areas.append(zone.name)
        if len(paths) >= config.critical_areas:
            break
    if not paths:
        report.steps.append(StepResult(
            "c:local-faults", True, "no register areas to inspect"))
        return

    gate_faults = generate_cone_faults(
        env.zone_set, env.circuit, zones_in_areas,
        per_zone=config.cone_faults_per_zone, seed=config.seed)
    local = env.manager(config.campaign).run(gate_faults)
    report.local_campaign = local

    # consistency: gate-level DC in the critical areas vs zone-level DC
    # (meaningful only with enough dangerous samples on the zone side)
    zone_dc, zone_samples = _zone_level_dc(report.campaign,
                                           zones_in_areas)
    local_dc = local.measured_dc()
    consistent = (zone_dc is None or zone_samples < 8
                  or abs(local_dc - zone_dc)
                  <= config.aggregate_dc_tolerance + 0.15)

    # fault simulator: permanent fault coverage of the areas
    fcov = simulate_faults(env.circuit, env.stimuli,
                           candidates=gate_faults, setup=env.setup)
    report.fault_coverage = fcov.coverage

    detail = (f"areas {paths}: {len(gate_faults.faults)} stuck-at "
              f"faults, local DC {local_dc * 100:.1f}% vs zone DC "
              f"{'n/a' if zone_dc is None else f'{zone_dc * 100:.1f}%'}, "
              f"{fcov.summary()}")
    report.steps.append(StepResult("c:local-faults", consistent, detail))


def _zone_level_dc(campaign: CampaignResult | None,
                   zones: list[str]) -> tuple[float | None, int]:
    if campaign is None:
        return None, 0
    dd = du = 0
    for res in campaign.results:
        if res.fault.zone in zones:
            outcome = campaign.outcome_of(res)
            if outcome == "dangerous_detected":
                dd += 1
            elif outcome == "dangerous_undetected":
                du += 1
    if dd + du == 0:
        return None, 0
    return dd / (dd + du), dd + du


def _step_d(subsystem, env: InjectionEnvironment,
            config: ValidationConfig, report: ValidationReport) -> None:
    """Wide/global faults: no unexplained new effects."""
    zone_set = env.zone_set
    circuit = env.circuit
    faults: list = []

    # wide: bridges between nets of structurally correlated zone pairs
    pairs = zone_set.correlation.correlated_pairs() \
        if zone_set.correlation else []
    for (za, zb), _shared in pairs[:config.wide_fault_pairs]:
        try:
            a = zone_set.by_name(za)
            b = zone_set.by_name(zb)
        except KeyError:
            continue
        if not a.nets or not b.nets:
            continue
        faults.append(BridgeFault(
            target=circuit.net_names[a.nets[0]], zone=za,
            victim=circuit.net_names[b.nets[0]]))

    # global: stuck on the highest-fanout critical nets
    critical = zone_set.of_kind(ZoneKind.CRITICAL_NET)
    critical.sort(key=lambda z: -z.attrs.get("fanout", 0))
    for zone in critical[:config.global_faults]:
        faults.append(GlobalStuckFault(
            target=zone.name, zone=zone.name,
            nets=tuple(circuit.net_names[n] for n in zone.nets),
            value=0))

    if not faults:
        report.steps.append(StepResult(
            "d:wide-global", True, "no wide/global fault sites found"))
        return

    campaign = env.manager(config.campaign).run(
        CandidateList(faults=faults))
    report.wide_campaign = campaign

    # consistency: every measured effect must be predicted reachable
    # from at least one zone the fault touches
    predicted = predict_effects_table(zone_set)
    from ..zones.classify import FaultClassifier
    classifier = FaultClassifier(zone_set)
    unexplained: list[tuple[str, str]] = []
    for res in campaign.results:
        fault = res.fault
        if isinstance(fault, BridgeFault):
            extents = {fault.zone,
                       *classifier.classify_net(fault.victim).zones,
                       *classifier.classify_net(fault.target).zones}
        else:
            extents = set()
            for net in getattr(fault, "nets", ()):  # global faults
                extents.update(classifier.classify_net(net).zones)
        reachable: set[str] = set()
        for zname in extents:
            pred = predicted.get(zname)
            if pred is not None:
                reachable.update(e.observation for e in pred.effects)
        for point in res.effects:
            if reachable and point not in reachable:
                unexplained.append((fault.name, point))

    passed = not unexplained
    detail = (f"{len(faults)} wide/global faults, "
              f"{len(unexplained)} unexplained effects")
    if unexplained:
        detail += f" (e.g. {unexplained[:3]})"
    report.steps.append(StepResult("d:wide-global", passed, detail))


def _diag_topup(env: InjectionEnvironment, config: ValidationConfig,
                merged: CoverageCollection,
                report: ValidationReport) -> None:
    """Coverage-driven top-up: uncovered DIAG items get targeted local
    faults injected into the alarm's own input cone."""
    import random

    from ..zones.cones import ConeAnalyzer
    from .faults import StuckNetFault

    uncovered = [name for name, hit in merged.diag.items() if not hit]
    if not uncovered:
        return
    analyzer = ConeAnalyzer(env.circuit)
    rng = random.Random(config.seed)
    faults = []
    point_by_name = {p.name: p for p in env.zone_set.observation_points}
    skip_ops = ("buf", "const0", "const1")
    for name in uncovered:
        point = point_by_name.get(name)
        if point is None:
            continue
        cone = analyzer.cone_of_nets(point.nets)
        gates = [gi for gi in sorted(cone.gates)
                 if env.circuit.gates[gi].op_name not in skip_ops]
        if len(gates) > config.cone_faults_per_zone:
            gates = rng.sample(gates, config.cone_faults_per_zone)
        for gi in gates:
            for value in (0, 1):
                faults.append(StuckNetFault(
                    target=env.circuit.net_names[
                        env.circuit.gates[gi].out],
                    zone=None, value=value))
    if not faults:
        return
    topup = env.manager(config.campaign).run(
        CandidateList(faults=faults))
    report.topup_campaign = topup
    merged.merge(topup.coverage)


def _step_coverage(config: ValidationConfig,
                   report: ValidationReport,
                   env: InjectionEnvironment | None = None) -> None:
    """Campaign completeness: all SENS/OBSE/DIAG items covered (§5).

    The ledger merges all three campaigns (a, c, d) plus the golden
    activity of the full workload measured in step b; any DIAG item
    still uncovered gets a targeted top-up campaign into its cone.
    """
    merged = CoverageCollection()
    for campaign in (report.campaign, report.local_campaign,
                     report.wide_campaign):
        if campaign is not None:
            merged.merge(campaign.coverage)
    if env is not None:
        _diag_topup(env, config, merged, report)
    report.coverage = merged
    detail = (f"SENS {merged.sens_coverage() * 100:.0f}% "
              f"OBSE {merged.obse_coverage() * 100:.0f}% "
              f"DIAG {merged.diag_coverage() * 100:.0f}%")
    holes = merged.uncovered()
    missing = [f"{k}:{v[:3]}" for k, v in holes.items() if v]
    if missing:
        detail += " — uncovered " + "; ".join(missing)
    report.steps.append(StepResult("e:coverage-completeness",
                                   merged.complete, detail))
