"""Stuck-at fault simulator (paper §5, ref [11]).

"for critical areas ... the fault simulator can be used to precisely
measure the fault coverage vs permanent faults respect the workload and
the implemented diagnostic" — and step (b) alternatively accepts "a
standard fault coverage" as the workload-completeness measure.

A fault is *detected* when any functional output or diagnostic alarm of
the faulty machine deviates from the golden machine at any cycle of the
workload.  The engine packs up to N faults per simulator pass using the
bit-parallel machines.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..hdl.netlist import Circuit
from ..hdl.simulator import Simulator
from .faultlist import CandidateList, generate_gate_faults


@dataclass
class FaultSimReport:
    """Outcome of a stuck-at fault-simulation run."""

    total: int
    detected: int
    undetected_names: list[str] = field(default_factory=list)
    cycles: int = 0
    passes: int = 0
    wall_seconds: float = 0.0

    @property
    def coverage(self) -> float:
        return self.detected / self.total if self.total else 1.0

    def summary(self) -> str:
        return (f"fault coverage {self.coverage * 100:.2f}% "
                f"({self.detected}/{self.total} stuck-at faults, "
                f"{self.passes} passes, {self.cycles} cycles/pass)")


def simulate_faults(circuit: Circuit, stimuli,
                    candidates: CandidateList | None = None,
                    observe: list[str] | None = None,
                    setup=None, machines_per_pass: int = 48,
                    max_cycles: int | None = None) -> FaultSimReport:
    """Measure detected fraction of a stuck-at fault list.

    ``observe`` lists output port names to compare (default: all
    primary outputs — functional and alarms alike, matching the "with
    the implemented diagnostic" reading).
    """
    if candidates is None:
        candidates = generate_gate_faults(circuit)
    if observe is None:
        observe = list(circuit.outputs)
    observe_nets: list[int] = []
    for name in observe:
        observe_nets.extend(circuit.outputs[name])

    stimuli = list(stimuli)
    if max_cycles is not None:
        stimuli = stimuli[:max_cycles]

    start = time.time()
    report = FaultSimReport(total=len(candidates.faults), detected=0,
                            cycles=len(stimuli))
    faults = list(candidates.faults)
    for lo in range(0, len(faults), machines_per_pass):
        batch = faults[lo:lo + machines_per_pass]
        sim = Simulator(circuit, machines=len(batch) + 1)
        if setup is not None:
            setup(sim)
        for k, fault in enumerate(batch, start=1):
            fault.arm(sim, machine=k, t0=0)

        detected_mask = 0
        all_mask = (1 << (len(batch) + 1)) - 2
        for inputs in stimuli:
            sim.step_eval(inputs)
            detected_mask |= sim.mismatch_mask(observe_nets)
            sim.step_commit()
            if detected_mask == all_mask:
                break

        for k, fault in enumerate(batch, start=1):
            if detected_mask >> k & 1:
                report.detected += 1
            else:
                report.undetected_names.append(fault.name)
        report.passes += 1
    report.wall_seconds = time.time() - start
    return report
