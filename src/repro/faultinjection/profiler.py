"""Operational Profiler (paper §5, Figure 4).

"An Operational Profile (OP) is a collection of information about all
relevant fault-free system activities: traced information items are
read/write activity associated with processor registers, address bus,
data bus, and memory locations in the system under test ...  The
purpose of the OP is to better understand the situation in which the
system or the application will be used, and then analyze this
information to ensure that only faults which will produce an error are
selected during the fault list generation process."

The profiler replays the workload on a fault-free simulator and records
per-cycle flip-flop toggles and memory-port traffic; fault-list
generation then places transient injections in cycles where the target
zone actually holds live data.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..hdl.netlist import Circuit
from ..hdl.simulator import Simulator
from ..zones.extractor import ZoneSet
from ..zones.model import SensibleZone, ZoneKind


@dataclass
class MemAccess:
    cycle: int
    addr: int
    write: bool


@dataclass
class OperationalProfile:
    """The recorded fault-free activity of one workload."""

    length: int
    flop_toggles: dict[str, list[int]] = field(default_factory=dict)
    mem_accesses: dict[str, list[MemAccess]] = field(default_factory=dict)
    output_toggles: dict[str, list[int]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def zone_activity(self, zone: SensibleZone) -> list[int]:
        """Cycles in which the zone's state was (re)written or read."""
        if zone.kind is ZoneKind.REGISTER:
            cycles: set[int] = set()
            for flop in zone.flops:
                cycles.update(self.flop_toggles.get(flop, ()))
            return sorted(cycles)
        if zone.kind is ZoneKind.MEMORY and zone.memory is not None:
            lo, hi = zone.mem_words or (0, 1 << 30)
            return sorted({a.cycle for a in
                           self.mem_accesses.get(zone.memory, ())
                           if lo <= a.addr <= hi})
        return []

    def zone_triggered(self, zone: SensibleZone) -> bool:
        """Can the workload exercise this zone at all?"""
        if zone.kind in (ZoneKind.REGISTER, ZoneKind.MEMORY):
            return bool(self.zone_activity(zone))
        return True  # nets/ports are structurally always exercised

    def reads_in_region(self, mem: str, lo: int,
                        hi: int) -> list[MemAccess]:
        return [a for a in self.mem_accesses.get(mem, ())
                if not a.write and lo <= a.addr <= hi]

    # ------------------------------------------------------------------
    def injection_cycles(self, zone: SensibleZone, rng: random.Random,
                         count: int) -> list[int]:
        """OP-guided injection instants for transient faults.

        Register zones: just after a live write (the corrupted value is
        resident).  Memory zones: the cycle of a read request (the flip
        lands before the array output latches).  Fallback: uniform over
        the run.
        """
        activity = self.zone_activity(zone)
        if zone.kind is ZoneKind.REGISTER and activity:
            pool = [min(c + 1, self.length - 1) for c in activity]
        elif zone.kind is ZoneKind.MEMORY and zone.memory is not None:
            reads = self.reads_in_region(zone.memory,
                                         *(zone.mem_words or (0, 1 << 30)))
            pool = [a.cycle for a in reads]
        else:
            pool = []
        if not pool:
            pool = list(range(2, max(3, self.length - 2)))
        return [rng.choice(pool) for _ in range(count)]

    def completeness(self, zone_set: ZoneSet) -> tuple[int, int]:
        """(triggerable zones, total injectable zones) for SENS items."""
        injectable = [z for z in zone_set.zones
                      if z.kind in (ZoneKind.REGISTER, ZoneKind.MEMORY)]
        triggered = sum(1 for z in injectable if self.zone_triggered(z))
        return triggered, len(injectable)


def profile_workload(circuit: Circuit, stimuli, setup=None,
                     read_strobes: dict[str, str] | None = None
                     ) -> OperationalProfile:
    """Replay ``stimuli`` fault-free and record the OP.

    ``read_strobes`` maps memory names to a 1-bit net asserting "the
    array is actively read this cycle" (e.g. the subsystem's
    ``memctrl/port/read_any``); without it every non-write cycle is
    conservatively treated as a potential read.
    """
    sim = Simulator(circuit, machines=1)
    if setup is not None:
        setup(sim)

    strobe_nets = {}
    for mem_name, net_name in (read_strobes or {}).items():
        strobe_nets[mem_name] = circuit.find_net(net_name)

    profile = OperationalProfile(length=len(stimuli))
    prev_flops = {f.name: None for f in circuit.flops}
    prev_outs = {name: None for name in circuit.outputs}

    for cycle, inputs in enumerate(stimuli):
        sim.step_eval(inputs)
        # memory port traffic (during evaluation, pre-edge)
        for mem in circuit.memories:
            addr = sim.value_of(mem.addr)
            write = bool(sim.peek_bit(mem.we))
            strobe = strobe_nets.get(mem.name)
            reading = bool(sim.peek_bit(strobe)) if strobe is not None \
                else not write
            if write or reading:
                profile.mem_accesses.setdefault(mem.name, []).append(
                    MemAccess(cycle=cycle, addr=addr, write=write))
        for name, nets in circuit.outputs.items():
            value = sim.value_of(nets)
            if prev_outs[name] is not None and value != prev_outs[name]:
                profile.output_toggles.setdefault(name, []).append(cycle)
            prev_outs[name] = value
        sim.step_commit()
        # flop toggles become visible in the committed state
        for i, flop in enumerate(circuit.flops):
            bit = sim._flop_state[i] & 1
            if prev_flops[flop.name] is not None and \
                    bit != prev_flops[flop.name]:
                profile.flop_toggles.setdefault(flop.name, []).append(
                    cycle)
            prev_flops[flop.name] = bit
    return profile
