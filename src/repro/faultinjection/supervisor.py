"""Fault-tolerant campaign supervision (engine robustness).

Industrial soft-error campaigns treat the *engine* as part of the
safety case: a single hung simulation or crashed worker must not abort
an exhaustive per-zone campaign and discard hours of in-flight work,
and evidence that could not be collected must be reported as a
structured anomaly instead of silently dropped.

:class:`CampaignSupervisor` is the resilient execution layer around
the sharded campaign of :mod:`~repro.faultinjection.parallel`:

* every shard attempt runs in its **own worker process** with a pipe
  back to the supervisor, so a crash (SIGKILL, segfault-equivalent),
  a hang (wall-clock ``shard_timeout``) or a raised exception is
  attributed to exactly one shard — the precise-attribution
  equivalent of recovering from a ``BrokenProcessPool``: the dead
  worker is replaced and only its shard is rescheduled;
* failed shards are **retried with exponential backoff**; after
  ``max_retries`` failures the shard is **bisected** so the poison
  fault(s) are isolated in O(log n) attempts while the innocent
  faults of the shard complete normally;
* a singleton shard that keeps failing is **quarantined**: the
  campaign completes without it and records a :class:`FaultAnomaly`
  (kind, worker pid, traceback, timing, attempt count) instead of
  failing — unless quarantine is disabled, in which case the
  supervisor raises :class:`CampaignAborted`;
* a per-fault **cycle budget**
  (:class:`~repro.hdl.simulator.CycleBudgetExceeded`) catches cycle
  runaways deterministically inside the worker, complementing the
  wall-clock timeout;
* when worker processes cannot be spawned at all the supervisor
  **degrades to in-process serial execution** as a last resort
  (exceptions are still contained and quarantined; crash/hang
  containment needs process isolation and is documented as lost);
* with a :class:`~repro.store.CampaignCache`, cached outcomes are
  served without simulation, fresh shard results are persisted as
  they land (SIGKILL-safe resume), anomalies and the shard attempt
  history are recorded in the store's SQLite index, and **known
  poison faults from earlier runs are quarantined up front** so a
  resumed campaign never re-executes them.

Surviving per-fault results are bit-identical to a serial run over
the non-quarantined faults: per-fault records are independent of pass
grouping (see :mod:`~repro.faultinjection.parallel`), so retries and
bisection cannot shift the measured DC/SFF of the survivors.
"""

from __future__ import annotations

import os
import time
import traceback
from collections import deque
from dataclasses import dataclass, field, replace
from multiprocessing import get_context
from multiprocessing.connection import wait as _connection_wait

from ..backoff import decorrelated_delay
from .faultlist import CandidateList
from .faults import Fault
from .manager import CampaignResult, FaultResult
from .parallel import (
    CampaignSpec,
    CampaignStats,
    SafeProgress,
    ShardStats,
    _default_start_method,
    compute_golden_trace,
    shard_candidates,
)

ANOMALY_CRASH = "crash"
ANOMALY_HANG = "hang"
ANOMALY_EXCEPTION = "exception"

#: exception types the worker maps to a *hang* anomaly: deterministic
#: cycle runaways caught by the in-simulator watchdog
_HANG_EXCEPTIONS = ("CycleBudgetExceeded",)


class CampaignAborted(RuntimeError):
    """A poison fault could not be executed and quarantine is off."""


# ----------------------------------------------------------------------
# configuration and anomaly records
# ----------------------------------------------------------------------
@dataclass
class SupervisorConfig:
    """Resilience policy of one supervised campaign."""

    #: wall-clock seconds one shard attempt may run before its worker
    #: is killed and the shard counts as hung (``None`` disables)
    shard_timeout: float | None = None
    #: simulator cycles one pass may evaluate before the in-worker
    #: watchdog raises (``None`` disables); copied into the campaign
    #: config so every worker enforces it
    cycle_budget: int | None = None
    #: failed-shard retries before the shard is bisected
    max_retries: int = 2
    #: retry backoff: attempt ``k`` waits a decorrelated-jitter delay
    #: in ``[base, base * factor**k]`` (capped) so parallel
    #: supervisors recovering from one fault don't retry in lockstep
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    backoff_cap: float = 30.0
    #: seeds the jitter per shard — set for reproducible retry
    #: schedules (chaos tests); ``None`` keeps it randomized
    backoff_seed: int | None = None
    #: isolate poison faults and complete the campaign without them;
    #: when off, an inexecutable fault raises :class:`CampaignAborted`
    quarantine: bool = True
    #: with a cache: pre-quarantine faults whose fingerprint already
    #: has a recorded anomaly instead of re-executing them
    skip_known_poison: bool = True
    #: fall back to in-process serial execution when worker processes
    #: cannot be spawned (last resort; crash/hang containment is lost)
    degrade_in_process: bool = True
    #: supervisor poll tick: deadline granularity and the latency of
    #: noticing a finished shard
    poll_interval: float = 0.05
    #: optional liveness callback (e.g. a job-queue lease renewal)
    #: invoked from the supervision loop at most every
    #: ``heartbeat_interval`` seconds; an exception it raises aborts
    #: the campaign (active workers are killed) — exactly what a
    #: worker whose lease was lost must do
    heartbeat: object | None = None
    heartbeat_interval: float = 1.0


@dataclass
class FaultAnomaly:
    """One fault the campaign could not execute, as structured data."""

    fault_name: str
    zone: str | None
    kind: str                    # crash | hang | exception
    worker: int | None = None    # OS pid of the failing worker
    traceback: str | None = None
    wall_seconds: float = 0.0
    attempts: int = 0
    #: served from the store's anomaly table instead of re-executed
    known: bool = False


@dataclass
class CampaignHealth:
    """Supervision counters, rendered as a section of the stats."""

    retries: int = 0
    crashes: int = 0
    hangs: int = 0
    exceptions: int = 0
    bisections: int = 0
    quarantined: int = 0
    known_poison_skipped: int = 0
    workers_replaced: int = 0
    degraded: bool = False

    @property
    def clean(self) -> bool:
        return (self.crashes == 0 and self.hangs == 0
                and self.exceptions == 0 and self.quarantined == 0
                and self.known_poison_skipped == 0
                and not self.degraded)

    def summary(self) -> str:
        lines = ["--- campaign health ---"]
        if self.clean:
            lines.append("clean: no worker failures, nothing "
                         "quarantined")
        else:
            lines.append(
                f"failures: {self.crashes} crash(es), "
                f"{self.hangs} hang(s), "
                f"{self.exceptions} exception(s); "
                f"{self.retries} retr(ies), "
                f"{self.bisections} bisection(s), "
                f"{self.workers_replaced} worker(s) replaced")
            lines.append(
                f"quarantined: {self.quarantined} fault(s) "
                f"({self.known_poison_skipped} known-poison served "
                f"from the store)")
            if self.degraded:
                lines.append("DEGRADED: worker processes unavailable "
                             "— ran in-process without crash/hang "
                             "containment")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _supervised_worker(conn, spec: CampaignSpec,
                       faults: list[Fault]) -> None:
    """One shard attempt: build a manager, run, report through a pipe.

    Always sends exactly one message — ``("ok", pid, result,
    seconds)`` or ``("error", pid, (exc_type, traceback), seconds)``;
    a worker that dies before sending is detected by the supervisor
    as EOF on the pipe (a crash).
    """
    start = time.time()
    try:
        result = spec.manager().run_batches(list(faults),
                                            track_golden=False)
        payload = ("ok", os.getpid(), result, time.time() - start)
    except BaseException as exc:  # noqa: BLE001 — report, then die
        payload = ("error", os.getpid(),
                   (type(exc).__name__, traceback.format_exc()),
                   time.time() - start)
    try:
        conn.send(payload)
    finally:
        conn.close()


# ----------------------------------------------------------------------
# supervisor internals
# ----------------------------------------------------------------------
@dataclass
class _ShardJob:
    """One unit of scheduled work: candidate indices + retry state."""

    indices: tuple[int, ...]
    attempts: int = 0
    not_before: float = 0.0

    @property
    def label(self) -> str:
        if len(self.indices) == 1:
            return f"fault #{self.indices[0]}"
        return f"faults #{self.indices[0]}..#{self.indices[-1]}"


@dataclass
class _Active:
    """A shard attempt currently running in a worker process."""

    job: _ShardJob
    process: object
    conn: object
    started: float = field(default_factory=time.time)


class CampaignSupervisor:
    """Runs a campaign spec under failure supervision.

    Drop-in sibling of
    :class:`~repro.faultinjection.parallel.ParallelCampaignRunner`:
    same spec/workers/shards/progress/cache surface, same
    bit-identical merged :class:`CampaignResult` on a clean run —
    plus ``anomalies`` and a :class:`CampaignHealth` section in
    ``last_stats.summary()`` when something went wrong.
    """

    def __init__(self, spec: CampaignSpec, workers: int | None = None,
                 shards: int | None = None, progress=None,
                 config: SupervisorConfig | None = None,
                 cache=None, start_method: str | None = None):
        if workers is not None and workers < 1:
            raise ValueError("need at least one worker")
        self.config = config or SupervisorConfig()
        if self.config.cycle_budget is not None:
            spec = replace(spec, config=replace(
                spec.config, cycle_budget=self.config.cycle_budget))
        self.spec = spec
        self.workers = workers if workers is not None \
            else (os.cpu_count() or 1)
        self.shards = shards
        self.progress = SafeProgress.wrap(progress)
        self.cache = cache
        self.start_method = start_method
        self.last_stats: CampaignStats | None = None
        #: anomalies of the most recent run, in candidate order
        self.anomalies: list[FaultAnomaly] = []

    @classmethod
    def from_runner(cls, runner,
                    config: SupervisorConfig | None = None
                    ) -> "CampaignSupervisor":
        """Wrap an existing ``ParallelCampaignRunner`` setup."""
        return cls(runner.spec, workers=runner.workers,
                   shards=runner.shards, progress=runner.progress,
                   config=config, cache=runner.cache,
                   start_method=runner.start_method)

    # ------------------------------------------------------------------
    def run(self, candidates: CandidateList) -> CampaignResult:
        start = time.time()
        faults = list(candidates.faults)
        manager = self.spec.manager()
        health = CampaignHealth()
        self.anomalies = []
        self._faults = faults
        self._health = health
        self._merged: dict[int, FaultResult] = {}
        self._quarantined: dict[int, FaultAnomaly] = {}
        self._attempt_log: list[tuple] = []
        self._shard_seq = 0
        self._total = len(faults)
        self._last_beat = 0.0
        self._beat()

        result = manager.new_result()
        self._result = result
        manager._init_coverage(result.coverage, candidates)

        stats = CampaignStats(workers=min(self.workers,
                                          len(faults)) or 1,
                              total_faults=len(faults))
        stats.health = health
        self._stats = stats

        ctx, run_id, miss_indices = self._plan(faults, manager)

        if self.progress is not None and self._done_count():
            self.progress(self._done_count(), self._total)

        # on an uncached run the fault-free golden trace is computed
        # in the supervisor's own process *while* the workers simulate
        # — the event loop would otherwise idle in connection waits
        self._golden_early = None
        self._golden_task = (lambda: compute_golden_trace(manager)) \
            if miss_indices and ctx is None else None

        if miss_indices:
            self._execute(miss_indices)

        golden_seconds = 0.0
        golden_digest = None
        if faults:
            if ctx is not None:
                golden, golden_digest = self.cache._golden(ctx, manager)
            elif self._golden_early is not None:
                golden = self._golden_early
            else:
                golden = compute_golden_trace(manager)
            golden_seconds = golden.wall_seconds
            result.results = [self._merged[i]
                              for i in range(len(faults))
                              if i not in self._quarantined]
            for name in golden.obse_active:
                result.coverage.obse[name] = True
            for name in golden.diag_active:
                result.coverage.diag[name] = True
        manager.fill_coverage(result)
        result.wall_seconds = time.time() - start

        health.quarantined = len(self._quarantined)
        self.anomalies = [self._quarantined[i]
                          for i in sorted(self._quarantined)]
        stats.golden_seconds = golden_seconds
        stats.wall_seconds = result.wall_seconds
        stats.shards.sort(key=lambda s: s.shard)
        self.last_stats = stats

        if ctx is not None:
            self._finalize_store(ctx, run_id, golden_digest)
        return result

    # ------------------------------------------------------------------
    # planning: cache hits and known-poison quarantine
    # ------------------------------------------------------------------
    def _plan(self, faults, manager):
        """Partition candidates into cached / known-poison / to-run."""
        self._fingerprints = None
        self._plan_hits = 0
        if not faults:
            return None, None, []
        ctx = self._context()
        if ctx is None:
            if self.cache is not None:
                self.cache.stats.uncacheable += len(faults)
            return None, None, list(range(len(faults)))
        from ..store.cache import _rebuild
        plan = self.cache.plan(ctx, faults)
        self._fingerprints = plan.fingerprints
        self._plan_hits = len(plan.cached)
        for i, row in plan.cached.items():
            self._merged[i] = _rebuild(faults[i], row)
        miss_indices = list(plan.misses)
        run_id = self.cache._begin(ctx, manager, faults,
                                   workers=self.workers)
        if self.config.skip_known_poison and miss_indices:
            known = self.cache.db.get_anomalies(
                [plan.fingerprints[i] for i in miss_indices])
            still = []
            for i in miss_indices:
                row = known.get(plan.fingerprints[i])
                if row is None:
                    still.append(i)
                    continue
                self._quarantined[i] = FaultAnomaly(
                    fault_name=row.fault_name, zone=row.zone,
                    kind=row.kind, worker=row.worker,
                    traceback=row.traceback,
                    wall_seconds=row.wall_seconds or 0.0,
                    attempts=row.attempts, known=True)
                self._health.known_poison_skipped += 1
                self.cache.stats.poisoned += 1
            miss_indices = still
        return ctx, run_id, miss_indices

    def _context(self):
        if self.cache is None:
            return None
        if self.spec.config.collect_toggles:
            return None
        from ..store.fingerprint import FingerprintContext
        try:
            return FingerprintContext.from_spec(self.spec)
        except ValueError:
            return None

    def _done_count(self) -> int:
        return len(self._merged) + len(self._quarantined)

    def _beat(self) -> None:
        """Invoke the configured liveness callback, throttled."""
        if self.config.heartbeat is None:
            return
        now = time.time()
        if now - self._last_beat >= self.config.heartbeat_interval:
            self._last_beat = now
            self.config.heartbeat()

    # ------------------------------------------------------------------
    # the supervised execution loop
    # ------------------------------------------------------------------
    def _execute(self, miss_indices: list[int]) -> None:
        cfg = self.config
        index_shards = shard_candidates(miss_indices,
                                        self._shard_count(miss_indices))
        pending: deque[_ShardJob] = deque(
            _ShardJob(indices=tuple(shard))
            for shard in index_shards if shard)
        active: list[_Active] = []
        self._degraded = False

        try:
            while pending or active:
                self._beat()
                now = time.time()
                # launch ready work onto free workers
                while (not self._degraded and pending
                       and len(active) < self.workers):
                    job = self._next_ready(pending, now)
                    if job is None:
                        break
                    handle = self._launch(job)
                    if handle is None:       # spawn failed → degrade
                        pending.appendleft(job)
                        break
                    active.append(handle)

                if self._golden_task is not None and active:
                    # overlap the golden trace with the running workers
                    task, self._golden_task = self._golden_task, None
                    self._golden_early = task()

                if self._degraded and not active:
                    # one shard per tick so the heartbeat keeps firing
                    # between in-process shard runs
                    if pending:
                        self._run_in_process(pending,
                                             pending.popleft())
                    continue

                if not active:
                    # everything pending is backing off
                    wake = min(job.not_before for job in pending)
                    time.sleep(max(0.0, min(wake - time.time(),
                                            cfg.poll_interval)))
                    continue

                ready = _connection_wait(
                    [handle.conn for handle in active],
                    timeout=cfg.poll_interval)
                now = time.time()
                by_conn = {handle.conn: handle for handle in active}
                for conn in ready:
                    handle = by_conn[conn]
                    try:
                        message = conn.recv()
                    except (EOFError, OSError):
                        message = None
                    self._reap(handle)
                    active.remove(handle)
                    if message is None:
                        exitcode = handle.process.exitcode
                        self._health.crashes += 1
                        self._health.workers_replaced += 1
                        self._failure(
                            pending, handle.job, ANOMALY_CRASH,
                            f"worker pid {handle.process.pid} died "
                            f"with exit code {exitcode} before "
                            f"reporting", handle.process.pid,
                            now - handle.started)
                    elif message[0] == "ok":
                        _, pid, part, seconds = message
                        self._complete(handle.job, pid, part, seconds)
                    else:
                        _, pid, (exc_type, text), seconds = message
                        if exc_type in _HANG_EXCEPTIONS:
                            kind = ANOMALY_HANG
                            self._health.hangs += 1
                        else:
                            kind = ANOMALY_EXCEPTION
                            self._health.exceptions += 1
                        self._failure(pending, handle.job, kind,
                                      text, pid, seconds)

                # wall-clock deadlines
                if cfg.shard_timeout is not None:
                    now = time.time()
                    for handle in list(active):
                        if now - handle.started <= cfg.shard_timeout:
                            continue
                        pid = handle.process.pid
                        self._kill(handle)
                        active.remove(handle)
                        self._health.hangs += 1
                        self._health.workers_replaced += 1
                        self._failure(
                            pending, handle.job, ANOMALY_HANG,
                            f"shard exceeded the {cfg.shard_timeout}s "
                            f"wall-clock timeout and worker pid "
                            f"{pid} was killed", pid,
                            now - handle.started)
        except BaseException:
            for handle in active:
                self._kill(handle)
            raise

    def _shard_count(self, miss_indices: list[int]) -> int:
        """Default shard count for this run.

        With a store attached, shards are capped at the simulator's
        pass size times the store's flush granularity so completed
        work persists incrementally (a SIGKILLed campaign resumes
        from the last flushed shard, not from zero) — and since a
        pass simulates ``machines_per_pass`` faults at once anyway,
        slicing at pass boundaries leaves the total pass count (and
        cost) identical to a serial run.  Without a store nothing is
        flushed, so one shard per worker minimizes overhead.
        """
        if self.shards is not None:
            return self.shards
        if self.cache is None or self._fingerprints is None:
            return self.workers
        chunk = max(1, self.spec.config.resolved_machines_per_pass()
                    * self.cache.flush_passes)
        return max(self.workers, -(-len(miss_indices) // chunk))

    @staticmethod
    def _next_ready(pending: deque, now: float) -> _ShardJob | None:
        """Pop the first job whose backoff delay has elapsed."""
        for _ in range(len(pending)):
            job = pending.popleft()
            if job.not_before <= now:
                return job
            pending.append(job)
        return None

    # ------------------------------------------------------------------
    # process management
    # ------------------------------------------------------------------
    def _launch(self, job: _ShardJob) -> _Active | None:
        """Spawn one worker for a shard attempt; ``None`` degrades."""
        try:
            return self._spawn(job)
        except OSError:
            if not self.config.degrade_in_process:
                raise
            self._degraded = True
            self._health.degraded = True
            return None

    def _spawn(self, job: _ShardJob) -> _Active:
        mp = get_context(self.start_method or _default_start_method())
        recv_conn, send_conn = mp.Pipe(duplex=False)
        process = mp.Process(
            target=_supervised_worker,
            args=(send_conn, self.spec,
                  [self._faults[i] for i in job.indices]),
            daemon=True)
        process.start()
        send_conn.close()   # keep only the child's write end open
        return _Active(job=job, process=process, conn=recv_conn)

    def _reap(self, handle: _Active) -> None:
        handle.conn.close()
        handle.process.join(timeout=5.0)
        if handle.process.is_alive():
            handle.process.kill()
            handle.process.join()

    def _kill(self, handle: _Active) -> None:
        try:
            handle.process.kill()
            handle.process.join()
        finally:
            handle.conn.close()

    def _run_in_process(self, pending: deque, job: _ShardJob) -> None:
        """Degraded mode: run the shard in this process.

        Exceptions (including cycle-budget hangs) are still contained
        and feed the same retry/bisect/quarantine path; crashes and
        wall-clock hangs cannot be contained without process
        isolation.
        """
        start = time.time()
        try:
            part = self.spec.manager().run_batches(
                [self._faults[i] for i in job.indices],
                track_golden=False)
        except Exception as exc:
            if type(exc).__name__ in _HANG_EXCEPTIONS:
                kind = ANOMALY_HANG
                self._health.hangs += 1
            else:
                kind = ANOMALY_EXCEPTION
                self._health.exceptions += 1
            self._failure(pending, job, kind, traceback.format_exc(),
                          os.getpid(), time.time() - start)
            return
        self._complete(job, os.getpid(), part, time.time() - start)

    # ------------------------------------------------------------------
    # outcome handling
    # ------------------------------------------------------------------
    def _complete(self, job: _ShardJob, pid: int,
                  part: CampaignResult, seconds: float) -> None:
        for i, res in zip(job.indices, part.results):
            self._merged[i] = res
        self._result.passes += part.passes
        self._result.cycles_simulated += part.cycles_simulated
        self._stats.shards.append(ShardStats(
            shard=self._shard_seq, worker=pid,
            faults=len(part.results), passes=part.passes,
            cycles=part.cycles_simulated, wall_seconds=seconds))
        self._shard_seq += 1
        self._log_attempt(job, "ok", pid, seconds, None)
        if self.cache is not None and self._fingerprints is not None:
            self.cache._persist(
                [(self._fingerprints[i], res)
                 for i, res in zip(job.indices, part.results)])
            self.cache.stats.simulated += len(part.results)
        if self.progress is not None:
            self.progress(self._done_count(), self._total)

    def _failure(self, pending: deque, job: _ShardJob, kind: str,
                 detail: str, pid: int | None,
                 seconds: float) -> None:
        job.attempts += 1
        self._log_attempt(job, kind, pid, seconds, detail)
        cfg = self.config
        if job.attempts <= cfg.max_retries:
            self._health.retries += 1
            job.not_before = time.time() + decorrelated_delay(
                job.attempts, cfg.backoff_base, cfg.backoff_factor,
                cap=cfg.backoff_cap, seed=cfg.backoff_seed,
                token=job.indices[0] if job.indices else 0)
            pending.append(job)
            return
        if not cfg.quarantine:
            names = ", ".join(self._faults[i].name
                              for i in job.indices[:4])
            raise CampaignAborted(
                f"shard {job.label} ({names}{'…' if len(job.indices) > 4 else ''}) "
                f"failed with {kind} after {job.attempts} attempt(s) "
                f"and quarantine is disabled:\n{detail}")
        if len(job.indices) > 1:
            # bisect: isolate the poison fault(s) in O(log n) attempts
            self._health.bisections += 1
            mid = len(job.indices) // 2
            pending.append(_ShardJob(indices=job.indices[:mid]))
            pending.append(_ShardJob(indices=job.indices[mid:]))
            return
        index = job.indices[0]
        fault = self._faults[index]
        self._quarantined[index] = FaultAnomaly(
            fault_name=fault.name, zone=fault.zone, kind=kind,
            worker=pid, traceback=detail, wall_seconds=seconds,
            attempts=job.attempts)
        if self.progress is not None:
            self.progress(self._done_count(), self._total)

    def _log_attempt(self, job: _ShardJob, status: str,
                     pid: int | None, seconds: float,
                     detail: str | None) -> None:
        self._attempt_log.append(
            (job.label, job.attempts, status, len(job.indices), pid,
             seconds, detail))

    # ------------------------------------------------------------------
    # store finalization
    # ------------------------------------------------------------------
    def _finalize_store(self, ctx, run_id, golden_digest) -> None:
        from ..store.db import AnomalyRow
        fps = self._fingerprints
        fresh = [AnomalyRow(
            fault_fp=fps[i], fault_name=anomaly.fault_name,
            zone=anomaly.zone, kind=anomaly.kind,
            worker=anomaly.worker, traceback=anomaly.traceback,
            wall_seconds=anomaly.wall_seconds,
            attempts=anomaly.attempts, run_id=run_id)
            for i, anomaly in self._quarantined.items()
            if not anomaly.known]
        if fresh:
            self.cache.db.put_anomalies(fresh)
        if self._attempt_log:
            self.cache.db.put_shard_attempts(run_id,
                                             self._attempt_log)
        result = self._result
        counts = result.outcomes()
        if self._quarantined:
            counts["quarantined"] = len(self._quarantined)
        membership = []
        for i, fault in enumerate(self._faults):
            if i in self._quarantined:
                outcome = "quarantined"
            else:
                outcome = result.outcome_of(self._merged[i])
            membership.append((fps[i], fault.name, fault.zone,
                               outcome))
        self.cache.db.finish_run(
            run_id,
            hits=self._plan_hits,
            misses=len(self._faults) - self._plan_hits,
            measured_dc=result.measured_dc(),
            safe_fraction=result.measured_safe_fraction(),
            outcome_counts=counts,
            wall_seconds=result.wall_seconds,
            golden_blob=golden_digest, membership=membership)
