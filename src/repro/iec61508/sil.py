"""Safety Integrity Levels and the SFF/HFT architectural constraints.

IEC 61508 grants a hardware safety integrity level to a subsystem based
on its Safe Failure Fraction and its Hardware Fault Tolerance
(IEC 61508-2 tables 2 and 3).  The paper quotes the two rows it uses:
"With a HFT equal to zero, a SFF equal or greater than 99% is required
in order that the system or component can be granted with SIL3.  With a
HFT equal to one, the SFF should be greater than 90%."
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum


class SIL(IntEnum):
    """Safety integrity level; SIL4 is the highest."""

    SIL1 = 1
    SIL2 = 2
    SIL3 = 3
    SIL4 = 4


# SFF bands used by the architectural-constraint tables.
SFF_BANDS = ((0.0, 0.60), (0.60, 0.90), (0.90, 0.99), (0.99, 1.01))

# Type A subsystems: failure modes well defined, behaviour under fault
# conditions completely determined (simple devices).
_TYPE_A = (
    (SIL.SIL1, SIL.SIL2, SIL.SIL3),   # SFF < 60%
    (SIL.SIL2, SIL.SIL3, SIL.SIL4),   # 60% - 90%
    (SIL.SIL3, SIL.SIL4, SIL.SIL4),   # 90% - 99%
    (SIL.SIL3, SIL.SIL4, SIL.SIL4),   # >= 99%
)

# Type B subsystems: complex components (CPUs, SoCs...) — this is the
# table that applies to the paper's memory sub-system.
_TYPE_B = (
    (None, SIL.SIL1, SIL.SIL2),       # SFF < 60%
    (SIL.SIL1, SIL.SIL2, SIL.SIL3),   # 60% - 90%
    (SIL.SIL2, SIL.SIL3, SIL.SIL4),   # 90% - 99%
    (SIL.SIL3, SIL.SIL4, SIL.SIL4),   # >= 99%
)


def sff_band(sff: float) -> int:
    """Index of the SFF band containing ``sff`` (0..3)."""
    if not 0.0 <= sff <= 1.0:
        raise ValueError(f"SFF must be within [0, 1], got {sff}")
    for i, (lo, hi) in enumerate(SFF_BANDS):
        if lo <= sff < hi:
            return i
    return len(SFF_BANDS) - 1


def max_sil(sff: float, hft: int, type_b: bool = True) -> SIL | None:
    """Highest SIL claimable for a subsystem (None: not allowed).

    ``hft`` is the hardware fault tolerance: N means N+1 faults could
    cause a loss of the safety function.
    """
    if hft < 0:
        raise ValueError("HFT cannot be negative")
    table = _TYPE_B if type_b else _TYPE_A
    col = min(hft, 2)
    return table[sff_band(sff)][col]


def required_sff(target: SIL, hft: int, type_b: bool = True) -> float:
    """Minimum SFF granting ``target`` at the given HFT (lower band edge).

    Raises :class:`ValueError` when the target cannot be reached at any
    SFF with this HFT.
    """
    table = _TYPE_B if type_b else _TYPE_A
    col = min(max(hft, 0), 2)
    for band, row in enumerate(table):
        granted = row[col]
        if granted is not None and granted >= target:
            return SFF_BANDS[band][0]
    raise ValueError(
        f"{target.name} not achievable at HFT={hft} for "
        f"type {'B' if type_b else 'A'} subsystems")


@dataclass(frozen=True)
class PfhTarget:
    """Target failure-measure band for high-demand/continuous mode."""

    sil: SIL
    low: float   # failures per hour, inclusive lower bound
    high: float  # exclusive upper bound


# IEC 61508-1 table 3: PFH bands for high demand / continuous mode.
PFH_TARGETS = {
    SIL.SIL1: PfhTarget(SIL.SIL1, 1e-6, 1e-5),
    SIL.SIL2: PfhTarget(SIL.SIL2, 1e-7, 1e-6),
    SIL.SIL3: PfhTarget(SIL.SIL3, 1e-8, 1e-7),
    SIL.SIL4: PfhTarget(SIL.SIL4, 1e-9, 1e-8),
}


def pfh_meets(sil: SIL, dangerous_undetected_per_hour: float) -> bool:
    """True when λDU satisfies the PFH band of ``sil``."""
    return dangerous_undetected_per_hour < PFH_TARGETS[sil].high


def architecture_table(type_b: bool = True):
    """The full SFF/HFT table as rows of (band, [HFT0, HFT1, HFT2]).

    Used by the T-A benchmark to print the norm's table next to the
    paper's quoted thresholds.
    """
    table = _TYPE_B if type_b else _TYPE_A
    rows = []
    labels = ("SFF < 60%", "60% <= SFF < 90%", "90% <= SFF < 99%",
              "SFF >= 99%")
    for label, row in zip(labels, table):
        rows.append((label, [s.name if s else "not allowed" for s in row]))
    return rows
