"""Failure-mode catalog per component class (IEC 61508-2 table A.1).

The paper §2 quotes the faults/failures the norm requires to be detected
during operation or analyzed in the derivation of the safe failure
fraction.  "The basic failure modes for a given SoC can be determined
from the tables in Appendix of IEC 61508-2" (§3) — this module encodes
them and maps sensible-zone kinds to the right component class.
"""

from __future__ import annotations

from ..zones.model import FailureMode, FaultPersistence, ZoneKind

# --- variable memory ---------------------------------------------------
VM_DC_FAULT = FailureMode(
    "dc_fault", "DC fault model (stuck-at/stuck-open/high-impedance "
    "and bridging) for data and addresses",
    FaultPersistence.PERMANENT, "A.1 variable memory")
VM_CROSSOVER = FailureMode(
    "dynamic_crossover", "Dynamic cross-over for memory cells "
    "(coupling between cells)",
    FaultPersistence.PERMANENT, "A.1 variable memory")
VM_ADDRESSING = FailureMode(
    "addressing", "No, wrong or multiple addressing",
    FaultPersistence.PERMANENT, "A.1 variable memory")
VM_SOFT_ERROR = FailureMode(
    "soft_error", "Change of information caused by soft-errors "
    "(cosmic rays, alpha particles)",
    FaultPersistence.TRANSIENT, "A.1 variable memory")

VARIABLE_MEMORY_MODES = (VM_DC_FAULT, VM_CROSSOVER, VM_ADDRESSING,
                         VM_SOFT_ERROR)

# --- processing units / registers ---------------------------------------
PU_DC_FAULT = FailureMode(
    "dc_fault", "DC fault model for data and addresses of internal "
    "registers and RAMs",
    FaultPersistence.PERMANENT, "A.1 processing unit")
PU_WRONG_CODING = FailureMode(
    "wrong_coding", "Wrong coding or wrong execution, including flag "
    "registers and instruction decoding",
    FaultPersistence.PERMANENT, "A.1 processing unit")
PU_CROSSOVER = FailureMode(
    "dynamic_crossover", "Dynamic cross-over for register-file cells",
    FaultPersistence.PERMANENT, "A.1 processing unit")
PU_BIT_FLIP = FailureMode(
    "bit_flip", "Soft-error bit flip of a state register",
    FaultPersistence.TRANSIENT, "A.1 processing unit")

PROCESSING_UNIT_MODES = (PU_DC_FAULT, PU_WRONG_CODING, PU_CROSSOVER,
                         PU_BIT_FLIP)

# --- I/O, bus, clock -----------------------------------------------------
IO_DC_FAULT = FailureMode(
    "dc_fault", "DC fault model on inputs/outputs",
    FaultPersistence.PERMANENT, "A.1 I/O units")
IO_DRIFT = FailureMode(
    "drift_oscillation", "Drift and oscillation of I/O levels",
    FaultPersistence.TRANSIENT, "A.1 I/O units")

BUS_DC_FAULT = FailureMode(
    "dc_fault", "DC fault model on the internal bus / data paths "
    "(including address lines)",
    FaultPersistence.PERMANENT, "A.1 data paths")
BUS_TIME_OUT = FailureMode(
    "no_or_continuous_transmission", "No transmission or continuous "
    "transmission on the communication path",
    FaultPersistence.PERMANENT, "A.1 data paths")
NET_DISTURBANCE = FailureMode(
    "transient_disturbance", "Crosstalk / coupling / SET glitch on a "
    "long or high-fanout net",
    FaultPersistence.TRANSIENT, "A.1 data paths")

CLOCK_WRONG_FREQ = FailureMode(
    "wrong_frequency", "Sub- or super-harmonic clock, stuck clock",
    FaultPersistence.PERMANENT, "A.1 clock")
CLOCK_JITTER = FailureMode(
    "jitter", "Period jitter outside tolerance",
    FaultPersistence.TRANSIENT, "A.1 clock")

IO_MODES = (IO_DC_FAULT, IO_DRIFT)
BUS_MODES = (BUS_DC_FAULT, BUS_TIME_OUT)
CLOCK_MODES = (CLOCK_WRONG_FREQ, CLOCK_JITTER)


_BY_ZONE_KIND: dict[ZoneKind, tuple[FailureMode, ...]] = {
    ZoneKind.MEMORY: VARIABLE_MEMORY_MODES,
    ZoneKind.REGISTER: PROCESSING_UNIT_MODES,
    ZoneKind.LOGICAL: (PU_WRONG_CODING, PU_BIT_FLIP),
    ZoneKind.PRIMARY_INPUT: IO_MODES,
    ZoneKind.PRIMARY_OUTPUT: IO_MODES,
    ZoneKind.CRITICAL_NET: (BUS_DC_FAULT, CLOCK_WRONG_FREQ,
                            NET_DISTURBANCE),
    ZoneKind.SUBBLOCK: (PU_DC_FAULT, PU_WRONG_CODING, PU_BIT_FLIP),
}


def failure_modes_for(kind: ZoneKind) -> tuple[FailureMode, ...]:
    """IEC failure modes applicable to a zone kind."""
    return _BY_ZONE_KIND[kind]


def transient_modes(kind: ZoneKind) -> tuple[FailureMode, ...]:
    return tuple(fm for fm in failure_modes_for(kind)
                 if fm.persistence is FaultPersistence.TRANSIENT)


def permanent_modes(kind: ZoneKind) -> tuple[FailureMode, ...]:
    return tuple(fm for fm in failure_modes_for(kind)
                 if fm.persistence is FaultPersistence.PERMANENT)
