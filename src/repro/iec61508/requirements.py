"""Safety Requirements Specification artifacts and compliance checks.

IEC 61508 "specifies as well which kind of documentation and design flow
should be followed, such as the release of a Safety Requirements
Specification (SRS) including a detailed FMEA" (paper §2).  This module
models the SRS as a structured object that collects the safety target,
the FMEA result and the validation evidence, and checks the whole bundle
for compliance — the programmatic equivalent of what TÜV-SÜD assessed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .sil import PFH_TARGETS, SIL, max_sil, pfh_meets, required_sff


@dataclass
class ComplianceIssue:
    """One failed compliance check."""

    requirement: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.requirement}] {self.detail}"


@dataclass
class ComplianceReport:
    """Outcome of an SRS compliance assessment."""

    target_sil: SIL
    achieved_sil: SIL | None
    sff: float
    issues: list[ComplianceIssue] = field(default_factory=list)

    @property
    def compliant(self) -> bool:
        return not self.issues

    def summary(self) -> str:
        status = "COMPLIANT" if self.compliant else "NOT COMPLIANT"
        achieved = self.achieved_sil.name if self.achieved_sil \
            else "none"
        lines = [f"SRS assessment: {status}",
                 f"  target {self.target_sil.name}, achieved {achieved}, "
                 f"SFF {self.sff * 100:.2f}%"]
        lines.extend(f"  - {issue}" for issue in self.issues)
        return "\n".join(lines)


class SafetyRequirementsSpecification:
    """The SRS bundle for a SoC sub-system.

    ``fmea`` is a :class:`repro.fmea.FmeaWorksheet`; ``validation`` a
    :class:`repro.faultinjection.validation.ValidationReport` (both
    duck-typed here to avoid circular imports).
    """

    def __init__(self, name: str, target_sil: SIL, hft: int = 0,
                 type_b: bool = True, fmea=None, validation=None,
                 toggle_report=None, notes: str = ""):
        self.name = name
        self.target_sil = target_sil
        self.hft = hft
        self.type_b = type_b
        self.fmea = fmea
        self.validation = validation
        self.toggle_report = toggle_report
        self.notes = notes

    # ------------------------------------------------------------------
    def required_sff(self) -> float:
        return required_sff(self.target_sil, self.hft, self.type_b)

    def assess(self) -> ComplianceReport:
        """Run all compliance checks against the attached evidence."""
        issues: list[ComplianceIssue] = []

        if self.fmea is None:
            issues.append(ComplianceIssue(
                "FMEA", "no FMEA attached: the SRS must include a "
                "detailed FMEA of the sub-system"))
            return ComplianceReport(self.target_sil, None, 0.0, issues)

        rates = self.fmea.totals()
        sff = rates.sff
        achieved = max_sil(sff, self.hft, self.type_b)

        if achieved is None or achieved < self.target_sil:
            issues.append(ComplianceIssue(
                "SFF", f"SFF {sff * 100:.2f}% grants "
                f"{achieved.name if achieved else 'no SIL'} at "
                f"HFT={self.hft}; {self.target_sil.name} needs "
                f">= {self.required_sff() * 100:.0f}%"))

        # random-hardware-failure target: λDU against the PFH band of
        # the target SIL (high-demand / continuous mode)
        if not pfh_meets(self.target_sil, rates.du_per_hour):
            issues.append(ComplianceIssue(
                "PFH", f"dangerous-undetected rate "
                f"{rates.du_per_hour:.3e}/h exceeds the "
                f"{self.target_sil.name} band "
                f"(< {PFH_TARGETS[self.target_sil].high:g}/h)"))

        if self.validation is None:
            issues.append(ComplianceIssue(
                "validation", "FMEA has not been validated by fault "
                "injection (IEC 61508 recommends fault injection)"))
        elif not self.validation.passed:
            issues.append(ComplianceIssue(
                "validation", "fault-injection validation failed: "
                + "; ".join(self.validation.failures)))

        if self.toggle_report is not None and not self.toggle_report.passed:
            issues.append(ComplianceIssue(
                "workload", self.toggle_report.summary()))

        return ComplianceReport(self.target_sil, achieved, sff, issues)
