"""IEC 61508 norm model: SIL tables, λ-algebra, techniques, modes."""

from .sil import (
    PFH_TARGETS,
    PfhTarget,
    SFF_BANDS,
    SIL,
    architecture_table,
    max_sil,
    pfh_meets,
    required_sff,
    sff_band,
)
from .metrics import (
    FIT_PER_HOUR,
    FailureRates,
    diagnostic_coverage,
    safe_failure_fraction,
)
from .techniques import (
    DcLevel,
    Target,
    Technique,
    all_techniques,
    clamp_claim,
    max_dc_claim,
    technique,
    techniques_for,
)
from .failure_modes import (
    BUS_MODES,
    CLOCK_MODES,
    IO_MODES,
    PROCESSING_UNIT_MODES,
    VARIABLE_MEMORY_MODES,
    VM_ADDRESSING,
    VM_CROSSOVER,
    VM_DC_FAULT,
    VM_SOFT_ERROR,
    PU_BIT_FLIP,
    PU_DC_FAULT,
    PU_WRONG_CODING,
    failure_modes_for,
    permanent_modes,
    transient_modes,
)
from .requirements import (
    ComplianceIssue,
    ComplianceReport,
    SafetyRequirementsSpecification,
)

__all__ = [
    "SIL", "SFF_BANDS", "PFH_TARGETS", "PfhTarget", "architecture_table",
    "max_sil", "pfh_meets", "required_sff", "sff_band",
    "FIT_PER_HOUR", "FailureRates", "diagnostic_coverage",
    "safe_failure_fraction",
    "DcLevel", "Target", "Technique", "all_techniques", "clamp_claim",
    "max_dc_claim", "technique", "techniques_for",
    "BUS_MODES", "CLOCK_MODES", "IO_MODES", "PROCESSING_UNIT_MODES",
    "VARIABLE_MEMORY_MODES", "VM_ADDRESSING", "VM_CROSSOVER",
    "VM_DC_FAULT", "VM_SOFT_ERROR", "PU_BIT_FLIP", "PU_DC_FAULT",
    "PU_WRONG_CODING", "failure_modes_for", "permanent_modes",
    "transient_modes",
    "ComplianceIssue", "ComplianceReport",
    "SafetyRequirementsSpecification",
]
