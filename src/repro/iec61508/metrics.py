"""λ-algebra of IEC 61508: safe/dangerous rates, DC and SFF.

The two headline formulas (paper §4)::

    DC  = λDD / λD
    SFF = (λS + λDD) / (λS + λD)        with λD = λDD + λDU

Rates are carried in FIT (failures per 10^9 hours) throughout the FMEA
and converted to per-hour only for PFH checks.
"""

from __future__ import annotations

from dataclasses import dataclass

FIT_PER_HOUR = 1e-9


@dataclass
class FailureRates:
    """A bundle of failure rates, in FIT.

    ``lambda_s``: safe failures (no potential for a hazardous or
    fail-to-function state); ``lambda_dd``: dangerous detected;
    ``lambda_du``: dangerous undetected.
    """

    lambda_s: float = 0.0
    lambda_dd: float = 0.0
    lambda_du: float = 0.0

    # ------------------------------------------------------------------
    @property
    def lambda_d(self) -> float:
        return self.lambda_dd + self.lambda_du

    @property
    def total(self) -> float:
        return self.lambda_s + self.lambda_d

    @property
    def dc(self) -> float:
        """Diagnostic coverage λDD/λD (1.0 when there is nothing
        dangerous to detect)."""
        d = self.lambda_d
        return self.lambda_dd / d if d > 0 else 1.0

    @property
    def sff(self) -> float:
        """Safe failure fraction (1.0 for an empty bundle)."""
        t = self.total
        return (self.lambda_s + self.lambda_dd) / t if t > 0 else 1.0

    @property
    def du_per_hour(self) -> float:
        return self.lambda_du * FIT_PER_HOUR

    # ------------------------------------------------------------------
    def __add__(self, other: "FailureRates") -> "FailureRates":
        return FailureRates(self.lambda_s + other.lambda_s,
                            self.lambda_dd + other.lambda_dd,
                            self.lambda_du + other.lambda_du)

    def scaled(self, factor: float) -> "FailureRates":
        return FailureRates(self.lambda_s * factor,
                            self.lambda_dd * factor,
                            self.lambda_du * factor)

    @classmethod
    def split(cls, total: float, safe_fraction: float,
              dc: float) -> "FailureRates":
        """Split a raw rate by S factor then by diagnostic coverage.

        ``safe_fraction`` is the paper's S factor (D = 1 - S); ``dc`` is
        the claimed detected-dangerous fraction for the failure mode.
        """
        if not 0.0 <= safe_fraction <= 1.0:
            raise ValueError("safe fraction must be within [0, 1]")
        if not 0.0 <= dc <= 1.0:
            raise ValueError("DC must be within [0, 1]")
        dangerous = total * (1.0 - safe_fraction)
        return cls(lambda_s=total * safe_fraction,
                   lambda_dd=dangerous * dc,
                   lambda_du=dangerous * (1.0 - dc))

    @classmethod
    def sum(cls, items) -> "FailureRates":
        acc = cls()
        for item in items:
            acc = acc + item
        return acc

    def as_dict(self) -> dict[str, float]:
        return {"lambda_s": self.lambda_s, "lambda_dd": self.lambda_dd,
                "lambda_du": self.lambda_du, "lambda_d": self.lambda_d,
                "total": self.total, "dc": self.dc, "sff": self.sff}


def diagnostic_coverage(lambda_dd: float, lambda_du: float) -> float:
    d = lambda_dd + lambda_du
    return lambda_dd / d if d > 0 else 1.0


def safe_failure_fraction(lambda_s: float, lambda_dd: float,
                          lambda_du: float) -> float:
    total = lambda_s + lambda_dd + lambda_du
    return (lambda_s + lambda_dd) / total if total > 0 else 1.0
