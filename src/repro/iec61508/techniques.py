"""Catalog of diagnostic techniques and their maximum claimable DC.

IEC 61508-2 Annex A (tables A.2-A.13) assesses state-of-the-art
fault-detection techniques against the maximum diagnostic coverage
"considered achievable": the norm uses three levels — low (60 %),
medium (90 %) and high (99 %).  The paper's §4 computes per-zone DDF
claims "by what accepted by the IEC norm (Annex 2, tables A.2-A.13,
where it is specified the maximum diagnostic coverage considered
achievable by a given technique)".

This module encodes the techniques relevant to the memory sub-system
case study plus the surrounding processing-unit/bus/clock entries, with
their table references.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class DcLevel(float, Enum):
    """The norm's three diagnostic-coverage claims."""

    LOW = 0.60
    MEDIUM = 0.90
    HIGH = 0.99

    @property
    def label(self) -> str:
        return self.name.lower()


class Target(str, Enum):
    """Component classes addressed by the Annex A tables."""

    PROCESSING_UNIT = "processing_unit"
    INVARIABLE_MEMORY = "invariable_memory"
    VARIABLE_MEMORY = "variable_memory"
    IO_UNITS = "io_units"
    DATA_PATHS = "data_paths"      # internal bus / interconnect
    POWER_SUPPLY = "power_supply"
    CLOCK = "clock"


@dataclass(frozen=True)
class Technique:
    """One diagnostic technique with its norm-accepted maximum DC."""

    key: str
    name: str
    target: Target
    max_dc: DcLevel
    table: str          # IEC 61508-2 table reference
    software: bool = False
    notes: str = ""

    @property
    def max_dc_value(self) -> float:
        return float(self.max_dc.value)


_CATALOG: dict[str, Technique] = {}


def _add(key, name, target, max_dc, table, software=False, notes=""):
    _CATALOG[key] = Technique(key, name, target, max_dc, table,
                              software, notes)


# --- variable memory (table A.6) --------------------------------------
_add("ram_test_checkerboard", "RAM test 'checkerboard' or 'march'",
     Target.VARIABLE_MEMORY, DcLevel.LOW, "A.6",
     software=True, notes="start-up / periodic software test")
_add("ram_test_walkpath", "RAM test 'walkpath'",
     Target.VARIABLE_MEMORY, DcLevel.MEDIUM, "A.6", software=True)
_add("ram_test_galpat", "RAM test 'galpat' or 'transparent galpat'",
     Target.VARIABLE_MEMORY, DcLevel.HIGH, "A.6", software=True)
_add("ram_test_abraham", "RAM test 'Abraham'",
     Target.VARIABLE_MEMORY, DcLevel.HIGH, "A.6", software=True)
_add("ram_parity", "RAM monitoring with parity bit",
     Target.VARIABLE_MEMORY, DcLevel.LOW, "A.6",
     notes="one parity bit per word")
_add("ram_ecc_hamming", "RAM monitoring with a modified Hamming code "
     "(SEC-DED ECC)",
     Target.VARIABLE_MEMORY, DcLevel.HIGH, "A.6",
     notes="highest-value technique per the paper's §2")
_add("ram_double_comparison", "Double RAM with hardware or software "
     "comparison and read/write test",
     Target.VARIABLE_MEMORY, DcLevel.HIGH, "A.6")

# --- invariable memory (table A.5) -------------------------------------
_add("rom_checksum", "Modified checksum", Target.INVARIABLE_MEMORY,
     DcLevel.LOW, "A.5", software=True)
_add("rom_signature_word", "Signature of one word (8-bit)",
     Target.INVARIABLE_MEMORY, DcLevel.MEDIUM, "A.5", software=True)
_add("rom_signature_double", "Signature of a double word (16-bit)",
     Target.INVARIABLE_MEMORY, DcLevel.HIGH, "A.5", software=True)
_add("rom_block_replication", "Block replication",
     Target.INVARIABLE_MEMORY, DcLevel.HIGH, "A.5")

# --- processing units (table A.4) ---------------------------------------
_add("cpu_self_test_sw", "Self-test by software: limited number of "
     "patterns (one channel)",
     Target.PROCESSING_UNIT, DcLevel.LOW, "A.4", software=True)
_add("cpu_self_test_walking", "Self-test by software: walking bit "
     "(one channel)",
     Target.PROCESSING_UNIT, DcLevel.MEDIUM, "A.4", software=True)
_add("cpu_self_test_hw", "Self-test supported by hardware (one channel)",
     Target.PROCESSING_UNIT, DcLevel.MEDIUM, "A.4")
_add("cpu_coded_processing", "Coded processing (one channel)",
     Target.PROCESSING_UNIT, DcLevel.HIGH, "A.4")
_add("cpu_reciprocal_comparison", "Reciprocal comparison by software "
     "between two processing units",
     Target.PROCESSING_UNIT, DcLevel.HIGH, "A.4", software=True)
_add("cpu_hw_redundancy", "HW redundancy (e.g. lock-step dual core)",
     Target.PROCESSING_UNIT, DcLevel.HIGH, "A.4")

# --- I/O units and interfaces (table A.13) -----------------------------
_add("io_test_pattern", "Test pattern (input/output units)",
     Target.IO_UNITS, DcLevel.HIGH, "A.13")
_add("io_code_protection", "Code protection for digital I/O",
     Target.IO_UNITS, DcLevel.MEDIUM, "A.13")
_add("io_multi_channel", "Multi-channel parallel output with comparison",
     Target.IO_UNITS, DcLevel.HIGH, "A.13")

# --- data paths / on-chip communication (table A.7) ---------------------
_add("bus_parity", "One-bit hardware redundancy (bus parity)",
     Target.DATA_PATHS, DcLevel.LOW, "A.7")
_add("bus_multibit_redundancy", "Multi-bit hardware redundancy (bus ECC)",
     Target.DATA_PATHS, DcLevel.MEDIUM, "A.7")
_add("bus_full_redundancy", "Complete hardware redundancy (dual bus)",
     Target.DATA_PATHS, DcLevel.HIGH, "A.7")
_add("bus_inspection", "Inspection using test patterns",
     Target.DATA_PATHS, DcLevel.HIGH, "A.7")
_add("bus_transmission_redundancy", "Transmission redundancy "
     "(repeated transfers)",
     Target.DATA_PATHS, DcLevel.MEDIUM, "A.7",
     notes="effective against transient faults only")

# --- clock (table A.10) -------------------------------------------------
_add("clock_watchdog_separate_base", "Watchdog with separate time base "
     "without time-window",
     Target.CLOCK, DcLevel.LOW, "A.10")
_add("clock_watchdog_time_window", "Watchdog with separate time base and "
     "time-window",
     Target.CLOCK, DcLevel.MEDIUM, "A.10")
_add("clock_logical_temporal", "Logical monitoring combined with temporal "
     "monitoring of the program sequence",
     Target.CLOCK, DcLevel.HIGH, "A.10")

# --- power supply (table A.9) -------------------------------------------
_add("power_overvoltage_shutoff", "Overvoltage protection with safety "
     "shut-off",
     Target.POWER_SUPPLY, DcLevel.LOW, "A.9")
_add("power_monitoring", "Voltage control (secondary) with safety shut-off "
     "or switch-over",
     Target.POWER_SUPPLY, DcLevel.HIGH, "A.9")


def technique(key: str) -> Technique:
    try:
        return _CATALOG[key]
    except KeyError:
        raise KeyError(f"unknown diagnostic technique {key!r}; known: "
                       f"{sorted(_CATALOG)}") from None


def techniques_for(target: Target) -> list[Technique]:
    return [t for t in _CATALOG.values() if t.target is target]


def all_techniques() -> list[Technique]:
    return list(_CATALOG.values())


def max_dc_claim(key: str) -> float:
    """Maximum DC value claimable for a technique (0.60/0.90/0.99)."""
    return technique(key).max_dc_value


def clamp_claim(key: str, requested_dc: float) -> float:
    """Clamp a user DDF estimate to the norm-accepted maximum (§4)."""
    return min(requested_dc, max_dc_claim(key))
