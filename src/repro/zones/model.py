"""Data model of the sensible-zone theory (paper §3).

A *sensible zone* is an elementary failure point of the SoC in which one
or more physical faults converge to lead to a failure.  Valid zones per
the paper: memory elements (registers), primary inputs/outputs, logical
entities, critical nets (clock, long nets), and entire sub-blocks.

An *observation point* is where the effects of failure modes in a zone
are measured: another zone, a primary output (most cases), a primary
function, or an alarm of the diagnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class ZoneKind(str, Enum):
    """The five valid zone definitions of §3, plus memory regions."""

    REGISTER = "register"
    PRIMARY_INPUT = "primary_input"
    PRIMARY_OUTPUT = "primary_output"
    LOGICAL = "logical"
    CRITICAL_NET = "critical_net"
    SUBBLOCK = "subblock"
    MEMORY = "memory"


class FaultClass(str, Enum):
    """Physical-fault extent classification of §3."""

    LOCAL = "local"      # one logic cone, one zone
    WIDE = "wide"        # shared cone, several zones
    GLOBAL = "global"    # clock / power / thermal, many zones


class FaultPersistence(str, Enum):
    TRANSIENT = "transient"
    PERMANENT = "permanent"


@dataclass(frozen=True)
class FailureMode:
    """A failure mode of a sensible zone (IEC 61508-2 Annex A tables)."""

    name: str
    description: str = ""
    persistence: FaultPersistence = FaultPersistence.TRANSIENT
    iec_reference: str = ""


@dataclass
class SensibleZone:
    """One sensible zone with its structural statistics.

    ``nets`` are the nets whose failure *is* the zone failure (register
    q pins, the critical net itself, a sub-block's outputs...).
    ``flops`` lists the flip-flop names for register zones, and
    ``size_bits`` the storage the zone represents (flop bits or memory
    bits) — the number of fault targets for injection and FIT scaling.
    """

    name: str
    kind: ZoneKind
    nets: tuple[int, ...] = ()
    flops: tuple[str, ...] = ()
    path: str = ""
    size_bits: int = 0
    memory: str | None = None
    mem_words: tuple[int, int] | None = None  # [first, last] region
    cone_gates: int = 0
    cone_inputs: int = 0
    cone_depth: int = 0
    attrs: dict = field(default_factory=dict)

    @property
    def is_storage(self) -> bool:
        return self.kind in (ZoneKind.REGISTER, ZoneKind.MEMORY)

    def __repr__(self) -> str:  # compact, used in reports
        return (f"SensibleZone({self.name!r}, {self.kind.value}, "
                f"bits={self.size_bits}, cone={self.cone_gates})")


class ObservationKind(str, Enum):
    """§3: the observation point is another zone, a primary output, a
    primary function, or an alarm of the diagnostic."""

    OUTPUT = "output"
    ALARM = "alarm"
    ZONE = "zone"
    FUNCTION = "function"


@dataclass(frozen=True)
class ObservationPoint:
    """A point where zone-failure effects are measured."""

    name: str
    kind: ObservationKind
    nets: tuple[int, ...] = ()

    @property
    def is_diagnostic(self) -> bool:
        return self.kind is ObservationKind.ALARM


@dataclass(frozen=True)
class Effect:
    """A (zone failure -> observation point) effect.

    ``order`` distinguishes the paper's main effect (0: the first
    observation point that will at least be hit, if not masked) from
    secondary effects (>0: reached through the output cone and further
    zones).  ``distance`` is the sequential depth (clock cycles through
    registers) from the zone to the observation point.
    """

    zone: str
    observation: str
    order: int
    distance: int

    @property
    def is_main(self) -> bool:
        return self.order == 0
