"""Zone-configuration persistence and netlist cross-checking.

The paper's flow passes the zone/stimuli configuration between the
extraction tool, the analyst and the validation flow.  This module
gives the zone side a durable form: ``soc-fmea export`` writes the
extracted :class:`~repro.zones.extractor.ZoneSet` as JSON naming every
zone with its *net names* (not indices — names survive re-synthesis),
and a campaign or the ``doctor`` audit later *resolves* that
configuration against a (possibly edited) netlist.

Resolution is diagnostic, not fail-fast: every zone that no longer
resolves — unknown name (with did-you-mean candidates), vanished net,
changed kind — is reported with an ``E2xx`` code, and the caller
decides between ``--strict`` (abort, exit 2) and ``--degraded`` (run
the resolvable zones, bound the metrics for the lost evidence via
:mod:`repro.reporting.health`).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field

from ..diagnostics import DiagnosticError, DiagnosticReport
from ..hdl.netlist import Circuit
from .extractor import ZoneLookupError, ZoneSet
from .model import ZoneKind

ZONES_SCHEMA_VERSION = 1


class ZoneConfigError(DiagnosticError, ValueError):
    """A zone configuration failed to load or resolve."""


# ----------------------------------------------------------------------
# writing
# ----------------------------------------------------------------------
def zone_config_to_dict(zone_set: ZoneSet) -> dict:
    """Serialize a zone set as a portable configuration document."""
    circuit = zone_set.circuit
    zones = []
    for zone in zone_set.zones:
        zones.append({
            "name": zone.name,
            "kind": zone.kind.value,
            "nets": [circuit.net_names[n] for n in zone.nets],
            "size_bits": zone.size_bits,
        })
    data = {
        "schema": ZONES_SCHEMA_VERSION,
        "design": circuit.name,
        "zones": zones,
        "observe": [{"name": p.name, "kind": p.kind.value}
                    for p in zone_set.observation_points],
    }
    if zone_set.config is not None:
        # zone names depend on the granularity knobs, so a consumer
        # re-extracting (doctor) must use the same ones
        data["extraction"] = dataclasses.asdict(zone_set.config)
    return data


def save_zones(zone_set: ZoneSet, path) -> None:
    with open(path, "w") as handle:
        json.dump(zone_config_to_dict(zone_set), handle, indent=1)


# ----------------------------------------------------------------------
# loading
# ----------------------------------------------------------------------
def load_zone_config(path, *,
                     report: DiagnosticReport | None = None
                     ) -> dict | None:
    """Read and shape-check a zone configuration file.

    Structural defects are ``E201``/``E202`` diagnostics; with
    ``report=None`` they raise :class:`ZoneConfigError`, otherwise
    they are appended to the caller's report and ``None`` (or the
    cleaned document) is returned.
    """
    collect = DiagnosticReport() if report is None else report
    before = len(collect.errors)
    data = None
    try:
        with open(path) as handle:
            data = json.load(handle)
    except OSError as err:
        collect.error("E201", f"cannot read zone config: {err}",
                      file=str(path))
    except json.JSONDecodeError as err:
        collect.error(
            "E201", f"zone config is not valid JSON: {err.msg}",
            file=str(path), line=err.lineno, column=err.colno)
    if data is not None:
        data = _check_shape(data, str(path), collect)
    if report is None and len(collect.errors) > before:
        raise ZoneConfigError(collect)
    return data


def _check_shape(data, source: str,
                 collect: DiagnosticReport) -> dict | None:
    if not isinstance(data, dict):
        collect.error(
            "E201", f"zone config root must be a JSON object, got "
                    f"{type(data).__name__}", file=source)
        return None
    schema = data.get("schema")
    if schema != ZONES_SCHEMA_VERSION:
        collect.error(
            "E202", f"unsupported zone config schema {schema!r} "
                    f"(current: {ZONES_SCHEMA_VERSION})", file=source)
        return None
    zones = data.get("zones")
    if not isinstance(zones, list):
        collect.error("E202", "field 'zones' must be a list",
                      file=source)
        return None
    kinds = {k.value for k in ZoneKind}
    clean: list[dict] = []
    for i, entry in enumerate(zones):
        path = f"zones[{i}]"
        if not isinstance(entry, dict) \
                or not isinstance(entry.get("name"), str):
            collect.error(
                "E202", f"{path} must be an object with a string "
                        f"'name'", file=source)
            continue
        nets = entry.get("nets", [])
        if not (isinstance(nets, list)
                and all(isinstance(n, str) for n in nets)):
            collect.error(
                "E202", f"{path}.nets must be a list of net names",
                file=source)
            continue
        kind = entry.get("kind")
        if kind is not None and kind not in kinds:
            collect.error(
                "E202", f"{path}.kind {kind!r} is not one of: "
                        f"{', '.join(sorted(kinds))}", file=source)
            continue
        clean.append(entry)
    observe = data.get("observe", [])
    if not isinstance(observe, list):
        collect.error("E202", "field 'observe' must be a list",
                      file=source)
        observe = []
    extraction = data.get("extraction")
    if extraction is not None and not isinstance(extraction, dict):
        collect.error("E202", "field 'extraction' must be an object",
                      file=source)
        extraction = None
    return {"schema": schema, "design": data.get("design"),
            "zones": clean, "observe": observe,
            "extraction": extraction}


def extraction_config_from_dict(data: dict, source: str,
                                report: DiagnosticReport):
    """Rebuild the :class:`ExtractionConfig` a zone config recorded.

    Unknown keys are ignored (forward compatibility); a structurally
    bad section is an ``E202`` and ``None`` (extraction defaults)."""
    from .extractor import ExtractionConfig
    raw = data.get("extraction")
    if raw is None:
        return None
    known = {f.name for f in dataclasses.fields(ExtractionConfig)}
    kwargs = {}
    for key, value in raw.items():
        if key not in known:
            continue
        if isinstance(value, list):
            value = tuple(value)
        kwargs[key] = value
    try:
        return ExtractionConfig(**kwargs)
    except (TypeError, ValueError) as err:
        report.error(
            "E202", f"bad 'extraction' section: {err}", file=source)
        return None


# ----------------------------------------------------------------------
# resolution against a netlist
# ----------------------------------------------------------------------
@dataclass
class ZoneResolution:
    """Which configured zones survived the cross-check."""

    selected: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.skipped


def resolve_zone_config(data: dict, zone_set: ZoneSet,
                        circuit: Circuit,
                        report: DiagnosticReport,
                        source: str | None = None) -> ZoneResolution:
    """Cross-check a configuration against the extracted zone set.

    A configured zone *resolves* when its name matches an extracted
    zone and every net name it lists still exists in the netlist.
    Failures are coded diagnostics (``E200`` unknown zone with
    did-you-mean, ``E203`` vanished net, ``E204`` kind drift as a
    warning); the resolution partitions the configuration into
    ``selected`` and ``skipped`` zone names for strict/degraded
    handling by the caller.
    """
    resolution = ZoneResolution()
    known_nets = set(circuit.net_names)
    design = data.get("design")
    if design and design != circuit.name:
        report.warn(
            "E204", f"zone config was exported for design {design!r} "
                    f"but the netlist is {circuit.name!r}",
            file=source)
    for entry in data.get("zones", []):
        name = entry["name"]
        try:
            zone = zone_set.by_name(name)
        except ZoneLookupError as err:
            for diag in err.report.diagnostics:
                report.error(diag.code, diag.message, file=source,
                             hint=diag.hint)
            resolution.skipped.append(name)
            continue
        missing = [n for n in entry.get("nets", [])
                   if n not in known_nets]
        if missing:
            report.error(
                "E203", f"zone {name!r} references net(s) absent "
                        f"from the netlist: "
                        f"{', '.join(repr(n) for n in missing[:5])}"
                        + (f", … ({len(missing) - 5} more)"
                           if len(missing) > 5 else ""),
                file=source)
            resolution.skipped.append(name)
            continue
        kind = entry.get("kind")
        if kind is not None and kind != zone.kind.value:
            report.warn(
                "E204", f"zone {name!r} is recorded as {kind!r} but "
                        f"extracts as {zone.kind.value!r}",
                file=source)
        resolution.selected.append(name)

    point_names = {p.name for p in zone_set.observation_points}
    for entry in data.get("observe", []):
        name = entry.get("name") if isinstance(entry, dict) else entry
        if not isinstance(name, str):
            report.error(
                "E202", f"observe entry {entry!r} must be a name or "
                        f"an object with one", file=source)
            continue
        if name not in point_names:
            report.error(
                "E205", f"observation point {name!r} is not an "
                        f"output of {circuit.name!r}", file=source)
    return resolution
