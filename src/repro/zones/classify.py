"""Local / wide / global classification of physical HW faults (§3).

* **local**: the fault affects gates of a logic cone contributing to a
  single sensible zone;
* **wide**: the fault sits in logic shared by the cones of two or more
  zones (including clock/reset buffers feeding several flip-flops and
  coupled lines), so a single physical fault yields multiple failures;
* **global**: the fault affects many logic cones — PLL/clock-tree roots,
  power-supply or thermal faults over large areas.  We classify a fault
  as global when it reaches at least ``global_fraction`` of all zones or
  sits on a designated global net.
"""

from __future__ import annotations

from dataclasses import dataclass

from .extractor import ZoneSet
from .model import FaultClass


@dataclass
class FaultExtent:
    """Classification result for one physical fault site."""

    site: str
    fault_class: FaultClass
    zones: tuple[str, ...]

    @property
    def multiplicity(self) -> int:
        return len(self.zones)


class FaultClassifier:
    """Classifies gate/net fault sites against extracted zone cones."""

    def __init__(self, zone_set: ZoneSet, global_fraction: float = 0.25,
                 global_nets: tuple[str, ...] = ()):
        self.zone_set = zone_set
        self.global_fraction = global_fraction
        self.global_nets = set(global_nets)
        self._gate_zones: dict[int, list[str]] = {}
        for name, cone in zone_set.cones.items():
            for gate in cone.gates:
                self._gate_zones.setdefault(gate, []).append(name)
        self._injectable_zones = [
            z.name for z in zone_set.zones
            if z.name in zone_set.cones and zone_set.cones[z.name].gates]

    # ------------------------------------------------------------------
    def classify_gate(self, gate_idx: int) -> FaultExtent:
        """Classify a stuck-at at the output of a gate."""
        circuit = self.zone_set.circuit
        zones = tuple(sorted(self._gate_zones.get(gate_idx, ())))
        site = f"gate:{circuit.net_names[circuit.gates[gate_idx].out]}"
        return self._extent(site, zones)

    def classify_net(self, net) -> FaultExtent:
        """Classify a fault on a net (stuck-at, bridge, SET)."""
        circuit = self.zone_set.circuit
        if isinstance(net, str):
            net_name = net
            net = circuit.find_net(net)
        else:
            net_name = circuit.net_names[net]

        zones: set[str] = set()
        # zones whose defining nets include the net
        for zone in self.zone_set.zones:
            if net in zone.nets:
                zones.add(zone.name)
        # zones whose input cone consumes the net
        fanout = circuit.fanout_map().get(net, ())
        gate_consumers = [d[1] for d in fanout if d[0] == "gate"]
        for gi in gate_consumers:
            zones.update(self._gate_zones.get(gi, ()))
        for desc in fanout:
            if desc[0] == "flop":
                flop = circuit.flops[desc[1]]
                for zone in self.zone_set.zones:
                    if flop.name in zone.flops:
                        zones.add(zone.name)

        site = f"net:{net_name}"
        if net_name in self.global_nets:
            return FaultExtent(site, FaultClass.GLOBAL,
                               tuple(sorted(zones)))
        return self._extent(site, tuple(sorted(zones)))

    def _extent(self, site: str, zones: tuple[str, ...]) -> FaultExtent:
        total = max(1, len(self._injectable_zones))
        if len(zones) >= max(3, self.global_fraction * total):
            cls = FaultClass.GLOBAL
        elif len(zones) > 1:
            cls = FaultClass.WIDE
        elif len(zones) == 1:
            cls = FaultClass.LOCAL
        else:
            cls = FaultClass.LOCAL  # untraced site: conservatively local
        return FaultExtent(site, cls, zones)

    # ------------------------------------------------------------------
    def census(self) -> dict[str, int]:
        """Count gates by classification (local/wide/global)."""
        counts = {FaultClass.LOCAL.value: 0, FaultClass.WIDE.value: 0,
                  FaultClass.GLOBAL.value: 0}
        for gate_idx in range(len(self.zone_set.circuit.gates)):
            extent = self.classify_gate(gate_idx)
            counts[extent.fault_class.value] += 1
        return counts
