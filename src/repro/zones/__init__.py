"""Sensible-zone theory: extraction, cones, classification, effects."""

from .model import (
    Effect,
    FailureMode,
    FaultClass,
    FaultPersistence,
    ObservationKind,
    ObservationPoint,
    SensibleZone,
    ZoneKind,
)
from .cones import Cone, ConeAnalyzer, CorrelationReport, correlate_zones
from .extractor import (
    ExtractionConfig,
    ZoneExtractor,
    ZoneLookupError,
    ZoneSet,
    extract_zones,
)
from .io import (
    ZONES_SCHEMA_VERSION,
    ZoneConfigError,
    ZoneResolution,
    extraction_config_from_dict,
    load_zone_config,
    resolve_zone_config,
    save_zones,
    zone_config_to_dict,
)
from .classify import FaultClassifier, FaultExtent
from .graph import (
    build_zone_graph,
    checker_placement_candidates,
    diagnostic_reach_ratio,
    export_graphml,
    undiagnosed_zones,
    zone_reach,
)
from .effects import (
    EffectPredictor,
    PredictedEffects,
    predict_effects_table,
)

__all__ = [
    "Effect", "FailureMode", "FaultClass", "FaultPersistence",
    "ObservationKind", "ObservationPoint", "SensibleZone", "ZoneKind",
    "Cone", "ConeAnalyzer", "CorrelationReport", "correlate_zones",
    "ExtractionConfig", "ZoneExtractor", "ZoneLookupError", "ZoneSet",
    "extract_zones",
    "ZONES_SCHEMA_VERSION", "ZoneConfigError", "ZoneResolution",
    "extraction_config_from_dict", "load_zone_config",
    "resolve_zone_config", "save_zones", "zone_config_to_dict",
    "FaultClassifier", "FaultExtent",
    "EffectPredictor", "PredictedEffects", "predict_effects_table",
    "build_zone_graph", "checker_placement_candidates",
    "diagnostic_reach_ratio", "export_graphml", "undiagnosed_zones",
    "zone_reach",
]
