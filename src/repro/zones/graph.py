"""Zone-connectivity graph analyses (built on networkx).

Turns the extraction results into a directed graph whose nodes are
sensible zones and observation points and whose edges are the
structural "failure can migrate from A to B" relations of §3 — the
graph behind Figures 1-3.  Useful for:

* ranking zones by *reach* (how many observation points a failure can
  touch) and by *betweenness* (zones every failure path funnels
  through — natural checker locations);
* finding zones with no path to any diagnostic alarm (structurally
  undetectable failures: λDU by construction);
* exporting the graph for visualization.
"""

from __future__ import annotations

import networkx as nx

from .effects import EffectPredictor
from .extractor import ZoneSet
from .model import ObservationKind, ZoneKind


def build_zone_graph(zone_set: ZoneSet,
                     kinds=(ZoneKind.REGISTER, ZoneKind.MEMORY,
                            ZoneKind.PRIMARY_INPUT)) -> nx.DiGraph:
    """Zones/observation-points digraph with sequential-distance
    weights.

    An edge zone -> point exists when the zone's failure structurally
    reaches the observation point; the ``distance`` attribute is the
    minimum number of register crossings.
    """
    graph = nx.DiGraph()
    predictor = EffectPredictor(zone_set.circuit,
                                zone_set.observation_points)
    for point in zone_set.observation_points:
        graph.add_node(point.name, kind="observation",
                       observation_kind=point.kind.value)
    for zone in zone_set.zones:
        if zone.kind not in kinds:
            continue
        graph.add_node(zone.name, kind="zone",
                       zone_kind=zone.kind.value,
                       bits=zone.size_bits)
        for effect in predictor.predict(zone).effects:
            graph.add_edge(zone.name, effect.observation,
                           distance=effect.distance,
                           main=effect.is_main)
    return graph


def undiagnosed_zones(zone_set: ZoneSet,
                      kinds=(ZoneKind.REGISTER,
                             ZoneKind.MEMORY)) -> list[str]:
    """Zones that reach a functional output but no diagnostic alarm.

    These are structurally dangerous-undetected: no diagnostic can ever
    flag their failures — the graph-theoretic face of the baseline's
    decoder-pipeline blind spot.
    """
    graph = build_zone_graph(zone_set, kinds=kinds)
    alarms = {p.name for p in zone_set.diagnostic_points()}
    functional = {p.name for p in zone_set.observation_points
                  if p.kind is ObservationKind.OUTPUT}
    out = []
    for node, data in graph.nodes(data=True):
        if data.get("kind") != "zone":
            continue
        succ = set(graph.successors(node))
        if succ & functional and not succ & alarms:
            out.append(node)
    return sorted(out)


def zone_reach(zone_set: ZoneSet) -> dict[str, int]:
    """Number of observation points each zone's failure can touch."""
    graph = build_zone_graph(zone_set)
    return {node: graph.out_degree(node)
            for node, data in graph.nodes(data=True)
            if data.get("kind") == "zone"}


def diagnostic_reach_ratio(zone_set: ZoneSet) -> float:
    """Fraction of storage zones with a structural path to an alarm."""
    graph = build_zone_graph(zone_set,
                             kinds=(ZoneKind.REGISTER, ZoneKind.MEMORY))
    alarms = {p.name for p in zone_set.diagnostic_points()}
    zones = [n for n, d in graph.nodes(data=True)
             if d.get("kind") == "zone"]
    if not zones:
        return 1.0
    reached = sum(1 for z in zones
                  if set(graph.successors(z)) & alarms)
    return reached / len(zones)


def checker_placement_candidates(zone_set: ZoneSet,
                                 top: int = 5) -> list[tuple[str, float]]:
    """Zones with the highest betweenness in the zone/cone graph.

    High-betweenness zones funnel many failure-propagation paths — the
    natural places to add checkers (the §6 redesign put them exactly at
    such funnels: after the coder, after the decoder pipeline).
    Computed on the net-level graph projected to zones.
    """
    graph = build_zone_graph(zone_set)
    centrality = nx.betweenness_centrality(graph)
    zones = [(node, score) for node, score in centrality.items()
             if graph.nodes[node].get("kind") == "zone"]
    zones.sort(key=lambda kv: -kv[1])
    return zones[:top]


def export_graphml(zone_set: ZoneSet, path) -> None:
    """Write the zone graph for external visualization tools."""
    nx.write_graphml(build_zone_graph(zone_set), path)
