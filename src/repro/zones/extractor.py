"""Automatic sensible-zone and observation-point extraction (paper §3).

"In a first step, a set of sensible zones are identified from the RTL
description" — registers (the state registers of the interconnected
Moore machines are the best candidates), primary inputs and outputs,
critical nets such as clocks or long (high-fanout) nets, and entire
sub-blocks.  Memories are modeled with their own fault model and
represented as region zones.

The extractor also produces observation points: primary outputs, with
those matching the configured alarm patterns classified as diagnostic
(DIAG) points.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field

from ..diagnostics import DiagnosticError, DiagnosticReport
from ..hdl.netlist import Circuit, OP_BUF, OP_CONST0, OP_CONST1
from .cones import Cone, ConeAnalyzer, CorrelationReport, correlate_zones
from .model import (
    ObservationKind,
    ObservationPoint,
    SensibleZone,
    ZoneKind,
)


@dataclass
class ExtractionConfig:
    """Granularity knobs of the extraction tool.

    ``register_slice_bits`` controls how wide registers are split into
    zones (the paper's tool "collect[s] and properly compact[s] the
    registers"); ``critical_fanout`` is the load threshold above which a
    net is considered critical (clock/reset buffers, long nets);
    ``memory_words_per_zone`` partitions memory arrays into region
    zones.
    """

    register_slice_bits: int = 8
    critical_fanout: int = 24
    memory_words_per_zone: int = 64
    include_ports: bool = True
    include_critical_nets: bool = True
    include_subblocks: bool = True
    subblock_depth: int = 1
    alarm_patterns: tuple[str, ...] = ("alarm", "err", "fault", "diag")
    #: outputs matching these are status/housekeeping, not part of the
    #: safety function (observed for effects, excluded from the
    #: dangerous-corruption judgement)
    status_patterns: tuple[str, ...] = ("scrub_", "bist_done", "_busy")


class ZoneLookupError(DiagnosticError, KeyError):
    """A zone name resolved to nothing — with did-you-mean hints.

    Still a :class:`KeyError` for legacy callers; the attached ``E200``
    diagnostic names the closest extracted zone names so a typo or a
    stale configuration after a netlist edit is a one-glance fix.
    """

    def __init__(self, name: str, candidates=()):
        self.name = name
        self.suggestions = difflib.get_close_matches(
            name, list(candidates), n=3, cutoff=0.5)
        message = f"unknown zone {name!r}"
        hint = None
        if self.suggestions:
            options = ", ".join(repr(s) for s in self.suggestions)
            message += f" — did you mean {options}?"
            hint = (f"the closest extracted zone name(s): {options}")
        report = DiagnosticReport()
        report.error("E200", message, hint=hint)
        DiagnosticError.__init__(self, report)


@dataclass
class ZoneSet:
    """Result of an extraction run."""

    circuit: Circuit
    zones: list[SensibleZone]
    observation_points: list[ObservationPoint]
    correlation: CorrelationReport | None = None
    cones: dict[str, Cone] = field(default_factory=dict)
    #: the granularity knobs this set was extracted with — persisted
    #: in the zone-config file so a later re-extraction (``doctor``)
    #: reproduces the same zone names
    config: ExtractionConfig | None = None

    def __len__(self) -> int:
        return len(self.zones)

    def by_name(self, name: str) -> SensibleZone:
        for zone in self.zones:
            if zone.name == name:
                return zone
        raise ZoneLookupError(name, (z.name for z in self.zones))

    def of_kind(self, kind: ZoneKind) -> list[SensibleZone]:
        return [z for z in self.zones if z.kind is kind]

    def functional_points(self) -> list[ObservationPoint]:
        return [p for p in self.observation_points if not p.is_diagnostic]

    def diagnostic_points(self) -> list[ObservationPoint]:
        return [p for p in self.observation_points if p.is_diagnostic]

    def summary(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for zone in self.zones:
            counts[zone.kind.value] = counts.get(zone.kind.value, 0) + 1
        counts["total"] = len(self.zones)
        return counts


class ZoneExtractor:
    """Extracts sensible zones and observation points from a netlist."""

    def __init__(self, circuit: Circuit,
                 config: ExtractionConfig | None = None):
        self.circuit = circuit
        self.config = config or ExtractionConfig()

    # ------------------------------------------------------------------
    def extract(self, analyze_cones: bool = True) -> ZoneSet:
        zones: list[SensibleZone] = []
        zones.extend(self._register_zones())
        zones.extend(self._memory_zones())
        if self.config.include_ports:
            zones.extend(self._port_zones())
        if self.config.include_critical_nets:
            zones.extend(self._critical_net_zones())
        if self.config.include_subblocks:
            zones.extend(self._subblock_zones())

        points = self.observation_points()
        zone_set = ZoneSet(self.circuit, zones, points,
                           config=self.config)

        if analyze_cones:
            analyzer = ConeAnalyzer(self.circuit)
            for zone in zones:
                cone = analyzer.cone_of_zone_inputs(zone)
                zone.cone_gates = analyzer.effective_gate_count(cone)
                zone.cone_inputs = len(cone.boundary_nets)
                zone.cone_depth = cone.depth
                zone_set.cones[zone.name] = cone
            zone_set.correlation = correlate_zones(zone_set.cones)
        return zone_set

    # ------------------------------------------------------------------
    def _register_zones(self) -> list[SensibleZone]:
        zones = []
        slice_bits = max(1, self.config.register_slice_bits)
        for base, flops in self.circuit.iter_flops_by_register():
            for start in range(0, len(flops), slice_bits):
                chunk = flops[start:start + slice_bits]
                name = base
                if len(flops) > slice_bits:
                    name = f"{base}[{start}:{start + len(chunk) - 1}]"
                zones.append(SensibleZone(
                    name=name,
                    kind=ZoneKind.REGISTER,
                    nets=tuple(f.q for f in chunk),
                    flops=tuple(f.name for f in chunk),
                    path=chunk[0].path,
                    size_bits=len(chunk)))
        return zones

    def _memory_zones(self) -> list[SensibleZone]:
        zones = []
        words_per = max(1, self.config.memory_words_per_zone)
        for mem in self.circuit.memories:
            for start in range(0, mem.depth, words_per):
                end = min(start + words_per, mem.depth) - 1
                name = mem.name
                if mem.depth > words_per:
                    name = f"{mem.name}/words[{start}:{end}]"
                zones.append(SensibleZone(
                    name=name,
                    kind=ZoneKind.MEMORY,
                    nets=tuple(mem.rdata),
                    path=mem.path,
                    size_bits=(end - start + 1) * mem.width,
                    memory=mem.name,
                    mem_words=(start, end)))
        return zones

    def _port_zones(self) -> list[SensibleZone]:
        zones = []
        for name, nets in self.circuit.inputs.items():
            zones.append(SensibleZone(
                name=f"pi:{name}", kind=ZoneKind.PRIMARY_INPUT,
                nets=tuple(nets), size_bits=len(nets)))
        for name, nets in self.circuit.outputs.items():
            zones.append(SensibleZone(
                name=f"po:{name}", kind=ZoneKind.PRIMARY_OUTPUT,
                nets=tuple(nets), size_bits=len(nets)))
        return zones

    def _critical_net_zones(self) -> list[SensibleZone]:
        fanout = self.circuit.fanout_map()
        driver = self.circuit.driver_map()
        const_nets = {g.out for g in self.circuit.gates
                      if g.op in (OP_CONST0, OP_CONST1)}
        zones = []
        for net, loads in fanout.items():
            if net in const_nets:
                continue
            if len(loads) >= self.config.critical_fanout:
                desc = driver.get(net, ("?",))
                zones.append(SensibleZone(
                    name=f"critical:{self.circuit.net_names[net]}",
                    kind=ZoneKind.CRITICAL_NET,
                    nets=(net,),
                    size_bits=1,
                    attrs={"fanout": len(loads),
                           "driver": desc[0]}))
        return zones

    def _subblock_zones(self) -> list[SensibleZone]:
        depth = self.config.subblock_depth
        blocks: dict[str, dict] = {}
        for gi, gate in enumerate(self.circuit.gates):
            if not gate.path or gate.op in (OP_CONST0, OP_CONST1, OP_BUF):
                continue
            top = "/".join(gate.path.split("/")[:depth])
            info = blocks.setdefault(top, {"gates": 0, "flops": 0,
                                           "out_nets": set(),
                                           "gate_nets": set()})
            info["gates"] += 1
            info["gate_nets"].add(gate.out)
        for flop in self.circuit.flops:
            if not flop.path:
                continue
            top = "/".join(flop.path.split("/")[:depth])
            info = blocks.setdefault(top, {"gates": 0, "flops": 0,
                                           "out_nets": set(),
                                           "gate_nets": set()})
            info["flops"] += 1
            info["gate_nets"].add(flop.q)

        # block outputs: nets driven inside the block, consumed outside
        consumer_path: dict[int, set[str]] = {}
        for gate in self.circuit.gates:
            top = "/".join(gate.path.split("/")[:depth]) if gate.path else ""
            for net in gate.inputs:
                consumer_path.setdefault(net, set()).add(top)
        for flop in self.circuit.flops:
            top = "/".join(flop.path.split("/")[:depth]) if flop.path else ""
            consumer_path.setdefault(flop.d, set()).add(top)
        for name, nets in self.circuit.outputs.items():
            for net in nets:
                consumer_path.setdefault(net, set()).add("<po>")

        zones = []
        for top, info in sorted(blocks.items()):
            out_nets = {net for net in info["gate_nets"]
                        if consumer_path.get(net, set()) - {top}}
            zones.append(SensibleZone(
                name=f"block:{top}", kind=ZoneKind.SUBBLOCK,
                nets=tuple(sorted(out_nets)),
                path=top,
                size_bits=info["flops"],
                attrs={"gates": info["gates"], "flops": info["flops"]}))
        return zones

    # ------------------------------------------------------------------
    def observation_points(self) -> list[ObservationPoint]:
        points = []
        for name, nets in self.circuit.outputs.items():
            lowered = name.lower()
            if any(p in lowered for p in self.config.alarm_patterns):
                kind = ObservationKind.ALARM
            elif any(p in lowered for p in self.config.status_patterns):
                kind = ObservationKind.FUNCTION
            else:
                kind = ObservationKind.OUTPUT
            points.append(ObservationPoint(name=name, kind=kind,
                                           nets=tuple(nets)))
        return points


def extract_zones(circuit: Circuit,
                  config: ExtractionConfig | None = None,
                  analyze_cones: bool = True) -> ZoneSet:
    """Convenience wrapper: extract zones + observation points."""
    return ZoneExtractor(circuit, config).extract(analyze_cones)
