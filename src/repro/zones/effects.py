"""Main/secondary effect prediction (paper §3, Figures 1-3).

The *main effect* of a zone failure is the effect that "at least will
occur" at an observation point if not masked internally; *secondary
effects* occur at other observation points reached through the zone's
output cone and further zones.  Structurally, the main effect is the
nearest observation point in the forward (fanout) graph — measured in
sequential depth, i.e. the number of register/memory crossings — and
every other reachable observation point is a candidate secondary
effect.

The fault-injection result analyzer later compares the *measured*
effects table against this structural prediction (§5 step a).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..hdl.netlist import Circuit
from .extractor import ZoneSet
from .model import Effect, ObservationPoint, SensibleZone


@dataclass
class PredictedEffects:
    """All predicted effects for one zone, main effect first."""

    zone: str
    effects: list[Effect] = field(default_factory=list)

    @property
    def main(self) -> Effect | None:
        return self.effects[0] if self.effects else None

    @property
    def secondary(self) -> list[Effect]:
        return self.effects[1:]

    def reaches(self, observation: str) -> bool:
        return any(e.observation == observation for e in self.effects)


class EffectPredictor:
    """Forward 0-1 BFS through the netlist to observation points."""

    def __init__(self, circuit: Circuit,
                 observation_points: list[ObservationPoint]):
        self.circuit = circuit
        self.points = observation_points
        self._adjacency = self._build_adjacency()
        self._net_points: dict[int, list[str]] = {}
        for point in observation_points:
            for net in point.nets:
                self._net_points.setdefault(net, []).append(point.name)

    def _build_adjacency(self) -> dict[int, list[tuple[int, int]]]:
        """net -> [(successor_net, weight)] with weight 1 across state."""
        adj: dict[int, list[tuple[int, int]]] = {}

        def link(src: int, dst: int, weight: int) -> None:
            adj.setdefault(src, []).append((dst, weight))

        for gate in self.circuit.gates:
            for net in gate.inputs:
                link(net, gate.out, 0)
        for flop in self.circuit.flops:
            link(flop.d, flop.q, 1)
            if flop.en is not None:
                link(flop.en, flop.q, 1)
            if flop.rst is not None:
                link(flop.rst, flop.q, 1)
        for mem in self.circuit.memories:
            feeders = list(mem.addr) + list(mem.wdata) + [mem.we]
            for src in feeders:
                for dst in mem.rdata:
                    link(src, dst, 1)
        return adj

    def distances_from(self, nets) -> dict[int, int]:
        """Minimum sequential distance from any of ``nets`` to all nets."""
        dist: dict[int, int] = {}
        queue: deque[int] = deque()
        for net in nets:
            dist[net] = 0
            queue.appendleft(net)
        while queue:
            net = queue.popleft()
            d = dist[net]
            for nxt, weight in self._adjacency.get(net, ()):
                nd = d + weight
                if nxt not in dist or nd < dist[nxt]:
                    dist[nxt] = nd
                    if weight == 0:
                        queue.appendleft(nxt)
                    else:
                        queue.append(nxt)
        return dist

    def predict_for_nets(self, zone_name: str, nets) -> PredictedEffects:
        dist = self.distances_from(nets)
        reached: dict[str, int] = {}
        for net, d in dist.items():
            for pname in self._net_points.get(net, ()):
                if pname not in reached or d < reached[pname]:
                    reached[pname] = d
        ordered = sorted(reached.items(), key=lambda kv: (kv[1], kv[0]))
        effects = [Effect(zone=zone_name, observation=name, order=i,
                          distance=d)
                   for i, (name, d) in enumerate(ordered)]
        return PredictedEffects(zone=zone_name, effects=effects)

    def predict(self, zone: SensibleZone) -> PredictedEffects:
        return self.predict_for_nets(zone.name, zone.nets)


def predict_effects_table(zone_set: ZoneSet) -> dict[str, PredictedEffects]:
    """Predicted effects for every zone (the structural effects table)."""
    predictor = EffectPredictor(zone_set.circuit,
                                zone_set.observation_points)
    return {zone.name: predictor.predict(zone) for zone in zone_set.zones}


def diagnostic_only_nets(circuit: Circuit,
                         observation_points: list[ObservationPoint]
                         ) -> set[int]:
    """Nets whose *only* observable effect is on diagnostic alarms.

    These are the checker-disagreement and alarm-path nets: in a
    fault-free run they are structurally silent (two redundant
    checkers never disagree), so they cannot be toggled by any
    workload — they are exercised by fault injection instead.  The
    validation flow uses this set to split the toggle-coverage
    requirement of §5 step b.

    Computed by reverse reachability: a net is diagnostic-only when it
    reaches at least one alarm point and no functional/status point.
    """
    # reverse adjacency: net <- nets it is driven by... we need the
    # forward direction inverted: successor -> predecessors
    reverse: dict[int, list[int]] = {}

    def link(src: int, dst: int) -> None:
        reverse.setdefault(dst, []).append(src)

    for gate in circuit.gates:
        for net in gate.inputs:
            link(net, gate.out)
    for flop in circuit.flops:
        link(flop.d, flop.q)
        if flop.en is not None:
            link(flop.en, flop.q)
        if flop.rst is not None:
            link(flop.rst, flop.q)
    for mem in circuit.memories:
        for src in (*mem.addr, *mem.wdata, mem.we):
            for dst in mem.rdata:
                link(src, dst)

    def reach_back(roots) -> set[int]:
        seen = set(roots)
        stack = list(roots)
        while stack:
            net = stack.pop()
            for pred in reverse.get(net, ()):
                if pred not in seen:
                    seen.add(pred)
                    stack.append(pred)
        return seen

    from .model import ObservationKind
    alarm_roots: list[int] = []
    func_roots: list[int] = []
    for point in observation_points:
        if point.kind is ObservationKind.ALARM:
            alarm_roots.extend(point.nets)
        else:
            func_roots.extend(point.nets)
    reaches_alarm = reach_back(alarm_roots)
    reaches_func = reach_back(func_roots)
    return reaches_alarm - reaches_func
