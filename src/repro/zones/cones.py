"""Logic-cone analysis (paper §3).

For every sensible zone the extraction tool collects "the composition of
the logic cone in front of each sensible zone (i.e. gate-count,
interconnections and so forth) and the correlation between each sensible
zone in terms of shared gates and nets".  This module computes exactly
those statistics from the netlist, by backward traversal bounded at
sequential elements (flop outputs, memory read data) and primary inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from ..hdl.netlist import Circuit, OP_BUF, OP_CONST0, OP_CONST1


@dataclass
class Cone:
    """The combinational input cone of a set of nets."""

    roots: tuple[int, ...]
    gates: frozenset[int]
    boundary_nets: frozenset[int]   # flop q / mem rdata / PI nets feeding it
    depth: int

    @property
    def gate_count(self) -> int:
        return len(self.gates)


class ConeAnalyzer:
    """Backward-cone computation with memoized per-net traversal."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self._driver = circuit.driver_map()
        self._sources = self._source_nets()
        self._cache: dict[int, tuple[frozenset[int], frozenset[int], int]] \
            = {}

    def _source_nets(self) -> set[int]:
        sources = set(self.circuit.input_nets())
        for flop in self.circuit.flops:
            sources.add(flop.q)
        for mem in self.circuit.memories:
            sources.update(mem.rdata)
        return sources

    def _net_cone(self, net: int) -> tuple[frozenset[int], frozenset[int],
                                           int]:
        """(gates, boundary nets, depth) of the cone driving ``net``.

        Iterative DFS with memoization; the netlist is acyclic in its
        combinational part (guaranteed by Circuit.validate).
        """
        cached = self._cache.get(net)
        if cached is not None:
            return cached

        stack = [net]
        postorder: list[int] = []
        visiting: set[int] = set()
        while stack:
            n = stack.pop()
            if n in self._cache or n in visiting:
                continue
            if n in self._sources or n not in self._driver:
                self._cache[n] = (frozenset(), frozenset({n}), 0)
                continue
            desc = self._driver[n]
            if desc[0] != "gate":
                self._cache[n] = (frozenset(), frozenset({n}), 0)
                continue
            visiting.add(n)
            postorder.append(n)
            gate = self.circuit.gates[desc[1]]
            for src in gate.inputs:
                if src not in self._cache:
                    stack.append(src)

        # resolve in reverse discovery order until fixpoint
        pending = postorder
        while pending:
            still: list[int] = []
            for n in pending:
                desc = self._driver[n]
                gate_idx = desc[1]
                gate = self.circuit.gates[gate_idx]
                parts = []
                ok = True
                for src in gate.inputs:
                    got = self._cache.get(src)
                    if got is None:
                        ok = False
                        break
                    parts.append(got)
                if not ok:
                    still.append(n)
                    continue
                gates = frozenset({gate_idx}).union(
                    *(p[0] for p in parts)) if parts \
                    else frozenset({gate_idx})
                boundary = frozenset().union(*(p[1] for p in parts)) \
                    if parts else frozenset()
                depth = 1 + max((p[2] for p in parts), default=0)
                self._cache[n] = (gates, boundary, depth)
            if len(still) == len(pending):
                raise RuntimeError("cone resolution stalled "
                                   "(combinational cycle?)")
            pending = still
        return self._cache[net]

    # ------------------------------------------------------------------
    def cone_of_nets(self, nets) -> Cone:
        """Combined input cone of several nets (e.g. a register's d pins)."""
        gates: set[int] = set()
        boundary: set[int] = set()
        depth = 0
        roots = tuple(nets)
        for net in roots:
            g, b, d = self._net_cone(net)
            gates |= g
            boundary |= b
            depth = max(depth, d)
        return Cone(roots=roots, gates=frozenset(gates),
                    boundary_nets=frozenset(boundary), depth=depth)

    def cone_of_zone_inputs(self, zone) -> Cone:
        """Cone feeding a zone: the logic in front of its state/nets.

        For register zones this is the cone of the flop d (and enable /
        reset) pins; for other zones, the cone of the zone nets
        themselves.
        """
        from .model import ZoneKind
        nets: list[int] = []
        if zone.kind is ZoneKind.REGISTER:
            by_name = {f.name: f for f in self.circuit.flops}
            for fname in zone.flops:
                flop = by_name[fname]
                nets.append(flop.d)
                if flop.en is not None:
                    nets.append(flop.en)
                if flop.rst is not None:
                    nets.append(flop.rst)
        elif zone.kind is ZoneKind.MEMORY and zone.memory is not None:
            mem = next(m for m in self.circuit.memories
                       if m.name == zone.memory)
            nets.extend(mem.addr)
            nets.extend(mem.wdata)
            nets.append(mem.we)
        else:
            nets.extend(zone.nets)
        return self.cone_of_nets(nets)

    def effective_gate_count(self, cone: Cone) -> int:
        """Gate count excluding zero-area cells (buffers, ties)."""
        skip = (OP_BUF, OP_CONST0, OP_CONST1)
        return sum(1 for gi in cone.gates
                   if self.circuit.gates[gi].op not in skip)


@dataclass
class CorrelationReport:
    """Shared-logic correlation between zone cones (§3 'wide' faults)."""

    shared_gates: dict[tuple[str, str], int] = field(default_factory=dict)
    gate_zone_count: dict[int, int] = field(default_factory=dict)

    def correlated_pairs(self, min_shared: int = 1):
        return sorted(((pair, n) for pair, n in self.shared_gates.items()
                       if n >= min_shared),
                      key=lambda item: -item[1])

    @property
    def wide_gate_count(self) -> int:
        """Gates contributing to more than one zone cone."""
        return sum(1 for n in self.gate_zone_count.values() if n > 1)


def correlate_zones(zone_cones: dict[str, Cone]) -> CorrelationReport:
    """Pairwise shared-gate counts between zone cones."""
    gate_to_zones: dict[int, list[str]] = {}
    for name, cone in zone_cones.items():
        for gate in cone.gates:
            gate_to_zones.setdefault(gate, []).append(name)

    report = CorrelationReport()
    for gate, names in gate_to_zones.items():
        report.gate_zone_count[gate] = len(names)
        if len(names) > 1:
            for a, b in combinations(sorted(names), 2):
                key = (a, b)
                report.shared_gates[key] = report.shared_gates.get(key, 0) + 1
    return report
