"""``soc-fmea`` command-line interface.

Exposes the methodology end to end from a shell::

    soc-fmea zones --variant improved
    soc-fmea fmea --variant baseline --csv baseline.csv
    soc-fmea validate --variant improved --quick
    soc-fmea sensitivity --variant improved
    soc-fmea verilog --variant baseline -o memss.v
    soc-fmea compare
"""

from __future__ import annotations

import argparse
import os
import sys

from . import __version__
from .fmea.report import full_report
from .fmea.sensitivity import stability_report
from .hdl.verilog import write_verilog
from .iec61508.sil import SIL, max_sil
from .reporting.tables import pct, render_kv, render_table
from .soc.config import SubsystemConfig
from .soc.subsystem import MemorySubsystem


#: exit-code taxonomy and store-path resolution live with the
#: service core (docs/methodology.md §4e/§4g); re-exported here for
#: backward compatibility
from .service.core import (  # noqa: E402 — after the header imports
    DEFAULT_STORE,
    EXIT_DIAGNOSTIC,
    EXIT_FAILURE,
    EXIT_OK,
    EXIT_QUARANTINE,
    make_subsystem,
    resolve_store_root,
)


def resolve_store_path(args) -> str:
    """``--store`` beats ``$SOCFMEA_STORE`` beats the default."""
    return resolve_store_root(getattr(args, "store", None))


def _open_store(args):
    from .store import CampaignCache
    return CampaignCache(resolve_store_path(args))


def _make_subsystem(args) -> MemorySubsystem:
    return make_subsystem(args.variant)


def cmd_zones(args) -> int:
    if args.netlist:
        from .hdl.verilog import parse_verilog_file
        from .zones.extractor import extract_zones
        circuit = parse_verilog_file(args.netlist)
        zone_set = extract_zones(circuit)
        title = f"sensible zones of {circuit.name}"
    else:
        sub = _make_subsystem(args)
        zone_set = sub.extract_zones()
        title = f"sensible zones of {sub.cfg.name}"
    print(render_kv(sorted(zone_set.summary().items()), title=title))
    if args.list:
        rows = [[z.name, z.kind.value, z.size_bits, z.cone_gates]
                for z in zone_set.zones]
        print(render_table(["zone", "kind", "bits", "cone gates"], rows))
    if args.save:
        from .zones.io import save_zones
        save_zones(zone_set, args.save)
        print(f"zone config written to {args.save}")
    return EXIT_OK


def cmd_fmea(args) -> int:
    if args.load:
        from .fmea.io import load_worksheet
        sheet = load_worksheet(args.load)
    else:
        sub = _make_subsystem(args)
        sheet = sub.worksheet()
    print(full_report(sheet, hft=args.hft, top=args.top))
    if args.csv:
        sheet.save_csv(args.csv)
        print(f"\nworksheet written to {args.csv}")
    if args.save:
        from .fmea.io import save_worksheet
        save_worksheet(sheet, args.save)
        print(f"worksheet written to {args.save}")
    return EXIT_OK


def cmd_validate(args) -> int:
    from .faultinjection.validation import ValidationConfig, \
        run_validation
    sub = _make_subsystem(args)
    report = run_validation(sub, config=ValidationConfig(
        quick=not args.full))
    print(report.summary())
    if report.coverage is not None:
        print(report.coverage.report())
    return 0 if report.passed else 1


def cmd_sensitivity(args) -> int:
    sub = _make_subsystem(args)
    report = stability_report(sub.worksheet())
    print(report.summary())
    stable = report.stable(args.tolerance)
    print(f"stable at ±{args.tolerance * 100:.1f} pt: "
          f"{'yes' if stable else 'no'}")
    return 0


def cmd_verilog(args) -> int:
    sub = _make_subsystem(args)
    text = write_verilog(sub.circuit)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"netlist written to {args.output} "
              f"({len(text.splitlines())} lines)")
    else:
        sys.stdout.write(text)
    return 0


def cmd_xcheck(args) -> int:
    """Reset-coverage / X-propagation sign-off check."""
    from .hdl.xprop import reset_coverage
    sub = _make_subsystem(args)
    reset = [sub.reset_op() for _ in range(args.reset_cycles)]
    check = [sub.write(2, 0x11), sub.idle(), sub.idle(),
             sub.read(2), sub.idle(), sub.idle(), sub.idle()]
    report = reset_coverage(sub.circuit, reset, check)
    print(report.summary())
    if args.list and report.unknown_after_reset:
        for name in report.unknown_after_reset:
            print(f"  X: {name}")
    print("sign-off:", "CLEAN (no X observable at outputs)"
          if report.clean else "FAIL — X reaches outputs")
    return 0 if report.clean else 1


def cmd_derating(args) -> int:
    """Measure the SET latch-window derating on the design."""
    from .analysis.derating import measure_set_derating
    from .soc.workloads import validation_workload
    sub = _make_subsystem(args)
    workload = validation_workload(sub, quick=True)
    result = measure_set_derating(
        sub.circuit, list(workload), samples=args.samples,
        seed=args.seed, setup=lambda s: sub.preload(s, {}))
    print(result.summary())
    print(f"apply to FitModel.gate_transient_fit: multiply the raw "
          f"SET rate by {result.latch_fraction:.3f}")
    return 0


def cmd_dossier(args) -> int:
    """Full certification dossier: FMEA + validation + sensitivity."""
    from .faultinjection.validation import ValidationConfig, \
        run_validation
    from .reporting.dossier import build_dossier
    sub = _make_subsystem(args)
    zone_set = sub.extract_zones()
    sheet = sub.worksheet(zone_set)
    validation = None
    if not args.no_validation:
        validation = run_validation(sub, config=ValidationConfig())
    text = build_dossier(sub.cfg.name, sub, zone_set, sheet,
                         validation=validation,
                         target_sil=SIL(args.target_sil),
                         hft=args.hft)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"dossier written to {args.output}")
    else:
        print(text)
    return 0


def cmd_campaign(args) -> int:
    """Run the zone fault-injection campaign, optionally sharded.

    Thin shell over :class:`~repro.service.core.CampaignService` —
    the same core the ``serve`` daemon executes queued jobs through —
    printing its buffered output and propagating its exit code.
    """
    from .service.core import CampaignRequest, CampaignService

    progress = None
    if args.progress:
        def progress(done, total):
            print(f"  {done}/{total} faults simulated", flush=True)

    service = CampaignService(resolve_store_path(args))
    outcome = service.run_campaign(CampaignRequest.from_args(args),
                                   progress=progress)
    if outcome.out:
        print(outcome.out)
    if outcome.err:
        print(outcome.err, file=sys.stderr)
    return outcome.exit_code


def cmd_explore(args) -> int:
    """Design-space exploration: walk the cost-vs-SFF Pareto front.

    Exit 0 when the recommended configuration meets the SFF target,
    3 when the search ended (budget or frontier exhausted) below it.
    """
    from .explore import ExploreConfig, explore, render_explore_dossier
    from .service.core import CampaignService

    if args.banks < 1:
        print("error: --banks must be at least 1", file=sys.stderr)
        return EXIT_DIAGNOSTIC
    if args.budget < 1:
        print("error: --budget must be at least 1", file=sys.stderr)
        return EXIT_DIAGNOSTIC

    service = CampaignService(resolve_store_path(args),
                              project=args.project)
    config = ExploreConfig(
        variant=args.variant, banks=args.banks,
        target_sff=args.target_sff, hft=args.hft,
        budget=args.budget, probe_width=args.probe_width,
        full=args.full, engine=args.engine, workers=args.workers,
        use_queue=not args.no_queue, project=args.project,
        verify=not args.no_verify)
    progress = None
    if not args.quiet:
        def progress(line):
            print(f"  {line}", flush=True)
    result = explore(service, config, progress=progress)
    text = render_explore_dossier(result)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"exploration dossier written to {args.output}")
    else:
        print(text)
    return EXIT_OK if result.target_met else EXIT_QUARANTINE


def cmd_serve(args) -> int:
    """Run the campaign job-queue daemon (claim, execute, recover).

    With ``--http HOST:PORT`` the process additionally fronts the
    queue with the campaign API (``repro.api``): the asyncio server
    owns the sockets while the daemon's claim loops run as embedded
    worker threads, so one SIGTERM drains both — in-flight responses
    finish, worker leases release.
    """
    from .service.daemon import DaemonConfig, ServiceDaemon

    if args.workers < 1:
        print("error: --workers must be at least 1", file=sys.stderr)
        return EXIT_DIAGNOSTIC
    if args.lease <= 0 or args.heartbeat_interval <= 0:
        print("error: --lease and --heartbeat-interval must be "
              "positive", file=sys.stderr)
        return EXIT_DIAGNOSTIC
    if args.heartbeat_interval >= args.lease:
        print("error: --heartbeat-interval must be shorter than "
              "--lease, or the lease expires between renewals",
              file=sys.stderr)
        return EXIT_DIAGNOSTIC
    store_root = resolve_store_path(args)
    config = DaemonConfig(
        workers=args.workers, lease_seconds=args.lease,
        heartbeat_interval=args.heartbeat_interval,
        poll_interval=args.poll_interval, drain=args.drain,
        verbose=not args.quiet)
    if not args.http:
        daemon = ServiceDaemon(store_root, config)
        return daemon.serve()

    from .api.server import ApiConfig, ApiServer
    host, _, port_text = args.http.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        print(f"error: --http wants HOST:PORT, got {args.http!r}",
              file=sys.stderr)
        return EXIT_DIAGNOSTIC
    if args.max_queue_depth < 1:
        print("error: --max-queue-depth must be at least 1",
              file=sys.stderr)
        return EXIT_DIAGNOSTIC
    daemon = None
    if not args.no_workers:
        daemon = ServiceDaemon(store_root, config)
    server = ApiServer(store_root, ApiConfig(
        host=host or "127.0.0.1", port=port,
        auth_path=args.auth,
        max_queue_depth=args.max_queue_depth,
        verbose=not args.quiet), daemon=daemon)
    return server.run()


def cmd_chaos(args) -> int:
    """Self-FMEA: inject infrastructure failpoints, verify recovery.

    Sweeps the enumerated failure modes of the store/queue/daemon
    stack (or a ``--failpoint`` / ``--quick`` subset), running each
    as a real campaign in a subprocess with the failpoint armed, and
    renders the worksheet: failure mode → detection → recovery →
    harness-verified verdict.  Exit 0 only when every executed mode
    verified.
    """
    import json
    import tempfile

    from .chaos import build_worksheet, registry, scenarios
    from .chaos.harness import ChaosHarness
    from .reporting.chaos import render_failpoint_list, \
        render_self_fmea

    if args.list:
        print(render_failpoint_list(registry()))
        return EXIT_OK

    selected = scenarios()
    if args.failpoint:
        known = {s.name for s in registry()}
        missing = [name for name in args.failpoint
                   if name not in known]
        if missing:
            print(f"error: unknown failpoint(s): "
                  f"{', '.join(missing)} (see soc-fmea chaos "
                  f"--list)", file=sys.stderr)
            return EXIT_DIAGNOSTIC
        selected = [s for s in selected
                    if s.failpoint in set(args.failpoint)]
    if args.kind:
        selected = [s for s in selected if s.kind == args.kind]
    if args.quick:
        selected = [s for s in selected if s.smoke]
    if not selected:
        print("error: the filters match no chaos scenario",
              file=sys.stderr)
        return EXIT_DIAGNOSTIC

    progress = None
    if not args.quiet:
        def progress(line):
            print(f"  chaos: {line}", flush=True)

    def run(workdir) -> int:
        harness = ChaosHarness(workdir, variant=args.variant,
                               progress=progress,
                               timeout=args.timeout)
        results = harness.sweep(selected)
        worksheet = build_worksheet(results)
        if args.json:
            text = json.dumps(worksheet.as_dict(), indent=1,
                              sort_keys=True)
        else:
            text = render_self_fmea(worksheet)
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(text + "\n")
            print(f"self-FMEA report written to {args.output}")
            if args.json:
                # the file holds the machine copy; keep the log human
                print(render_self_fmea(worksheet))
            else:
                print(f"{worksheet.verified} verified, "
                      f"{worksheet.failed} failed, "
                      f"{worksheet.not_run} not run")
        else:
            print(text)
        return EXIT_OK if worksheet.ok else EXIT_FAILURE

    if args.workdir:
        return run(args.workdir)
    with tempfile.TemporaryDirectory(prefix="soc-fmea-chaos-") \
            as workdir:
        return run(workdir)


def cmd_jobs(args) -> int:
    """Submit and manage queued campaign jobs (executed by serve)."""
    from .reporting.jobs import render_job_detail, render_job_table
    from .service.core import CampaignRequest, CampaignService
    from .service.queue import JOB_DEAD

    service = CampaignService(
        resolve_store_path(args),
        project=getattr(args, "project", None) or "default")
    cmd = args.jobs_command

    if cmd == "submit":
        if args.max_attempts is not None and args.max_attempts < 1:
            print("error: --max-attempts must be at least 1",
                  file=sys.stderr)
            return EXIT_DIAGNOSTIC
        job_id, deduped = service.submit_dedup(
            CampaignRequest.from_args(args),
            max_attempts=args.max_attempts,
            idempotency_key=args.idempotency_key)
        if deduped:
            print(f"job #{job_id} already queued under idempotency "
                  f"key {args.idempotency_key!r} (project "
                  f"{service.project}) — not re-enqueued")
        else:
            print(f"queued job #{job_id} (project {service.project})"
                  f" — execute with 'soc-fmea serve'")
        return EXIT_OK

    if cmd == "list":
        jobs = service.list_jobs(status=args.status,
                                 project=args.project)
        if not jobs:
            print("no jobs recorded")
        else:
            print(render_job_table(jobs))
        with service.open_queue() as queue:
            dead = queue.counts().get(JOB_DEAD, 0)
        if dead:
            print(f"{dead} dead-letter job(s) — inspect with "
                  f"'soc-fmea jobs status <id>', fix the cause, then "
                  f"'soc-fmea jobs retry <id>'", file=sys.stderr)
            return EXIT_QUARANTINE
        return EXIT_OK

    job = service.status(args.job_id)
    if job is None:
        print(f"error: no job #{args.job_id}", file=sys.stderr)
        return EXIT_FAILURE
    if cmd == "status":
        if getattr(args, "follow", False):
            job = _follow_job(service, job, args.interval)
        print(render_job_detail(job))
        return EXIT_QUARANTINE if job.status == JOB_DEAD else EXIT_OK
    if cmd == "cancel":
        if not service.cancel(args.job_id):
            print(f"error: job #{args.job_id} is {job.status} — only "
                  f"queued, leased or running jobs can be cancelled",
                  file=sys.stderr)
            return EXIT_FAILURE
        print(f"job #{args.job_id} cancelled")
        return EXIT_OK
    if cmd == "retry":
        if not service.retry(args.job_id):
            print(f"error: job #{args.job_id} is {job.status} — only "
                  f"dead-letter or cancelled jobs can be retried",
                  file=sys.stderr)
            return EXIT_FAILURE
        print(f"job #{args.job_id} re-queued with a fresh attempt "
              f"budget")
        return EXIT_OK
    raise AssertionError(cmd)


def _follow_job(service, job, interval: float):
    """Poll one job until terminal, printing the API stream's
    state-snapshot events (same formatting, no server needed)."""
    import time as _time

    from .api.events import (
        TERMINAL_STATES,
        event_key,
        format_event,
        job_event,
    )

    last = None
    while True:
        event = job_event(job)
        key = event_key(event)
        if key != last:
            print(format_event(event), flush=True)
            last = key
        if job.status in TERMINAL_STATES:
            return job
        _time.sleep(interval)
        refreshed = service.status(job.job_id)
        if refreshed is None:
            return job                 # deleted under us: last word
        job = refreshed


def cmd_doctor(args) -> int:
    """Audit project artifacts; report every problem, change nothing."""
    from .diagnostics import audit_project, discover_project

    found = discover_project(args.project)
    paths = {kind: getattr(args, kind, None) or found.get(kind)
             for kind in ("netlist", "zones", "worksheet", "stimuli")}
    store = None
    if not args.no_store:
        store = (getattr(args, "store", None)
                 or os.environ.get("SOCFMEA_STORE")
                 or found.get("store"))
    audit = audit_project(store=store, **paths)
    if args.json:
        print(audit.report.to_json(indent=1))
    else:
        print(audit.report.render(title="soc-fmea doctor"))
        print(audit.summary())
    return EXIT_OK if audit.ok else EXIT_DIAGNOSTIC


def cmd_export(args) -> int:
    """Write a self-consistent project directory for one variant.

    The exported ``netlist.v`` / ``zones.json`` / ``worksheet.json``
    / ``stimuli.json`` form a project that ``soc-fmea doctor`` audits
    cleanly — and the natural starting point for editing any one
    artifact and letting ``doctor`` flag the drift.
    """
    from pathlib import Path

    from .faultinjection import build_environment
    from .faultinjection.environment import save_stimuli
    from .fmea.io import save_worksheet
    from .zones.io import save_zones

    sub = _make_subsystem(args)
    env = build_environment(sub, quick=not args.full)
    outdir = Path(args.output)
    outdir.mkdir(parents=True, exist_ok=True)
    (outdir / "netlist.v").write_text(write_verilog(env.circuit))
    save_zones(env.zone_set, outdir / "zones.json")
    save_worksheet(env.worksheet, outdir / "worksheet.json")
    save_stimuli(env.stimuli, outdir / "stimuli.json")
    print(f"project exported to {outdir}/ (netlist.v, zones.json, "
          f"worksheet.json, stimuli.json)")
    return EXIT_OK


def cmd_store(args) -> int:
    """Inspect, query, diff and collect the campaign store."""
    import json

    from .store import diff_runs, gc_store, store_stats
    from .store.query import run_summary_rows

    cache = _open_store(args)
    try:
        if args.store_command == "stats":
            print(render_kv(store_stats(cache).as_pairs(),
                            title="=== campaign store ==="))
            return 0

        if args.store_command == "query":
            if args.run is not None:
                run = cache.db.run(args.run)
                if run is None:
                    print(f"error: no recorded run #{args.run}",
                          file=sys.stderr)
                    return 1
                pairs = [(k, run[k]) for k in
                         ("run_id", "status", "design", "faults",
                          "hits", "misses", "workers",
                          "wall_seconds")]
                counts = json.loads(run["outcome_counts"] or "{}")
                pairs += [("outcome " + k, v)
                          for k, v in counts.items()]
                if run["measured_dc"] is not None:
                    pairs.append(("measured DC",
                                  pct(run["measured_dc"])))
                if run["safe_fraction"] is not None:
                    pairs.append(("safe fraction",
                                  pct(run["safe_fraction"])))
                attempts = cache.db.shard_attempt_rows(args.run)
                if attempts:
                    failed = sum(1 for a in attempts
                                 if a["status"] != "ok")
                    pairs.append(("shard attempts",
                                  f"{len(attempts)} "
                                  f"({failed} failed)"))
                print(render_kv(pairs,
                                title=f"=== run #{args.run} ==="))
                anomalies = cache.db.anomaly_rows(run_id=args.run)
                if anomalies:
                    print(render_table(
                        ["fault", "zone", "kind", "attempts",
                         "worker"],
                        [[a.fault_name, a.zone or "?", a.kind,
                          a.attempts, a.worker or "-"]
                         for a in anomalies],
                        title="quarantined faults"))
                return 0
            rows = run_summary_rows(cache, limit=args.limit,
                                    design=args.design)
            if not rows:
                print("store has no recorded runs")
                return 0
            print(render_table(
                ["run", "status", "design", "faults", "hits",
                 "misses", "DC", "safe", "DU", "Q", "wall"],
                rows, title="=== recorded campaign runs ==="))
            return 0

        if args.store_command == "diff":
            from .reporting.rundiff import render_run_diff
            try:
                diff = diff_runs(cache, args.run_a, args.run_b)
            except ValueError as err:
                print(f"error: {err}", file=sys.stderr)
                return 1
            print(render_run_diff(diff))
            return 1 if diff.regressed_zones() else 0

        if args.store_command == "fsck":
            from .store.fsck import fsck_store
            result = fsck_store(cache, repair=args.repair)
            print(result.report.render(title="store fsck"))
            for line in result.repaired:
                print(f"repaired: {line}")
            print(result.summary())
            return (EXIT_OK if result.report.ok
                    else EXIT_DIAGNOSTIC)

        if args.store_command == "gc":
            result = gc_store(cache, keep_runs=args.keep)
            print(render_kv([
                ("runs removed", result.runs_removed),
                ("outcomes removed", result.outcomes_removed),
                ("blobs removed", result.blobs_removed),
                ("bytes reclaimed", result.bytes_reclaimed),
            ], title=f"=== store gc (kept last {args.keep} "
                     f"runs) ==="))
            return 0
        raise AssertionError(args.store_command)
    finally:
        cache.close()


def cmd_compare(args) -> int:
    """Baseline vs improved headline metrics (the §6 experiment)."""
    rows = []
    for label, factory in (("baseline", SubsystemConfig.baseline),
                           ("improved", SubsystemConfig.improved)):
        sub = MemorySubsystem(factory())
        zone_set = sub.extract_zones()
        totals = sub.worksheet(zone_set).totals()
        granted = max_sil(totals.sff, hft=0)
        rows.append([label, len(zone_set), pct(totals.sff),
                     pct(totals.dc),
                     granted.name if granted else "none",
                     "yes" if granted and granted >= SIL.SIL3
                     else "no"])
    print(render_table(
        ["variant", "zones", "SFF", "DC", "SIL @ HFT=0", "SIL3?"],
        rows, title="=== §6 experiment: baseline vs improved ==="))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="soc-fmea",
        description="SoC-level FMEA for IEC 61508 (DATE'07 "
                    "reproduction)")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    parser.add_argument(
        "--store", default=None, metavar="PATH",
        help="campaign-store directory (default: $SOCFMEA_STORE or "
             f"{DEFAULT_STORE}/)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_store(p):
        # SUPPRESS keeps a top-level ``--store`` from being clobbered
        # by the subparser's default when the flag follows the command
        p.add_argument(
            "--store", default=argparse.SUPPRESS, metavar="PATH",
            help="campaign-store directory (default: $SOCFMEA_STORE "
                 f"or {DEFAULT_STORE}/)")

    def add_variant(p):
        p.add_argument("--variant", default="improved",
                       choices=["baseline", "improved",
                                "small-baseline", "small-improved"])

    p = sub.add_parser("zones", help="extract sensible zones")
    add_variant(p)
    p.add_argument("--list", action="store_true",
                   help="print every zone")
    p.add_argument("--netlist", metavar="FILE",
                   help="extract from a structural Verilog netlist "
                        "instead of a built-in variant")
    p.add_argument("--save", metavar="FILE",
                   help="write the extracted zones as a zone-config "
                        "JSON file")
    p.set_defaults(func=cmd_zones)

    p = sub.add_parser("fmea", help="build and print the worksheet")
    add_variant(p)
    p.add_argument("--hft", type=int, default=0)
    p.add_argument("--top", type=int, default=15)
    p.add_argument("--csv", help="also export the sheet as CSV")
    p.add_argument("--load", metavar="FILE",
                   help="report on a saved worksheet JSON file "
                        "instead of building one")
    p.add_argument("--save", metavar="FILE",
                   help="write the worksheet as JSON")
    p.set_defaults(func=cmd_fmea)

    p = sub.add_parser("validate",
                       help="run the §5 fault-injection validation")
    add_variant(p)
    p.add_argument("--full", action="store_true",
                   help="use the full (slow) campaign workload")
    p.set_defaults(func=cmd_validate)

    p = sub.add_parser("sensitivity",
                       help="span S/D/F and fault-model assumptions")
    add_variant(p)
    p.add_argument("--tolerance", type=float, default=0.005)
    p.set_defaults(func=cmd_sensitivity)

    p = sub.add_parser("verilog", help="dump the structural netlist")
    add_variant(p)
    p.add_argument("-o", "--output")
    p.set_defaults(func=cmd_verilog)

    p = sub.add_parser("xcheck",
                       help="reset-coverage / X-propagation check")
    add_variant(p)
    p.add_argument("--reset-cycles", type=int, default=3)
    p.add_argument("--list", action="store_true",
                   help="list flops still X after reset")
    p.set_defaults(func=cmd_xcheck)

    p = sub.add_parser("derating",
                       help="measure the SET latch-window derating")
    add_variant(p)
    p.add_argument("--samples", type=int, default=200)
    p.add_argument("--seed", type=int, default=20)
    p.set_defaults(func=cmd_derating)

    p = sub.add_parser("dossier",
                       help="full certification dossier")
    add_variant(p)
    p.add_argument("--target-sil", type=int, default=3,
                   choices=[1, 2, 3, 4])
    p.add_argument("--hft", type=int, default=0)
    p.add_argument("--no-validation", action="store_true",
                   help="skip the injection campaign (faster)")
    p.add_argument("-o", "--output")
    p.set_defaults(func=cmd_dossier)

    def add_campaign_flags(p):
        # shared by ``campaign`` and ``jobs submit`` — together these
        # flags define one CampaignRequest (service/core.py)
        add_variant(p)
        p.add_argument(
            "--banks", type=int, default=1,
            help="replicate the variant into an N-bank scaled design "
                 "behind a shared bus (default: 1 = the flat variant)")
        p.add_argument(
            "--workers", type=int, default=1,
            help="worker processes (1 = in-process serial run)")
        p.add_argument("--shards", type=int, default=None,
                       help="shard count (default: one per worker)")
        p.add_argument("--sample", type=int, default=None,
                       help="randomly down-sample the fault list")
        p.add_argument(
            "--machines-per-pass", type=int, default=None,
            help="faults batched per simulation pass (default: "
                 "engine-specific, 1023 compiled / 48 interpreted)")
        p.add_argument(
            "--engine", choices=("compiled", "interpreted"),
            default="compiled",
            help="simulation kernel: the compiled numpy engine "
                 "(falls back per pass when a construct is "
                 "unsupported) or the big-int interpreter")
        p.add_argument("--full", action="store_true",
                       help="use the full (slow) campaign workload")
        add_store(p)
        p.add_argument("--no-cache", action="store_true",
                       help="skip the campaign store: simulate every "
                            "fault and record nothing")
        p.add_argument(
            "--shard-timeout", type=float, default=None,
            metavar="SECONDS",
            help="kill and retry a shard whose worker exceeds "
                 "this wall-clock budget")
        p.add_argument(
            "--cycle-budget", type=int, default=None,
            metavar="CYCLES",
            help="per-pass simulator cycle watchdog: a runaway "
                 "pass is quarantined as a hang")
        p.add_argument(
            "--max-retries", type=int, default=2,
            help="failed-shard retries before bisecting to "
                 "isolate the poison fault (default: 2)")
        p.add_argument(
            "--no-quarantine", action="store_true",
            help="abort the campaign on an inexecutable fault "
                 "instead of quarantining it")
        p.add_argument(
            "--no-supervise", action="store_true",
            help="run the bare campaign engine without the "
                 "fault-tolerant supervisor")
        p.add_argument(
            "--zones", metavar="FILE",
            help="restrict the campaign to a zone-config "
                 "file, cross-checked against the netlist")
        p.add_argument(
            "--stimuli", metavar="FILE",
            help="drive the campaign with a stimuli file "
                 "instead of the built-in workload")
        strictness = p.add_mutually_exclusive_group()
        strictness.add_argument(
            "--strict", action="store_true",
            help="abort with coded diagnostics when any configured "
                 "zone fails to resolve (default)")
        strictness.add_argument(
            "--degraded", action="store_true",
            help="skip unresolvable zones, run the rest, and bound "
                 "DC/SFF for the lost evidence (exit 3)")

    p = sub.add_parser("campaign",
                       help="run the injection campaign "
                            "(optionally across worker processes)")
    add_campaign_flags(p)
    p.add_argument("--progress", action="store_true",
                   help="print per-shard progress lines")
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser(
        "explore",
        help="design-space exploration: Pareto search over "
             "protection mechanisms via incremental campaigns")
    p.add_argument("--variant", default="baseline",
                   choices=["baseline", "improved",
                            "small-baseline", "small-improved"],
                   help="base variant the search starts from "
                        "(default: baseline)")
    p.add_argument("--banks", type=int, default=2,
                   help="banks of the scaled design under search "
                        "(default: 2)")
    p.add_argument("--target-sff", type=float, default=0.99,
                   metavar="FRACTION",
                   help="stop once claimed SFF reaches this "
                        "(default: 0.99 = SIL3 @ HFT=0)")
    p.add_argument("--hft", type=int, default=0,
                   help="hardware fault tolerance for SIL claims")
    p.add_argument("--budget", type=int, default=12,
                   help="campaign budget: maximum evaluated points "
                        "including the base (default: 12)")
    p.add_argument("--probe-width", type=int, default=3,
                   help="candidate steps scored analytically per "
                        "iteration (default: 3)")
    p.add_argument("--full", action="store_true",
                   help="use the full (slow) campaign workload")
    p.add_argument("--engine", choices=("compiled", "interpreted"),
                   default="compiled")
    p.add_argument("--workers", type=int, default=1,
                   help="campaign worker processes per evaluation")
    p.add_argument("--no-queue", action="store_true",
                   help="run evaluations in-process instead of "
                        "through the durable job queue")
    p.add_argument("--no-verify", action="store_true",
                   help="skip the warm verification re-run of the "
                        "recommended configuration")
    p.add_argument("--project", default="default",
                   help="store namespace the evaluations land in")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-step progress lines")
    add_store(p)
    p.add_argument("-o", "--output",
                   help="write the dossier to a file instead of "
                        "stdout")
    p.set_defaults(func=cmd_explore)

    p = sub.add_parser(
        "serve", help="run the job-queue daemon: claim queued "
                      "campaigns, execute them, recover leases of "
                      "dead workers")
    add_store(p)
    p.add_argument("--workers", type=int, default=1,
                   help="claim loops to run (N>1 forks child "
                        "processes and replaces any that die)")
    p.add_argument("--lease", type=float, default=30.0,
                   metavar="SECONDS",
                   help="job lease length granted on claim and "
                        "renewed per heartbeat (default: 30)")
    p.add_argument("--heartbeat-interval", type=float, default=1.0,
                   metavar="SECONDS",
                   help="how often a running job renews its lease "
                        "(default: 1)")
    p.add_argument("--poll-interval", type=float, default=0.5,
                   metavar="SECONDS",
                   help="idle sleep between claim attempts "
                        "(default: 0.5)")
    p.add_argument("--drain", action="store_true",
                   help="exit once the queue holds no actionable "
                        "work instead of serving forever")
    p.add_argument("--http", metavar="HOST:PORT", default=None,
                   help="also serve the campaign HTTP/JSON API on "
                        "this address (docs §4j); port 0 picks an "
                        "ephemeral port")
    p.add_argument("--auth", metavar="FILE", default=None,
                   help="token/quota file for the HTTP API "
                        "(omit = open single-user mode)")
    p.add_argument("--max-queue-depth", type=int, default=64,
                   metavar="N",
                   help="HTTP admission watermark: shed submits "
                        "with 429 once this many jobs are active "
                        "(default: 64)")
    p.add_argument("--no-workers", action="store_true",
                   help="with --http: serve the API only, leaving "
                        "execution to separate serve daemons on "
                        "the same store")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-job lifecycle lines")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "jobs", help="submit and manage queued campaign jobs")
    add_store(p)
    jobs_sub = p.add_subparsers(dest="jobs_command", required=True)

    sp = jobs_sub.add_parser(
        "submit", help="queue a campaign for 'soc-fmea serve' "
                       "(same flags as the campaign verb)")
    add_campaign_flags(sp)
    sp.add_argument("--project", default="default",
                    help="store namespace the job's evidence lands "
                         "in (default: default = the store root)")
    sp.add_argument("--max-attempts", type=int, default=None,
                    help="execution attempts before the job is "
                         "dead-lettered (default: queue policy, 3)")
    sp.add_argument("--idempotency-key", default=None, metavar="KEY",
                    help="dedupe key: re-submitting with the same "
                         "key returns the existing job instead of "
                         "enqueuing a duplicate")
    sp.set_defaults(func=cmd_jobs)

    sp = jobs_sub.add_parser("status",
                             help="one job in detail (exit 3 if it "
                                  "is dead-lettered)")
    add_store(sp)
    sp.add_argument("job_id", type=int)
    sp.add_argument("--follow", action="store_true",
                    help="poll the job and print progress events "
                         "(the API stream's formatting, locally) "
                         "until it reaches a terminal state")
    sp.add_argument("--interval", type=float, default=0.5,
                    metavar="SECONDS",
                    help="poll period for --follow (default: 0.5)")
    sp.set_defaults(func=cmd_jobs)

    sp = jobs_sub.add_parser(
        "list", help="list jobs (exit 3 while any dead-letter job "
                     "exists)")
    add_store(sp)
    sp.add_argument("--status", default=None,
                    choices=["queued", "leased", "running", "done",
                             "dead", "cancelled"],
                    help="only jobs in this state")
    sp.add_argument("--project", default=None,
                    help="only jobs of this project")
    sp.set_defaults(func=cmd_jobs)

    sp = jobs_sub.add_parser(
        "cancel", help="cancel a queued or running job (a running "
                       "worker abandons it at its next heartbeat)")
    add_store(sp)
    sp.add_argument("job_id", type=int)
    sp.set_defaults(func=cmd_jobs)

    sp = jobs_sub.add_parser(
        "retry", help="re-queue a dead-letter or cancelled job with "
                      "a fresh attempt budget")
    add_store(sp)
    sp.add_argument("job_id", type=int)
    sp.set_defaults(func=cmd_jobs)

    p = sub.add_parser(
        "chaos", help="self-FMEA: inject infrastructure failpoints "
                      "and verify every enumerated failure mode "
                      "recovers")
    p.add_argument("--list", action="store_true",
                   help="list the failpoint registry and exit")
    p.add_argument("--failpoint", action="append", metavar="NAME",
                   help="only scenarios of this failpoint "
                        "(repeatable)")
    p.add_argument("--kind", default=None,
                   choices=["enospc", "eio", "kill", "sleep",
                            "torn"],
                   help="only scenarios of this fault kind")
    p.add_argument("--quick", action="store_true",
                   help="smoke subset (the scenarios CI runs on "
                        "pull requests)")
    p.add_argument("--variant", default="small-improved",
                   choices=["baseline", "improved",
                            "small-baseline", "small-improved"],
                   help="campaign variant driven under injection "
                        "(default: small-improved)")
    p.add_argument("--timeout", type=float, default=300.0,
                   metavar="SECONDS",
                   help="per-subprocess budget (default: 300)")
    p.add_argument("--workdir", default=None, metavar="DIR",
                   help="keep scratch stores here instead of a "
                        "temp dir")
    p.add_argument("--json", action="store_true",
                   help="machine-readable worksheet on stdout")
    p.add_argument("-o", "--output", default=None, metavar="FILE",
                   help="write the report to a file")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-scenario progress lines")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "doctor", help="audit netlist + zones + worksheet + stimuli "
                       "+ store; report all coded diagnostics")
    p.add_argument("project", nargs="?", default=".",
                   help="project directory to discover artifacts in "
                        "(default: .)")
    p.add_argument("--netlist", metavar="FILE")
    p.add_argument("--zones", metavar="FILE")
    p.add_argument("--worksheet", metavar="FILE")
    p.add_argument("--stimuli", metavar="FILE")
    add_store(p)
    p.add_argument("--no-store", action="store_true",
                   help="skip the campaign-store audit")
    p.add_argument("--json", action="store_true",
                   help="machine-readable diagnostic report on "
                        "stdout")
    p.set_defaults(func=cmd_doctor)

    p = sub.add_parser(
        "export", help="write a self-consistent project directory "
                       "(netlist, zones, worksheet, stimuli)")
    add_variant(p)
    p.add_argument("--full", action="store_true",
                   help="export the full (slow) campaign workload")
    p.add_argument("-o", "--output", required=True, metavar="DIR")
    p.set_defaults(func=cmd_export)

    p = sub.add_parser("store",
                       help="inspect and query the campaign store")
    add_store(p)
    store_sub = p.add_subparsers(dest="store_command", required=True)

    sp = store_sub.add_parser("stats", help="store-wide statistics")
    add_store(sp)
    sp.set_defaults(func=cmd_store)

    sp = store_sub.add_parser("query", help="list recorded runs")
    add_store(sp)
    sp.add_argument("--run", type=int, default=None,
                    help="show one run in detail")
    sp.add_argument("--design", default=None,
                    help="only runs of this design")
    sp.add_argument("--limit", type=int, default=20)
    sp.set_defaults(func=cmd_store)

    sp = store_sub.add_parser(
        "diff", help="compare two recorded runs zone by zone")
    add_store(sp)
    sp.add_argument("run_a", type=int, nargs="?", default=None,
                    help="reference run id (default: second newest)")
    sp.add_argument("run_b", type=int, nargs="?", default=None,
                    help="candidate run id (default: newest)")
    sp.set_defaults(func=cmd_store)

    sp = store_sub.add_parser(
        "fsck", help="audit store invariants (corrupt blobs, "
                     "dangling rows); --repair deletes broken "
                     "records so they re-simulate")
    add_store(sp)
    sp.add_argument("--repair", action="store_true",
                    help="delete every record that violates an "
                         "invariant (safe: deterministic "
                         "re-simulation restores it)")
    sp.set_defaults(func=cmd_store)

    sp = store_sub.add_parser(
        "gc", help="drop old runs and unreferenced blobs")
    add_store(sp)
    sp.add_argument("--keep", type=int, default=10,
                    help="completed runs to keep (default: 10)")
    sp.set_defaults(func=cmd_store)

    p = sub.add_parser("compare",
                       help="baseline vs improved headline table")
    p.set_defaults(func=cmd_compare)
    return parser


def main(argv=None) -> int:
    from .diagnostics import DiagnosticError
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except DiagnosticError as err:
        print(err.report.render(title="error"), file=sys.stderr)
        return EXIT_DIAGNOSTIC
    except KeyboardInterrupt:
        raise
    except BrokenPipeError:
        # the reader went away (e.g. `soc-fmea ... | head`): exit
        # quietly; devnull stdout so interpreter teardown can't raise
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return EXIT_FAILURE
    except Exception as err:   # never leak a traceback to the shell
        if os.environ.get("SOCFMEA_DEBUG") == "1":
            raise
        print(f"E001 error: internal error: "
              f"{type(err).__name__}: {err}\n"
              f"    hint: re-run with SOCFMEA_DEBUG=1 for the full "
              f"traceback", file=sys.stderr)
        return EXIT_FAILURE


if __name__ == "__main__":
    sys.exit(main())
