"""Durable campaign service: job queue, core, and serve daemon.

The service layer turns one-shot ``soc-fmea campaign`` invocations
into durable, multi-tenant *jobs*:

* :mod:`~repro.service.queue` — a crash-safe SQLite job queue with
  atomic lease-based claims, heartbeat-renewed deadlines, a bounded
  retry budget and a dead-letter state carrying structured
  diagnostics;
* :mod:`~repro.service.core` — :class:`CampaignService`, the reusable
  campaign plumbing (spec assembly, store wiring, supervisor
  invocation, report rendering) extracted from the CLI so the
  ``campaign`` verb, the ``serve`` daemon and any future HTTP surface
  share one implementation;
* :mod:`~repro.service.daemon` — the supervisor-of-supervisors
  ``soc-fmea serve`` loop: claim a job, run it under the existing
  :class:`~repro.faultinjection.supervisor.CampaignSupervisor`,
  heartbeat the lease, and let lease expiry hand a dead worker's job
  to a healthy sibling, which resumes idempotently from the
  content-addressed store.
"""

from .core import (
    CampaignOutcome,
    CampaignRequest,
    CampaignService,
    make_subsystem,
)
from .queue import (
    ACTIVE_STATES,
    JOB_CANCELLED,
    JOB_DEAD,
    JOB_DONE,
    JOB_LEASED,
    JOB_QUEUED,
    JOB_RUNNING,
    JobLeaseLost,
    JobQueue,
    JobRow,
    QueuePolicy,
)

__all__ = [
    "CampaignOutcome", "CampaignRequest", "CampaignService",
    "make_subsystem",
    "ACTIVE_STATES", "JOB_CANCELLED", "JOB_DEAD", "JOB_DONE",
    "JOB_LEASED", "JOB_QUEUED", "JOB_RUNNING",
    "JobLeaseLost", "JobQueue", "JobRow", "QueuePolicy",
]
