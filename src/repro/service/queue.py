"""Durable campaign job queue with lease-based recovery.

The queue lives in the ``jobs`` table of the campaign store's SQLite
index (:mod:`repro.store.db`) and follows the same design rules as the
rest of the store: WAL mode, short write transactions, and rows that
are safe to act on after any crash because every mutation is a single
atomic transaction.

Lifecycle (docs/methodology.md §4g)::

    queued ──claim──▶ leased ──start──▶ running ──complete──▶ done
      ▲                 │                  │
      │   lease expiry / fail (budget left)│
      └────────────────┴───────────────────┘
                        │ budget exhausted
                        ▼
                      dead  ──retry──▶ queued        cancel ▶ cancelled

* **Claim** is one ``BEGIN IMMEDIATE`` transaction: pick the oldest
  actionable job (``queued`` past its backoff, or ``leased`` /
  ``running`` whose lease deadline passed — a dead worker), bump its
  attempt counter and stamp the new owner + deadline.  Two daemons
  racing the same row serialize on the write lock, so a job is never
  double-claimed.
* **Heartbeat** extends the lease deadline *monotonically*
  (``max(deadline, now + lease)``) and only while the caller still
  owns the lease; a ``False`` return tells the worker its job was
  cancelled or re-claimed and it must stop.
* **Retry budget**: attempts are counted at claim time, so a worker
  that dies without reporting still consumes one attempt.  A job
  whose budget is spent is *dead-lettered* with a structured error
  (same shape as a quarantined fault's
  :class:`~repro.faultinjection.supervisor.FaultAnomaly`: kind,
  message, diagnostics) instead of looping forever.
* **Dead letter** is terminal but reversible: ``retry`` zeroes the
  attempt counter and re-queues once the cause is fixed.

Because every campaign's evidence is content-addressed, a re-claimed
job resumes from the store: only the cones the dead worker never
finished are re-simulated.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path

from ..backoff import decorrelated_delay
from ..chaos.failpoints import fail_at
from ..store.db import ACTIVE_JOB_STATES, StoreDB
from ..store.errors import raise_for_io

JOB_QUEUED = "queued"
JOB_LEASED = "leased"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_DEAD = "dead"
JOB_CANCELLED = "cancelled"

#: states a worker may still act on (mirrors the store's constant)
ACTIVE_STATES = ACTIVE_JOB_STATES


class JobLeaseLost(RuntimeError):
    """The worker's lease was cancelled or re-claimed mid-run."""


@dataclass
class QueuePolicy:
    """Lease and retry policy of one queue handle."""

    #: seconds a claim stays valid without a heartbeat; a daemon that
    #: misses this window is presumed dead and its job is up for grabs
    lease_seconds: float = 30.0
    #: claim attempts before a job is dead-lettered
    max_attempts: int = 3
    #: backoff between failed attempts: attempt ``k`` re-queues after
    #: a decorrelated-jitter delay in ``[base, base * factor**k]``
    #: (capped) so N recovering daemons don't retry in lockstep
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    backoff_cap: float = 60.0
    #: seeds the jitter per ``(seed, job_id, attempt)`` — set it to
    #: make backoff schedules reproducible across processes (chaos
    #: tests); ``None`` keeps production randomized
    backoff_seed: int | None = None
    #: extra margin past ``lease_deadline`` before another daemon may
    #: presume the owner dead and steal the job — absorbs clock skew
    #: between hosts sharing one store (deadlines are wall-clock
    #: timestamps written by *different* machines)
    skew_grace: float = 0.25


@dataclass
class JobRow:
    """One queue row with its JSON payloads decoded."""

    job_id: int
    project: str
    status: str
    spec: dict
    attempts: int
    max_attempts: int
    not_before: float
    lease_owner: str | None
    lease_deadline: float | None
    run_id: int | None
    result: dict | None
    error: dict | None
    created_at: float
    updated_at: float
    idempotency_key: str | None = None
    progress: dict | None = None

    @classmethod
    def from_row(cls, row: dict) -> "JobRow":
        def decode(text, default):
            if text is None:
                return default
            try:
                value = json.loads(text)
            except ValueError:
                return default
            return value if isinstance(value, dict) else default
        return cls(
            job_id=row["job_id"], project=row["project"],
            status=row["status"], spec=decode(row["spec"], {}),
            attempts=row["attempts"],
            max_attempts=row["max_attempts"],
            not_before=row["not_before"],
            lease_owner=row["lease_owner"],
            lease_deadline=row["lease_deadline"],
            run_id=row["run_id"],
            result=decode(row["result"], None),
            error=decode(row["error"], None),
            created_at=row["created_at"],
            updated_at=row["updated_at"],
            idempotency_key=row.get("idempotency_key"),
            progress=decode(row.get("progress"), None))


class JobQueue:
    """Handle on the job queue of one campaign store.

    Accepts either a store root directory (the queue lives next to the
    evidence in ``store.db``) or an already-open :class:`StoreDB`.
    """

    def __init__(self, root, policy: QueuePolicy | None = None,
                 db: StoreDB | None = None):
        self.policy = policy or QueuePolicy()
        if db is not None:
            self.db = db
            self._owns_db = False
        else:
            self.root = Path(root)
            self.root.mkdir(parents=True, exist_ok=True)
            self.db = StoreDB(self.root / "store.db")
            self._owns_db = True

    def close(self) -> None:
        if self._owns_db:
            self.db.close()

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def submit(self, spec: dict, project: str = "default",
               max_attempts: int | None = None) -> int:
        """Enqueue one campaign job; returns its id."""
        job_id, _ = self.submit_idempotent(spec, project=project,
                                           max_attempts=max_attempts)
        return job_id

    def submit_idempotent(self, spec: dict, project: str = "default",
                          max_attempts: int | None = None,
                          idempotency_key: str | None = None,
                          ) -> tuple[int, bool]:
        """Enqueue one job, deduping on a client-supplied key.

        Returns ``(job_id, deduped)``.  When ``idempotency_key`` is
        set and a non-cancelled job of the same project already
        carries it, that job's id is returned with ``deduped=True``
        and nothing is inserted — so a client that retries a submit
        after a lost response (or a server crash) converges on the
        same job instead of double-enqueuing the campaign.

        The check-then-insert runs in one ``BEGIN IMMEDIATE``
        transaction, so two racing submitters serialize on the write
        lock; the partial unique index on ``(project,
        idempotency_key)`` backstops the invariant at the schema
        level.
        """
        budget = max_attempts if max_attempts is not None \
            else self.policy.max_attempts
        if budget < 1:
            raise ValueError("max_attempts must be at least 1")
        now = time.time()
        with self.db.immediate() as conn:
            if idempotency_key is not None:
                row = conn.execute(
                    "SELECT job_id FROM jobs WHERE project=?"
                    " AND idempotency_key=? AND status!=?"
                    " ORDER BY job_id LIMIT 1",
                    (project, idempotency_key,
                     JOB_CANCELLED)).fetchone()
                if row is not None:
                    return row[0], True
            cursor = conn.execute(
                "INSERT INTO jobs (created_at, updated_at, project,"
                " status, spec, max_attempts, idempotency_key)"
                " VALUES (?,?,?,?,?,?,?)",
                (now, now, project, JOB_QUEUED,
                 json.dumps(spec, sort_keys=True), budget,
                 idempotency_key))
            return cursor.lastrowid, False

    def cancel(self, job_id: int) -> bool:
        """Cancel an active job.  A running worker notices on its next
        heartbeat and abandons the campaign (the store keeps whatever
        evidence already landed)."""
        marks = ",".join("?" * len(ACTIVE_STATES))
        with self.db.immediate() as conn:
            return conn.execute(
                f"UPDATE jobs SET status=?, lease_owner=NULL,"
                f" lease_deadline=NULL, updated_at=?"
                f" WHERE job_id=? AND status IN ({marks})",
                (JOB_CANCELLED, time.time(), job_id,
                 *ACTIVE_STATES)).rowcount == 1

    def retry(self, job_id: int) -> bool:
        """Re-queue a dead-lettered or cancelled job with a fresh
        attempt budget (use after fixing the recorded cause)."""
        with self.db.immediate() as conn:
            return conn.execute(
                "UPDATE jobs SET status=?, attempts=0, not_before=0,"
                " lease_owner=NULL, lease_deadline=NULL, error=NULL,"
                " result=NULL, updated_at=?"
                " WHERE job_id=? AND status IN (?,?)",
                (JOB_QUEUED, time.time(), job_id, JOB_DEAD,
                 JOB_CANCELLED)).rowcount == 1

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def _fail_at(self, name: str) -> None:
        """A failpoint outside any transaction: injected disk errors
        still surface coded (E413/E414), like the real thing would."""
        try:
            fail_at(name)
        except OSError as err:
            raise_for_io(err, str(self.db.path))

    def claim(self, owner: str,
              lease_seconds: float | None = None) -> JobRow | None:
        """Atomically claim the oldest actionable job for ``owner``.

        Actionable = ``queued`` past its backoff, or ``leased`` /
        ``running`` whose lease expired more than ``skew_grace`` ago
        (the previous worker died; the grace keeps a fast-clocked
        host from stealing a live sibling's lease).  A candidate
        whose retry budget is already spent is dead-lettered on the
        spot — recording the worker death as a structured error —
        and the scan continues.
        """
        lease = lease_seconds if lease_seconds is not None \
            else self.policy.lease_seconds
        while True:
            now = time.time()
            with self.db.immediate() as conn:
                row = conn.execute(
                    "SELECT job_id, status, attempts, max_attempts"
                    " FROM jobs WHERE"
                    " (status=? AND not_before<=?)"
                    " OR (status IN (?,?) AND lease_deadline IS NOT"
                    " NULL AND lease_deadline<?)"
                    " ORDER BY job_id LIMIT 1",
                    (JOB_QUEUED, now, JOB_LEASED, JOB_RUNNING,
                     now - self.policy.skew_grace)).fetchone()
                if row is None:
                    return None
                job_id, status, attempts, max_attempts = row
                if attempts >= max_attempts:
                    # the lease expired with no budget left: the
                    # worker died mid-job on its final attempt
                    error = {
                        "kind": "crash",
                        "message": (
                            f"lease expired after {attempts} "
                            f"attempt(s); the executing worker died "
                            f"or stalled without reporting"),
                        "attempts": attempts,
                    }
                    conn.execute(
                        "UPDATE jobs SET status=?, error=?,"
                        " lease_owner=NULL, lease_deadline=NULL,"
                        " updated_at=? WHERE job_id=?",
                        (JOB_DEAD, json.dumps(error), now, job_id))
                    continue
                conn.execute(
                    "UPDATE jobs SET status=?, attempts=attempts+1,"
                    " lease_owner=?, lease_deadline=?, updated_at=?"
                    " WHERE job_id=?",
                    (JOB_LEASED, owner, now + lease, now, job_id))
            # crash window: the claim is committed but the worker has
            # not started — recovery is lease expiry, verified by the
            # chaos harness
            self._fail_at("queue.claim")
            return self.job(job_id)

    def heartbeat(self, job_id: int, owner: str,
                  lease_seconds: float | None = None,
                  progress: dict | None = None) -> bool:
        """Renew the lease; the deadline only ever moves forward.

        ``progress`` (a small JSON-able dict, e.g. ``{"done": 120,
        "total": 617}``) piggybacks on the renewal so observers —
        ``jobs status --follow``, the API's event stream — see
        campaign progress without a second write path.

        Returns ``False`` when the lease is gone (job cancelled, or
        re-claimed after an expiry) — the worker must stop.
        """
        lease = lease_seconds if lease_seconds is not None \
            else self.policy.lease_seconds
        # stall window: a sleep here models a GC pause / clock skew
        # holding the renewal past the lease deadline
        self._fail_at("queue.heartbeat")
        now = time.time()
        with self.db.immediate() as conn:
            if progress is not None:
                return conn.execute(
                    "UPDATE jobs SET lease_deadline="
                    " MAX(lease_deadline, ?), progress=?,"
                    " updated_at=? WHERE job_id=? AND lease_owner=?"
                    " AND status IN (?,?)",
                    (now + lease,
                     json.dumps(progress, sort_keys=True), now,
                     job_id, owner, JOB_LEASED,
                     JOB_RUNNING)).rowcount == 1
            return conn.execute(
                "UPDATE jobs SET lease_deadline="
                " MAX(lease_deadline, ?), updated_at=?"
                " WHERE job_id=? AND lease_owner=?"
                " AND status IN (?,?)",
                (now + lease, now, job_id, owner, JOB_LEASED,
                 JOB_RUNNING)).rowcount == 1

    def start(self, job_id: int, owner: str) -> bool:
        """Mark a leased job as actually executing."""
        with self.db.immediate() as conn:
            return conn.execute(
                "UPDATE jobs SET status=?, updated_at=?"
                " WHERE job_id=? AND lease_owner=? AND status=?",
                (JOB_RUNNING, time.time(), job_id, owner,
                 JOB_LEASED)).rowcount == 1

    def record_run(self, job_id: int, owner: str,
                   run_id: int) -> bool:
        """Attach the store run a worker opened for this job, so gc
        and fsck can cross-reference queue and evidence."""
        with self.db.immediate() as conn:
            return conn.execute(
                "UPDATE jobs SET run_id=?, updated_at=?"
                " WHERE job_id=? AND lease_owner=?"
                " AND status IN (?,?)",
                (run_id, time.time(), job_id, owner, JOB_LEASED,
                 JOB_RUNNING)).rowcount == 1

    def complete(self, job_id: int, owner: str,
                 result: dict) -> bool:
        """Terminal success: record the result payload."""
        # crash window: the campaign's evidence is committed to the
        # store but the job is still leased — recovery is lease
        # expiry plus an idempotent warm re-run (zero simulations)
        self._fail_at("queue.transition")
        with self.db.immediate() as conn:
            return conn.execute(
                "UPDATE jobs SET status=?, result=?, error=NULL,"
                " lease_owner=NULL, lease_deadline=NULL, updated_at=?"
                " WHERE job_id=? AND lease_owner=?"
                " AND status IN (?,?)",
                (JOB_DONE, json.dumps(result, sort_keys=True),
                 time.time(), job_id, owner, JOB_LEASED,
                 JOB_RUNNING)).rowcount == 1

    def fail(self, job_id: int, owner: str, error: dict,
             fatal: bool = False) -> str | None:
        """Record a failed attempt.

        Re-queues with decorrelated-jitter exponential backoff while
        budget remains, dead-letters otherwise.  ``fatal``
        dead-letters immediately — for deterministic failures (coded
        input diagnostics) a retry can never fix.  Returns the
        resulting status, or ``None`` when the caller no longer owns
        the lease.
        """
        self._fail_at("queue.transition")
        now = time.time()
        with self.db.immediate() as conn:
            row = conn.execute(
                "SELECT attempts, max_attempts FROM jobs"
                " WHERE job_id=? AND lease_owner=?"
                " AND status IN (?,?)",
                (job_id, owner, JOB_LEASED, JOB_RUNNING)).fetchone()
            if row is None:
                return None
            attempts, max_attempts = row
            if fatal or attempts >= max_attempts:
                status, not_before = JOB_DEAD, 0.0
            else:
                status = JOB_QUEUED
                not_before = now + decorrelated_delay(
                    attempts, self.policy.backoff_base,
                    self.policy.backoff_factor,
                    cap=self.policy.backoff_cap,
                    seed=self.policy.backoff_seed, token=job_id)
            conn.execute(
                "UPDATE jobs SET status=?, not_before=?, error=?,"
                " lease_owner=NULL, lease_deadline=NULL, updated_at=?"
                " WHERE job_id=?",
                (status, not_before, json.dumps(error, sort_keys=True),
                 now, job_id))
            return status

    def release(self, job_id: int, owner: str, delay: float = 0.0,
                error: dict | None = None) -> bool:
        """Voluntarily hand a leased job back to the queue.

        Unlike :meth:`fail`, releasing is *not* a failed attempt: the
        attempt counted at claim time is refunded, so a graceful
        shutdown (SIGTERM drain) or an environmental pause (disk
        full, E413) never burns the job's retry budget toward the
        dead-letter state.  ``delay`` defers the next claim —
        io-pauses use it to wait out the outage — and ``error``
        records why (visible in ``jobs list``) without dead-letter
        semantics.  Owner-fenced like every transition.
        """
        now = time.time()
        with self.db.immediate() as conn:
            return conn.execute(
                "UPDATE jobs SET status=?,"
                " attempts=MAX(attempts-1, 0), not_before=?,"
                " error=?, lease_owner=NULL, lease_deadline=NULL,"
                " updated_at=? WHERE job_id=? AND lease_owner=?"
                " AND status IN (?,?)",
                (JOB_QUEUED, now + delay,
                 json.dumps(error, sort_keys=True)
                 if error is not None else None,
                 now, job_id, owner, JOB_LEASED,
                 JOB_RUNNING)).rowcount == 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def job(self, job_id: int) -> JobRow | None:
        row = self.db.job_row(job_id)
        return JobRow.from_row(row) if row is not None else None

    def jobs(self, status: str | None = None,
             project: str | None = None) -> list[JobRow]:
        return [JobRow.from_row(row)
                for row in self.db.job_rows(status=status,
                                            project=project)]

    def counts(self) -> dict[str, int]:
        return self.db.job_counts()

    def has_work(self) -> bool:
        """Any job a worker could act on now or after a lease/backoff
        expiry (used by ``serve --drain`` to decide when to stop)."""
        marks = ",".join("?" * len(ACTIVE_STATES))
        return self.db._conn.execute(
            f"SELECT 1 FROM jobs WHERE status IN ({marks}) LIMIT 1",
            ACTIVE_STATES).fetchone() is not None
