"""``soc-fmea serve`` — the supervisor-of-supervisors loop.

Each worker owns a claim loop: claim a job off the queue, mark it
running, execute it through :class:`~repro.service.core.CampaignService`
(which runs the existing fault-tolerant
:class:`~repro.faultinjection.supervisor.CampaignSupervisor`
underneath), and heartbeat the lease from inside the supervisor's
event loop.  The failure model stacks three layers:

* a *simulation worker* dying is the supervisor's problem (retry,
  bisect, quarantine — PR 3);
* the *daemon worker* dying is the queue's problem: its heartbeats
  stop, the lease expires, and any healthy ``serve`` process
  re-claims the job, resuming from the content-addressed store so
  only unfinished cones are re-simulated;
* a job failing on every attempt is *dead-lettered* with a structured
  diagnostic — the job-level analogue of a quarantined fault — and
  the daemon exits 3 (completed with bounded evidence) rather than
  looping forever.

With ``--workers N`` the daemon runs N claim loops in child
processes and replaces any that die; ``--drain`` exits once the
queue holds no actionable work (the mode CI and tests use).
"""

from __future__ import annotations

import json
import os
import signal
import socket
import time
from dataclasses import dataclass

from ..chaos.failpoints import fail_at
from ..store.errors import StoreIOError
from .core import (
    EXIT_DIAGNOSTIC,
    EXIT_OK,
    EXIT_QUARANTINE,
    CampaignRequest,
    CampaignService,
)
from .queue import JOB_DEAD, JobLeaseLost, JobQueue, JobRow, \
    QueuePolicy


class _GracefulStop(Exception):
    """Raised out of the heartbeat when SIGTERM/SIGINT asked for a
    drain: the supervisor aborts (every flushed shard is already in
    the store), the lease is released explicitly, and the daemon
    exits 0 instead of losing up to a lease period to expiry."""


@dataclass
class DaemonConfig:
    """One ``serve`` invocation's policy."""

    workers: int = 1
    #: lease length granted on claim and renewed per heartbeat
    lease_seconds: float = 30.0
    #: how often the supervisor loop renews the lease
    heartbeat_interval: float = 1.0
    #: idle poll period while the queue is empty
    poll_interval: float = 0.5
    #: exit once no actionable work remains (instead of serving
    #: forever)
    drain: bool = False
    #: pause before re-polling after a store i/o failure (disk full);
    #: the paused job is *released*, not failed — see E413
    io_pause_seconds: float = 5.0
    #: print per-job lifecycle lines
    verbose: bool = True


def _owner_token(index: int) -> str:
    return f"{socket.gethostname()}:{os.getpid()}:{index}"


def _diagnostic_error(outcome) -> dict:
    """Condense a failed outcome's stderr into a structured,
    traceback-free error record (the dead-letter payload)."""
    text = outcome.err.strip() or outcome.out.strip()
    lines = [line for line in text.splitlines() if line.strip()]
    # headline: the first substantive line, not a report decoration
    content = [line for line in lines
               if not line.startswith(("===", "---"))]
    return {
        "kind": "diagnostic" if outcome.exit_code == EXIT_DIAGNOSTIC
        else "failure",
        "exit_code": outcome.exit_code,
        "message": (content[0].strip() if content
                    else "campaign failed"),
        "detail": "\n".join(lines[:20]),
    }


class ServiceDaemon:
    """Claims and executes queued campaign jobs against one store."""

    def __init__(self, store_root, config: DaemonConfig | None = None):
        self.config = config or DaemonConfig()
        self.service = CampaignService(store_root)
        self.root = self.service.root
        self._stop = False

    # ------------------------------------------------------------------
    # graceful shutdown
    # ------------------------------------------------------------------
    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT request a graceful drain: the current job
        is checkpointed (flushed shards are already durable) and
        released, then the daemon exits 0.  No-op when not on the
        main thread (embedded use)."""
        def handler(signum, frame):
            self._stop = True
            try:
                name = signal.Signals(signum).name
            except ValueError:
                name = str(signum)
            self._log(f"received {name} — draining gracefully")
        try:
            signal.signal(signal.SIGTERM, handler)
            signal.signal(signal.SIGINT, handler)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # one worker's claim loop
    # ------------------------------------------------------------------
    def worker_loop(self, index: int = 0) -> int:
        """Claim and execute jobs until the queue drains (drain mode),
        a shutdown signal arrives, or forever; returns the number of
        jobs executed."""
        cfg = self.config
        owner = _owner_token(index)
        executed = 0
        fail_at("daemon.spawn")
        queue = JobQueue(self.root, policy=QueuePolicy(
            lease_seconds=cfg.lease_seconds))
        try:
            while not self._stop:
                try:
                    job = queue.claim(owner, cfg.lease_seconds)
                except StoreIOError as exc:
                    self._log(f"worker {index}: store unavailable "
                              f"({exc}) — "
                              + ("exiting drain" if cfg.drain
                                 else "pausing"))
                    if cfg.drain:
                        return executed
                    time.sleep(cfg.io_pause_seconds)
                    continue
                if job is None:
                    if cfg.drain and not queue.has_work():
                        fail_at("daemon.drain")
                        return executed
                    time.sleep(cfg.poll_interval)
                    continue
                self._log(f"worker {index}: claimed job "
                          f"#{job.job_id} (attempt {job.attempts}/"
                          f"{job.max_attempts})")
                status = self._execute(queue, job, owner, index)
                executed += 1
                if status == "io-paused":
                    if cfg.drain:
                        # the outage won't clear while we spin; leave
                        # the released job queued for the next serve
                        return executed
                    time.sleep(cfg.io_pause_seconds)
            return executed
        finally:
            queue.close()

    def _execute(self, queue: JobQueue, job: JobRow, owner: str,
                 index: int) -> str | None:
        cfg = self.config
        try:
            request = CampaignRequest.from_dict(job.spec)
        except (TypeError, ValueError) as exc:
            queue.fail(job.job_id, owner, {
                "kind": "diagnostic", "exit_code": EXIT_DIAGNOSTIC,
                "message": f"unreadable job spec: {exc}",
                "detail": json.dumps(job.spec)[:500]}, fatal=True)
            return
        queue.start(job.job_id, owner)
        service = CampaignService(self.root, project=job.project)
        cache = service.open_cache() if request.use_cache else None
        recorded = False
        latest = {"sent": None, "done": None, "total": None}

        def progress(done, total):
            latest["done"], latest["total"] = done, total

        def heartbeat():
            nonlocal recorded
            if self._stop:
                raise _GracefulStop()
            if (not recorded and cache is not None
                    and cache.last_run_id is not None):
                recorded = queue.record_run(job.job_id, owner,
                                            cache.last_run_id)
            # progress piggybacks on the lease renewal: one write,
            # and observers (jobs status --follow, the API's event
            # stream) read it off the job row
            snapshot = None
            if latest["done"] is not None \
                    and latest["done"] != latest["sent"]:
                snapshot = {"done": latest["done"],
                            "total": latest["total"]}
            if not queue.heartbeat(job.job_id, owner,
                                   cfg.lease_seconds,
                                   progress=snapshot):
                raise JobLeaseLost(
                    f"job #{job.job_id} lease lost (cancelled or "
                    f"re-claimed)")
            if snapshot is not None:
                latest["sent"] = latest["done"]

        try:
            outcome = service.run_campaign(
                request, progress=progress, cache=cache,
                heartbeat=heartbeat,
                heartbeat_interval=cfg.heartbeat_interval)
        except JobLeaseLost as exc:
            self._log(f"worker {index}: {exc} — abandoning")
            return "lease-lost"
        except _GracefulStop:
            released = queue.release(job.job_id, owner)
            self._log(f"worker {index}: job #{job.job_id} "
                      + ("released (checkpointed to store)"
                         if released else "lease already gone")
                      + " — shutting down")
            return "stopped"
        except StoreIOError as exc:
            # environmental, not the job's fault: release (refunding
            # the attempt) with a pause instead of dead-lettering
            try:
                released = queue.release(
                    job.job_id, owner, delay=cfg.io_pause_seconds,
                    error={"kind": "io-pause",
                           "message": str(exc).splitlines()[0][:200]})
            except StoreIOError:
                # the queue shares the sick disk; lease expiry is the
                # backstop release
                released = False
            self._log(f"worker {index}: job #{job.job_id} hit a "
                      f"store i/o failure — "
                      + (f"released with {cfg.io_pause_seconds:.0f}s "
                         f"pause" if released else "lease already "
                         "gone"))
            return "io-paused"
        except Exception as exc:  # noqa: BLE001 — job-level contain
            queue.fail(job.job_id, owner, {
                "kind": "exception", "exit_code": 1,
                "message": f"{type(exc).__name__}: {exc}",
                "detail": f"internal error while executing job "
                          f"#{job.job_id}; re-run with "
                          f"SOCFMEA_DEBUG=1 outside the daemon for "
                          f"a traceback"})
            self._log(f"worker {index}: job #{job.job_id} raised "
                      f"{type(exc).__name__}")
            return "failed"
        finally:
            if cache is not None:
                if not recorded and cache.last_run_id is not None:
                    recorded = queue.record_run(job.job_id, owner,
                                                cache.last_run_id)
                cache.close()

        if outcome.exit_code in (EXIT_OK, EXIT_QUARANTINE):
            queue.complete(job.job_id, owner, outcome.summary_dict())
            self._log(f"worker {index}: job #{job.job_id} done "
                      f"(exit {outcome.exit_code})")
        else:
            # exit 2 is a coded input diagnostic — deterministic, so
            # retrying cannot help: dead-letter on the first attempt
            status = queue.fail(
                job.job_id, owner, _diagnostic_error(outcome),
                fatal=outcome.exit_code == EXIT_DIAGNOSTIC)
            self._log(f"worker {index}: job #{job.job_id} failed "
                      f"(exit {outcome.exit_code}) → "
                      f"{status or 'lease lost'}")

    # ------------------------------------------------------------------
    # the serve entry point
    # ------------------------------------------------------------------
    def serve(self) -> int:
        """Run the daemon; returns the process exit code (0 clean,
        3 when dead-letter jobs remain — bounded evidence).

        SIGTERM/SIGINT drain gracefully: the in-flight job is
        checkpointed and released, and the exit code is 0."""
        cfg = self.config
        self.install_signal_handlers()
        self._log(f"serving {self.root} with {cfg.workers} "
                  f"worker(s), {cfg.lease_seconds:.0f}s leases"
                  + (" (drain mode)" if cfg.drain else ""))
        try:
            if cfg.workers == 1:
                self.worker_loop(0)
            else:
                self._serve_pool()
        except KeyboardInterrupt:
            self._log("interrupted — exiting")
        with JobQueue(self.root) as queue:
            dead = queue.counts().get(JOB_DEAD, 0)
        if dead:
            self._log(f"{dead} job(s) in dead-letter — "
                      f"inspect with 'soc-fmea jobs list'")
            return EXIT_QUARANTINE
        return EXIT_OK

    def _serve_pool(self) -> None:
        """N claim loops in child processes; dead children are
        replaced (their in-flight job recovers via lease expiry)."""
        from multiprocessing import get_context
        from ..faultinjection.parallel import _default_start_method
        cfg = self.config
        mp = get_context(_default_start_method())
        alive: dict[int, object] = {}

        def spawn(index: int):
            process = mp.Process(
                target=_pool_worker,
                args=(str(self.root), self.config, index),
                daemon=True)
            process.start()
            return process

        for index in range(cfg.workers):
            alive[index] = spawn(index)
        try:
            while alive:
                if self._stop:
                    # forward the drain request; children handle
                    # SIGTERM by checkpointing + releasing (exit 0)
                    for process in alive.values():
                        process.terminate()
                    for process in alive.values():
                        process.join(timeout=30.0)
                    return
                time.sleep(cfg.poll_interval)
                for index, process in list(alive.items()):
                    if process.is_alive():
                        continue
                    if process.exitcode == 0 \
                            and (cfg.drain or self._stop):
                        del alive[index]     # drained cleanly
                        continue
                    self._log(f"worker {index} died (exit "
                              f"{process.exitcode}) — replacing")
                    alive[index] = spawn(index)
        finally:
            for process in alive.values():
                process.terminate()
            for process in alive.values():
                process.join(timeout=5.0)

    def _log(self, message: str) -> None:
        if self.config.verbose:
            print(f"serve: {message}", flush=True)


def _pool_worker(root: str, config: DaemonConfig,
                 index: int) -> None:
    """Child-process entry point of one pooled claim loop."""
    daemon = ServiceDaemon(root, config)
    # the pool parent forwards SIGTERM; each child drains its own job
    daemon.install_signal_handlers()
    daemon.worker_loop(index)
