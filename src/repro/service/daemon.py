"""``soc-fmea serve`` — the supervisor-of-supervisors loop.

Each worker owns a claim loop: claim a job off the queue, mark it
running, execute it through :class:`~repro.service.core.CampaignService`
(which runs the existing fault-tolerant
:class:`~repro.faultinjection.supervisor.CampaignSupervisor`
underneath), and heartbeat the lease from inside the supervisor's
event loop.  The failure model stacks three layers:

* a *simulation worker* dying is the supervisor's problem (retry,
  bisect, quarantine — PR 3);
* the *daemon worker* dying is the queue's problem: its heartbeats
  stop, the lease expires, and any healthy ``serve`` process
  re-claims the job, resuming from the content-addressed store so
  only unfinished cones are re-simulated;
* a job failing on every attempt is *dead-lettered* with a structured
  diagnostic — the job-level analogue of a quarantined fault — and
  the daemon exits 3 (completed with bounded evidence) rather than
  looping forever.

With ``--workers N`` the daemon runs N claim loops in child
processes and replaces any that die; ``--drain`` exits once the
queue holds no actionable work (the mode CI and tests use).
"""

from __future__ import annotations

import json
import os
import socket
import time
from dataclasses import dataclass

from .core import (
    EXIT_DIAGNOSTIC,
    EXIT_OK,
    EXIT_QUARANTINE,
    CampaignRequest,
    CampaignService,
)
from .queue import JOB_DEAD, JobLeaseLost, JobQueue, JobRow, \
    QueuePolicy


@dataclass
class DaemonConfig:
    """One ``serve`` invocation's policy."""

    workers: int = 1
    #: lease length granted on claim and renewed per heartbeat
    lease_seconds: float = 30.0
    #: how often the supervisor loop renews the lease
    heartbeat_interval: float = 1.0
    #: idle poll period while the queue is empty
    poll_interval: float = 0.5
    #: exit once no actionable work remains (instead of serving
    #: forever)
    drain: bool = False
    #: print per-job lifecycle lines
    verbose: bool = True


def _owner_token(index: int) -> str:
    return f"{socket.gethostname()}:{os.getpid()}:{index}"


def _diagnostic_error(outcome) -> dict:
    """Condense a failed outcome's stderr into a structured,
    traceback-free error record (the dead-letter payload)."""
    text = outcome.err.strip() or outcome.out.strip()
    lines = [line for line in text.splitlines() if line.strip()]
    # headline: the first substantive line, not a report decoration
    content = [line for line in lines
               if not line.startswith(("===", "---"))]
    return {
        "kind": "diagnostic" if outcome.exit_code == EXIT_DIAGNOSTIC
        else "failure",
        "exit_code": outcome.exit_code,
        "message": (content[0].strip() if content
                    else "campaign failed"),
        "detail": "\n".join(lines[:20]),
    }


class ServiceDaemon:
    """Claims and executes queued campaign jobs against one store."""

    def __init__(self, store_root, config: DaemonConfig | None = None):
        self.config = config or DaemonConfig()
        self.service = CampaignService(store_root)
        self.root = self.service.root

    # ------------------------------------------------------------------
    # one worker's claim loop
    # ------------------------------------------------------------------
    def worker_loop(self, index: int = 0) -> int:
        """Claim and execute jobs until the queue drains (drain mode)
        or forever; returns the number of jobs executed."""
        cfg = self.config
        owner = _owner_token(index)
        executed = 0
        queue = JobQueue(self.root, policy=QueuePolicy(
            lease_seconds=cfg.lease_seconds))
        try:
            while True:
                job = queue.claim(owner, cfg.lease_seconds)
                if job is None:
                    if cfg.drain and not queue.has_work():
                        return executed
                    time.sleep(cfg.poll_interval)
                    continue
                self._log(f"worker {index}: claimed job "
                          f"#{job.job_id} (attempt {job.attempts}/"
                          f"{job.max_attempts})")
                self._execute(queue, job, owner, index)
                executed += 1
        finally:
            queue.close()

    def _execute(self, queue: JobQueue, job: JobRow, owner: str,
                 index: int) -> None:
        cfg = self.config
        try:
            request = CampaignRequest.from_dict(job.spec)
        except (TypeError, ValueError) as exc:
            queue.fail(job.job_id, owner, {
                "kind": "diagnostic", "exit_code": EXIT_DIAGNOSTIC,
                "message": f"unreadable job spec: {exc}",
                "detail": json.dumps(job.spec)[:500]}, fatal=True)
            return
        queue.start(job.job_id, owner)
        service = CampaignService(self.root, project=job.project)
        cache = service.open_cache() if request.use_cache else None
        recorded = False

        def heartbeat():
            nonlocal recorded
            if (not recorded and cache is not None
                    and cache.last_run_id is not None):
                recorded = queue.record_run(job.job_id, owner,
                                            cache.last_run_id)
            if not queue.heartbeat(job.job_id, owner,
                                   cfg.lease_seconds):
                raise JobLeaseLost(
                    f"job #{job.job_id} lease lost (cancelled or "
                    f"re-claimed)")

        try:
            outcome = service.run_campaign(
                request, cache=cache, heartbeat=heartbeat,
                heartbeat_interval=cfg.heartbeat_interval)
        except JobLeaseLost as exc:
            self._log(f"worker {index}: {exc} — abandoning")
            return
        except Exception as exc:  # noqa: BLE001 — job-level contain
            queue.fail(job.job_id, owner, {
                "kind": "exception", "exit_code": 1,
                "message": f"{type(exc).__name__}: {exc}",
                "detail": f"internal error while executing job "
                          f"#{job.job_id}; re-run with "
                          f"SOCFMEA_DEBUG=1 outside the daemon for "
                          f"a traceback"})
            self._log(f"worker {index}: job #{job.job_id} raised "
                      f"{type(exc).__name__}")
            return
        finally:
            if cache is not None:
                if not recorded and cache.last_run_id is not None:
                    recorded = queue.record_run(job.job_id, owner,
                                                cache.last_run_id)
                cache.close()

        if outcome.exit_code in (EXIT_OK, EXIT_QUARANTINE):
            queue.complete(job.job_id, owner, outcome.summary_dict())
            self._log(f"worker {index}: job #{job.job_id} done "
                      f"(exit {outcome.exit_code})")
        else:
            # exit 2 is a coded input diagnostic — deterministic, so
            # retrying cannot help: dead-letter on the first attempt
            status = queue.fail(
                job.job_id, owner, _diagnostic_error(outcome),
                fatal=outcome.exit_code == EXIT_DIAGNOSTIC)
            self._log(f"worker {index}: job #{job.job_id} failed "
                      f"(exit {outcome.exit_code}) → "
                      f"{status or 'lease lost'}")

    # ------------------------------------------------------------------
    # the serve entry point
    # ------------------------------------------------------------------
    def serve(self) -> int:
        """Run the daemon; returns the process exit code (0 clean,
        3 when dead-letter jobs remain — bounded evidence)."""
        cfg = self.config
        self._log(f"serving {self.root} with {cfg.workers} "
                  f"worker(s), {cfg.lease_seconds:.0f}s leases"
                  + (" (drain mode)" if cfg.drain else ""))
        try:
            if cfg.workers == 1:
                self.worker_loop(0)
            else:
                self._serve_pool()
        except KeyboardInterrupt:
            self._log("interrupted — exiting")
        with JobQueue(self.root) as queue:
            dead = queue.counts().get(JOB_DEAD, 0)
        if dead:
            self._log(f"{dead} job(s) in dead-letter — "
                      f"inspect with 'soc-fmea jobs list'")
            return EXIT_QUARANTINE
        return EXIT_OK

    def _serve_pool(self) -> None:
        """N claim loops in child processes; dead children are
        replaced (their in-flight job recovers via lease expiry)."""
        from multiprocessing import get_context
        from ..faultinjection.parallel import _default_start_method
        cfg = self.config
        mp = get_context(_default_start_method())
        alive: dict[int, object] = {}

        def spawn(index: int):
            process = mp.Process(
                target=_pool_worker,
                args=(str(self.root), self.config, index),
                daemon=True)
            process.start()
            return process

        for index in range(cfg.workers):
            alive[index] = spawn(index)
        try:
            while alive:
                time.sleep(cfg.poll_interval)
                for index, process in list(alive.items()):
                    if process.is_alive():
                        continue
                    if cfg.drain and process.exitcode == 0:
                        del alive[index]     # drained cleanly
                        continue
                    self._log(f"worker {index} died (exit "
                              f"{process.exitcode}) — replacing")
                    alive[index] = spawn(index)
        finally:
            for process in alive.values():
                process.terminate()
            for process in alive.values():
                process.join(timeout=5.0)

    def _log(self, message: str) -> None:
        if self.config.verbose:
            print(f"serve: {message}", flush=True)


def _pool_worker(root: str, config: DaemonConfig,
                 index: int) -> None:
    """Child-process entry point of one pooled claim loop."""
    ServiceDaemon(root, config).worker_loop(index)
