"""The reusable campaign core behind the CLI and the serve daemon.

:class:`CampaignService` owns the plumbing that used to be inlined in
``cli.py``'s ``campaign`` verb: subsystem/environment assembly,
stimuli and zone-config validation, store wiring, supervisor
invocation and report rendering.  Every consumer — the ``campaign``
CLI verb, a queue worker inside ``soc-fmea serve``, a future HTTP
API — goes through :meth:`CampaignService.run_campaign`, so they
cannot drift apart: the CLI's byte-for-byte output and exit codes
*are* the service's output and exit codes.

A :class:`CampaignRequest` is a plain, JSON-round-trippable record of
one campaign's parameters — exactly what a queued job stores in its
``spec`` column.  :class:`CampaignOutcome` carries the rendered
stdout/stderr, the exit code, and the headline metrics a job records
as its result.

Multi-tenancy: a service is rooted at one store directory; the
``default`` project writes evidence directly into it, while any other
project name is namespaced under ``<root>/projects/<name>`` — its own
content-addressed store, sharing nothing but the job queue (which
always lives in the root index).
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path

#: default campaign-store directory; overridable per invocation with
#: ``--store`` or globally with the ``SOCFMEA_STORE`` environment
#: variable
DEFAULT_STORE = ".socfmea_store"

#: consolidated exit-code taxonomy (see docs/methodology.md §4e):
#: 0 — success; 1 — operational failure (aborted campaign, internal
#: error); 2 — coded diagnostics were reported (bad input, usage);
#: 3 — completed, but the evidence is bounded (quarantined faults or
#: degraded-mode skipped zones)
EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_DIAGNOSTIC = 2
EXIT_QUARANTINE = 3


def resolve_store_root(path: str | None = None) -> str:
    """Explicit path beats ``$SOCFMEA_STORE`` beats the default."""
    if path:
        return path
    return os.environ.get("SOCFMEA_STORE") or DEFAULT_STORE


#: registered design variants (``make_subsystem``'s factory table);
#: ``CampaignRequest.validate`` checks against this so the CLI and the
#: HTTP API reject an unknown variant with the same E431 diagnostic
VARIANTS = ("baseline", "improved", "small-baseline",
            "small-improved")

#: simulation engines ``CampaignConfig`` dispatches on
ENGINES = ("compiled", "interpreted")


def make_subsystem(variant: str, banks: int = 1,
                   flags: dict | None = None,
                   bank_flags: list | None = None):
    """The built-in design variants, by CLI name.

    ``banks`` > 1 elaborates the scaled multi-bank design
    (:class:`~repro.soc.banked.BankedMemorySubsystem`) with ``banks``
    channels of the named variant behind one bus.  ``flags`` overrides
    protection flags on every channel; ``bank_flags`` is a per-bank
    list of flag-override dicts (design-space exploration uses it to
    apply a mitigation to one bank only).
    """
    from ..soc.config import BankedConfig, SubsystemConfig
    from ..soc.subsystem import MemorySubsystem
    factory = {
        "baseline": SubsystemConfig.baseline,
        "improved": SubsystemConfig.improved,
        "small-baseline": SubsystemConfig.small_baseline,
        "small-improved": SubsystemConfig.small_improved,
    }[variant]
    cfg = factory()
    if flags:
        cfg = cfg.with_flags(**flags)
    if banks <= 1 and not bank_flags:
        return MemorySubsystem(cfg)
    from ..soc.banked import BankedMemorySubsystem
    n = max(banks, len(bank_flags or ()))
    bcfg = BankedConfig.uniform(cfg, n)
    for i, overrides in enumerate(bank_flags or ()):
        if overrides:
            bcfg = bcfg.with_bank_flags(i, **overrides)
    return BankedMemorySubsystem(bcfg)


@dataclass
class CampaignRequest:
    """One campaign's parameters, as a JSON-serializable record."""

    variant: str = "improved"
    banks: int = 1
    flags: dict | None = None
    bank_flags: list | None = None
    full: bool = False
    workers: int = 1
    shards: int | None = None
    sample: int | None = None
    machines_per_pass: int | None = None
    engine: str = "compiled"
    use_cache: bool = True
    shard_timeout: float | None = None
    cycle_budget: int | None = None
    max_retries: int = 2
    quarantine: bool = True
    supervise: bool = True
    zones: str | None = None
    stimuli: str | None = None
    degraded: bool = False

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignRequest":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    def validate(self):
        """Check every parameter, returning a
        :class:`~repro.diagnostics.DiagnosticReport`.

        Shared by :meth:`CampaignService.run_campaign` (rendered to
        stderr, exit 2) and the HTTP API (rendered as a 400 response
        body), so a bad request reports the same coded diagnostics on
        both surfaces — E430 for out-of-range values, E431/E432 for
        unknown variant/engine — and never a traceback.
        """
        from ..diagnostics import DiagnosticReport
        report = DiagnosticReport()
        if self.variant not in VARIANTS:
            report.error(
                "E431",
                f"unknown design variant {self.variant!r} (known: "
                f"{', '.join(VARIANTS)})")
        if self.engine not in ENGINES:
            report.error(
                "E432",
                f"unknown simulation engine {self.engine!r} (known: "
                f"{', '.join(ENGINES)})")
        def at_least(name, value, floor):
            if value is not None and value < floor:
                report.error(
                    "E430",
                    f"{name} must be at least {floor}, got {value}")
        at_least("workers", self.workers, 1)
        at_least("banks", self.banks, 1)
        at_least("shards", self.shards, 1)
        at_least("sample", self.sample, 1)
        at_least("machines-per-pass", self.machines_per_pass, 1)
        at_least("max-retries", self.max_retries, 0)
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            report.error(
                "E430",
                f"shard-timeout must be positive, got "
                f"{self.shard_timeout}")
        at_least("cycle-budget", self.cycle_budget, 1)
        if self.flags is not None and not isinstance(self.flags,
                                                     dict):
            report.error("E430", "flags must be a JSON object of "
                                 "protection-flag overrides")
        if self.bank_flags is not None \
                and not isinstance(self.bank_flags, list):
            report.error("E430", "bank-flags must be a JSON list of "
                                 "per-bank override objects")
        return report

    @classmethod
    def from_args(cls, args) -> "CampaignRequest":
        """Build from the ``campaign`` / ``jobs submit`` CLI args."""
        return cls(
            variant=args.variant,
            banks=getattr(args, "banks", 1) or 1,
            full=args.full,
            workers=args.workers, shards=args.shards,
            sample=args.sample,
            machines_per_pass=args.machines_per_pass,
            engine=args.engine,
            use_cache=not getattr(args, "no_cache", False),
            shard_timeout=args.shard_timeout,
            cycle_budget=args.cycle_budget,
            max_retries=args.max_retries,
            quarantine=not args.no_quarantine,
            supervise=not getattr(args, "no_supervise", False),
            zones=args.zones, stimuli=args.stimuli,
            degraded=args.degraded)


@dataclass
class CampaignOutcome:
    """What one campaign produced: text, exit code and metrics."""

    exit_code: int
    out: str = ""
    err: str = ""
    design: str | None = None
    faults: int = 0
    measured_dc: float | None = None
    safe_fraction: float | None = None
    quarantined: int = 0
    skipped_zones: list[str] = field(default_factory=list)
    run_id: int | None = None
    hits: int = 0
    misses: int = 0
    simulated: int = 0
    claimed_sff: float | None = None
    claimed_dc: float | None = None

    def summary_dict(self) -> dict:
        """The compact record a finished job stores as its result."""
        return {
            "exit_code": self.exit_code,
            "design": self.design,
            "faults": self.faults,
            "measured_dc": self.measured_dc,
            "safe_fraction": self.safe_fraction,
            "quarantined": self.quarantined,
            "skipped_zones": list(self.skipped_zones),
            "run_id": self.run_id,
            "hits": self.hits,
            "misses": self.misses,
            "simulated": self.simulated,
            "claimed_sff": self.claimed_sff,
            "claimed_dc": self.claimed_dc,
        }


class CampaignService:
    """Campaign execution rooted at one store directory."""

    def __init__(self, store_root: str | Path | None = None,
                 project: str = "default"):
        self.root = Path(resolve_store_root(
            str(store_root) if store_root is not None else None))
        self.project = project

    # ------------------------------------------------------------------
    # store namespaces and queue access
    # ------------------------------------------------------------------
    def store_path(self, project: str | None = None) -> Path:
        name = project if project is not None else self.project
        if name == "default":
            return self.root
        return self.root / "projects" / name

    def open_cache(self, project: str | None = None):
        from ..store import CampaignCache
        return CampaignCache(self.store_path(project))

    def open_queue(self, policy=None):
        """The job queue always lives in the root store index, so one
        daemon serves every project namespace under this root."""
        from .queue import JobQueue
        return JobQueue(self.root, policy=policy)

    # ------------------------------------------------------------------
    # job lifecycle façade (CLI ``jobs`` verbs and future APIs)
    # ------------------------------------------------------------------
    def submit(self, request: CampaignRequest,
               max_attempts: int | None = None,
               idempotency_key: str | None = None) -> int:
        job_id, _ = self.submit_dedup(
            request, max_attempts=max_attempts,
            idempotency_key=idempotency_key)
        return job_id

    def submit_dedup(self, request: CampaignRequest,
                     max_attempts: int | None = None,
                     idempotency_key: str | None = None
                     ) -> tuple[int, bool]:
        """Submit with idempotency-key dedupe; ``(job_id,
        deduped)``."""
        with self.open_queue() as queue:
            return queue.submit_idempotent(
                request.to_dict(), project=self.project,
                max_attempts=max_attempts,
                idempotency_key=idempotency_key)

    def status(self, job_id: int):
        with self.open_queue() as queue:
            return queue.job(job_id)

    def result(self, job_id: int) -> dict | None:
        job = self.status(job_id)
        return job.result if job is not None else None

    def cancel(self, job_id: int) -> bool:
        with self.open_queue() as queue:
            return queue.cancel(job_id)

    def retry(self, job_id: int) -> bool:
        with self.open_queue() as queue:
            return queue.retry(job_id)

    def list_jobs(self, status: str | None = None,
                  project: str | None = None):
        with self.open_queue() as queue:
            return queue.jobs(status=status, project=project)

    # ------------------------------------------------------------------
    # the campaign itself (extracted from cli.cmd_campaign)
    # ------------------------------------------------------------------
    def run_campaign(self, request: CampaignRequest, progress=None,
                     cache=None, heartbeat=None,
                     heartbeat_interval: float = 1.0
                     ) -> CampaignOutcome:
        """Run one campaign; never prints — output is returned.

        ``out``/``err`` in the returned :class:`CampaignOutcome` are
        byte-identical to what the pre-service CLI printed, and the
        exit code follows the same taxonomy.  ``progress`` is invoked
        live (the CLI prints its lines immediately).  ``cache``
        overrides the store the request would open (the daemon passes
        a per-job cache it also watches for the run id); ``heartbeat``
        is threaded into the supervisor's event loop.
        """
        from ..faultinjection import build_environment, randomize
        from ..faultinjection.environment import (
            StimuliValidationError,
            validate_stimuli,
        )
        from ..faultinjection.manager import CampaignConfig
        from ..faultinjection.parallel import (
            CampaignSpec,
            ParallelCampaignRunner,
        )
        from ..faultinjection.supervisor import (
            CampaignAborted,
            CampaignSupervisor,
            SupervisorConfig,
        )
        from ..reporting.tables import pct, render_table

        out: list[str] = []
        err: list[str] = []

        def outcome(code: int, **kw) -> CampaignOutcome:
            return CampaignOutcome(exit_code=code,
                                   out="\n".join(out),
                                   err="\n".join(err), **kw)

        vreport = request.validate()
        if not vreport.ok:
            err.append(vreport.render(title="campaign request"))
            return outcome(EXIT_DIAGNOSTIC)
        sub = make_subsystem(request.variant, banks=request.banks,
                             flags=request.flags,
                             bank_flags=request.bank_flags)
        env = build_environment(sub, quick=not request.full)

        if request.stimuli:
            from ..diagnostics import DiagnosticReport
            from ..faultinjection.environment import (
                load_stimuli,
                validate_stimuli_report,
            )
            sreport = DiagnosticReport()
            cycles = load_stimuli(request.stimuli, report=sreport)
            if cycles is not None:
                validate_stimuli_report(env.circuit, cycles, sreport,
                                        source=request.stimuli)
            if not sreport.ok:
                err.append(sreport.render(title="stimuli"))
                return outcome(EXIT_DIAGNOSTIC)
            env.stimuli = cycles
        try:
            validate_stimuli(env.circuit, env.stimuli)
        except StimuliValidationError as exc:
            err.append(f"error: invalid stimuli for "
                       f"{sub.cfg.name}:\n{exc}")
            return outcome(EXIT_DIAGNOSTIC)

        skipped_zones: list[str] = []
        if request.zones:
            from ..diagnostics import DiagnosticReport
            from ..zones.io import load_zone_config, \
                resolve_zone_config
            zreport = DiagnosticReport()
            data = load_zone_config(request.zones, report=zreport)
            if data is None:
                err.append(zreport.render(title="zone config"))
                return outcome(EXIT_DIAGNOSTIC)
            resolution = resolve_zone_config(
                data, env.zone_set, env.circuit, zreport,
                source=request.zones)
            if not zreport.ok and not request.degraded:
                err.append(zreport.render(title="zone config"))
                err.append("(strict mode: pass --degraded to run the "
                           "resolvable zones and bound the metrics)")
                return outcome(EXIT_DIAGNOSTIC)
            if zreport.diagnostics:
                err.append(zreport.render(title="zone config"))
            selected = set(resolution.selected)
            skipped_zones = list(resolution.skipped)
            env.zone_set.zones = [z for z in env.zone_set.zones
                                  if z.name in selected]
            if not env.zone_set.zones:
                err.append("error: no configured zone resolved "
                           "against the netlist — nothing to inject")
                return outcome(EXIT_DIAGNOSTIC)

        candidates = env.candidates()
        if request.sample:
            candidates = randomize(candidates, request.sample)

        if cache is None and request.use_cache:
            cache = self.open_cache()
        config = CampaignConfig(
            machines_per_pass=request.machines_per_pass,
            engine=request.engine)
        spec = CampaignSpec.from_environment(env, config=config)
        anomalies = []
        health = None
        if not request.supervise:
            runner = ParallelCampaignRunner(
                spec, workers=request.workers, shards=request.shards,
                progress=progress, cache=cache)
            campaign = runner.run(candidates)
        else:
            runner = CampaignSupervisor(
                spec, workers=request.workers, shards=request.shards,
                progress=progress, cache=cache,
                config=SupervisorConfig(
                    shard_timeout=request.shard_timeout,
                    cycle_budget=request.cycle_budget,
                    max_retries=request.max_retries,
                    quarantine=request.quarantine,
                    heartbeat=heartbeat,
                    heartbeat_interval=heartbeat_interval))
            try:
                campaign = runner.run(candidates)
            except CampaignAborted as exc:
                err.append(f"error: campaign aborted: {exc}")
                if cache is not None:
                    cache.close()
                return outcome(EXIT_FAILURE,
                               design=sub.cfg.name)
            anomalies = runner.anomalies
            health = runner.last_stats.health \
                if runner.last_stats is not None else None

        counts = campaign.outcomes()
        rows = [[name, count, pct(count / len(campaign.results))
                 if campaign.results else pct(0.0)]
                for name, count in counts.items()]
        out.append(render_table(
            ["outcome", "faults", "fraction"], rows,
            title=f"=== campaign: {sub.cfg.name}, "
                  f"{len(campaign.results)} faults ==="))
        out.append(f"measured DC:            "
                   f"{pct(campaign.measured_dc())}")
        out.append(f"measured safe fraction: "
                   f"{pct(campaign.measured_safe_fraction())}")
        if runner.last_stats is not None:
            out.append(runner.last_stats.summary())
        if anomalies:
            from ..reporting.health import render_campaign_health
            out.append(render_campaign_health(campaign, anomalies,
                                              health=health))
        if skipped_zones:
            from ..reporting.health import (
                degraded_bounds,
                render_degraded_health,
            )
            out.append(render_degraded_health(
                degraded_bounds(campaign, skipped_zones)))
        run_id = None
        hits = misses = simulated = 0
        if cache is not None:
            out.append(cache.stats.summary())
            run_id = cache.last_run_id
            hits, misses = cache.stats.hits, cache.stats.misses
            simulated = cache.stats.simulated
            cache.close()
        return outcome(
            EXIT_QUARANTINE if anomalies or skipped_zones
            else EXIT_OK,
            design=sub.cfg.name, faults=len(campaign.results),
            measured_dc=campaign.measured_dc(),
            safe_fraction=campaign.measured_safe_fraction(),
            quarantined=len(anomalies),
            skipped_zones=skipped_zones, run_id=run_id, hits=hits,
            misses=misses, simulated=simulated,
            claimed_sff=env.worksheet.totals().sff,
            claimed_dc=env.worksheet.totals().dc)
