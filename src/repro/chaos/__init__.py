"""Self-FMEA for the infrastructure: deterministic failpoints, a
crash-consistency harness, and the rendered failure-modes worksheet.

The paper's discipline — enumerate failure modes, name the detection
and recovery mechanism for each, prove it — applied to our own
store/queue/daemon stack (docs/methodology.md §4i).

Only the failpoint primitives are imported eagerly: the store and
queue thread :func:`fail_at` through their durable paths, so this
package must stay import-light (the harness pulls in the service
stack and is loaded lazily).
"""

from .failpoints import (
    FAILPOINT_ENV,
    FailpointSpec,
    activate,
    active,
    clear,
    fail_at,
    parse_specs,
    registry,
    spec_string,
)

__all__ = [
    "FAILPOINT_ENV",
    "FailpointSpec",
    "activate",
    "active",
    "clear",
    "fail_at",
    "parse_specs",
    "registry",
    "spec_string",
    "ChaosHarness",
    "ScenarioResult",
    "scenarios",
    "build_worksheet",
]

_LAZY = {
    "ChaosHarness": "harness",
    "ScenarioResult": "harness",
    "scenarios": "harness",
    "build_worksheet": "selffmea",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(name)
    from importlib import import_module
    return getattr(import_module(f".{module}", __name__), name)
