"""Crash-consistency harness: fire every failpoint under a real
campaign, then prove the invariants held.

Each :class:`ChaosScenario` is one enumerated infrastructure failure
mode: a failpoint × fault-kind pair plus the FMEA columns (effect,
detection mechanism, recovery mechanism) that the self-FMEA worksheet
renders.  The harness executes the scenario in a *subprocess* with
``SOCFMEA_FAILPOINTS`` armed — a real ``soc-fmea campaign``, a
``jobs submit`` + ``serve --drain``, or (``api`` scenarios) a
``serve --http`` server driven by the retrying
:class:`repro.api.client.ApiClient` — and asserts the invariant
oracle:

1. the crash signature matches the injected fault (SIGKILL for
   kill/torn, a coded E413/E414 diagnostic with no traceback for
   disk faults, clean exit for tolerated stalls);
2. post-crash, ``store fsck`` is clean or ``--repair`` makes it so;
3. no job is lost or dead-lettered by the infrastructure fault, and
   every submitted job ends ``done`` after recovery;
4. the post-crash warm rerun reports DC/SFF bit-identical to an
   undisturbed cold run of the same campaign;
5. the final ``store fsck`` is clean.

``soc-fmea chaos`` sweeps these and renders the worksheet
(:mod:`repro.chaos.selffmea`); CI fails on any unverified mode.
"""

from __future__ import annotations

import os
import re
import signal
import socket
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from .failpoints import REGISTRY, FailpointSpec, spec_string

#: repo source root (…/src), derived so subprocesses import this tree
_SRC = Path(__file__).resolve().parent.parent.parent

#: matches both the campaign report ("measured DC:   94.00%") and
#: the jobs-status detail ("result measured DC : 94.00%")
_METRIC_RE = {
    "dc": re.compile(r"measured DC\s*:\s*([0-9.]+%)"),
    "sff": re.compile(r"safe fraction\s*:\s*([0-9.]+%)"),
}


@dataclass(frozen=True)
class ChaosScenario:
    """One enumerated infrastructure failure mode + its injection."""

    failure_mode: str
    failpoint: str
    kind: str
    effect: str
    detection: str
    recovery: str
    mode: str = "campaign"        # campaign | service | api
    arg: float | None = None
    trigger_at: int = 1
    smoke: bool = False           # in the --quick (PR) subset

    @property
    def spec(self) -> str:
        return spec_string([FailpointSpec(
            self.failpoint, self.kind, self.arg, self.trigger_at)])

    @property
    def slug(self) -> str:
        text = f"{self.failpoint}-{self.kind}"
        if self.trigger_at != 1:
            text += f"-{self.trigger_at}"
        return re.sub(r"[^a-z0-9.-]+", "-", text.lower())


@dataclass
class OracleCheck:
    name: str
    passed: bool
    detail: str = ""


@dataclass
class ScenarioResult:
    scenario: ChaosScenario
    checks: list[OracleCheck] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def verified(self) -> bool:
        return bool(self.checks) and all(c.passed for c in self.checks)

    @property
    def failures(self) -> list[OracleCheck]:
        return [c for c in self.checks if not c.passed]


def scenarios() -> list[ChaosScenario]:
    """The enumerated failure-mode worksheet (one scenario per row).

    Every failpoint in the registry must appear at least once —
    :meth:`ChaosHarness.sweep` enforces it, so a new injection site
    cannot ship without a verified recovery path.
    """
    _ = ChaosScenario
    return [
        # ---- blob store write protocol (campaign-driven) ----
        _("blob write hits a full disk",
          "store.blob.pre-temp-write", "enospc",
          effect="golden-trace blob cannot be written; the campaign "
                 "halts mid-finalize",
          detection="coded E413 diagnostic (no traceback)",
          recovery="store unchanged; warm rerun resumes and "
                   "completes once space clears",
          smoke=True),
        _("crash before the blob temp file exists",
          "store.blob.pre-temp-write", "kill",
          effect="process dies with no blob and an open run row",
          detection="fsck flags the interrupted run (E408)",
          recovery="warm rerun recomputes the blob from cached "
                   "outcomes"),
        _("torn blob temp write (lost page flush)",
          "store.blob.post-temp-write", "torn",
          effect="the temp file is truncated and the process dies",
          detection="temp file never reaches its content address — "
                    "readers cannot see it",
          recovery="orphan temp is ignored; rerun rewrites the blob"),
        _("crash between temp fsync and rename",
          "store.blob.pre-rename", "kill",
          effect="fully-written temp file, no visible blob",
          detection="fsck flags the interrupted run (E408)",
          recovery="rename never happened: readers saw nothing; "
                   "rerun rewrites the blob"),
        _("torn blob after rename (power loss before data flush)",
          "store.blob.post-rename", "torn",
          effect="a truncated object sits under its final content "
                 "address",
          detection="checksum-on-read (CorruptBlobError) and fsck "
                    "E401",
          recovery="fsck --repair deletes the torn blob; the warm "
                   "rerun recomputes it",
          smoke=True),
        _("device i/o error after blob rename",
          "store.blob.post-rename", "eio",
          effect="the durability fsync fails after the object is "
                 "visible",
          detection="coded E414 diagnostic (no traceback)",
          recovery="blob content is already correct (checksummed); "
                   "rerun verifies and completes"),
        # ---- store index transactions (campaign-driven) ----
        _("crash mid index write transaction",
          "store.db.pre-commit", "kill", trigger_at=4,
          effect="the process dies between two shard commits",
          detection="SQLite WAL atomicity: the open transaction "
                    "never becomes visible; fsck E408",
          recovery="warm rerun resumes from the last committed "
                   "shard (only missing cones re-simulate)",
          smoke=True),
        _("index write hits a full disk",
          "store.db.pre-commit", "enospc", trigger_at=4,
          effect="a shard flush cannot commit",
          detection="coded E413 diagnostic (no traceback)",
          recovery="committed evidence intact; warm rerun completes "
                   "once space clears"),
        _("crash immediately after an index commit",
          "store.db.post-commit", "kill", trigger_at=4,
          effect="evidence is durable but the campaign never "
                 "finalizes",
          detection="fsck flags the interrupted run (E408)",
          recovery="warm rerun reuses every committed row "
                   "bit-identically"),
        # ---- queue protocol (service-driven) ----
        _("daemon dies after claiming, before executing",
          "queue.claim", "kill", mode="service",
          effect="a leased job with a dead owner",
          detection="lease expiry: heartbeats stop and the deadline "
                    "passes (+ skew grace)",
          recovery="any healthy serve re-claims and executes; the "
                   "attempt budget bounds repeats",
          smoke=True),
        _("store unavailable at claim (disk full)",
          "queue.claim", "enospc", mode="service",
          effect="the daemon cannot take work",
          detection="coded E413 surfaced by the claim path",
          recovery="the queue pauses — jobs stay queued, nothing "
                   "dead-letters"),
        _("heartbeat stalls past the lease (GC pause / clock skew)",
          "queue.heartbeat", "sleep", arg=3.0, mode="service",
          effect="the lease deadline passes while the worker is "
                 "alive but silent",
          detection="owner-fenced monotonic renewal: an un-stolen "
                    "lease renews late; a stolen one raises "
                    "JobLeaseLost (skew_grace absorbs real clock "
                    "skew)",
          recovery="the job completes exactly once either way"),
        _("daemon killed mid-execution (between heartbeats)",
          "queue.heartbeat", "kill", trigger_at=3, mode="service",
          effect="a running job loses its worker mid-campaign",
          detection="lease expiry after the missed heartbeat",
          recovery="re-claim resumes from the store: committed "
                   "shards are not re-simulated",
          smoke=True),
        _("crash between store commit and job completion",
          "queue.transition", "kill", mode="service",
          effect="all evidence durable, job still marked running",
          detection="lease expiry",
          recovery="re-claim replays warm (zero simulations) and "
                   "completes idempotently",
          smoke=True),
        _("disk fills while a job executes",
          "store.db.pre-commit", "enospc", trigger_at=8,
          mode="service",
          effect="the executing campaign cannot flush a shard",
          detection="coded E413 inside the daemon",
          recovery="the job is *released* (attempt refunded, E413 "
                   "recorded) and the queue pauses — no "
                   "dead-letter; the next serve completes it",
          smoke=True),
        # ---- daemon lifecycle (service-driven) ----
        _("daemon dies at startup",
          "daemon.spawn", "kill", mode="service",
          effect="serve exits before claiming anything",
          detection="queue state unchanged (jobs still queued)",
          recovery="the next serve runs the queue normally"),
        _("daemon dies deciding the queue is drained",
          "daemon.drain", "kill", mode="service",
          effect="work is complete but the clean exit is lost",
          detection="all jobs already terminal; fsck clean",
          recovery="a rerun drains immediately with no work to do"),
        # ---- HTTP API front end (client-driven) ----
        _("server killed accepting a connection",
          "api.accept", "kill", mode="api",
          effect="the submit never reaches the queue; the client "
                 "sees a dropped connection",
          detection="client transport error (connection reset/"
                    "refused)",
          recovery="client retries the same idempotency key against "
                   "the restarted server; exactly one job enqueues"),
        _("server killed during submit admission control",
          "api.quota-check", "kill", mode="api",
          effect="death between authn/quota checks and the enqueue",
          detection="client transport error; queue unchanged (the "
                    "admission transaction never ran)",
          recovery="idempotency-key retry converges to one job",
          smoke=True),
        _("store fault during submit admission (disk full)",
          "api.quota-check", "enospc", mode="api",
          effect="the admission path cannot read the queue",
          detection="coded 503 E428 + Retry-After (no traceback); "
                    "the server stays up",
          recovery="client backs off per Retry-After; once the "
                   "store recovers (restart here), the same key "
                   "submits exactly once"),
        _("server killed after enqueue, before the response",
          "api.pre-response", "kill", mode="api",
          effect="the job is durable but the client never hears — "
                 "the classic lost-ack double-submit window",
          detection="client transport error on a submit that "
                    "actually landed",
          recovery="the retried key dedupes onto the enqueued job; "
                   "the re-claimed job resumes warm from the store",
          smoke=True),
        _("server killed after the response is flushed",
          "api.post-response", "kill", mode="api",
          effect="client holds the job id; server (and its embedded "
                 "worker) die mid-campaign",
          detection="lease expiry on the orphaned job",
          recovery="the restarted serve re-claims and completes "
                   "warm; a duplicate submit dedupes"),
        _("server killed mid progress stream",
          "api.stream", "kill", trigger_at=3, mode="api",
          effect="the chunked event stream dies mid-campaign",
          detection="client stream EOF without a terminal snapshot",
          recovery="events are state snapshots: the reconnected "
                   "stream resumes from current state, and the job "
                   "completes bit-identically",
          smoke=True),
    ]


class ChaosHarness:
    """Executes scenarios against scratch stores under a workdir."""

    def __init__(self, workdir: str | Path,
                 variant: str = "small-improved",
                 progress=None, timeout: float = 300.0):
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.variant = variant
        self.progress = progress
        self.timeout = timeout
        self._reference: dict[str, str] | None = None

    # ------------------------------------------------------------------
    # subprocess plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _env(failpoints: str | None = None) -> dict:
        env = {**os.environ,
               "PYTHONPATH": str(_SRC) + (
                   os.pathsep + os.environ["PYTHONPATH"]
                   if os.environ.get("PYTHONPATH") else "")}
        env.pop("SOCFMEA_FAILPOINTS", None)
        if failpoints:
            env["SOCFMEA_FAILPOINTS"] = failpoints
        return env

    def _cli(self, args: list[str], store: Path,
             failpoints: str | None = None,
             timeout: float | None = None):
        env = self._env(failpoints)
        return subprocess.run(
            [sys.executable, "-m", "repro.cli",
             *args, "--store", str(store)],
            capture_output=True, text=True, env=env,
            timeout=timeout or self.timeout)

    def _campaign_args(self) -> list[str]:
        # 4 shards → several index commits per run, so @N triggers
        # can land between two of them
        return ["campaign", "--variant", self.variant,
                "--shards", "4"]

    def _submit_args(self) -> list[str]:
        return ["jobs", "submit", "--variant", self.variant,
                "--shards", "4"]

    def _serve_args(self) -> list[str]:
        return ["serve", "--drain", "--lease", "2",
                "--heartbeat-interval", "0.2",
                "--poll-interval", "0.1"]

    @staticmethod
    def _free_port() -> int:
        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            return sock.getsockname()[1]

    def _serve_http(self, store: Path, port: int,
                    failpoints: str | None = None):
        """Start ``serve --http`` as a long-lived subprocess (its
        embedded workers use the same tight lease as ``--drain``
        runs, so re-claim after a crash is quick)."""
        return subprocess.Popen(
            [sys.executable, "-m", "repro.cli",
             "serve", "--http", f"127.0.0.1:{port}",
             "--lease", "2", "--heartbeat-interval", "0.2",
             "--poll-interval", "0.1", "--store", str(store)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=self._env(failpoints))

    @staticmethod
    def _metrics(text: str) -> dict[str, str]:
        out = {}
        for key, rx in _METRIC_RE.items():
            match = rx.search(text)
            if match:
                out[key] = match.group(1)
        return out

    # ------------------------------------------------------------------
    # the undisturbed cold reference
    # ------------------------------------------------------------------
    def reference(self) -> dict[str, str]:
        """DC/SFF of a cold, undisturbed run (computed once)."""
        if self._reference is None:
            store = self.workdir / "store-reference"
            proc = self._cli(self._campaign_args(), store)
            if proc.returncode != 0:
                raise RuntimeError(
                    f"reference campaign failed "
                    f"(exit {proc.returncode}):\n{proc.stderr}")
            metrics = self._metrics(proc.stdout)
            if set(metrics) != {"dc", "sff"}:
                raise RuntimeError(
                    "reference campaign printed no DC/SFF:\n"
                    + proc.stdout)
            self._reference = metrics
        return self._reference

    # ------------------------------------------------------------------
    # oracle pieces
    # ------------------------------------------------------------------
    def _check_crash(self, scenario: ChaosScenario, proc,
                     checks: list[OracleCheck]) -> None:
        kind = scenario.kind
        if kind in ("kill", "torn"):
            checks.append(OracleCheck(
                "crash signature",
                proc.returncode == -9,
                f"expected SIGKILL (-9), got exit "
                f"{proc.returncode}"))
        elif kind in ("enospc", "eio"):
            code = "E413" if kind == "enospc" else "E414"
            if scenario.mode == "campaign":
                blob = proc.stdout + proc.stderr
                checks.append(OracleCheck(
                    "coded diagnostic",
                    proc.returncode == 2 and code in blob
                    and "Traceback" not in blob,
                    f"expected exit 2 with {code} and no traceback; "
                    f"got exit {proc.returncode}"))
            else:
                # the daemon absorbs the fault: pause + release, then
                # a clean drain exit — never a crash
                blob = proc.stdout + proc.stderr
                checks.append(OracleCheck(
                    "daemon absorbs the fault",
                    proc.returncode == 0 and "Traceback" not in blob,
                    f"expected exit 0 without traceback, got exit "
                    f"{proc.returncode}:\n{proc.stderr[-500:]}"))
        else:                       # sleep: tolerated, no crash
            checks.append(OracleCheck(
                "stall tolerated",
                proc.returncode == 0,
                f"expected exit 0, got {proc.returncode}:"
                f"\n{proc.stderr[-500:]}"))

    def _check_fsck(self, store: Path, checks: list[OracleCheck],
                    label: str, repair: bool) -> None:
        fsck = self._cli(["store", "fsck"], store)
        if fsck.returncode == 0:
            checks.append(OracleCheck(label, True))
            return
        if not repair:
            checks.append(OracleCheck(
                label, False,
                f"fsck exit {fsck.returncode}:\n{fsck.stdout}"
                f"{fsck.stderr}"))
            return
        self._cli(["store", "fsck", "--repair"], store)
        again = self._cli(["store", "fsck"], store)
        checks.append(OracleCheck(
            label, again.returncode == 0,
            f"unrepairable: fsck exit {again.returncode} after "
            f"--repair:\n{again.stdout}{again.stderr}"))

    def _check_jobs_done(self, store: Path,
                         checks: list[OracleCheck]) -> None:
        status = self._cli(["jobs", "status", "1"], store)
        text = status.stdout
        done = re.search(r"status\s*:\s*done", text) is not None
        dead_free = self._cli(["jobs", "list"], store)
        checks.append(OracleCheck(
            "no job lost or dead-lettered",
            done and dead_free.returncode == 0,
            f"jobs status exit {status.returncode} "
            f"(list exit {dead_free.returncode}):\n{text}"))
        metrics = self._metrics(text)
        ref = self.reference()
        checks.append(OracleCheck(
            "warm result bit-identical to cold run",
            metrics.get("dc") == ref["dc"]
            and metrics.get("sff") == ref["sff"],
            f"job result {metrics} != reference {ref}"))

    # ------------------------------------------------------------------
    # HTTP API scenarios (client-driven)
    # ------------------------------------------------------------------
    def _run_api(self, scenario: ChaosScenario, store: Path,
                 checks: list[OracleCheck]) -> None:
        """Drive an armed ``serve --http`` through the retrying
        client, crash (or shed) it, then prove the idempotency-key
        retry against an unarmed restart converges on exactly one
        completed, bit-identical job."""
        from ..api.client import ApiClient, ApiClientError

        key = f"chaos-{scenario.slug}"
        spec = {"variant": self.variant, "shards": 4}

        def client_for(port: int) -> ApiClient:
            return ApiClient("127.0.0.1", port, max_retries=2,
                             backoff_base=0.1, backoff_cap=0.5,
                             backoff_seed=7, timeout=5.0)

        port = self._free_port()
        proc = self._serve_http(store, port,
                                failpoints=scenario.spec)
        client = client_for(port)
        submitted: dict | None = None

        if scenario.kind == "kill":
            # the submit retry loop doubles as the readiness wait:
            # keep offering the same idempotency key until the armed
            # server dies under us (accept / quota-check /
            # pre-response) or the submit lands (post-response /
            # stream)
            deadline = time.monotonic() + self.timeout
            while proc.poll() is None \
                    and time.monotonic() < deadline:
                try:
                    submitted = client.submit(
                        spec, idempotency_key=key)
                    break
                except ApiClientError:
                    time.sleep(0.2)
            if scenario.failpoint == "api.stream":
                checks.append(OracleCheck(
                    "submit accepted before the stream",
                    submitted is not None,
                    "submit never succeeded against the armed "
                    "server"))
                if submitted is not None:
                    try:
                        for _event in client.stream(
                                submitted["job"]):
                            pass
                    except ApiClientError:
                        pass    # the kill severs the stream
            survived = False
            try:
                out, err = proc.communicate(timeout=60)
            except subprocess.TimeoutExpired:
                survived = True
                proc.kill()
                out, err = proc.communicate()
            checks.append(OracleCheck(
                "crash signature",
                not survived and proc.returncode == -9,
                "armed server outlived the fault (killed by "
                "harness)" if survived else
                f"expected SIGKILL (-9), got exit "
                f"{proc.returncode}"))
        else:                   # enospc: shed coded, never crash
            ready = False
            deadline = time.monotonic() + 30
            while proc.poll() is None \
                    and time.monotonic() < deadline:
                try:
                    client.health()
                    ready = True
                    break
                except ApiClientError:
                    time.sleep(0.2)
            checks.append(OracleCheck(
                "armed server serves /healthz", ready,
                f"server never became healthy "
                f"(exit {proc.poll()})"))
            shed: Exception | None = None
            try:
                submitted = client.submit(spec,
                                          idempotency_key=key)
            except ApiClientError as exc:
                shed = exc
            checks.append(OracleCheck(
                "submit shed with coded 503 E428",
                shed is not None and "E428" in str(shed),
                f"expected a coded E428 shed, got "
                f"{shed or submitted}"))
            submitted = None    # nothing enqueued under the fault
            proc.send_signal(signal.SIGTERM)
            try:
                out, err = proc.communicate(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                out, err = proc.communicate()
            checks.append(OracleCheck(
                "server absorbs the fault",
                proc.returncode == 0
                and "Traceback" not in out + err,
                f"expected clean SIGTERM exit without traceback, "
                f"got exit {proc.returncode}:\n{(err or out)[-500:]}"))

        self._check_fsck(store, checks,
                         "post-crash fsck repairable", True)

        # recovery: an unarmed server, the *same* idempotency key
        port = self._free_port()
        recover = self._serve_http(store, port)
        client = client_for(port)
        second: dict | None = None
        try:
            deadline = time.monotonic() + self.timeout
            while recover.poll() is None \
                    and time.monotonic() < deadline:
                try:
                    second = client.submit(spec,
                                           idempotency_key=key)
                    break
                except ApiClientError:
                    time.sleep(0.2)
            listing = client.jobs() if second is not None else []
            checks.append(OracleCheck(
                "idempotent retry converges to one job",
                second is not None and len(listing) == 1
                and (submitted is None
                     or second["job"] == submitted["job"]),
                f"retried submit {second} against first "
                f"{submitted}; queue holds {len(listing)} job(s)"))
            done: dict | None = None
            if second is not None:
                try:
                    done = client.wait(second["job"],
                                       timeout=self.timeout)
                except ApiClientError as exc:
                    done = {"status": f"wait failed: {exc}"}
            checks.append(OracleCheck(
                "job completes after recovery",
                bool(done) and done.get("status") == "done",
                f"final state: {done}"))
        finally:
            if recover.poll() is None:
                recover.send_signal(signal.SIGTERM)
            try:
                out, err = recover.communicate(timeout=30)
            except subprocess.TimeoutExpired:
                recover.kill()
                out, err = recover.communicate()
        checks.append(OracleCheck(
            "recovery server drains cleanly on SIGTERM",
            recover.returncode == 0,
            f"exit {recover.returncode}:\n{(err or out)[-500:]}"))
        self._check_jobs_done(store, checks)

    # ------------------------------------------------------------------
    # scenario execution
    # ------------------------------------------------------------------
    def run(self, scenario: ChaosScenario) -> ScenarioResult:
        start = time.time()
        result = ScenarioResult(scenario)
        checks = result.checks
        store = self.workdir / f"store-{scenario.slug}"
        if self.progress is not None:
            self.progress(f"{scenario.failure_mode} "
                          f"[{scenario.spec}]")

        if scenario.mode == "campaign":
            proc = self._cli(self._campaign_args(), store,
                             failpoints=scenario.spec)
            self._check_crash(scenario, proc, checks)
            self._check_fsck(store, checks,
                             "post-crash fsck repairable", True)
            rerun = self._cli(self._campaign_args(), store)
            metrics = self._metrics(rerun.stdout)
            ref = self.reference()
            checks.append(OracleCheck(
                "warm rerun bit-identical to cold run",
                rerun.returncode == 0 and metrics == ref,
                f"rerun exit {rerun.returncode}, metrics {metrics} "
                f"!= reference {ref}:\n{rerun.stderr[-500:]}"))
        elif scenario.mode == "api":
            self._run_api(scenario, store, checks)
        else:
            submit = self._cli(self._submit_args(), store)
            checks.append(OracleCheck(
                "job submitted", submit.returncode == 0,
                f"submit exit {submit.returncode}:"
                f"\n{submit.stderr[-300:]}"))
            proc = self._cli(self._serve_args(), store,
                             failpoints=scenario.spec)
            self._check_crash(scenario, proc, checks)
            self._check_fsck(store, checks,
                             "post-crash fsck repairable", True)
            # recovery: an unarmed daemon drains the queue (waiting
            # out the dead owner's lease + skew grace if needed)
            recover = self._cli(self._serve_args(), store)
            checks.append(OracleCheck(
                "recovery serve drains cleanly",
                recover.returncode == 0,
                f"serve exit {recover.returncode}:"
                f"\n{recover.stderr[-500:]}\n{recover.stdout[-500:]}"))
            self._check_jobs_done(store, checks)

        self._check_fsck(store, checks, "final fsck clean", False)
        result.seconds = time.time() - start
        return result

    def sweep(self, selected: list[ChaosScenario] | None = None
              ) -> list[ScenarioResult]:
        """Run scenarios (default: all), enforcing that the full set
        covers every registered failpoint."""
        full = scenarios()
        uncovered = set(REGISTRY) - {s.failpoint for s in full}
        if uncovered:
            raise RuntimeError(
                f"failpoints with no chaos scenario: "
                f"{', '.join(sorted(uncovered))}")
        self.reference()            # fail fast if the baseline breaks
        return [self.run(s) for s in (selected
                                      if selected is not None
                                      else full)]
