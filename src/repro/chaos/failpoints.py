"""Deterministic infrastructure failpoints.

Every durable path of the store/queue/daemon stack passes through a
named injection site::

    fail_at("store.blob.pre-rename", path=tmp)

A site is inert until armed: ``fail_at`` returns after a single dict
truthiness check when no failpoint is active, so production cost is
one lookup (<2% on the service benchmarks, see ``bench_chaos.py``).
Arming happens either in-process (:func:`activate`, used by unit
tests) or — the interesting case — via the ``SOCFMEA_FAILPOINTS``
environment variable, which the crash-consistency harness sets on
*subprocesses* so a real campaign crashes at a chosen instruction::

    SOCFMEA_FAILPOINTS="store.db.pre-commit=kill@6"

Spec grammar (comma-separated): ``name=kind[:arg][@trigger]`` —
``kind`` is one of

* ``enospc`` / ``eio`` — raise ``OSError(ENOSPC/EIO)`` (sticky: every
  hit at or past the trigger fails, like a genuinely full disk)
* ``exc``    — raise ``RuntimeError`` (sticky)
* ``kill``   — ``SIGKILL`` the current process (no cleanup handlers,
  the honest crash model)
* ``sleep:S``— sleep ``S`` seconds once, at the trigger hit (models a
  GC pause / clock skew stalling a heartbeat past its lease)
* ``torn``   — truncate the file passed as ``path=`` to half its
  size, then ``SIGKILL`` (models a lost page flush: the classic torn
  write that only fsync-before-rename or checksum-on-read catches)

``@trigger`` (default 1) fires on the Nth hit of the site, so "crash
on the sixth index commit" is expressible and exactly reproducible.
"""

from __future__ import annotations

import errno
import os
import signal
import time
from dataclasses import dataclass, field

#: environment variable the harness uses to arm failpoints in
#: subprocesses; parsed once at import
FAILPOINT_ENV = "SOCFMEA_FAILPOINTS"

KIND_ENOSPC = "enospc"
KIND_EIO = "eio"
KIND_EXC = "exc"
KIND_KILL = "kill"
KIND_SLEEP = "sleep"
KIND_TORN = "torn"

#: kinds that raise and keep raising (a full disk stays full)
_STICKY = (KIND_ENOSPC, KIND_EIO, KIND_EXC)
ALL_KINDS = (KIND_ENOSPC, KIND_EIO, KIND_EXC, KIND_KILL, KIND_SLEEP,
             KIND_TORN)


@dataclass(frozen=True)
class FailpointSite:
    """One registered injection site (static metadata)."""

    name: str
    module: str
    description: str
    kinds: tuple[str, ...] = ALL_KINDS


#: the registry: every named site threaded through the stack.  The
#: harness sweeps this — adding a site here without a scenario in
#: ``harness.scenarios()`` fails ``soc-fmea chaos``'s coverage check.
_SITES = [
    FailpointSite(
        "store.blob.pre-temp-write", "repro.store.blobs",
        "before the blob temp file is created"),
    FailpointSite(
        "store.blob.post-temp-write", "repro.store.blobs",
        "after payload written to the temp file, before fsync"),
    FailpointSite(
        "store.blob.pre-rename", "repro.store.blobs",
        "after temp-file fsync, before the atomic rename"),
    FailpointSite(
        "store.blob.post-rename", "repro.store.blobs",
        "after rename, before the parent directory fsync"),
    FailpointSite(
        "store.db.pre-commit", "repro.store.db",
        "before a store-index write transaction commits"),
    FailpointSite(
        "store.db.post-commit", "repro.store.db",
        "after a store-index write transaction commits"),
    FailpointSite(
        "queue.claim", "repro.service.queue",
        "after a job claim commits, before the worker executes"),
    FailpointSite(
        "queue.heartbeat", "repro.service.queue",
        "on lease heartbeat renewal"),
    FailpointSite(
        "queue.transition", "repro.service.queue",
        "before a job's terminal complete/fail transition"),
    FailpointSite(
        "daemon.spawn", "repro.service.daemon",
        "at worker claim-loop startup"),
    FailpointSite(
        "daemon.drain", "repro.service.daemon",
        "when a draining worker decides the queue is empty"),
    FailpointSite(
        "api.accept", "repro.api.server",
        "when an HTTP connection is accepted, before any read"),
    FailpointSite(
        "api.quota-check", "repro.api.server",
        "during submit admission control (authn, quota, watermark)"),
    FailpointSite(
        "api.pre-response", "repro.api.server",
        "after a request is handled, before the response bytes are "
        "written"),
    FailpointSite(
        "api.post-response", "repro.api.server",
        "after the response bytes are flushed to the socket"),
    FailpointSite(
        "api.stream", "repro.api.server",
        "before each progress event is written to a streaming "
        "response"),
]

REGISTRY: dict[str, FailpointSite] = {s.name: s for s in _SITES}


def registry() -> list[FailpointSite]:
    """All registered sites, in declaration (stack-layer) order."""
    return list(_SITES)


@dataclass
class FailpointSpec:
    """One armed failpoint with its trigger state."""

    name: str
    kind: str
    arg: float | None = None
    trigger_at: int = 1
    hits: int = field(default=0, compare=False)
    fired: int = field(default=0, compare=False)


class FailpointSpecError(ValueError):
    """An unparsable or unknown failpoint spec string."""


#: the armed set; empty in production, so ``fail_at`` is one check
_ACTIVE: dict[str, FailpointSpec] = {}


def parse_specs(text: str) -> dict[str, FailpointSpec]:
    """Parse a ``name=kind[:arg][@trigger]`` comma-separated string."""
    specs: dict[str, FailpointSpec] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        name, sep, action = part.partition("=")
        if not sep or not action:
            raise FailpointSpecError(
                f"failpoint spec {part!r} is not name=kind[:arg]"
                f"[@trigger]")
        name = name.strip()
        if name not in REGISTRY:
            known = ", ".join(sorted(REGISTRY))
            raise FailpointSpecError(
                f"unknown failpoint {name!r} (known: {known})")
        action, at, trigger_text = action.partition("@")
        kind, colon, arg_text = action.partition(":")
        kind = kind.strip()
        if kind not in ALL_KINDS:
            raise FailpointSpecError(
                f"unknown failpoint kind {kind!r} for {name} "
                f"(known: {', '.join(ALL_KINDS)})")
        arg = None
        if colon:
            try:
                arg = float(arg_text)
            except ValueError:
                raise FailpointSpecError(
                    f"failpoint arg {arg_text!r} is not a number"
                ) from None
        trigger_at = 1
        if at:
            try:
                trigger_at = int(trigger_text)
            except ValueError:
                raise FailpointSpecError(
                    f"failpoint trigger {trigger_text!r} is not an "
                    f"integer") from None
            if trigger_at < 1:
                raise FailpointSpecError(
                    "failpoint trigger must be >= 1")
        specs[name] = FailpointSpec(name, kind, arg, trigger_at)
    return specs


def spec_string(specs: dict[str, FailpointSpec] | list[FailpointSpec]
                ) -> str:
    """Inverse of :func:`parse_specs` — the env-var encoding."""
    items = specs.values() if isinstance(specs, dict) else specs
    parts = []
    for spec in items:
        text = f"{spec.name}={spec.kind}"
        if spec.arg is not None:
            text += f":{spec.arg:g}"
        if spec.trigger_at != 1:
            text += f"@{spec.trigger_at}"
        parts.append(text)
    return ",".join(parts)


def activate(name: str, kind: str, arg: float | None = None,
             trigger_at: int = 1) -> FailpointSpec:
    """Arm one failpoint in this process (unit-test entry point)."""
    spec = parse_specs(spec_string([FailpointSpec(
        name, kind, arg, trigger_at)]))[name]
    _ACTIVE[name] = spec
    return spec


def clear(name: str | None = None) -> None:
    """Disarm one failpoint, or all of them."""
    if name is None:
        _ACTIVE.clear()
    else:
        _ACTIVE.pop(name, None)


def active() -> dict[str, FailpointSpec]:
    return dict(_ACTIVE)


def configure_from_env(environ=None) -> None:
    """Arm failpoints from ``SOCFMEA_FAILPOINTS`` (called at import,
    so a subprocess spawned with the variable set is armed before any
    store/queue code runs)."""
    text = (environ or os.environ).get(FAILPOINT_ENV)
    if text:
        _ACTIVE.clear()
        _ACTIVE.update(parse_specs(text))


def _fire(spec: FailpointSpec, path: str | None) -> None:
    where = f"failpoint {spec.name}"
    if spec.kind == KIND_ENOSPC:
        raise OSError(errno.ENOSPC,
                      f"{where}: injected ENOSPC (disk full)")
    if spec.kind == KIND_EIO:
        raise OSError(errno.EIO, f"{where}: injected EIO (i/o error)")
    if spec.kind == KIND_EXC:
        raise RuntimeError(f"{where}: injected exception")
    if spec.kind == KIND_SLEEP:
        time.sleep(spec.arg if spec.arg is not None else 0.1)
        return
    if spec.kind == KIND_TORN:
        # lose the tail of the in-flight file, then die without
        # cleanup — the torn-write crash model
        if path is not None:
            try:
                size = os.path.getsize(path)
                with open(path, "r+b") as handle:
                    handle.truncate(max(1, size // 2))
                    handle.flush()
                    os.fsync(handle.fileno())
            except OSError:
                pass
        os.kill(os.getpid(), signal.SIGKILL)
    if spec.kind == KIND_KILL:
        os.kill(os.getpid(), signal.SIGKILL)


def fail_at(name: str, path: str | None = None) -> None:
    """The injection site.  Disabled cost: one dict truthiness check.

    ``path`` names the in-flight file for the ``torn`` kind; other
    kinds ignore it.
    """
    if not _ACTIVE:
        return
    spec = _ACTIVE.get(name)
    if spec is None:
        return
    spec.hits += 1
    if spec.hits < spec.trigger_at:
        return
    if spec.kind == KIND_SLEEP and spec.fired:
        return                      # a stall happens once, not forever
    if spec.kind not in _STICKY and spec.fired:
        return
    spec.fired += 1
    _fire(spec, path)


configure_from_env()
