"""Self-FMEA worksheet: the infrastructure's own failure modes.

The paper's worksheet discipline applied to the store/queue/daemon
stack: one row per enumerated failure mode with its effect, the
*named* detection mechanism, the *named* recovery mechanism, and a
verdict — ``VERIFIED`` only when the crash-consistency harness
actually fired the failpoint and every invariant check passed.
Rendered by ``soc-fmea chaos`` (tables via
:mod:`repro.reporting.chaos`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .harness import ChaosScenario, ScenarioResult, scenarios

VERDICT_VERIFIED = "VERIFIED"
VERDICT_FAILED = "FAILED"
VERDICT_NOT_RUN = "not run"


@dataclass
class WorksheetRow:
    """One failure mode of the self-FMEA worksheet."""

    scenario: ChaosScenario
    verdict: str = VERDICT_NOT_RUN
    failures: list[str] = field(default_factory=list)
    seconds: float = 0.0

    def as_dict(self) -> dict:
        s = self.scenario
        return {
            "failure_mode": s.failure_mode,
            "failpoint": s.failpoint,
            "kind": s.kind,
            "spec": s.spec,
            "mode": s.mode,
            "effect": s.effect,
            "detection": s.detection,
            "recovery": s.recovery,
            "verdict": self.verdict,
            "failures": list(self.failures),
            "seconds": round(self.seconds, 2),
        }


@dataclass
class Worksheet:
    rows: list[WorksheetRow]

    @property
    def verified(self) -> int:
        return sum(1 for r in self.rows
                   if r.verdict == VERDICT_VERIFIED)

    @property
    def failed(self) -> int:
        return sum(1 for r in self.rows
                   if r.verdict.startswith(VERDICT_FAILED))

    @property
    def not_run(self) -> int:
        return sum(1 for r in self.rows
                   if r.verdict == VERDICT_NOT_RUN)

    @property
    def ok(self) -> bool:
        """Every *executed* row verified (filtered runs leave
        ``not run`` rows, which don't fail the report)."""
        return self.failed == 0

    def as_dict(self) -> dict:
        return {
            "rows": [row.as_dict() for row in self.rows],
            "verified": self.verified,
            "failed": self.failed,
            "not_run": self.not_run,
            "ok": self.ok,
        }


def build_worksheet(results: list[ScenarioResult],
                    all_rows: bool = True) -> Worksheet:
    """Merge harness results into the enumerated worksheet.

    With ``all_rows`` every enumerated failure mode appears even when
    it was filtered out of this run (verdict ``not run``), so a
    partial sweep can never masquerade as full coverage.
    """
    by_key = {(r.scenario.failpoint, r.scenario.kind,
               r.scenario.trigger_at): r for r in results}
    base = scenarios() if all_rows \
        else [r.scenario for r in results]
    rows = []
    for scenario in base:
        key = (scenario.failpoint, scenario.kind,
               scenario.trigger_at)
        result = by_key.get(key)
        row = WorksheetRow(scenario)
        if result is not None:
            row.seconds = result.seconds
            if result.verified:
                row.verdict = VERDICT_VERIFIED
            else:
                row.failures = [
                    f"{c.name}: {c.detail}".strip(": ")
                    for c in result.failures]
                row.verdict = (f"{VERDICT_FAILED} "
                               f"({len(row.failures)} check(s))")
        rows.append(row)
    return Worksheet(rows)
