"""Integrity audit and repair for the campaign store (``store fsck``).

The store is designed so that *any* record can be deleted safely: every
outcome is a pure function of content-addressed inputs, so dropping a
corrupt row merely turns a warm cache hit back into a cache miss that
deterministic re-simulation restores bit-identically.  ``fsck`` walks
every invariant the store relies on and reports violations as coded
``E4xx`` diagnostics; with ``repair=True`` it applies the deletion /
cleanup that restores each invariant:

========  ==========================================  ================
code      invariant violated                          repair action
========  ==========================================  ================
``E400``  SQLite index opens and passes its own       none (manual)
          b-tree integrity check
``E401``  blob content hashes to its address          delete blob
``E402``  every golden-map digest has a blob          drop map entry
``E403``  every run's golden_blob exists              clear reference
``E404``  run_faults/shard_attempts rows belong       delete rows
          to a recorded run
``E405``  outcome 'effects' payloads parse            delete rows
``E406``  anomaly rows reference recorded runs        delete rows
``E407``  every blob is referenced (warning)          delete blob (GC)
``E408``  runs finished (warning — resumable)         none
``E410``  job leases have live heartbeats             release lease
          (warning — any daemon re-claims)            back to queue
``E411``  active jobs reference recorded runs         clear reference
``E412``  dead-letter jobs' evidence still exists     delete job row
========  ==========================================  ================

The ``E41x`` sections audit the job queue (``repro.service.queue``)
that shares this index; queue repairs touch exactly the broken rows,
never healthy neighbours.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field

from ..diagnostics import DiagnosticReport
from .cache import CampaignCache


@dataclass
class FsckResult:
    """Outcome of one ``store fsck`` pass."""

    report: DiagnosticReport
    repaired: list[str] = field(default_factory=list)
    checked_blobs: int = 0
    checked_outcomes: int = 0

    @property
    def clean(self) -> bool:
        return self.report.ok and not self.report.warnings

    def summary(self) -> str:
        state = ("clean" if self.clean
                 else "repaired" if self.repaired
                 else "problems found")
        return (f"fsck: {self.checked_blobs} blob(s), "
                f"{self.checked_outcomes} outcome row(s) checked — "
                f"{state}")


def fsck_store(cache: CampaignCache, *, repair: bool = False,
               report: DiagnosticReport | None = None) -> FsckResult:
    """Audit (and optionally repair) one campaign store.

    Repairs only ever *remove* broken records — nothing is rewritten —
    so a repaired store re-simulates exactly the evidence it lost and
    a subsequent warm campaign is bit-identical to a cold one.
    """
    collect = report if report is not None else DiagnosticReport()
    result = FsckResult(report=collect)

    # E400 — the index itself
    try:
        verdict = cache.db.integrity_check()
    except Exception as err:   # sqlite3.DatabaseError and friends
        collect.error(
            "E400", f"campaign store index is unreadable: {err}",
            file=str(cache.db.path))
        return result
    if verdict != "ok":
        collect.error(
            "E400", f"SQLite integrity check failed: {verdict}",
            file=str(cache.db.path),
            hint="restore the index from backup or delete it — all "
                 "outcomes will be re-simulated")
        return result

    digests = cache.blobs.digests()
    present = set(digests)

    # E401 — blob content vs address
    corrupt: list[str] = []
    for digest in digests:
        result.checked_blobs += 1
        try:
            data = cache.blobs.path_for(digest).read_bytes()
        except OSError:
            corrupt.append(digest)
            continue
        if hashlib.sha256(data).hexdigest() != digest:
            corrupt.append(digest)
    for digest in corrupt:
        collect.error(
            "E401", f"blob {digest[:12]} is corrupt (content does "
                    f"not hash to its address)",
            file=str(cache.blobs.path_for(digest)))
    if repair and corrupt:
        for digest in corrupt:
            cache.blobs.delete(digest)
            present.discard(digest)
        result.repaired.append(
            f"deleted {len(corrupt)} corrupt blob(s)")

    # E402 — golden map entries must have blobs
    missing_keys = [key for key, digest in cache.db.golden_rows()
                    if digest not in present]
    for key in missing_keys:
        collect.error(
            "E402", f"golden-trace entry {key[:12]} points at a "
                    f"missing blob",
            hint="repair drops the entry; the trace is recomputed "
                 "on the next campaign")
    if repair and missing_keys:
        cache.db.delete_golden_keys(missing_keys)
        result.repaired.append(
            f"dropped {len(missing_keys)} golden entr"
            f"{'y' if len(missing_keys) == 1 else 'ies'} with "
            f"missing blobs")

    # E403 — runs referencing vanished golden blobs
    broken_runs = [run_id for run_id, digest
                   in cache.db.runs_with_golden()
                   if digest not in present]
    for run_id in broken_runs:
        collect.error(
            "E403", f"run #{run_id} references a missing golden "
                    f"blob")
    if repair and broken_runs:
        cache.db.clear_run_golden(broken_runs)
        result.repaired.append(
            f"cleared the golden reference of {len(broken_runs)} "
            f"run(s)")

    # E404 — membership rows of vanished runs
    dangling = cache.db.dangling_membership()
    for table, run_ids in dangling.items():
        ids = ", ".join(f"#{r}" for r in run_ids[:5])
        more = f", … ({len(run_ids) - 5} more)" if len(run_ids) > 5 \
            else ""
        collect.error(
            "E404", f"{table} rows belong to unrecorded run(s) "
                    f"{ids}{more}")
    if repair and dangling:
        removed = cache.db.delete_dangling_membership()
        result.repaired.append(
            f"deleted {removed} dangling membership row(s)")

    # E405 — unparsable outcome payloads
    bad_fps: list[str] = []
    for fp, name, effects_json in cache.db.iter_outcome_effects():
        result.checked_outcomes += 1
        try:
            effects = json.loads(effects_json)
            if not isinstance(effects, dict):
                raise ValueError("effects is not a table")
            for k, v in effects.items():
                int(v)
        except (ValueError, TypeError):
            bad_fps.append(fp)
            collect.error(
                "E405", f"outcome record for {name!r} "
                        f"({fp[:12]}) has an unparsable effects "
                        f"payload",
                hint="repair deletes the row; the fault is "
                     "re-simulated on the next campaign")
    if repair and bad_fps:
        cache.db.delete_outcomes(bad_fps)
        result.repaired.append(
            f"deleted {len(bad_fps)} unparsable outcome row(s)")

    # E406 — anomalies pointing at vanished runs
    dangling_anoms = cache.db.dangling_anomalies()
    for fp, name, run_id in dangling_anoms:
        collect.error(
            "E406", f"quarantine record for {name!r} points at "
                    f"unrecorded run #{run_id}",
            hint="repair deletes the record; the next campaign "
                 "retries the fault")
    if repair and dangling_anoms:
        cache.db.delete_anomalies([fp for fp, _, _ in dangling_anoms])
        result.repaired.append(
            f"deleted {len(dangling_anoms)} dangling quarantine "
            f"record(s)")

    # E407 — orphan blobs (space leak, not corruption → warning)
    referenced = cache.db.golden_digests()
    referenced.update(digest for _, digest
                      in cache.db.runs_with_golden())
    orphans = [d for d in sorted(present) if d not in referenced]
    for digest in orphans:
        collect.warn(
            "E407", f"blob {digest[:12]} is referenced by nothing",
            hint="repair (or 'store gc') reclaims the space")
    if repair and orphans:
        freed = 0
        for digest in orphans:
            try:
                freed += cache.blobs.path_for(digest).stat().st_size
            except OSError:
                pass
            cache.blobs.delete(digest)
        result.repaired.append(
            f"reclaimed {len(orphans)} orphan blob(s) "
            f"({freed} bytes)")

    # E408 — interrupted runs (informational: they resume cleanly)
    for run in cache.db.runs(status="running"):
        collect.warn(
            "E408", f"run #{run['run_id']} never finished "
                    f"(status 'running')",
            hint="a re-run over the same environment resumes from "
                 "its completed outcomes")

    # E410 — stale job leases (a daemon died mid-job; warning: any
    # running `soc-fmea serve` re-claims these on its own)
    stale = cache.db.stale_job_leases(time.time())
    for job in stale:
        collect.warn(
            "E410", f"job #{job['job_id']}'s lease (owner "
                    f"{job['lease_owner']}) expired without a "
                    f"heartbeat — its worker died",
            hint="any 'soc-fmea serve' re-claims it; repair releases "
                 "it back to the queue now")
    if repair and stale:
        released = cache.db.release_job_leases(
            [job["job_id"] for job in stale])
        result.repaired.append(
            f"released {released} stale job lease(s) back to the "
            f"queue")

    # E411 — active jobs referencing vanished runs
    orphans_jobs = cache.db.orphan_job_rows()
    for job in orphans_jobs:
        collect.error(
            "E411", f"job #{job['job_id']} references unrecorded "
                    f"run #{job['run_id']}",
            hint="repair clears the reference; the job re-simulates "
                 "what the store no longer holds")
    if repair and orphans_jobs:
        cleared = cache.db.clear_job_runs(
            [job["job_id"] for job in orphans_jobs])
        result.repaired.append(
            f"cleared the run reference of {cleared} job(s)")

    # E412 — dead-letter jobs whose recorded evidence was collected
    gone = cache.db.dead_jobs_missing_runs()
    for job in gone:
        collect.error(
            "E412", f"dead-letter job #{job['job_id']}'s recorded "
                    f"run #{job['run_id']} was garbage-collected",
            hint="repair deletes the job row — re-submit the "
                 "campaign if it is still wanted")
    if repair and gone:
        removed = cache.db.delete_jobs(
            [job["job_id"] for job in gone])
        result.repaired.append(
            f"deleted {removed} dead-letter job(s) with collected "
            f"evidence")
    return result
