"""Content-addressed campaign store (incremental fault injection).

A fault-injection campaign is a pure function of its inputs: netlist,
stimuli, zone definitions, observation points, simulator setup and the
fault descriptor.  :mod:`repro.store` content-addresses that function —
every fault gets a :mod:`~repro.store.fingerprint` covering exactly the
inputs that can influence its outcome — and persists the per-fault
results in an append-only SQLite-indexed store
(:mod:`~repro.store.db`) with golden-trace blobs
(:mod:`~repro.store.blobs`).

:class:`~repro.store.cache.CampaignCache` is the façade the campaign
engines consult: unchanged faults are served from the store, only the
delta after a netlist or stimuli edit is re-simulated, and a killed
campaign resumes exactly where it stopped.  The query layer
(:mod:`~repro.store.query`) compares measured DC/SFF across recorded
runs and reports which zones regressed.
"""

from .blobs import BlobStore, CorruptBlobError
from .cache import CacheStats, CampaignCache, CampaignPlan
from .errors import StoreIOError
from .db import (
    ACTIVE_JOB_STATES,
    AnomalyRow,
    OutcomeRow,
    StoreBusyError,
    StoreDB,
)
from .fingerprint import (
    FP_VERSION,
    FingerprintContext,
    SupportIndex,
    fault_descriptor,
)
from .fsck import FsckResult, fsck_store
from .query import (
    GcResult,
    RunDiff,
    StoreStats,
    ZoneChange,
    diff_runs,
    gc_store,
    store_stats,
)

__all__ = [
    "BlobStore", "CorruptBlobError",
    "CacheStats", "CampaignCache", "CampaignPlan",
    "ACTIVE_JOB_STATES", "AnomalyRow", "OutcomeRow",
    "StoreBusyError", "StoreDB", "StoreIOError",
    "FP_VERSION", "FingerprintContext", "SupportIndex",
    "fault_descriptor",
    "FsckResult", "fsck_store",
    "GcResult", "RunDiff", "StoreStats", "ZoneChange",
    "diff_runs", "gc_store", "store_stats",
]
