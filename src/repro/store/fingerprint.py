"""Stable canonical fingerprints for campaign inputs.

A cached fault outcome may be served instead of re-simulated only if
*everything that can influence it* is unchanged.  For one fault that
influence set is smaller than the whole campaign environment:

* the raw :class:`~repro.faultinjection.manager.FaultResult` record
  (SENS/OBSE/DIAG cycles, first alarm, effects table) depends on the
  fault descriptor, the zone definition it is attributed to, the
  stimuli, the simulator setup, the observation-point list — and only
  the part of the netlist inside the fault's **support cone**: the
  fan-in closure of the fan-out closure of the fault site.  Gates
  outside that cone can change neither the faulty machine (the fault
  cannot reach them) nor any comparison against the golden machine
  (observation points outside the fan-out closure never mismatch).
* classification-time parameters — ``detection_window``,
  ``test_windows``, ``machines_per_pass`` — do **not** enter the
  fingerprint: the store holds raw records and the outcome classes are
  recomputed per run, so changing the detection window never
  invalidates the cache.
* the observation-point list enters **per fault, restricted to the
  points the fault can reach**: a point none of whose nets lie in the
  fault's fan-out closure compares faulty-vs-golden values that are
  equal by construction, so it can neither mismatch, nor raise, nor
  steal ``first_alarm`` from a reachable point (the within-group order
  of the reachable subsequence is preserved).  Adding an alarm output
  to one logic island therefore re-fingerprints only the faults that
  can observe it — the property design-space exploration leans on when
  a mitigation touches one bank of a multi-bank design.
* the simulator setup (preloaded memory images, initial flop values)
  enters per fault restricted to the memories and flops **inside the
  support cone**: state outside the cone cannot influence any net the
  record depends on, so re-encoding one bank's preload image leaves
  every other bank's fault addresses intact.

Mutating one gate therefore re-fingerprints (and re-simulates) only
the faults whose support cone contains it; faults in disjoint logic
islands keep their content address and are served from the store.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields

from ..faultinjection.faults import Fault
from ..hdl.netlist import OP_NAMES, Circuit
from ..zones.model import ObservationPoint, SensibleZone

#: Bump when the fingerprint semantics change — every digest embeds it,
#: so stores written by older layouts simply miss instead of colliding.
#: v2: per-fault observation canon restricted to reachable points.
FP_VERSION = 2


def digest(obj) -> str:
    """SHA-256 of the canonical (sorted, compact) JSON of ``obj``."""
    blob = json.dumps(obj, sort_keys=True,
                      separators=(",", ":")).encode()
    return hashlib.sha256(blob).hexdigest()


def fault_descriptor(fault: Fault) -> dict:
    """Every behavioural field of a fault, as plain JSON data."""
    desc = {"class": type(fault).__name__, "kind": fault.kind}
    for f in fields(fault):
        value = getattr(fault, f.name)
        if isinstance(value, tuple):
            value = list(value)
        desc[f.name] = value
    return desc


# ----------------------------------------------------------------------
# support cones
# ----------------------------------------------------------------------
class SupportIndex:
    """Per-seed support cones of a circuit, with cached fingerprints.

    The support of a seed set is the fan-in closure of its fan-out
    closure, both taken *through* flip-flops and memory macros: a
    flipped flop perturbs everything downstream of its ``q``; the value
    observed anywhere in that downstream region depends on the full
    fan-in of the region (including golden write streams into any
    memory the fault can touch).
    """

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self._fanout = circuit.fanout_map()
        self._drivers = circuit.driver_map()
        self._mem_index = {m.name: i
                           for i, m in enumerate(circuit.memories)}
        self._flop_q = {f.name: f.q for f in circuit.flops}
        self._net_index: dict[str, int] = {}
        for i, name in enumerate(circuit.net_names):
            self._net_index.setdefault(name, i)
        self._fp_cache: dict[tuple, str] = {}
        self._full_fp: str | None = None

    # ------------------------------------------------------------------
    def resolve_seed(self, name: str) -> tuple[int | None, int | None]:
        """Map a fault target name to ``(net, memory_index)``.

        Memory names win over net names (fault targets name the macro);
        flop names resolve to the flop's ``q`` net.
        """
        if name in self._mem_index:
            return None, self._mem_index[name]
        if name in self._flop_q:
            return self._flop_q[name], None
        if name in self._net_index:
            return self._net_index[name], None
        return None, None

    def forward_closure(self, nets: set[int], mems: set[int]
                        ) -> tuple[set[int], set[int]]:
        circuit = self.circuit
        out_nets = set(nets)
        out_mems = set(mems)
        queue = list(nets)
        for mi in mems:
            for net in circuit.memories[mi].rdata:
                if net not in out_nets:
                    out_nets.add(net)
                    queue.append(net)
        while queue:
            net = queue.pop()
            for desc in self._fanout.get(net, ()):
                if desc[0] == "gate":
                    new = (circuit.gates[desc[1]].out,)
                elif desc[0] == "flop":
                    new = (circuit.flops[desc[1]].q,)
                elif desc[0] == "mem":
                    mi = desc[1]
                    if mi in out_mems:
                        continue
                    out_mems.add(mi)
                    new = circuit.memories[mi].rdata
                else:           # primary output: nothing downstream
                    continue
                for n in new:
                    if n not in out_nets:
                        out_nets.add(n)
                        queue.append(n)
        return out_nets, out_mems

    def backward_closure(self, nets: set[int], mems: set[int]
                         ) -> tuple[set[int], set[int]]:
        circuit = self.circuit
        out_nets = set(nets)
        out_mems = set(mems)
        queue = list(nets)

        def pull(new_nets):
            for n in new_nets:
                if n is not None and n not in out_nets:
                    out_nets.add(n)
                    queue.append(n)

        def pull_mem(mi):
            if mi in out_mems:
                return
            out_mems.add(mi)
            mem = circuit.memories[mi]
            pull((*mem.addr, *mem.wdata, mem.we))

        for mi in list(mems):
            out_mems.discard(mi)
            pull_mem(mi)
        while queue:
            net = queue.pop()
            desc = self._drivers.get(net)
            if desc is None:
                continue
            if desc[0] == "gate":
                pull(circuit.gates[desc[1]].inputs)
            elif desc[0] == "flop":
                flop = circuit.flops[desc[1]]
                pull((flop.d, flop.en, flop.rst))
            elif desc[0] == "mem":
                pull_mem(desc[1])
        return out_nets, out_mems

    def support(self, nets: set[int], mems: set[int]
                ) -> tuple[frozenset[int], frozenset[int]]:
        fwd_nets, fwd_mems = self.forward_closure(nets, mems)
        sup_nets, sup_mems = self.backward_closure(fwd_nets, fwd_mems)
        return frozenset(sup_nets), frozenset(sup_mems)

    # ------------------------------------------------------------------
    def fingerprint(self, nets: set[int], mems: set[int]) -> str:
        """Content address of the sub-circuit supporting the seeds."""
        key = (frozenset(nets), frozenset(mems))
        cached = self._fp_cache.get(key)
        if cached is None:
            cached = digest(self._canonical(*self.support(*key)))
            self._fp_cache[key] = cached
        return cached

    def full_fingerprint(self) -> str:
        """Whole-circuit fallback (unresolvable or zone-less faults)."""
        if self._full_fp is None:
            self._full_fp = hashlib.sha256(
                self.circuit.canonical_bytes()).hexdigest()
        return self._full_fp

    def _canonical(self, nets: frozenset[int],
                   mems: frozenset[int]) -> dict:
        circuit = self.circuit
        name_of = circuit.net_names

        def names(seq):
            return [name_of[n] for n in seq]

        return {
            "gates": sorted(
                (name_of[g.out], OP_NAMES[g.op], names(g.inputs))
                for g in circuit.gates if g.out in nets),
            "flops": sorted(
                (f.name, name_of[f.d], name_of[f.q],
                 None if f.en is None else name_of[f.en],
                 None if f.rst is None else name_of[f.rst], f.init)
                for f in circuit.flops if f.q in nets),
            "memories": sorted(
                (m.name, m.depth, m.width, names(m.addr),
                 names(m.wdata), name_of[m.we], names(m.rdata))
                for i, m in enumerate(circuit.memories) if i in mems),
            "inputs": {
                port: [[bit, name_of[n]]
                       for bit, n in enumerate(port_nets) if n in nets]
                for port, port_nets in sorted(circuit.inputs.items())
                if any(n in nets for n in port_nets)},
        }


# ----------------------------------------------------------------------
# the campaign-wide context
# ----------------------------------------------------------------------
class FingerprintContext:
    """Fingerprints for one campaign environment.

    Bundles the canonical hashes shared by every fault of a campaign
    (stimuli, setup, observation points) with the
    :class:`SupportIndex` producing per-fault netlist cones, and hands
    out :meth:`fault_fingerprint` — the content address under which a
    fault's raw outcome record is stored.
    """

    def __init__(self, circuit: Circuit, stimuli,
                 zones: list[SensibleZone],
                 observation_points: list[ObservationPoint],
                 setup=None, max_cycles: int | None = None):
        self.circuit = circuit
        effective = list(stimuli)
        if max_cycles is not None:
            effective = effective[:max_cycles]
        self.stimuli_fp = digest(
            [sorted(cycle.items()) for cycle in effective])
        self.cycles = len(effective)
        self.setup_fp = _setup_canonical(setup)
        # only reachable after _setup_canonical accepted it: None or a
        # MemoryImageSetup snapshot (restricted per fault below)
        self._setup = setup
        # The manager partitions points into functional / status /
        # diagnostic groups; only the order *within* each group is
        # behavioural (``first_alarm`` ties break on the earlier
        # diagnostic entry).  Canonicalising the same stable partition
        # makes every entry point that interleaves the groups
        # differently produce the same address.
        from ..zones.model import ObservationKind

        def canon(point):
            return [point.name, point.kind.value,
                    [circuit.net_names[n] for n in point.nets]]

        # Per group: canonical entries paired with their net sets, in
        # group order, so :meth:`_zone_support` can take the reachable
        # subsequence per fault without re-deriving either.
        self._obs_groups = [
            (group, [(canon(p), frozenset(p.nets)) for p in points])
            for group, points in (
                ("functional", [p for p in observation_points
                                if p.kind is ObservationKind.OUTPUT]),
                ("status", [p for p in observation_points
                            if p.kind is ObservationKind.FUNCTION]),
                ("diagnostic", [p for p in observation_points
                                if p.is_diagnostic]),
            )]
        self.obs_fp = digest({group: [entry for entry, _ in entries]
                              for group, entries in self._obs_groups})
        self.support = SupportIndex(circuit)
        self._zones = {z.name: z for z in zones}
        self._zone_fp: dict[tuple, tuple[str, dict | None, str,
                                         str | None]] = {}

    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec) -> "FingerprintContext":
        """Context for a picklable :class:`CampaignSpec`."""
        return cls(spec.circuit, spec.stimuli, list(spec.zones),
                   list(spec.observation_points), setup=spec.setup,
                   max_cycles=spec.config.max_cycles)

    @classmethod
    def from_manager(cls, manager) -> "FingerprintContext":
        """Context for an in-process ``FaultInjectionManager``.

        Raises ``ValueError`` when the manager's setup callable cannot
        be snapshotted (it programs fault overlays) — such a campaign
        is not content-addressable and must bypass the cache.
        """
        from ..faultinjection.parallel import snapshot_setup
        zones = list(manager.zone_set.zones) \
            if manager.zone_set is not None else []
        points = (manager.functional + manager.status
                  + manager.diagnostic)
        return cls(manager.circuit, manager.stimuli, zones, points,
                   setup=snapshot_setup(manager.circuit, manager.setup),
                   max_cycles=manager.config.max_cycles)

    # ------------------------------------------------------------------
    def environment_fingerprint(self) -> str:
        """One digest for the whole environment (run bookkeeping)."""
        return digest({
            "v": FP_VERSION,
            "circuit": self.support.full_fingerprint(),
            "stimuli": self.stimuli_fp,
            "setup": self.setup_fp,
            "obs": self.obs_fp,
            "zones": sorted(self._zones),
        })

    def golden_key(self) -> str:
        """Content address of the fault-free (golden) trace."""
        return digest({
            "v": FP_VERSION,
            "kind": "golden_trace",
            "circuit": self.support.full_fingerprint(),
            "stimuli": self.stimuli_fp,
            "setup": self.setup_fp,
            "obs": self.obs_fp,
        })

    def fault_fingerprint(self, fault: Fault) -> str:
        support_fp, zone_canon, obs_fp, setup_fp = \
            self._zone_support(fault)
        return digest({
            "v": FP_VERSION,
            "fault": fault_descriptor(fault),
            "zone": zone_canon,
            "support": support_fp,
            "stimuli": self.stimuli_fp,
            "setup": setup_fp,
            "obs": obs_fp,
        })

    # ------------------------------------------------------------------
    def _reachable_obs_fp(self, fwd_nets: set[int]) -> str:
        """Digest of the observation points the fault can reach.

        Points with no net in the fan-out closure see faulty values
        equal to golden on every cycle, so they contribute nothing to
        the cached record; dropping them keeps a fault's address stable
        when unreachable logic gains or loses alarm outputs.  The
        reachable points stay in group order because ``first_alarm``
        tie-breaks on it (a subsequence preserves relative order).
        """
        return digest({
            group: [entry for entry, nets in entries
                    if nets & fwd_nets]
            for group, entries in self._obs_groups})

    def _restricted_setup_fp(self, sup_nets: set[int],
                             sup_mems: set[int]) -> str | None:
        """Digest of the setup state inside the support cone.

        A preload image or initial flop value outside the cone drives
        no net the fault's record depends on (anything that could is in
        the backward closure by construction).
        """
        if self._setup is None:
            return self.setup_fp
        mem_names = {self.circuit.memories[i].name for i in sup_mems}
        flop_names = {f.name for f in self.circuit.flops
                      if f.q in sup_nets}
        return digest({
            "mem_images": {name: list(image) for name, image
                           in sorted(self._setup.mem_images.items())
                           if name in mem_names},
            "flop_values": {name: value for name, value
                            in sorted(self._setup.flop_values.items())
                            if name in flop_names},
        })

    def _zone_support(self, fault: Fault
                      ) -> tuple[str, dict | None, str, str | None]:
        zone = self._zones.get(fault.zone) \
            if fault.zone is not None else None
        seeds_key = (fault.zone, _fault_targets(fault))
        cached = self._zone_fp.get(seeds_key)
        if cached is not None:
            return cached
        nets: set[int] = set()
        mems: set[int] = set()
        resolved = True
        for name in _fault_targets(fault):
            net, mem = self.support.resolve_seed(name)
            if net is not None:
                nets.add(net)
            elif mem is not None:
                mems.add(mem)
            else:
                resolved = False
        zone_canon = None
        if zone is not None:
            zone_canon = _zone_canonical(zone, self.circuit)
            nets.update(zone.nets)
            for flop in zone.flops:
                net, _ = self.support.resolve_seed(flop)
                if net is not None:
                    nets.add(net)
            if zone.memory is not None:
                _, mem = self.support.resolve_seed(zone.memory)
                if mem is not None:
                    mems.add(mem)
                else:
                    resolved = False
        if resolved and (nets or mems):
            fwd_nets, fwd_mems = self.support.forward_closure(nets,
                                                              mems)
            sup_nets, sup_mems = self.support.backward_closure(
                fwd_nets, fwd_mems)
            support_fp = digest(self.support._canonical(
                frozenset(sup_nets), frozenset(sup_mems)))
            obs_fp = self._reachable_obs_fp(fwd_nets)
            setup_fp = self._restricted_setup_fp(sup_nets, sup_mems)
        else:
            # unknown target or empty seed set: the only sound cone is
            # the whole circuit, observed everywhere with full state
            support_fp = self.support.full_fingerprint()
            obs_fp = self.obs_fp
            setup_fp = self.setup_fp
        out = (support_fp, zone_canon, obs_fp, setup_fp)
        self._zone_fp[seeds_key] = out
        return out


def _fault_targets(fault: Fault) -> tuple[str, ...]:
    targets = [fault.target]
    victim = getattr(fault, "victim", None)
    if isinstance(victim, str) and victim:
        targets.append(victim)
    targets.extend(getattr(fault, "nets", ()))
    return tuple(targets)


def _zone_canonical(zone: SensibleZone, circuit: Circuit) -> dict:
    return {
        "name": zone.name,
        "kind": zone.kind.value,
        "nets": sorted(circuit.net_names[n] for n in zone.nets),
        "flops": list(zone.flops),
        "memory": zone.memory,
        "mem_words": list(zone.mem_words)
        if zone.mem_words is not None else None,
    }


def _setup_canonical(setup) -> str | None:
    """Canonical digest of a (snapshotted) simulator setup."""
    if setup is None:
        return None
    from ..faultinjection.parallel import MemoryImageSetup
    if isinstance(setup, MemoryImageSetup):
        return digest({
            "mem_images": {name: list(image) for name, image
                           in sorted(setup.mem_images.items())},
            "flop_values": dict(sorted(setup.flop_values.items())),
        })
    raise ValueError(
        f"cannot fingerprint setup {setup!r}: snapshot it with "
        f"snapshot_setup() first")
