"""Coded store I/O failures (``E413`` disk full, ``E414`` i/o error).

A full disk or a failing device mid-campaign is an *environmental*
fault, not a program bug: it must surface as a structured diagnostic
(no traceback, a stable code, a recovery hint) and — on the service
path — pause the queue instead of burning a job's retry budget into
the dead-letter state.  :func:`raise_for_io` is the single mapping
point: durable-path ``OSError``\\ s with ``ENOSPC``/``EDQUOT``/``EIO``
become :class:`StoreIOError`; anything else re-raises unchanged.
"""

from __future__ import annotations

import errno
import sqlite3

from ..diagnostics.core import DiagnosticReport
from ..diagnostics.core import DiagnosticError as _DiagnosticError

#: errno values mapped to "the disk is full" (E413)
_FULL_ERRNOS = (errno.ENOSPC, errno.EDQUOT)


class StoreIOError(_DiagnosticError):
    """The storage under the campaign store failed (``E413``/``E414``)
    — out of space or an i/o error.  Transient from the queue's point
    of view: jobs pause rather than dead-letter."""


def _report(code: str, message: str, path: str) -> DiagnosticReport:
    report = DiagnosticReport()
    report.error(code, message, file=path)
    return report


def raise_for_io(err: OSError, path: str) -> None:
    """Re-raise ``err`` as a coded :class:`StoreIOError` when it is a
    disk-space or i/o failure; re-raise it unchanged otherwise."""
    if isinstance(err, StoreIOError):
        raise err
    if err.errno in _FULL_ERRNOS:
        raise StoreIOError(_report(
            "E413", f"store ran out of disk space: {err}", path)
        ) from err
    if err.errno == errno.EIO:
        raise StoreIOError(_report(
            "E414", f"store hit an i/o error: {err}", path)) from err
    raise err


def raise_for_sqlite(err: sqlite3.OperationalError,
                     path: str) -> None:
    """Map SQLite's disk-failure messages onto the same codes; other
    operational errors re-raise unchanged (busy handling stays with
    the caller)."""
    text = str(err).lower()
    if "disk is full" in text or "disk full" in text:
        raise StoreIOError(_report(
            "E413", f"store index ran out of disk space: {err}",
            path)) from err
    if "disk i/o error" in text:
        raise StoreIOError(_report(
            "E414", f"store index hit a disk i/o error: {err}",
            path)) from err
    raise err
