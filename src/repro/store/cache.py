"""The campaign cache façade: serve cached outcomes, simulate the rest.

:class:`CampaignCache` sits between the campaign engines and the
content-addressed store.  Both entry points produce results that are
bit-identical to an uncached cold run over the same candidates:

* :meth:`run_serial` backs ``FaultInjectionManager.run(..., cache=)``;
* :meth:`run_parallel` backs ``ParallelCampaignRunner`` — only cache
  *misses* are sharded across worker processes.

Fresh outcomes are persisted incrementally (after every simulated
chunk or shard), so a killed campaign resumes exactly where it
stopped: re-running the same command turns the completed work into
cache hits and simulates only the remainder.  Campaigns whose inputs
cannot be content-addressed (toggle collection, un-snapshottable
setups) transparently bypass the store and are counted in
``stats.uncacheable``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

from ..faultinjection.faultlist import CandidateList
from ..faultinjection.manager import (
    CampaignResult,
    FaultInjectionManager,
    FaultResult,
)
from .blobs import BlobStore, CorruptBlobError
from .db import OutcomeRow, StoreDB
from .fingerprint import FingerprintContext


@dataclass
class CacheStats:
    """Hit/miss ledger of one :class:`CampaignCache` instance."""

    hits: int = 0            # outcomes served from the store
    misses: int = 0          # outcomes that had to be simulated
    writes: int = 0          # new outcome rows appended
    simulated: int = 0       # faults actually run through a simulator
    uncacheable: int = 0     # faults that bypassed the store entirely
    corrupt: int = 0         # corrupt/unreadable entries re-derived
    poisoned: int = 0        # known-poison faults quarantined up front
    golden_hits: int = 0
    golden_misses: int = 0

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def summary(self) -> str:
        return (f"store: {self.hits} hits, {self.misses} misses "
                f"({self.hit_rate() * 100:.1f}% hit rate), "
                f"{self.writes} new outcomes, "
                f"{self.simulated} faults simulated")


@dataclass
class CampaignPlan:
    """The cache's partition of one candidate list."""

    fingerprints: list[str]
    cached: dict[int, OutcomeRow] = field(default_factory=dict)
    misses: list[int] = field(default_factory=list)


class CampaignCache:
    """Content-addressed campaign store under one root directory."""

    def __init__(self, path, flush_passes: int = 1):
        from pathlib import Path
        self.root = Path(path)
        self.root.mkdir(parents=True, exist_ok=True)
        self.blobs = BlobStore(self.root)
        self.db = StoreDB(self.root / "store.db")
        #: simulated passes per persistence flush — 1 gives the finest
        #: crash-safe resume granularity
        self.flush_passes = max(1, flush_passes)
        self.stats = CacheStats()
        self.last_run_id: int | None = None

    def close(self) -> None:
        self.db.close()

    def __enter__(self) -> "CampaignCache":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def plan(self, ctx: FingerprintContext,
             faults: list) -> CampaignPlan:
        fps = [ctx.fault_fingerprint(f) for f in faults]
        rows = self.db.get_outcomes(sorted(set(fps)))
        plan = CampaignPlan(fingerprints=fps)
        for i, fp in enumerate(fps):
            row = rows.get(fp)
            if row is not None:
                plan.cached[i] = row
            else:
                plan.misses.append(i)
        self.stats.hits += len(plan.cached)
        self.stats.misses += len(plan.misses)
        return plan

    # ------------------------------------------------------------------
    # serial path (FaultInjectionManager.run)
    # ------------------------------------------------------------------
    def run_serial(self, manager: FaultInjectionManager,
                   candidates: CandidateList) -> CampaignResult:
        ctx = self._context_for(manager)
        if ctx is None:
            self.stats.uncacheable += len(candidates.faults)
            return manager.run(candidates)
        start = time.time()
        faults = list(candidates.faults)
        plan = self.plan(ctx, faults)
        run_id = self._begin(ctx, manager, faults, workers=1)
        result = manager.new_result()
        manager._init_coverage(result.coverage, candidates)
        merged = {i: _rebuild(faults[i], row)
                  for i, row in plan.cached.items()}
        self._simulate_chunked(manager, faults, plan, merged, result)
        self._finalize(ctx, manager, faults, plan, merged, result,
                       run_id, start)
        return result

    # ------------------------------------------------------------------
    # parallel path (ParallelCampaignRunner)
    # ------------------------------------------------------------------
    def run_parallel(self, runner, candidates: CandidateList
                     ) -> CampaignResult:
        from ..faultinjection.parallel import (
            CampaignStats,
            ShardStats,
            _worker_init,
            _worker_run,
            _default_start_method,
            shard_candidates,
        )
        import os
        from concurrent.futures import (
            ProcessPoolExecutor,
            as_completed,
        )
        from multiprocessing import get_context

        spec = runner.spec
        try:
            ctx = None if spec.config.collect_toggles \
                else FingerprintContext.from_spec(spec)
        except ValueError:
            ctx = None
        if ctx is None:
            self.stats.uncacheable += len(candidates.faults)
            return runner.run_uncached(candidates)
        start = time.time()
        manager = spec.manager()
        faults = list(candidates.faults)
        plan = self.plan(ctx, faults)
        total = len(faults)
        run_id = self._begin(ctx, manager, faults,
                             workers=runner.workers)
        result = manager.new_result()
        manager._init_coverage(result.coverage, candidates)
        merged = {i: _rebuild(faults[i], row)
                  for i, row in plan.cached.items()}
        if runner.progress is not None and plan.cached:
            runner.progress(len(plan.cached), total)

        stats = CampaignStats(workers=1, total_faults=total)
        if runner.workers == 1 or len(plan.misses) <= 1:
            # not worth a pool — run the misses in-process
            before = self.stats.simulated
            sim_start = time.time()
            self._simulate_chunked(manager, faults, plan, merged,
                                   result, progress=runner.progress,
                                   progress_base=len(plan.cached),
                                   progress_total=total)
            if plan.misses:
                stats.shards.append(ShardStats(
                    shard=0, worker=os.getpid(),
                    faults=self.stats.simulated - before,
                    passes=result.passes,
                    cycles=result.cycles_simulated,
                    wall_seconds=time.time() - sim_start))
        else:
            shards = shard_candidates(
                [faults[i] for i in plan.misses],
                runner.shards or runner.workers)
            # per-shard index lists, in the same contiguous split
            idx_shards, lo = [], 0
            for shard in shards:
                idx_shards.append(plan.misses[lo:lo + len(shard)])
                lo += len(shard)
            stats.workers = min(runner.workers, len(shards))
            method = runner.start_method or _default_start_method()
            done = len(plan.cached)
            with ProcessPoolExecutor(
                    max_workers=min(runner.workers, len(shards)),
                    mp_context=get_context(method),
                    initializer=_worker_init,
                    initargs=(spec,)) as pool:
                futures = [pool.submit(_worker_run, index, shard)
                           for index, shard in enumerate(shards)]
                for future in as_completed(futures):
                    index, pid, part, seconds = future.result()
                    # persist as soon as a shard lands: a killed
                    # campaign keeps every completed shard
                    self._persist(
                        [(plan.fingerprints[i], res) for i, res
                         in zip(idx_shards[index], part.results)])
                    for i, res in zip(idx_shards[index],
                                      part.results):
                        merged[i] = res
                    result.passes += part.passes
                    result.cycles_simulated += part.cycles_simulated
                    stats.shards.append(ShardStats(
                        shard=index, worker=pid,
                        faults=len(part.results),
                        passes=part.passes,
                        cycles=part.cycles_simulated,
                        wall_seconds=seconds))
                    done += len(part.results)
                    if runner.progress is not None:
                        runner.progress(done, total)
            self.stats.simulated += len(plan.misses)
            stats.shards.sort(key=lambda s: s.shard)

        golden_seconds = self._finalize(ctx, manager, faults, plan,
                                        merged, result, run_id, start)
        stats.golden_seconds = golden_seconds
        stats.wall_seconds = result.wall_seconds
        runner.last_stats = stats
        return result

    # ------------------------------------------------------------------
    # shared internals
    # ------------------------------------------------------------------
    def _context_for(self, manager: FaultInjectionManager
                     ) -> FingerprintContext | None:
        if manager.config.collect_toggles:
            # any-machine toggle bits are a per-pass aggregate that a
            # per-fault store cannot reconstruct
            return None
        try:
            return FingerprintContext.from_manager(manager)
        except ValueError:
            return None

    def _begin(self, ctx, manager, faults, workers: int) -> int:
        cfg = manager.config
        run_id = self.db.begin_run(
            design=manager.circuit.name,
            env_fp=ctx.environment_fingerprint(),
            faults=len(faults), workers=workers,
            window=cfg.detection_window,
            test_windows=cfg.test_windows)
        self.last_run_id = run_id
        return run_id

    def _simulate_chunked(self, manager, faults, plan, merged, result,
                          progress=None, progress_base=0,
                          progress_total=0) -> None:
        chunk = manager.config.resolved_machines_per_pass() \
            * self.flush_passes
        done = progress_base
        for lo in range(0, len(plan.misses), chunk):
            idxs = plan.misses[lo:lo + chunk]
            part = manager.run_batches([faults[i] for i in idxs],
                                       track_golden=False)
            result.passes += part.passes
            result.cycles_simulated += part.cycles_simulated
            for i, res in zip(idxs, part.results):
                merged[i] = res
            self._persist([(plan.fingerprints[i], res)
                           for i, res in zip(idxs, part.results)])
            self.stats.simulated += len(idxs)
            done += len(idxs)
            if progress is not None:
                progress(done, progress_total)

    def _persist(self, fresh: list[tuple[str, FaultResult]]) -> None:
        rows = [OutcomeRow(
            fault_fp=fp, fault_name=res.fault.name,
            zone=res.fault.zone, kind=res.fault.kind,
            sens_cycle=res.sens_cycle, obse_cycle=res.obse_cycle,
            diag_cycle=res.diag_cycle, first_alarm=res.first_alarm,
            effects=dict(res.effects)) for fp, res in fresh]
        self.stats.writes += self.db.put_outcomes(rows)

    def _finalize(self, ctx, manager, faults, plan, merged, result,
                  run_id, start) -> float:
        golden_digest = None
        golden_seconds = 0.0
        if faults:
            golden, golden_digest = self._golden(ctx, manager)
            golden_seconds = golden.wall_seconds
            result.results = [merged[i] for i in range(len(faults))]
            for name in golden.obse_active:
                result.coverage.obse[name] = True
            for name in golden.diag_active:
                result.coverage.diag[name] = True
        manager.fill_coverage(result)
        result.wall_seconds = time.time() - start
        membership = [
            (plan.fingerprints[i], faults[i].name, faults[i].zone,
             result.outcome_of(merged[i]))
            for i in range(len(faults))]
        self.db.finish_run(
            run_id, hits=len(plan.cached), misses=len(plan.misses),
            measured_dc=result.measured_dc(),
            safe_fraction=result.measured_safe_fraction(),
            outcome_counts=result.outcomes(),
            wall_seconds=result.wall_seconds,
            golden_blob=golden_digest, membership=membership)
        return golden_seconds

    # ------------------------------------------------------------------
    # golden-trace blobs
    # ------------------------------------------------------------------
    def _golden(self, ctx, manager):
        from ..faultinjection.parallel import (
            GoldenTrace,
            compute_golden_trace,
        )
        key = ctx.golden_key()
        digest = self.db.get_golden(key)
        if digest is not None:
            try:
                data = json.loads(self.blobs.get(digest))
                trace = GoldenTrace(
                    cycles=int(data["cycles"]),
                    obse_active=tuple(data["obse_active"]),
                    diag_active=tuple(data["diag_active"]))
                self.stats.golden_hits += 1
                return trace, digest
            except (KeyError, CorruptBlobError, ValueError,
                    TypeError):
                # missing or corrupt blob: recompute, never crash
                self.stats.corrupt += 1
        trace = compute_golden_trace(manager)
        digest = self.blobs.put(json.dumps({
            "cycles": trace.cycles,
            "obse_active": list(trace.obse_active),
            "diag_active": list(trace.diag_active),
        }, sort_keys=True).encode())
        self.db.put_golden(key, digest)
        self.stats.golden_misses += 1
        return trace, digest


def _rebuild(fault, row: OutcomeRow) -> FaultResult:
    """Reconstruct the raw per-fault record from its stored form."""
    return FaultResult(
        fault=fault, sens_cycle=row.sens_cycle,
        obse_cycle=row.obse_cycle, diag_cycle=row.diag_cycle,
        first_alarm=row.first_alarm, effects=dict(row.effects))
