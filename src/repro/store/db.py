"""SQLite index of the campaign store.

Three concerns, three groups of tables:

* ``outcomes`` — the append-only per-fault outcome log, keyed by the
  fault's content address (:mod:`~repro.store.fingerprint`).  Rows are
  immutable: the fingerprint covers everything that determines the
  record, so two writers producing the same key necessarily produced
  the same payload and ``INSERT OR IGNORE`` makes concurrent campaigns
  trivially safe.
* ``runs`` / ``run_faults`` — one row per recorded campaign plus its
  ordered fault membership, enabling cross-run queries and
  ``store diff``.  A run begins in status ``running`` and is flipped to
  ``done`` at the end; a SIGKILLed campaign leaves the marker behind
  (visible in ``store stats``) while all its completed outcomes stay
  reusable.
* ``golden`` — maps a golden-trace content key to its blob digest.
* ``jobs`` — the durable campaign job queue (:mod:`repro.service`):
  one row per submitted campaign with lease bookkeeping
  (owner/deadline), a retry budget, and the terminal ``done`` /
  ``dead`` / ``cancelled`` states.  Living in the same index as the
  evidence it produces means a single fsck/gc pass sees both sides.

The connection runs in WAL mode with a generous busy timeout so two
campaign runners sharing one store serialize on short write
transactions instead of erroring.  On top of the SQLite-level busy
timeout every write transaction retries with bounded exponential
backoff; only after the full budget does it surface a coded
:class:`StoreBusyError` (``E409``) instead of the raw
``sqlite3.OperationalError``.
"""

from __future__ import annotations

import json
import sqlite3
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

from ..chaos.failpoints import fail_at
from ..diagnostics.core import DiagnosticReport
from ..diagnostics.core import DiagnosticError as _DiagnosticError
from .errors import StoreIOError, raise_for_io, raise_for_sqlite

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta(
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS outcomes(
    fault_fp    TEXT PRIMARY KEY,
    fault_name  TEXT NOT NULL,
    zone        TEXT,
    kind        TEXT,
    sens_cycle  INTEGER,
    obse_cycle  INTEGER,
    diag_cycle  INTEGER,
    first_alarm TEXT,
    effects     TEXT NOT NULL,
    created_at  REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS runs(
    run_id        INTEGER PRIMARY KEY AUTOINCREMENT,
    created_at    REAL NOT NULL,
    status        TEXT NOT NULL,
    design        TEXT NOT NULL,
    env_fp        TEXT NOT NULL,
    workers       INTEGER NOT NULL DEFAULT 1,
    faults        INTEGER NOT NULL DEFAULT 0,
    hits          INTEGER NOT NULL DEFAULT 0,
    misses        INTEGER NOT NULL DEFAULT 0,
    window        INTEGER NOT NULL DEFAULT 12,
    test_windows  TEXT NOT NULL DEFAULT '[]',
    measured_dc   REAL,
    safe_fraction REAL,
    outcome_counts TEXT,
    wall_seconds  REAL,
    golden_blob   TEXT
);
CREATE TABLE IF NOT EXISTS run_faults(
    run_id     INTEGER NOT NULL,
    seq        INTEGER NOT NULL,
    fault_fp   TEXT NOT NULL,
    fault_name TEXT NOT NULL,
    zone       TEXT,
    outcome    TEXT NOT NULL,
    PRIMARY KEY(run_id, seq)
);
CREATE TABLE IF NOT EXISTS golden(
    key        TEXT PRIMARY KEY,
    digest     TEXT NOT NULL,
    created_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS anomalies(
    fault_fp     TEXT PRIMARY KEY,
    fault_name   TEXT NOT NULL,
    zone         TEXT,
    kind         TEXT NOT NULL,
    worker       INTEGER,
    traceback    TEXT,
    wall_seconds REAL,
    attempts     INTEGER NOT NULL DEFAULT 0,
    run_id       INTEGER,
    created_at   REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS shard_attempts(
    run_id       INTEGER NOT NULL,
    seq          INTEGER NOT NULL,
    shard        TEXT NOT NULL,
    attempt      INTEGER NOT NULL,
    status       TEXT NOT NULL,
    faults       INTEGER NOT NULL,
    worker       INTEGER,
    wall_seconds REAL,
    detail       TEXT,
    created_at   REAL NOT NULL,
    PRIMARY KEY(run_id, seq)
);
CREATE TABLE IF NOT EXISTS jobs(
    job_id          INTEGER PRIMARY KEY AUTOINCREMENT,
    created_at      REAL NOT NULL,
    updated_at      REAL NOT NULL,
    project         TEXT NOT NULL DEFAULT 'default',
    status          TEXT NOT NULL DEFAULT 'queued',
    spec            TEXT NOT NULL,
    attempts        INTEGER NOT NULL DEFAULT 0,
    max_attempts    INTEGER NOT NULL DEFAULT 3,
    not_before      REAL NOT NULL DEFAULT 0.0,
    lease_owner     TEXT,
    lease_deadline  REAL,
    run_id          INTEGER,
    result          TEXT,
    error           TEXT,
    idempotency_key TEXT,
    progress        TEXT
);
CREATE INDEX IF NOT EXISTS idx_run_faults_fp
    ON run_faults(fault_fp);
CREATE INDEX IF NOT EXISTS idx_runs_env ON runs(env_fp);
CREATE INDEX IF NOT EXISTS idx_jobs_status ON jobs(status);
CREATE UNIQUE INDEX IF NOT EXISTS idx_jobs_idem
    ON jobs(project, idempotency_key)
    WHERE idempotency_key IS NOT NULL
      AND status != 'cancelled';
"""

#: columns added to ``jobs`` after the table first shipped (PR 7);
#: opening an old store upgrades it in place — ``CREATE TABLE IF NOT
#: EXISTS`` alone would silently leave the schema behind
_JOBS_MIGRATIONS = (
    ("idempotency_key", "TEXT"),
    ("progress", "TEXT"),
)

#: job states a queue worker may still act on — everything that is
#: not terminally ``done`` / ``dead`` / ``cancelled``
ACTIVE_JOB_STATES = ("queued", "leased", "running")

#: write-transaction retry budget for ``database is locked`` — the
#: SQLite-level busy timeout already absorbs short contention, so a
#: handful of exponentially spaced retries covers pathological bursts
BUSY_RETRIES = 5
BUSY_BACKOFF_BASE = 0.05


class StoreBusyError(_DiagnosticError):
    """The store's write lock stayed contended past the retry budget
    (``E409``) — a sibling campaign or daemon is monopolizing it."""


def _is_busy(err: sqlite3.OperationalError) -> bool:
    text = str(err).lower()
    return "locked" in text or "busy" in text


@dataclass
class OutcomeRow:
    """One cached raw fault record, as stored."""

    fault_fp: str
    fault_name: str
    zone: str | None
    kind: str | None
    sens_cycle: int | None
    obse_cycle: int | None
    diag_cycle: int | None
    first_alarm: str | None
    effects: dict[str, int]


@dataclass
class AnomalyRow:
    """One quarantined poison fault, as stored.

    Keyed by the fault's content address so a resumed campaign over
    the same environment recognises the poison fault up front and
    never re-executes it.
    """

    fault_fp: str
    fault_name: str
    zone: str | None
    kind: str                    # crash | hang | exception
    worker: int | None = None
    traceback: str | None = None
    wall_seconds: float | None = None
    attempts: int = 0
    run_id: int | None = None


class StoreDB:
    """Thin, explicit wrapper over the store's SQLite database."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(self.path, timeout=30.0)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute("PRAGMA busy_timeout=30000")
        with self._conn:
            self._migrate_jobs()
            self._conn.executescript(_SCHEMA)

    def _migrate_jobs(self) -> None:
        """Upgrade a pre-existing ``jobs`` table in place.

        Runs before ``_SCHEMA`` so the partial unique index on
        ``idempotency_key`` finds its column even on stores created
        by older releases.
        """
        exists = self._conn.execute(
            "SELECT 1 FROM sqlite_master"
            " WHERE type='table' AND name='jobs'").fetchone()
        if not exists:
            return
        have = {row[1] for row in self._conn.execute(
            "PRAGMA table_info(jobs)")}
        for column, decl in _JOBS_MIGRATIONS:
            if column not in have:
                self._conn.execute(
                    f"ALTER TABLE jobs ADD COLUMN {column} {decl}")

    def close(self) -> None:
        self._conn.close()

    # ------------------------------------------------------------------
    # write-lock contention policy
    # ------------------------------------------------------------------
    def _write(self, txn):
        """Run a write transaction, retrying lock contention.

        ``database is locked`` is retried ``BUSY_RETRIES`` times with
        exponential backoff on top of SQLite's own busy timeout; the
        final failure surfaces as a coded :class:`StoreBusyError`
        (``E409``) so no raw ``OperationalError`` reaches the CLI.
        Disk-level failures (full disk, i/o error) surface as coded
        :class:`StoreIOError` (``E413``/``E414``) the same way.

        The ``store.db.pre/post-commit`` failpoints bracket every
        write transaction of the index, so the chaos harness can
        crash a campaign between any two committed shards.
        """
        delay = BUSY_BACKOFF_BASE
        for attempt in range(1, BUSY_RETRIES + 1):
            try:
                fail_at("store.db.pre-commit")
                result = txn()
                fail_at("store.db.post-commit")
                return result
            except OSError as err:
                raise_for_io(err, str(self.path))   # E413/E414 coded
            except sqlite3.OperationalError as err:
                if not _is_busy(err):
                    raise_for_sqlite(err, str(self.path))
                if attempt == BUSY_RETRIES:
                    report = DiagnosticReport()
                    report.error(
                        "E409",
                        f"store index stayed locked through "
                        f"{BUSY_RETRIES} write attempts: {err}",
                        file=str(self.path))
                    raise StoreBusyError(report) from err
                time.sleep(delay)
                delay *= 2

    @contextmanager
    def immediate(self):
        """A ``BEGIN IMMEDIATE`` transaction: the write lock is taken
        up front (with the bounded busy retry), so read-then-update
        sequences inside the block are atomic against sibling
        processes — the primitive under the job queue's claim."""
        self._write(lambda: self._conn.execute("BEGIN IMMEDIATE"))
        try:
            yield self._conn
        except BaseException as err:
            self._conn.rollback()
            if isinstance(err, OSError):
                raise_for_io(err, str(self.path))   # E413/E414 coded
            raise
        else:
            try:
                self._conn.commit()
            except sqlite3.OperationalError as err:
                self._conn.rollback()
                if _is_busy(err):
                    raise
                raise_for_sqlite(err, str(self.path))

    # ------------------------------------------------------------------
    # outcome log
    # ------------------------------------------------------------------
    def put_outcomes(self, rows: list[OutcomeRow]) -> int:
        """Append outcome records; duplicates are ignored (idempotent)."""
        now = time.time()

        def txn():
            with self._conn:
                return self._conn.executemany(
                    "INSERT OR IGNORE INTO outcomes VALUES "
                    "(?,?,?,?,?,?,?,?,?,?)",
                    [(r.fault_fp, r.fault_name, r.zone, r.kind,
                      r.sens_cycle, r.obse_cycle, r.diag_cycle,
                      r.first_alarm, json.dumps(r.effects), now)
                     for r in rows])
        return self._write(txn).rowcount

    def get_outcomes(self, fps: list[str]) -> dict[str, OutcomeRow]:
        """Fetch cached records; unparsable rows are silently skipped
        (the caller re-simulates them — corruption must never crash a
        campaign)."""
        out: dict[str, OutcomeRow] = {}
        fps = list(fps)
        for lo in range(0, len(fps), 500):
            chunk = fps[lo:lo + 500]
            marks = ",".join("?" * len(chunk))
            rows = self._conn.execute(
                f"SELECT fault_fp, fault_name, zone, kind, sens_cycle,"
                f" obse_cycle, diag_cycle, first_alarm, effects"
                f" FROM outcomes WHERE fault_fp IN ({marks})",
                chunk).fetchall()
            for row in rows:
                try:
                    effects = json.loads(row[8])
                    if not isinstance(effects, dict):
                        raise ValueError("effects is not a table")
                    effects = {str(k): int(v)
                               for k, v in effects.items()}
                except (ValueError, TypeError):
                    continue
                out[row[0]] = OutcomeRow(*row[:8], effects)
        return out

    def outcome_count(self) -> int:
        return self._conn.execute(
            "SELECT COUNT(*) FROM outcomes").fetchone()[0]

    # ------------------------------------------------------------------
    # runs
    # ------------------------------------------------------------------
    def begin_run(self, design: str, env_fp: str, faults: int,
                  workers: int, window: int,
                  test_windows) -> int:
        def txn():
            with self._conn:
                return self._conn.execute(
                    "INSERT INTO runs (created_at, status, design,"
                    " env_fp, workers, faults, window, test_windows)"
                    " VALUES (?,?,?,?,?,?,?,?)",
                    (time.time(), "running", design, env_fp, workers,
                     faults, window,
                     json.dumps([list(w) for w in test_windows])))
        return self._write(txn).lastrowid

    def finish_run(self, run_id: int, hits: int, misses: int,
                   measured_dc: float, safe_fraction: float,
                   outcome_counts: dict[str, int],
                   wall_seconds: float,
                   golden_blob: str | None,
                   membership: list[tuple[str, str, str | None, str]]
                   ) -> None:
        """Mark a run done and record its ordered fault membership.

        ``membership`` rows are ``(fault_fp, fault_name, zone,
        outcome_class)`` in campaign order.
        """
        def txn():
            with self._conn:
                self._conn.execute(
                    "UPDATE runs SET status='done', hits=?, misses=?,"
                    " measured_dc=?, safe_fraction=?,"
                    " outcome_counts=?, wall_seconds=?, golden_blob=?"
                    " WHERE run_id=?",
                    (hits, misses, measured_dc, safe_fraction,
                     json.dumps(outcome_counts), wall_seconds,
                     golden_blob, run_id))
                self._conn.executemany(
                    "INSERT OR REPLACE INTO run_faults VALUES "
                    "(?,?,?,?,?,?)",
                    [(run_id, seq, fp, name, zone, outcome)
                     for seq, (fp, name, zone, outcome)
                     in enumerate(membership)])
        self._write(txn)

    def runs(self, limit: int | None = None,
             design: str | None = None,
             status: str | None = None) -> list[dict]:
        query = "SELECT * FROM runs"
        clauses, params = [], []
        if design is not None:
            clauses.append("design=?")
            params.append(design)
        if status is not None:
            clauses.append("status=?")
            params.append(status)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY run_id DESC"
        if limit is not None:
            query += " LIMIT ?"
            params.append(limit)
        cursor = self._conn.execute(query, params)
        columns = [d[0] for d in cursor.description]
        return [dict(zip(columns, row)) for row in cursor.fetchall()]

    def run(self, run_id: int) -> dict | None:
        rows = self.runs()
        for row in rows:
            if row["run_id"] == run_id:
                return row
        return None

    def run_faults(self, run_id: int) -> list[dict]:
        cursor = self._conn.execute(
            "SELECT seq, fault_fp, fault_name, zone, outcome"
            " FROM run_faults WHERE run_id=? ORDER BY seq", (run_id,))
        return [dict(zip(("seq", "fault_fp", "fault_name", "zone",
                          "outcome"), row))
                for row in cursor.fetchall()]

    # ------------------------------------------------------------------
    # anomalies (quarantined poison faults) and shard attempt history
    # ------------------------------------------------------------------
    def put_anomalies(self, rows: list[AnomalyRow]) -> int:
        """Record quarantined faults; re-quarantining updates the row
        (attempt counts and tracebacks from the newest run win)."""
        now = time.time()

        def txn():
            with self._conn:
                return self._conn.executemany(
                    "INSERT OR REPLACE INTO anomalies VALUES "
                    "(?,?,?,?,?,?,?,?,?,?)",
                    [(r.fault_fp, r.fault_name, r.zone, r.kind,
                      r.worker, r.traceback, r.wall_seconds,
                      r.attempts, r.run_id, now) for r in rows])
        return self._write(txn).rowcount

    def get_anomalies(self, fps: list[str]) -> dict[str, AnomalyRow]:
        """Fetch known poison faults among the given fingerprints."""
        out: dict[str, AnomalyRow] = {}
        fps = list(fps)
        for lo in range(0, len(fps), 500):
            chunk = fps[lo:lo + 500]
            marks = ",".join("?" * len(chunk))
            rows = self._conn.execute(
                f"SELECT fault_fp, fault_name, zone, kind, worker,"
                f" traceback, wall_seconds, attempts, run_id"
                f" FROM anomalies WHERE fault_fp IN ({marks})",
                chunk).fetchall()
            for row in rows:
                out[row[0]] = AnomalyRow(*row)
        return out

    def anomaly_rows(self, run_id: int | None = None
                     ) -> list[AnomalyRow]:
        query = ("SELECT fault_fp, fault_name, zone, kind, worker,"
                 " traceback, wall_seconds, attempts, run_id"
                 " FROM anomalies")
        params: tuple = ()
        if run_id is not None:
            query += " WHERE run_id=?"
            params = (run_id,)
        query += " ORDER BY fault_name"
        return [AnomalyRow(*row) for row in
                self._conn.execute(query, params).fetchall()]

    def anomaly_count(self) -> int:
        return self._conn.execute(
            "SELECT COUNT(*) FROM anomalies").fetchone()[0]

    def clear_anomaly(self, fault_fp: str) -> int:
        """Forget a poison fault so the next campaign retries it."""
        with self._conn:
            return self._conn.execute(
                "DELETE FROM anomalies WHERE fault_fp=?",
                (fault_fp,)).rowcount

    def put_shard_attempts(self, run_id: int,
                           attempts: list[tuple]) -> None:
        """Record a run's shard attempt log: ``(shard, attempt,
        status, faults, worker, wall_seconds, detail)`` tuples in
        scheduling order."""
        now = time.time()

        def txn():
            with self._conn:
                self._conn.executemany(
                    "INSERT OR REPLACE INTO shard_attempts VALUES "
                    "(?,?,?,?,?,?,?,?,?,?)",
                    [(run_id, seq, shard, attempt, status, faults,
                      worker, seconds, detail, now)
                     for seq, (shard, attempt, status, faults, worker,
                               seconds, detail)
                     in enumerate(attempts)])
        self._write(txn)

    def shard_attempt_rows(self, run_id: int) -> list[dict]:
        cursor = self._conn.execute(
            "SELECT seq, shard, attempt, status, faults, worker,"
            " wall_seconds, detail FROM shard_attempts"
            " WHERE run_id=? ORDER BY seq", (run_id,))
        keys = ("seq", "shard", "attempt", "status", "faults",
                "worker", "wall_seconds", "detail")
        return [dict(zip(keys, row)) for row in cursor.fetchall()]

    def shard_attempt_count(self) -> int:
        return self._conn.execute(
            "SELECT COUNT(*) FROM shard_attempts").fetchone()[0]

    # ------------------------------------------------------------------
    # golden traces
    # ------------------------------------------------------------------
    def get_golden(self, key: str) -> str | None:
        row = self._conn.execute(
            "SELECT digest FROM golden WHERE key=?", (key,)).fetchone()
        return row[0] if row else None

    def put_golden(self, key: str, digest: str) -> None:
        def txn():
            with self._conn:
                self._conn.execute(
                    "INSERT OR REPLACE INTO golden VALUES (?,?,?)",
                    (key, digest, time.time()))
        self._write(txn)

    def golden_digests(self) -> set[str]:
        return {row[0] for row in self._conn.execute(
            "SELECT digest FROM golden").fetchall()}

    # ------------------------------------------------------------------
    # job queue rows (policy lives in repro.service.queue)
    # ------------------------------------------------------------------
    def job_row(self, job_id: int) -> dict | None:
        cursor = self._conn.execute(
            "SELECT * FROM jobs WHERE job_id=?", (job_id,))
        row = cursor.fetchone()
        if row is None:
            return None
        return dict(zip([d[0] for d in cursor.description], row))

    def job_rows(self, status: str | None = None,
                 project: str | None = None) -> list[dict]:
        query = "SELECT * FROM jobs"
        clauses, params = [], []
        if status is not None:
            clauses.append("status=?")
            params.append(status)
        if project is not None:
            clauses.append("project=?")
            params.append(project)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY job_id"
        cursor = self._conn.execute(query, params)
        columns = [d[0] for d in cursor.description]
        return [dict(zip(columns, row)) for row in cursor.fetchall()]

    def job_counts(self) -> dict[str, int]:
        return dict(self._conn.execute(
            "SELECT status, COUNT(*) FROM jobs GROUP BY status"
            " ORDER BY status").fetchall())

    def stale_job_leases(self, now: float) -> list[dict]:
        """Leased/running jobs whose deadline passed — dead workers."""
        marks = ",".join("?" * len(ACTIVE_JOB_STATES[1:]))
        cursor = self._conn.execute(
            f"SELECT * FROM jobs WHERE status IN ({marks})"
            f" AND lease_deadline IS NOT NULL AND lease_deadline < ?"
            f" ORDER BY job_id", (*ACTIVE_JOB_STATES[1:], now))
        columns = [d[0] for d in cursor.description]
        return [dict(zip(columns, row)) for row in cursor.fetchall()]

    def release_job_leases(self, job_ids: list[int]) -> int:
        """Put expired leases back on the queue (fsck repair)."""
        released = 0

        def txn():
            nonlocal released
            with self._conn:
                for job_id in job_ids:
                    released += self._conn.execute(
                        "UPDATE jobs SET status='queued',"
                        " lease_owner=NULL, lease_deadline=NULL,"
                        " updated_at=? WHERE job_id=?"
                        " AND status IN ('leased','running')",
                        (time.time(), job_id)).rowcount
        self._write(txn)
        return released

    def orphan_job_rows(self, project: str = "default"
                        ) -> list[dict]:
        """Non-terminal jobs referencing a vanished campaign run.

        Scoped to one project because only jobs of the namespace this
        index belongs to record run ids that resolve here; other
        namespaces are audited against their own store.
        """
        marks = ",".join("?" * len(ACTIVE_JOB_STATES))
        cursor = self._conn.execute(
            f"SELECT * FROM jobs WHERE status IN ({marks})"
            f" AND project=? AND run_id IS NOT NULL AND run_id NOT IN"
            f" (SELECT run_id FROM runs) ORDER BY job_id",
            (*ACTIVE_JOB_STATES, project))
        columns = [d[0] for d in cursor.description]
        return [dict(zip(columns, row)) for row in cursor.fetchall()]

    def clear_job_runs(self, job_ids: list[int]) -> int:
        cleared = 0

        def txn():
            nonlocal cleared
            with self._conn:
                for job_id in job_ids:
                    cleared += self._conn.execute(
                        "UPDATE jobs SET run_id=NULL, updated_at=?"
                        " WHERE job_id=?",
                        (time.time(), job_id)).rowcount
        self._write(txn)
        return cleared

    def dead_jobs_missing_runs(self, project: str = "default"
                               ) -> list[dict]:
        """Dead-letter jobs whose recorded evidence was GCed."""
        cursor = self._conn.execute(
            "SELECT * FROM jobs WHERE status='dead' AND project=?"
            " AND run_id IS NOT NULL AND run_id NOT IN"
            " (SELECT run_id FROM runs) ORDER BY job_id", (project,))
        columns = [d[0] for d in cursor.description]
        return [dict(zip(columns, row)) for row in cursor.fetchall()]

    def delete_jobs(self, job_ids: list[int]) -> int:
        removed = 0

        def txn():
            nonlocal removed
            with self._conn:
                for job_id in job_ids:
                    removed += self._conn.execute(
                        "DELETE FROM jobs WHERE job_id=?",
                        (job_id,)).rowcount
        self._write(txn)
        return removed

    def active_job_run_ids(self) -> list[int]:
        """Run ids still referenced by queued/leased/running jobs —
        the GC keep-set extension that stops collection from
        stranding a campaign a worker will resume."""
        marks = ",".join("?" * len(ACTIVE_JOB_STATES))
        return [row[0] for row in self._conn.execute(
            f"SELECT DISTINCT run_id FROM jobs"
            f" WHERE status IN ({marks}) AND run_id IS NOT NULL",
            ACTIVE_JOB_STATES).fetchall()]

    # ------------------------------------------------------------------
    # fsck helpers (integrity checks over the raw tables)
    # ------------------------------------------------------------------
    def iter_outcome_effects(self):
        """Yield ``(fault_fp, fault_name, effects_json)`` raw rows.

        Unlike :meth:`get_outcomes` this does *not* parse or skip —
        ``store fsck`` wants to see the corruption, not step around
        it."""
        cursor = self._conn.execute(
            "SELECT fault_fp, fault_name, effects FROM outcomes")
        while True:
            rows = cursor.fetchmany(500)
            if not rows:
                return
            yield from rows

    def delete_outcomes(self, fps: list[str]) -> int:
        """Drop outcome rows (they become cache misses and are
        re-simulated on the next campaign)."""
        removed = 0
        fps = list(fps)
        with self._conn:
            for lo in range(0, len(fps), 500):
                chunk = fps[lo:lo + 500]
                marks = ",".join("?" * len(chunk))
                removed += self._conn.execute(
                    f"DELETE FROM outcomes WHERE fault_fp IN"
                    f" ({marks})", chunk).rowcount
        return removed

    def golden_rows(self) -> list[tuple[str, str]]:
        """All ``(key, digest)`` pairs of the golden-trace map."""
        return self._conn.execute(
            "SELECT key, digest FROM golden").fetchall()

    def delete_golden_keys(self, keys: list[str]) -> int:
        removed = 0
        with self._conn:
            for key in keys:
                removed += self._conn.execute(
                    "DELETE FROM golden WHERE key=?", (key,)).rowcount
        return removed

    def runs_with_golden(self) -> list[tuple[int, str]]:
        """All ``(run_id, golden_blob)`` pairs that reference a blob."""
        return self._conn.execute(
            "SELECT run_id, golden_blob FROM runs"
            " WHERE golden_blob IS NOT NULL").fetchall()

    def clear_run_golden(self, run_ids: list[int]) -> int:
        cleared = 0
        with self._conn:
            for run_id in run_ids:
                cleared += self._conn.execute(
                    "UPDATE runs SET golden_blob=NULL WHERE run_id=?",
                    (run_id,)).rowcount
        return cleared

    def dangling_membership(self) -> dict[str, list[int]]:
        """Run ids referenced by child tables but absent from
        ``runs`` — the droppings of a partially GCed or torn store."""
        out: dict[str, list[int]] = {}
        for table in ("run_faults", "shard_attempts"):
            rows = self._conn.execute(
                f"SELECT DISTINCT run_id FROM {table}"
                f" WHERE run_id NOT IN (SELECT run_id FROM runs)"
                f" ORDER BY run_id").fetchall()
            if rows:
                out[table] = [r[0] for r in rows]
        return out

    def delete_dangling_membership(self) -> int:
        with self._conn:
            removed = self._conn.execute(
                "DELETE FROM run_faults WHERE run_id NOT IN"
                " (SELECT run_id FROM runs)").rowcount
            removed += self._conn.execute(
                "DELETE FROM shard_attempts WHERE run_id NOT IN"
                " (SELECT run_id FROM runs)").rowcount
        return removed

    def dangling_anomalies(self) -> list[tuple[str, str, int]]:
        """Anomaly rows whose ``run_id`` names a vanished run."""
        return self._conn.execute(
            "SELECT fault_fp, fault_name, run_id FROM anomalies"
            " WHERE run_id IS NOT NULL AND run_id NOT IN"
            " (SELECT run_id FROM runs) ORDER BY fault_name"
        ).fetchall()

    def delete_anomalies(self, fps: list[str]) -> int:
        removed = 0
        with self._conn:
            for fp in fps:
                removed += self._conn.execute(
                    "DELETE FROM anomalies WHERE fault_fp=?",
                    (fp,)).rowcount
        return removed

    def integrity_check(self) -> str:
        """SQLite's own b-tree check; ``'ok'`` when healthy."""
        return self._conn.execute(
            "PRAGMA integrity_check").fetchone()[0]

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------
    def gc(self, keep_runs: int) -> tuple[int, int]:
        """Drop all but the newest ``keep_runs`` runs, then every
        outcome row no kept run references.  Runs referenced by a
        queued/leased/running job are always kept, whatever their
        age — collecting them would strand the partial evidence a
        re-claimed job resumes from.  Returns ``(runs_removed,
        outcomes_removed)``; blob sweeping is the caller's job (it
        owns the filesystem side)."""
        with self._conn:
            keep = [row[0] for row in self._conn.execute(
                "SELECT run_id FROM runs ORDER BY run_id DESC"
                " LIMIT ?", (keep_runs,))]
            keep += [run_id for run_id in self.active_job_run_ids()
                     if run_id not in keep]
            if keep:
                marks = ",".join("?" * len(keep))
                removed_runs = self._conn.execute(
                    f"DELETE FROM runs WHERE run_id NOT IN ({marks})",
                    keep).rowcount
                self._conn.execute(
                    f"DELETE FROM run_faults WHERE run_id NOT IN"
                    f" ({marks})", keep)
            else:
                # NOT IN () is never true in SQL — wipe explicitly
                removed_runs = self._conn.execute(
                    "DELETE FROM runs").rowcount
                self._conn.execute("DELETE FROM run_faults")
            removed_outcomes = self._conn.execute(
                "DELETE FROM outcomes WHERE fault_fp NOT IN"
                " (SELECT fault_fp FROM run_faults)").rowcount
            self._conn.execute(
                "DELETE FROM anomalies WHERE fault_fp NOT IN"
                " (SELECT fault_fp FROM run_faults)")
            self._conn.execute(
                "DELETE FROM shard_attempts WHERE run_id NOT IN"
                " (SELECT run_id FROM runs)")
            self._conn.execute(
                "DELETE FROM golden WHERE digest NOT IN"
                " (SELECT golden_blob FROM runs"
                "  WHERE golden_blob IS NOT NULL)")
        self._conn.execute("VACUUM")
        return removed_runs, removed_outcomes
