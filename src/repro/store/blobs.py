"""Content-addressed blob storage for the campaign store.

Large immutable payloads — golden-trace snapshots, canonical circuit
serializations — live outside SQLite as loose objects under
``objects/<aa>/<rest>`` (git-style fan-out), addressed by the SHA-256
of their content.  Writes are atomic (temp file + rename) so a killed
campaign can never leave a half-written object under its final name;
reads re-hash the payload and raise :class:`CorruptBlobError` on
mismatch, which callers treat as a cache miss (re-derive, re-store),
never as a crash.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from pathlib import Path


class CorruptBlobError(Exception):
    """A stored object no longer matches its content address."""

    def __init__(self, digest: str, actual: str):
        super().__init__(
            f"blob {digest[:12]} is corrupt (content hashes to "
            f"{actual[:12]})")
        self.digest = digest
        self.actual = actual


class BlobStore:
    """A directory of immutable, checksummed, content-addressed blobs."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.objects = self.root / "objects"
        self.objects.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def path_for(self, digest: str) -> Path:
        return self.objects / digest[:2] / digest[2:]

    def put(self, data: bytes) -> str:
        digest = hashlib.sha256(data).hexdigest()
        path = self.path_for(digest)
        if path.exists():
            return digest
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)   # atomic: readers never see partials
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return digest

    def get(self, digest: str, verify: bool = True) -> bytes:
        try:
            data = self.path_for(digest).read_bytes()
        except FileNotFoundError:
            raise KeyError(digest) from None
        if verify:
            actual = hashlib.sha256(data).hexdigest()
            if actual != digest:
                raise CorruptBlobError(digest, actual)
        return data

    def has(self, digest: str) -> bool:
        return self.path_for(digest).exists()

    def delete(self, digest: str) -> bool:
        try:
            self.path_for(digest).unlink()
            return True
        except FileNotFoundError:
            return False

    # ------------------------------------------------------------------
    def digests(self) -> list[str]:
        out = []
        for shard in self.objects.iterdir():
            if not shard.is_dir():
                continue
            for obj in shard.iterdir():
                if not obj.name.startswith("."):
                    out.append(shard.name + obj.name)
        return sorted(out)

    def __len__(self) -> int:
        return len(self.digests())

    def total_bytes(self) -> int:
        return sum(self.path_for(d).stat().st_size
                   for d in self.digests())
