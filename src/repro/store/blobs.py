"""Content-addressed blob storage for the campaign store.

Large immutable payloads — golden-trace snapshots, canonical circuit
serializations — live outside SQLite as loose objects under
``objects/<aa>/<rest>`` (git-style fan-out), addressed by the SHA-256
of their content.  Writes are atomic *and durable*: the temp file is
fsynced before the rename and the parent directory after it (the
``durable`` knob, default on), so neither a crash nor a lost page
flush can leave a torn object under its final name; reads re-hash
the payload and raise :class:`CorruptBlobError` on mismatch, which
callers treat as a cache miss (re-derive, re-store), never as a
crash.  ``ENOSPC``/``EIO`` surface as coded :class:`StoreIOError`
diagnostics (E413/E414) instead of tracebacks.

Every step of the write protocol passes through a named failpoint
(:mod:`repro.chaos.failpoints`) so the crash-consistency harness can
kill or tear the write at each instruction and verify the invariants
hold.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from pathlib import Path

from ..chaos.failpoints import fail_at
from .errors import StoreIOError, raise_for_io

__all__ = ["BlobStore", "CorruptBlobError", "StoreIOError"]


class CorruptBlobError(Exception):
    """A stored object no longer matches its content address."""

    def __init__(self, digest: str, actual: str):
        super().__init__(
            f"blob {digest[:12]} is corrupt (content hashes to "
            f"{actual[:12]})")
        self.digest = digest
        self.actual = actual


class BlobStore:
    """A directory of immutable, checksummed, content-addressed blobs."""

    def __init__(self, root: str | Path, durable: bool = True):
        self.root = Path(root)
        self.durable = durable
        self.objects = self.root / "objects"
        self.objects.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def path_for(self, digest: str) -> Path:
        return self.objects / digest[:2] / digest[2:]

    def put(self, data: bytes, durable: bool | None = None) -> str:
        """Write one blob: temp file → fsync → rename → dir fsync.

        Without the fsyncs a crash *after* the rename could still
        tear the object (the rename is durable before the data), a
        failure mode checksum-on-read only catches later; ``durable``
        (default: the store-level knob, itself default on) closes it
        at the cost of two fsyncs per new object.
        """
        durable = self.durable if durable is None else durable
        digest = hashlib.sha256(data).hexdigest()
        path = self.path_for(digest)
        if path.exists():
            return digest
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = None
        try:
            fail_at("store.blob.pre-temp-write")
            fd, tmp = tempfile.mkstemp(dir=path.parent,
                                       prefix=".tmp-")
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
                fail_at("store.blob.post-temp-write", path=tmp)
                if durable:
                    handle.flush()
                    os.fsync(handle.fileno())
            fail_at("store.blob.pre-rename", path=tmp)
            os.replace(tmp, path)   # atomic: readers never see partials
            tmp = None
            fail_at("store.blob.post-rename", path=str(path))
            if durable:
                self._fsync_dir(path.parent)
        except BaseException as err:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            if isinstance(err, OSError):
                raise_for_io(err, str(path))   # E413/E414 or re-raise
            raise
        return digest

    @staticmethod
    def _fsync_dir(path: Path) -> None:
        """Make a rename durable by fsyncing its directory (no-op on
        platforms that refuse to open directories)."""
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def get(self, digest: str, verify: bool = True) -> bytes:
        try:
            data = self.path_for(digest).read_bytes()
        except FileNotFoundError:
            raise KeyError(digest) from None
        if verify:
            actual = hashlib.sha256(data).hexdigest()
            if actual != digest:
                raise CorruptBlobError(digest, actual)
        return data

    def has(self, digest: str) -> bool:
        return self.path_for(digest).exists()

    def delete(self, digest: str) -> bool:
        try:
            self.path_for(digest).unlink()
            return True
        except FileNotFoundError:
            return False

    # ------------------------------------------------------------------
    def digests(self) -> list[str]:
        out = []
        for shard in self.objects.iterdir():
            if not shard.is_dir():
                continue
            for obj in shard.iterdir():
                if not obj.name.startswith("."):
                    out.append(shard.name + obj.name)
        return sorted(out)

    def __len__(self) -> int:
        return len(self.digests())

    def total_bytes(self) -> int:
        return sum(self.path_for(d).stat().st_size
                   for d in self.digests())
