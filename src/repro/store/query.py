"""Cross-run queries over the campaign store.

Recorded runs are first-class artifacts (the Failure Mode Reasoning
line of work treats analysis results as queryable data, not console
output): this module computes store-wide statistics, compares two runs
fault-by-fault, reports which zones regressed, and garbage-collects
history nobody references anymore.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .cache import CampaignCache

#: outcome classes where the safety mechanism failed to act in time —
#: a zone whose population shifts *into* these classes regressed
_DANGEROUS_UNDETECTED = "dangerous_undetected"


# ----------------------------------------------------------------------
# stats
# ----------------------------------------------------------------------
@dataclass
class StoreStats:
    """Headline numbers of one store directory."""

    root: str
    runs: int
    done_runs: int
    interrupted_runs: int
    outcomes: int
    blobs: int
    blob_bytes: int
    db_bytes: int
    anomalies: int = 0
    shard_attempts: int = 0
    jobs: int = 0
    active_jobs: int = 0
    dead_jobs: int = 0

    def as_pairs(self) -> list[tuple[str, object]]:
        pairs = [
            ("store", self.root),
            ("recorded runs", self.runs),
            ("completed runs", self.done_runs),
            ("interrupted runs", self.interrupted_runs),
            ("cached fault outcomes", self.outcomes),
            ("quarantined faults", self.anomalies),
            ("shard attempts logged", self.shard_attempts),
            ("blobs", self.blobs),
            ("blob bytes", self.blob_bytes),
            ("index bytes", self.db_bytes),
        ]
        if self.jobs:
            pairs += [
                ("queued campaign jobs", self.jobs),
                ("active jobs", self.active_jobs),
                ("dead-letter jobs", self.dead_jobs),
            ]
        return pairs


def store_stats(cache: CampaignCache) -> StoreStats:
    from .db import ACTIVE_JOB_STATES
    runs = cache.db.runs()
    done = sum(1 for r in runs if r["status"] == "done")
    db_path = cache.db.path
    job_counts = cache.db.job_counts()
    return StoreStats(
        jobs=sum(job_counts.values()),
        active_jobs=sum(job_counts.get(state, 0)
                        for state in ACTIVE_JOB_STATES),
        dead_jobs=job_counts.get("dead", 0),
        root=str(cache.root),
        runs=len(runs),
        done_runs=done,
        interrupted_runs=len(runs) - done,
        outcomes=cache.db.outcome_count(),
        blobs=len(cache.blobs),
        blob_bytes=cache.blobs.total_bytes(),
        db_bytes=db_path.stat().st_size if db_path.exists() else 0,
        anomalies=cache.db.anomaly_count(),
        shard_attempts=cache.db.shard_attempt_count())


# ----------------------------------------------------------------------
# run diff
# ----------------------------------------------------------------------
@dataclass
class ZoneChange:
    """Outcome population of one zone in two runs."""

    zone: str
    counts_a: dict[str, int]
    counts_b: dict[str, int]

    @property
    def changed(self) -> bool:
        return self.counts_a != self.counts_b

    @property
    def regressed(self) -> bool:
        """More dangerous-undetected faults than before."""
        return (self.counts_b.get(_DANGEROUS_UNDETECTED, 0)
                > self.counts_a.get(_DANGEROUS_UNDETECTED, 0))


@dataclass
class RunDiff:
    """Fault-by-fault comparison of two recorded runs."""

    run_a: dict
    run_b: dict
    zone_changes: list[ZoneChange] = field(default_factory=list)
    changed_faults: list[tuple[str, str | None, str | None,
                               str | None]] = field(
        default_factory=list)   # (name, zone, outcome_a, outcome_b)

    @property
    def dc_delta(self) -> float:
        return ((self.run_b.get("measured_dc") or 0.0)
                - (self.run_a.get("measured_dc") or 0.0))

    @property
    def safe_delta(self) -> float:
        return ((self.run_b.get("safe_fraction") or 0.0)
                - (self.run_a.get("safe_fraction") or 0.0))

    def affected_zones(self) -> list[str]:
        return [c.zone for c in self.zone_changes if c.changed]

    def regressed_zones(self) -> list[str]:
        return [c.zone for c in self.zone_changes if c.regressed]


def diff_runs(cache: CampaignCache, run_a: int | None = None,
              run_b: int | None = None) -> RunDiff:
    """Compare two runs (default: the two most recent completed).

    ``run_a`` is the reference (older), ``run_b`` the candidate
    (newer).  Faults are matched by name — the stable identity that
    survives netlist edits, unlike the content fingerprint which is
    *designed* to change with them.
    """
    if run_a is None or run_b is None:
        done = cache.db.runs(limit=2, status="done")
        if len(done) < 2:
            raise ValueError(
                "store diff needs two completed runs "
                f"(found {len(done)})")
        run_b = run_b if run_b is not None else done[0]["run_id"]
        run_a = run_a if run_a is not None else done[1]["run_id"]
    row_a = cache.db.run(run_a)
    row_b = cache.db.run(run_b)
    if row_a is None or row_b is None:
        missing = run_a if row_a is None else run_b
        raise ValueError(f"no recorded run #{missing}")

    faults_a = {f["fault_name"]: f for f in cache.db.run_faults(run_a)}
    faults_b = {f["fault_name"]: f for f in cache.db.run_faults(run_b)}
    diff = RunDiff(run_a=row_a, run_b=row_b)

    zones: dict[str, ZoneChange] = {}

    def bucket(zone: str) -> ZoneChange:
        if zone not in zones:
            zones[zone] = ZoneChange(zone=zone, counts_a={},
                                     counts_b={})
        return zones[zone]

    for name, fault in faults_a.items():
        counts = bucket(fault["zone"] or "?").counts_a
        counts[fault["outcome"]] = counts.get(fault["outcome"], 0) + 1
    for name, fault in faults_b.items():
        counts = bucket(fault["zone"] or "?").counts_b
        counts[fault["outcome"]] = counts.get(fault["outcome"], 0) + 1

    for name in sorted(set(faults_a) | set(faults_b)):
        a = faults_a.get(name)
        b = faults_b.get(name)
        outcome_a = a["outcome"] if a else None
        outcome_b = b["outcome"] if b else None
        if outcome_a != outcome_b:
            zone = (b or a)["zone"]
            diff.changed_faults.append(
                (name, zone, outcome_a, outcome_b))

    diff.zone_changes = [zones[z] for z in sorted(zones)]
    return diff


# ----------------------------------------------------------------------
# garbage collection
# ----------------------------------------------------------------------
@dataclass
class GcResult:
    runs_removed: int
    outcomes_removed: int
    blobs_removed: int
    bytes_reclaimed: int


def gc_store(cache: CampaignCache, keep_runs: int = 10) -> GcResult:
    """Drop old runs, unreferenced outcomes and orphaned blobs."""
    runs_removed, outcomes_removed = cache.db.gc(keep_runs)
    referenced = cache.db.golden_digests()
    referenced.update(r["golden_blob"] for r in cache.db.runs()
                      if r.get("golden_blob"))
    blobs_removed = 0
    bytes_reclaimed = 0
    for digest in cache.blobs.digests():
        if digest in referenced:
            continue
        bytes_reclaimed += cache.blobs.path_for(digest).stat().st_size
        cache.blobs.delete(digest)
        blobs_removed += 1
    return GcResult(runs_removed=runs_removed,
                    outcomes_removed=outcomes_removed,
                    blobs_removed=blobs_removed,
                    bytes_reclaimed=bytes_reclaimed)


def run_summary_rows(cache: CampaignCache, limit: int = 20,
                     design: str | None = None) -> list[list]:
    """Table rows for ``soc-fmea store query``."""
    rows = []
    for run in cache.db.runs(limit=limit, design=design):
        counts = json.loads(run["outcome_counts"] or "{}")
        rows.append([
            run["run_id"], run["status"], run["design"],
            run["faults"], run["hits"], run["misses"],
            f"{(run['measured_dc'] or 0.0) * 100:.2f}%"
            if run["measured_dc"] is not None else "-",
            f"{(run['safe_fraction'] or 0.0) * 100:.2f}%"
            if run["safe_fraction"] is not None else "-",
            counts.get(_DANGEROUS_UNDETECTED, "-"),
            counts.get("quarantined", 0) or "-",
            f"{run['wall_seconds']:.2f}s"
            if run["wall_seconds"] is not None else "-",
        ])
    return rows
