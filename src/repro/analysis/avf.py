"""Architectural-vulnerability cross-checks (paper refs [13][14]).

The FMEA's S factors claim that a fraction of raw failures never
perturbs the safety function — the same quantity the AVF literature
(Mukherjee et al.) measures as ``1 - AVF``.  This module provides two
independent estimates and the comparison against the worksheet's
assumptions:

* **structural exposure**: from the operational profile, the fraction
  of time a zone holds live (recently written, not yet overwritten)
  state — an ACE-style upper bound on vulnerability;
* **injected AVF**: from an injection campaign, the fraction of faults
  in the zone that produced a dangerous outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..fmea.worksheet import FmeaWorksheet
from ..reporting.tables import pct, render_table
from ..zones.extractor import ZoneSet
from ..zones.model import SensibleZone, ZoneKind


@dataclass
class AvfEstimate:
    """Vulnerability estimates for one zone."""

    zone: str
    structural_exposure: float | None = None
    injected_avf: float | None = None
    assumed_dangerous_fraction: float | None = None

    def consistent(self, tolerance: float = 0.35) -> bool | None:
        """Does the FMEA's danger assumption cover the measured AVF?

        The assumption is adequate when it is not *below* the injected
        AVF by more than the tolerance (conservative assumptions are
        fine).  None when no injected measurement exists.
        """
        if self.injected_avf is None or \
                self.assumed_dangerous_fraction is None:
            return None
        return self.assumed_dangerous_fraction >= \
            self.injected_avf - tolerance


def structural_exposure(profile, zone: SensibleZone) -> float | None:
    """Activity-window fraction of the run for a storage zone.

    For registers: fraction of cycles within the window starting at
    each value change (a value written and later rewritten was live in
    between — the conservative ACE reading counts the full interval
    between consecutive writes, bounded at the end of the run).
    """
    if zone.kind is ZoneKind.REGISTER:
        length = profile.length
        if length == 0:
            return None
        live = 0
        for flop in zone.flops:
            toggles = profile.flop_toggles.get(flop, [])
            if not toggles:
                continue
            # live from the first write to the end of the run
            live += length - toggles[0]
        return min(1.0, live / (length * max(1, len(zone.flops))))
    if zone.kind is ZoneKind.MEMORY and zone.memory is not None:
        accesses = profile.mem_accesses.get(zone.memory, [])
        lo, hi = zone.mem_words or (0, 1 << 30)
        touched = {a.addr for a in accesses if lo <= a.addr <= hi}
        words = (hi - lo + 1) if zone.mem_words else max(1, len(touched))
        return min(1.0, len(touched) / words)
    return None


def injected_avf(campaign, zone_name: str) -> float | None:
    """Fraction of the zone's injections with a dangerous outcome."""
    dangerous = total = 0
    for res in campaign.results:
        if res.fault.zone != zone_name:
            continue
        total += 1
        if campaign.outcome_of(res) in ("dangerous_detected",
                                        "dangerous_undetected"):
            dangerous += 1
    if total == 0:
        return None
    return dangerous / total


def assumed_dangerous_fraction(sheet: FmeaWorksheet,
                               zone_name: str) -> float | None:
    """1 - S (weighted by raw FIT) as assumed by the worksheet."""
    rows = sheet.rows_for_zone(zone_name)
    if not rows:
        return None
    total_fit = sum(e.raw_fit for e in rows)
    if total_fit == 0:
        return None
    dangerous = sum(e.raw_fit * (1.0 - e.safe_fraction) for e in rows)
    return dangerous / total_fit


@dataclass
class AvfReport:
    """All three vulnerability views, zone by zone."""

    estimates: list[AvfEstimate] = field(default_factory=list)

    def inconsistent(self, tolerance: float = 0.35) -> list[AvfEstimate]:
        return [e for e in self.estimates
                if e.consistent(tolerance) is False]

    def render(self) -> str:
        rows = []
        for e in self.estimates:
            rows.append([
                e.zone,
                "-" if e.structural_exposure is None
                else pct(e.structural_exposure, 0),
                "-" if e.injected_avf is None else pct(e.injected_avf, 0),
                "-" if e.assumed_dangerous_fraction is None
                else pct(e.assumed_dangerous_fraction, 0),
                {True: "ok", False: "LOW", None: "n/a"}[e.consistent()],
            ])
        return render_table(
            ["zone", "exposure", "injected AVF", "assumed D", "verdict"],
            rows, title="=== vulnerability cross-check (AVF) ===")


def avf_report(zone_set: ZoneSet, sheet: FmeaWorksheet, campaign=None,
               profile=None) -> AvfReport:
    """Build the AVF cross-check for all storage zones."""
    report = AvfReport()
    for zone in zone_set.zones:
        if zone.kind not in (ZoneKind.REGISTER, ZoneKind.MEMORY):
            continue
        report.estimates.append(AvfEstimate(
            zone=zone.name,
            structural_exposure=None if profile is None
            else structural_exposure(profile, zone),
            injected_avf=None if campaign is None
            else injected_avf(campaign, zone.name),
            assumed_dangerous_fraction=assumed_dangerous_fraction(
                sheet, zone.name)))
    return report
