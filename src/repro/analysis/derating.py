"""SET derating measurement (paper §3's masking remark).

"if there is a transient fault in a gate but this glitch isn't sampled
by the clock of the register corresponding to its sensible zone ...
this fault is not considered as an hazard" — i.e. the elementary
transient FIT of combinational gates must be derated by the fraction of
glitches that are logically masked or never latched.

This module *measures* that derating on the actual netlist: it injects
single-cycle SET glitches on sampled gates at sampled cycles of a
workload and counts how many ever perturb sequential state.  The
surviving fraction is the factor to apply to the raw per-gate SET rate
(``FitModel.gate_transient_fit``) — turning a hand-waved constant into
a design-measured number.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..hdl.netlist import Circuit, OP_BUF, OP_CONST0, OP_CONST1
from ..hdl.simulator import Simulator


@dataclass
class DeratingResult:
    """Outcome of a SET derating campaign."""

    injections: int
    latched: int        # glitches that reached sequential state
    observed: int       # ... and further reached a primary output

    @property
    def latch_fraction(self) -> float:
        """The derating factor: glitches that became soft errors."""
        return self.latched / self.injections if self.injections else 0.0

    @property
    def observe_fraction(self) -> float:
        return self.observed / self.injections if self.injections \
            else 0.0

    def summary(self) -> str:
        return (f"SET derating: {self.injections} glitches, "
                f"{self.latch_fraction * 100:.1f}% latched, "
                f"{self.observe_fraction * 100:.1f}% reached outputs")


def measure_set_derating(circuit: Circuit, stimuli,
                         samples: int = 200, seed: int = 20,
                         setup=None, settle_cycles: int = 8,
                         machines_per_pass: int = 48
                         ) -> DeratingResult:
    """Monte-Carlo SET campaign over (gate, cycle) pairs.

    A glitch counts as *latched* when any flip-flop or memory word
    differs from golden at any later cycle, and as *observed* when a
    primary output differs.  ``settle_cycles`` bounds how long after
    the last injection the run continues.
    """
    stimuli = list(stimuli)
    if not stimuli:
        raise ValueError("need a workload to measure derating")
    rng = random.Random(seed)
    sites = [g.out for g in circuit.gates
             if g.op not in (OP_BUF, OP_CONST0, OP_CONST1)]
    if not sites:
        raise ValueError("no combinational gates to glitch")

    pairs = [(rng.choice(sites), rng.randrange(len(stimuli)))
             for _ in range(samples)]

    out_nets = [n for nets in circuit.outputs.values() for n in nets]
    flop_idxs = tuple(range(len(circuit.flops)))
    mem_words = [(m.name, w) for m in circuit.memories
                 for w in range(m.depth)]

    result = DeratingResult(injections=0, latched=0, observed=0)
    for lo in range(0, len(pairs), machines_per_pass):
        batch = pairs[lo:lo + machines_per_pass]
        sim = Simulator(circuit, machines=len(batch) + 1)
        if setup is not None:
            setup(sim)
        horizon = 0
        for k, (net, cycle) in enumerate(batch, start=1):
            sim.schedule_net_glitch(net, cycle=cycle,
                                    machines=1 << k)
            horizon = max(horizon, cycle)
        horizon = min(len(stimuli), horizon + settle_cycles)

        latched_mask = 0
        observed_mask = 0
        for cycle in range(horizon):
            sim.step_eval(stimuli[cycle])
            observed_mask |= sim.mismatch_mask(out_nets)
            latched_mask |= sim.flop_state_mismatch(flop_idxs)
            sim.step_commit()
            latched_mask |= sim.flop_state_mismatch(flop_idxs)
        for mem_name, word in mem_words:
            latched_mask |= sim.mem_word_mismatch(mem_name, word)

        for k in range(1, len(batch) + 1):
            result.injections += 1
            if (latched_mask >> k) & 1 or (observed_mask >> k) & 1:
                result.latched += 1
            if (observed_mask >> k) & 1:
                result.observed += 1
    return result


def derated_gate_fit(raw_set_fit: float,
                     result: DeratingResult) -> float:
    """Apply a measured derating to a raw per-gate SET rate."""
    return raw_set_fit * result.latch_fraction
