"""Companion analyses: AVF cross-checks and scrub-interval modeling."""

from .avf import (
    AvfEstimate,
    AvfReport,
    assumed_dangerous_fraction,
    avf_report,
    injected_avf,
    structural_exposure,
)
from .derating import (
    DeratingResult,
    derated_gate_fit,
    measure_set_derating,
)
from .scrubbing import (
    AccumulationResult,
    ScrubModel,
    scrub_benefit_table,
    simulate_accumulation,
)

__all__ = [
    "AvfEstimate", "AvfReport", "assumed_dangerous_fraction",
    "avf_report", "injected_avf", "structural_exposure",
    "AccumulationResult", "ScrubModel", "scrub_benefit_table",
    "simulate_accumulation",
    "DeratingResult", "derated_gate_fit", "measure_set_derating",
]
