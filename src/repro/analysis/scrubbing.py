"""Scrub-interval analysis (paper refs [13][15]).

SEC-DED corrects single-bit errors; the dangerous residual is a second
upset landing in a word *before* the first one is repaired.  Scrubbing
bounds that accumulation window.  This module gives the closed-form
Poisson model of the uncorrectable-error rate as a function of scrub
period, plus a Monte-Carlo accumulation simulator that validates it —
the analysis behind "Do we need anything more than single bit error
correction?" [15] and "Cache scrubbing in microprocessors" [13].
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..iec61508.metrics import FIT_PER_HOUR


@dataclass
class ScrubModel:
    """Analytic double-error-accumulation model.

    ``bit_fit``: per-bit upset rate in FIT; ``word_bits``: codeword
    width (data + check); ``words``: array depth.
    """

    words: int
    word_bits: int
    bit_fit: float

    @property
    def word_rate_per_hour(self) -> float:
        return self.word_bits * self.bit_fit * FIT_PER_HOUR

    # ------------------------------------------------------------------
    def double_error_probability(self, interval_hours: float) -> float:
        """P(>= 2 upsets in one word within one scrub interval).

        Written via expm1 so the tiny-mu regime (P ~ mu^2/2) does not
        cancel to zero in floating point.
        """
        mu = self.word_rate_per_hour * interval_hours
        return -math.expm1(-mu) - mu * math.exp(-mu)

    def uncorrectable_fit(self, interval_hours: float) -> float:
        """Array-level uncorrectable-error rate in FIT.

        Per word: one failure event per interval with the probability
        above, i.e. rate = P2 / T; scaled by the number of words and
        converted back to FIT.
        """
        if interval_hours <= 0:
            raise ValueError("scrub interval must be positive")
        per_word = self.double_error_probability(interval_hours) \
            / interval_hours
        return per_word * self.words / FIT_PER_HOUR

    def unscrubbed_fit(self, mission_hours: float) -> float:
        """Equivalent rate when errors accumulate over the mission."""
        return self.uncorrectable_fit(mission_hours)

    def required_interval(self, target_fit: float,
                          lo: float = 1e-6, hi: float = 1e7) -> float:
        """Largest scrub interval (hours) meeting a FIT target."""
        if self.uncorrectable_fit(hi) <= target_fit:
            return hi
        if self.uncorrectable_fit(lo) > target_fit:
            raise ValueError("target not reachable at any interval")
        for _ in range(200):
            mid = math.sqrt(lo * hi)
            if self.uncorrectable_fit(mid) > target_fit:
                hi = mid
            else:
                lo = mid
        return lo

    def sweep(self, intervals_hours) -> list[tuple[float, float]]:
        """(interval, uncorrectable FIT) series for the benchmark."""
        return [(t, self.uncorrectable_fit(t)) for t in intervals_hours]


@dataclass
class AccumulationResult:
    """Monte-Carlo outcome."""

    trials: int
    double_events: int
    modeled_probability: float

    @property
    def measured_probability(self) -> float:
        return self.double_events / self.trials if self.trials else 0.0

    def agrees(self, rel_tolerance: float = 0.5,
               abs_floor: float = 5e-4) -> bool:
        gap = abs(self.measured_probability - self.modeled_probability)
        return gap <= max(abs_floor,
                          rel_tolerance * self.modeled_probability)


def simulate_accumulation(model: ScrubModel, interval_hours: float,
                          trials: int = 20000,
                          seed: int = 42) -> AccumulationResult:
    """Monte-Carlo check of the double-error probability in one word.

    Draws Poisson counts of upsets per interval and counts double-or-
    more events; distinct-bit collisions are ignored (same-bit double
    upsets cancel, a second-order effect the analytic model also
    neglects).
    """
    rng = random.Random(seed)
    mu = model.word_rate_per_hour * interval_hours
    doubles = 0
    for _ in range(trials):
        count = _poisson(rng, mu)
        if count >= 2:
            doubles += 1
    return AccumulationResult(
        trials=trials, double_events=doubles,
        modeled_probability=model.double_error_probability(
            interval_hours))


def _poisson(rng: random.Random, mu: float) -> int:
    """Knuth's algorithm (fine for small mu)."""
    threshold = math.exp(-mu)
    k = 0
    p = 1.0
    while True:
        p *= rng.random()
        if p <= threshold:
            return k
        k += 1


def scrub_benefit_table(model: ScrubModel, mission_hours: float,
                        intervals_hours) -> list[dict]:
    """Rows comparing scrubbed vs unscrubbed uncorrectable rates."""
    base = model.unscrubbed_fit(mission_hours)
    rows = []
    for t in intervals_hours:
        fit = model.uncorrectable_fit(t)
        rows.append({"interval_h": t, "due_fit": fit,
                     "improvement": base / fit if fit > 0
                     else math.inf})
    return rows
