"""The FMEA spreadsheet engine: rows, factors, FIT, metrics, analysis."""

from .fit import DEFAULT_FIT_MODEL, FitModel
from .factors import (
    DEFAULT_FREQUENCY,
    DEFAULT_S_FACTORS,
    FrequencyClass,
    SDFactors,
    default_factors,
    default_frequency,
)
from .entry import DiagnosticClaim, FmeaEntry, combine_coverage
from .worksheet import FmeaWorksheet
from .builder import (
    CoverageRule,
    DEFAULT_WORKSHEET_KINDS,
    DiagnosticPlan,
    FactorRule,
    build_worksheet,
)
from .ranking import ZoneCriticality, critical_zones, rank_zones
from .sensitivity import (
    SensitivityAnalysis,
    SpanResult,
    StabilityReport,
    stability_report,
)
from .io import (
    WorksheetFormatError,
    dumps_worksheet,
    load_worksheet,
    loads_worksheet,
    register_worksheet_migration,
    save_worksheet,
    worksheet_from_dict,
    worksheet_to_dict,
)
from .report import (
    criticality_report,
    full_report,
    summary_report,
    validation_report,
)

__all__ = [
    "DEFAULT_FIT_MODEL", "FitModel",
    "DEFAULT_FREQUENCY", "DEFAULT_S_FACTORS", "FrequencyClass",
    "SDFactors", "default_factors", "default_frequency",
    "DiagnosticClaim", "FmeaEntry", "combine_coverage",
    "FmeaWorksheet",
    "CoverageRule", "DEFAULT_WORKSHEET_KINDS", "DiagnosticPlan",
    "FactorRule", "build_worksheet",
    "ZoneCriticality", "critical_zones", "rank_zones",
    "SensitivityAnalysis", "SpanResult", "StabilityReport",
    "stability_report",
    "criticality_report", "full_report", "summary_report",
    "validation_report",
    "WorksheetFormatError", "dumps_worksheet", "load_worksheet",
    "loads_worksheet", "register_worksheet_migration",
    "save_worksheet", "worksheet_from_dict", "worksheet_to_dict",
]
