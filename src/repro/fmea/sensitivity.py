"""Sensitivity / stability analysis of the FMEA (paper §4, last ¶).

"An important step of the FMEA is to span the values of the assumptions
(such the elementary failure rates for transient and permanent faults
or the user assumptions such S, D and F) in order to measure the
sensitivity of the final DC/SFF to these changes."

§6 then reports that the improved design's SFF "was very stable as
well, i.e. changes on S, D, F and fault models didn't change the result
in a sensible way" — the property :func:`stability_report` checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..zones.model import FaultPersistence
from .entry import DiagnosticClaim, FmeaEntry
from .factors import FrequencyClass, SDFactors
from .worksheet import FmeaWorksheet


def _clip01(x: float) -> float:
    return min(1.0, max(0.0, x))


@dataclass
class SpanResult:
    """SFF/DC of one perturbed worksheet variant."""

    parameter: str
    factor: float
    sff: float
    dc: float
    delta_sff: float   # vs the nominal worksheet

    def __str__(self) -> str:
        return (f"{self.parameter} x{self.factor:g}: "
                f"SFF={self.sff * 100:.2f}% (Δ {self.delta_sff * 100:+.2f} "
                f"pt), DC={self.dc * 100:.2f}%")


@dataclass
class StabilityReport:
    """Aggregate of a sensitivity sweep."""

    nominal_sff: float
    nominal_dc: float
    results: list[SpanResult] = field(default_factory=list)

    @property
    def max_delta_sff(self) -> float:
        return max((abs(r.delta_sff) for r in self.results), default=0.0)

    @property
    def min_sff(self) -> float:
        return min((r.sff for r in self.results), default=self.nominal_sff)

    def stable(self, tolerance: float = 0.005) -> bool:
        """True when no span moves SFF by more than ``tolerance``."""
        return self.max_delta_sff <= tolerance

    def summary(self) -> str:
        lines = [f"nominal SFF={self.nominal_sff * 100:.2f}% "
                 f"DC={self.nominal_dc * 100:.2f}%"]
        lines.extend(str(r) for r in self.results)
        lines.append(f"max |ΔSFF| = {self.max_delta_sff * 100:.2f} pt, "
                     f"min SFF = {self.min_sff * 100:.2f}%")
        return "\n".join(lines)


class SensitivityAnalysis:
    """Perturbs FMEA assumptions and recomputes DC/SFF."""

    #: default spans: ±2x fault models, ±50 % S factors, +50 % DDF
    #: residual (uncovered fraction), one frequency class pessimization.
    DEFAULT_SPANS = {
        "fit_transient": (0.5, 2.0),
        "fit_permanent": (0.5, 2.0),
        "s_factor": (0.5, 1.5),
        "ddf_residual": (1.5,),
        "frequency": ("pessimize",),
    }

    def __init__(self, sheet: FmeaWorksheet):
        self.sheet = sheet

    # ------------------------------------------------------------------
    # per-parameter perturbations (each returns a new worksheet)
    # ------------------------------------------------------------------
    def scale_fit(self, persistence: FaultPersistence,
                  factor: float) -> FmeaWorksheet:
        def mod(entry: FmeaEntry) -> FmeaEntry:
            if entry.persistence is persistence:
                return replace(entry, raw_fit=entry.raw_fit * factor)
            return entry
        return self._apply(mod, f"fit_{persistence.value}x{factor:g}")

    def scale_s_factor(self, factor: float) -> FmeaWorksheet:
        def mod(entry: FmeaEntry) -> FmeaEntry:
            f = entry.factors
            scaled = SDFactors(
                architectural=_clip01(f.architectural * factor),
                applicational=_clip01(f.applicational * factor),
                use_applicational=f.use_applicational)
            return replace(entry, factors=scaled)
        return self._apply(mod, f"s_x{factor:g}")

    def scale_ddf_residual(self, factor: float) -> FmeaWorksheet:
        """Scale the *uncovered* fraction of every claim.

        Coverage uncertainty lives in the residual: a 99 % claim whose
        miss rate grows 1.5x becomes 98.5 %, not 79 %.
        """
        def mod(entry: FmeaEntry) -> FmeaEntry:
            claims = [DiagnosticClaim(
                c.technique_key,
                _clip01(1.0 - (1.0 - c.claimed_ddf) * factor),
                c.software) for c in entry.claims]
            return replace(entry, claims=claims)
        return self._apply(mod, f"ddf_residual_x{factor:g}")

    def pessimize_frequency(self) -> FmeaWorksheet:
        """Shift estimated frequency classes one step toward full
        exposure.

        Architecturally-derived classes (start-up-only BIST, the scrub
        engine's repair window) are structural facts, not estimates —
        they are not spanned.
        """
        order = [FrequencyClass.F4, FrequencyClass.F3,
                 FrequencyClass.F2, FrequencyClass.F1]

        def mod(entry: FmeaEntry) -> FmeaEntry:
            if entry.frequency_architectural:
                return entry
            idx = order.index(entry.frequency)
            bumped = order[min(idx + 1, len(order) - 1)]
            return replace(entry, frequency=bumped)
        return self._apply(mod, "freq_pessimized")

    def _apply(self, mod, name: str) -> FmeaWorksheet:
        variant = FmeaWorksheet(name=f"{self.sheet.name}:{name}")
        variant.extend(mod(e) for e in self.sheet.entries)
        return variant

    # ------------------------------------------------------------------
    def run(self, spans: dict | None = None) -> StabilityReport:
        spans = spans or self.DEFAULT_SPANS
        nominal = self.sheet.totals()
        report = StabilityReport(nominal_sff=nominal.sff,
                                 nominal_dc=nominal.dc)

        def record(param: str, factor, variant: FmeaWorksheet) -> None:
            totals = variant.totals()
            report.results.append(SpanResult(
                parameter=param,
                factor=factor if isinstance(factor, (int, float)) else 1.0,
                sff=totals.sff, dc=totals.dc,
                delta_sff=totals.sff - nominal.sff))

        for factor in spans.get("fit_transient", ()):
            record("fit_transient", factor,
                   self.scale_fit(FaultPersistence.TRANSIENT, factor))
        for factor in spans.get("fit_permanent", ()):
            record("fit_permanent", factor,
                   self.scale_fit(FaultPersistence.PERMANENT, factor))
        for factor in spans.get("s_factor", ()):
            record("s_factor", factor, self.scale_s_factor(factor))
        for factor in spans.get("ddf_residual", ()):
            record("ddf_residual", factor,
                   self.scale_ddf_residual(factor))
        for mode in spans.get("frequency", ()):
            if mode == "pessimize":
                record("frequency", 1.0, self.pessimize_frequency())
        return report


def stability_report(sheet: FmeaWorksheet,
                     spans: dict | None = None) -> StabilityReport:
    """Convenience wrapper for the default sensitivity sweep."""
    return SensitivityAnalysis(sheet).run(spans)
