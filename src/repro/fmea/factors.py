"""S/D factors, frequency classes and lifetime (paper §3).

The FMEA spreadsheet takes, per (zone, failure mode):

* **S and D factors** "to estimate the Safe fraction and Dangerous
  fraction of the possible failures" — two flavours: *architectural*
  (e.g. a zone blocked by masking gates at run time) and *applicational*
  (e.g. a zone not used by the given application).  "Usually only
  architectural S/D factors are considered."
* **frequency class F** "used to estimate its usage frequencies";
* **lifetime ζ**, "the time between the average last read and the write
  in such zone" — the exposure window of stored data.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..zones.model import ZoneKind


class FrequencyClass(str, Enum):
    """Usage-frequency classes with their exposure weights.

    A zone exercised every few cycles (F1) is fully exposed; a zone
    touched rarely (F4, e.g. BIST logic after start-up) converts most
    raw failures into safe ones because a corrupted value is unlikely
    to be consumed.
    """

    F1 = "F1"   # continuously used
    F2 = "F2"   # frequently used
    F3 = "F3"   # occasionally used
    F4 = "F4"   # rarely used (start-up only, test logic)

    @property
    def exposure(self) -> float:
        return {"F1": 1.0, "F2": 0.7, "F3": 0.3, "F4": 0.05}[self.value]


@dataclass(frozen=True)
class SDFactors:
    """Safe-fraction estimate for a (zone, failure-mode) pair.

    ``architectural`` and ``applicational`` are *safe* fractions in
    [0, 1]; the dangerous fraction D is their complement after combining
    with the frequency exposure:

        S_eff = 1 - (1 - S_arch) * (1 - S_app is ignored when
                applicational analysis is off) * exposure(F)

    i.e. failures are dangerous only when not masked architecturally,
    not masked by the application, and the zone is actually exposed.
    """

    architectural: float = 0.0
    applicational: float = 0.0
    use_applicational: bool = False

    def effective_safe_fraction(self, frequency: FrequencyClass) -> float:
        dangerous = 1.0 - self.architectural
        if self.use_applicational:
            dangerous *= 1.0 - self.applicational
        dangerous *= frequency.exposure
        return 1.0 - dangerous


# Default architectural S factors per zone kind: how much of the raw
# failure population is inherently safe (never propagates to the safety
# function).  These are the user estimates the validation flow later
# cross-checks against injection measurements.
#
# Memory: a corrupted stored bit is dangerous only if it is read before
# being overwritten; lifetime analyses of working memories (the ζ of
# §3; cf. AVF literature, refs [13][14] of the paper) put the dead-data
# fraction around 30-50 %; background scrubbing keeps occupancy fresh,
# so the default sits at the upper end of that range.
DEFAULT_S_FACTORS: dict[ZoneKind, float] = {
    ZoneKind.MEMORY: 0.50,
    ZoneKind.REGISTER: 0.40,
    ZoneKind.LOGICAL: 0.40,
    ZoneKind.PRIMARY_INPUT: 0.30,
    ZoneKind.PRIMARY_OUTPUT: 0.10,
    ZoneKind.CRITICAL_NET: 0.10,
    ZoneKind.SUBBLOCK: 0.40,
}

DEFAULT_FREQUENCY: dict[ZoneKind, FrequencyClass] = {
    ZoneKind.MEMORY: FrequencyClass.F1,
    ZoneKind.REGISTER: FrequencyClass.F1,
    ZoneKind.LOGICAL: FrequencyClass.F2,
    ZoneKind.PRIMARY_INPUT: FrequencyClass.F1,
    ZoneKind.PRIMARY_OUTPUT: FrequencyClass.F1,
    ZoneKind.CRITICAL_NET: FrequencyClass.F1,
    ZoneKind.SUBBLOCK: FrequencyClass.F2,
}


def default_factors(kind: ZoneKind) -> SDFactors:
    return SDFactors(architectural=DEFAULT_S_FACTORS[kind])


def default_frequency(kind: ZoneKind) -> FrequencyClass:
    return DEFAULT_FREQUENCY[kind]
