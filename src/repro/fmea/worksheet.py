"""The FMEA worksheet: the paper's "spreadsheet".

"Based on this information, the spreadsheet computes all the metrics
required by the IEC61508, such as the safe (λS) and dangerous (λD)
failure rates for each sensible zone and for all the SoC.  It also
delivers a ranking of sensible zones in terms of their criticality."
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field

from ..iec61508.metrics import FailureRates
from ..iec61508.sil import SIL, max_sil
from ..zones.model import FaultPersistence
from .entry import FmeaEntry


@dataclass
class FmeaWorksheet:
    """A collection of FMEA rows with aggregate IEC 61508 metrics."""

    name: str = "fmea"
    entries: list[FmeaEntry] = field(default_factory=list)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, entry: FmeaEntry) -> None:
        self.entries.append(entry)

    def extend(self, entries) -> None:
        self.entries.extend(entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def rows_for_zone(self, zone: str) -> list[FmeaEntry]:
        return [e for e in self.entries if e.zone == zone]

    def row(self, zone: str, failure_mode: str) -> FmeaEntry:
        for entry in self.entries:
            if entry.zone == zone and entry.failure_mode.name == \
                    failure_mode:
                return entry
        raise KeyError(f"no row ({zone!r}, {failure_mode!r})")

    def zone_names(self) -> list[str]:
        seen: dict[str, None] = {}
        for entry in self.entries:
            seen.setdefault(entry.zone, None)
        return list(seen)

    # ------------------------------------------------------------------
    # aggregate metrics
    # ------------------------------------------------------------------
    def totals(self) -> FailureRates:
        return FailureRates.sum(e.rates() for e in self.entries)

    def totals_by_zone(self) -> dict[str, FailureRates]:
        acc: dict[str, FailureRates] = {}
        for entry in self.entries:
            acc[entry.zone] = acc.get(entry.zone, FailureRates()) \
                + entry.rates()
        return acc

    def totals_by_persistence(self) -> dict[str, FailureRates]:
        acc = {FaultPersistence.TRANSIENT.value: FailureRates(),
               FaultPersistence.PERMANENT.value: FailureRates()}
        for entry in self.entries:
            acc[entry.persistence.value] = \
                acc[entry.persistence.value] + entry.rates()
        return acc

    @property
    def sff(self) -> float:
        return self.totals().sff

    @property
    def dc(self) -> float:
        return self.totals().dc

    def sil(self, hft: int = 0, type_b: bool = True) -> SIL | None:
        """Highest SIL the SFF grants at the given HFT."""
        return max_sil(self.sff, hft, type_b)

    # ------------------------------------------------------------------
    # validation feedback (§5: the result analyzer "automatically fills
    # a sheet included in the FMEA spreadsheet")
    # ------------------------------------------------------------------
    def record_measurement(self, zone: str, failure_mode: str,
                           measured_ddf: float,
                           measured_safe_fraction: float | None = None
                           ) -> None:
        entry = self.row(zone, failure_mode)
        entry.measured_ddf = measured_ddf
        entry.measured_safe_fraction = measured_safe_fraction

    def measured_rows(self) -> list[FmeaEntry]:
        return [e for e in self.entries if e.measured_ddf is not None]

    def worst_validation_gap(self) -> float:
        gaps = [e.validation_gap() for e in self.measured_rows()]
        return max(gaps) if gaps else 0.0

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    CSV_FIELDS = ("zone", "kind", "failure_mode", "persistence",
                  "raw_fit", "safe_fraction", "frequency", "ddf",
                  "ddf_hw", "ddf_sw", "lambda_s", "lambda_dd",
                  "lambda_du", "measured_ddf", "techniques", "notes")

    def to_csv(self) -> str:
        buf = io.StringIO()
        writer = csv.DictWriter(buf, fieldnames=self.CSV_FIELDS)
        writer.writeheader()
        for entry in self.entries:
            rates = entry.rates()
            writer.writerow({
                "zone": entry.zone,
                "kind": entry.zone_kind.value,
                "failure_mode": entry.failure_mode.name,
                "persistence": entry.persistence.value,
                "raw_fit": f"{entry.raw_fit:.6f}",
                "safe_fraction": f"{entry.safe_fraction:.4f}",
                "frequency": entry.frequency.value,
                "ddf": f"{entry.ddf:.4f}",
                "ddf_hw": f"{entry.ddf_hw:.4f}",
                "ddf_sw": f"{entry.ddf_sw:.4f}",
                "lambda_s": f"{rates.lambda_s:.6f}",
                "lambda_dd": f"{rates.lambda_dd:.6f}",
                "lambda_du": f"{rates.lambda_du:.6f}",
                "measured_ddf": "" if entry.measured_ddf is None
                else f"{entry.measured_ddf:.4f}",
                "techniques": "+".join(c.technique_key
                                       for c in entry.claims),
                "notes": entry.notes,
            })
        return buf.getvalue()

    def save_csv(self, path) -> None:
        with open(path, "w", newline="") as handle:
            handle.write(self.to_csv())

    def summary(self) -> str:
        totals = self.totals()
        return (f"FMEA {self.name!r}: {len(self.entries)} rows over "
                f"{len(self.zone_names())} zones | "
                f"λS={totals.lambda_s:.2f} λDD={totals.lambda_dd:.2f} "
                f"λDU={totals.lambda_du:.2f} FIT | "
                f"DC={totals.dc * 100:.2f}% SFF={totals.sff * 100:.2f}%")
