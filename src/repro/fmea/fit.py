"""Elementary failure-in-time models (paper §3).

"Starting from the elementary failure in time (FIT) per gate and per
register both for transient and permanent faults, all the data
automatically extracted by the tool are used to compute the failure
rates for each sensible zone."

Absolute FIT values are technology data the paper does not publish; the
defaults below are representative of a 90 nm-class automotive process
(memory-bit SEU dominating, logic SET heavily derated) and are plain
user inputs — EXPERIMENTS.md documents the set used for each
reproduction run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..zones.model import SensibleZone, ZoneKind


@dataclass(frozen=True)
class FitModel:
    """Elementary FIT rates (failures per 10^9 device-hours)."""

    gate_transient_fit: float = 0.0008   # SET reaching a latch window
    gate_permanent_fit: float = 0.0040   # hard defects per gate
    flop_transient_fit: float = 0.0500   # SEU per flip-flop bit
    flop_permanent_fit: float = 0.0080   # hard defects per flip-flop
    membit_transient_fit: float = 0.0100  # SEU per SRAM bit
    membit_permanent_fit: float = 0.0004  # hard defects per SRAM bit
    net_transient_fit: float = 0.0002    # coupling/noise per net load
    net_permanent_fit: float = 0.0010    # opens/shorts per net load

    # ------------------------------------------------------------------
    def zone_fit(self, zone: SensibleZone) -> tuple[float, float]:
        """(transient FIT, permanent FIT) for a sensible zone.

        Register zones accumulate their storage bits plus the gates of
        their input logic cone (faults in the cone converge into the
        zone, §3); memory zones scale with their bit count; critical
        nets scale with fanout; sub-blocks and ports use their gate and
        bit statistics.
        """
        kind = zone.kind
        if kind is ZoneKind.MEMORY:
            bits = zone.size_bits
            return (bits * self.membit_transient_fit,
                    bits * self.membit_permanent_fit)
        if kind is ZoneKind.REGISTER:
            t = (zone.size_bits * self.flop_transient_fit
                 + zone.cone_gates * self.gate_transient_fit)
            p = (zone.size_bits * self.flop_permanent_fit
                 + zone.cone_gates * self.gate_permanent_fit)
            return t, p
        if kind is ZoneKind.CRITICAL_NET:
            fanout = zone.attrs.get("fanout", 1)
            return (fanout * self.net_transient_fit,
                    fanout * self.net_permanent_fit)
        if kind is ZoneKind.SUBBLOCK:
            gates = zone.attrs.get("gates", zone.cone_gates)
            flops = zone.attrs.get("flops", 0)
            t = (gates * self.gate_transient_fit
                 + flops * self.flop_transient_fit)
            p = (gates * self.gate_permanent_fit
                 + flops * self.flop_permanent_fit)
            return t, p
        if kind in (ZoneKind.PRIMARY_INPUT, ZoneKind.PRIMARY_OUTPUT):
            bits = max(1, zone.size_bits)
            return (bits * self.net_transient_fit,
                    bits * self.net_permanent_fit)
        # logical zones: treat like a register-equivalent entity
        return (max(1, zone.size_bits) * self.flop_transient_fit,
                max(1, zone.size_bits) * self.flop_permanent_fit)

    # ------------------------------------------------------------------
    def scaled(self, transient: float = 1.0,
               permanent: float = 1.0) -> "FitModel":
        """A model with all transient/permanent rates multiplied —
        the fault-model span of the sensitivity analysis (§4)."""
        return replace(
            self,
            gate_transient_fit=self.gate_transient_fit * transient,
            flop_transient_fit=self.flop_transient_fit * transient,
            membit_transient_fit=self.membit_transient_fit * transient,
            net_transient_fit=self.net_transient_fit * transient,
            gate_permanent_fit=self.gate_permanent_fit * permanent,
            flop_permanent_fit=self.flop_permanent_fit * permanent,
            membit_permanent_fit=self.membit_permanent_fit * permanent,
            net_permanent_fit=self.net_permanent_fit * permanent)


DEFAULT_FIT_MODEL = FitModel()
