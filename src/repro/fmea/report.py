"""Human-readable FMEA reports ("very detailed reports on sensible
zones, fault effects, failure rates, etc.", paper §7)."""

from __future__ import annotations

from ..iec61508.sil import SIL, max_sil, required_sff
from ..reporting.tables import pct, render_kv, render_table
from .ranking import rank_zones
from .worksheet import FmeaWorksheet


def summary_report(sheet: FmeaWorksheet, hft: int = 0) -> str:
    """Headline metrics block (λ totals, DC, SFF, granted SIL)."""
    totals = sheet.totals()
    granted = max_sil(totals.sff, hft)
    pairs = [
        ("worksheet", sheet.name),
        ("rows", len(sheet.entries)),
        ("zones", len(sheet.zone_names())),
        ("lambda_S [FIT]", f"{totals.lambda_s:.3f}"),
        ("lambda_DD [FIT]", f"{totals.lambda_dd:.3f}"),
        ("lambda_DU [FIT]", f"{totals.lambda_du:.3f}"),
        ("DC", pct(totals.dc)),
        ("SFF", pct(totals.sff)),
        (f"SIL granted @ HFT={hft}",
         granted.name if granted else "not allowed"),
        ("SIL3 SFF requirement",
         pct(required_sff(SIL.SIL3, hft))),
    ]
    return render_kv(pairs, title="=== FMEA summary ===")


def criticality_report(sheet: FmeaWorksheet, top: int = 15) -> str:
    """The criticality ranking table of §3/§6."""
    rows = []
    for row in rank_zones(sheet, top=top):
        rows.append([row.zone,
                     f"{row.rates.lambda_du:.4f}",
                     f"{row.rates.lambda_d:.4f}",
                     pct(row.rates.sff),
                     pct(row.du_share, 1),
                     pct(row.cumulative, 1)])
    return render_table(
        ["zone", "λDU [FIT]", "λD [FIT]", "zone SFF", "λDU share", "cum"],
        rows, title=f"=== top {top} critical sensible zones ===")


def validation_report(sheet: FmeaWorksheet) -> str:
    """Claimed vs measured DDF for rows with injection measurements."""
    rows = []
    for entry in sheet.measured_rows():
        rows.append([entry.zone, entry.failure_mode.name,
                     f"{entry.ddf:.3f}",
                     f"{entry.measured_ddf:.3f}",
                     f"{entry.validation_gap():.3f}"])
    if not rows:
        return "no injection measurements recorded"
    return render_table(
        ["zone", "failure mode", "claimed DDF", "measured DDF", "gap"],
        rows, title="=== FMEA validation (claimed vs measured) ===")


def full_report(sheet: FmeaWorksheet, hft: int = 0, top: int = 15) -> str:
    parts = [summary_report(sheet, hft), "", criticality_report(sheet, top)]
    measured = validation_report(sheet)
    if not measured.startswith("no injection"):
        parts.extend(["", measured])
    return "\n".join(parts)
