"""Worksheet persistence: JSON save/load for the FMEA spreadsheet.

The paper's flow revolves around a spreadsheet artifact that travels
between the extraction tool, the analyst and the validation flow.  The
JSON schema here captures every row field — including the measured
values the result analyzer fills in — so a worksheet can be saved after
a campaign and re-assessed later without re-running anything.
"""

from __future__ import annotations

import json

from ..zones.model import FailureMode, FaultPersistence, ZoneKind
from .entry import DiagnosticClaim, FmeaEntry
from .factors import FrequencyClass, SDFactors
from .worksheet import FmeaWorksheet

SCHEMA_VERSION = 1


def worksheet_to_dict(sheet: FmeaWorksheet) -> dict:
    return {
        "schema": SCHEMA_VERSION,
        "name": sheet.name,
        "entries": [_entry_to_dict(e) for e in sheet.entries],
    }


def worksheet_from_dict(data: dict) -> FmeaWorksheet:
    if data.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported worksheet schema {data.get('schema')!r}")
    sheet = FmeaWorksheet(name=data["name"])
    sheet.extend(_entry_from_dict(e) for e in data["entries"])
    return sheet


def save_worksheet(sheet: FmeaWorksheet, path) -> None:
    with open(path, "w") as handle:
        json.dump(worksheet_to_dict(sheet), handle, indent=1)


def load_worksheet(path) -> FmeaWorksheet:
    with open(path) as handle:
        return worksheet_from_dict(json.load(handle))


def dumps_worksheet(sheet: FmeaWorksheet) -> str:
    return json.dumps(worksheet_to_dict(sheet))


def loads_worksheet(text: str) -> FmeaWorksheet:
    return worksheet_from_dict(json.loads(text))


# ----------------------------------------------------------------------
def _entry_to_dict(entry: FmeaEntry) -> dict:
    return {
        "zone": entry.zone,
        "kind": entry.zone_kind.value,
        "failure_mode": {
            "name": entry.failure_mode.name,
            "description": entry.failure_mode.description,
            "persistence": entry.failure_mode.persistence.value,
            "iec_reference": entry.failure_mode.iec_reference,
        },
        "raw_fit": entry.raw_fit,
        "factors": {
            "architectural": entry.factors.architectural,
            "applicational": entry.factors.applicational,
            "use_applicational": entry.factors.use_applicational,
        },
        "frequency": entry.frequency.value,
        "frequency_architectural": entry.frequency_architectural,
        "lifetime_cycles": entry.lifetime_cycles,
        "claims": [{
            "technique": c.technique_key,
            "ddf": c.claimed_ddf,
            "software": c.software,
        } for c in entry.claims],
        "measured_ddf": entry.measured_ddf,
        "measured_safe_fraction": entry.measured_safe_fraction,
        "notes": entry.notes,
    }


def _entry_from_dict(data: dict) -> FmeaEntry:
    fm = data["failure_mode"]
    return FmeaEntry(
        zone=data["zone"],
        zone_kind=ZoneKind(data["kind"]),
        failure_mode=FailureMode(
            name=fm["name"], description=fm["description"],
            persistence=FaultPersistence(fm["persistence"]),
            iec_reference=fm["iec_reference"]),
        raw_fit=data["raw_fit"],
        factors=SDFactors(
            architectural=data["factors"]["architectural"],
            applicational=data["factors"]["applicational"],
            use_applicational=data["factors"]["use_applicational"]),
        frequency=FrequencyClass(data["frequency"]),
        frequency_architectural=data.get("frequency_architectural",
                                         False),
        lifetime_cycles=data["lifetime_cycles"],
        claims=[DiagnosticClaim(c["technique"], c["ddf"], c["software"])
                for c in data["claims"]],
        measured_ddf=data["measured_ddf"],
        measured_safe_fraction=data["measured_safe_fraction"],
        notes=data["notes"])
