"""Worksheet persistence: JSON save/load for the FMEA spreadsheet.

The paper's flow revolves around a spreadsheet artifact that travels
between the extraction tool, the analyst and the validation flow.  The
JSON schema here captures every row field — including the measured
values the result analyzer fills in — so a worksheet can be saved after
a campaign and re-assessed later without re-running anything.

Loading is *hardened*: every field is validated with an ``E3xx``
diagnostic carrying a JSON field path (``entries[3].failure_mode.
persistence``), all problems of a file are reported at once, unknown
extra keys are tolerated for forward compatibility, and older schema
versions are upgraded through the migration registry instead of
hard-failing.  A malformed worksheet raises
:class:`WorksheetFormatError` (still a :class:`ValueError` for legacy
callers) carrying the full :class:`~repro.diagnostics.DiagnosticReport`.
"""

from __future__ import annotations

import json
from typing import Callable

from ..diagnostics import DiagnosticError, DiagnosticReport
from ..zones.model import FailureMode, FaultPersistence, ZoneKind
from .entry import DiagnosticClaim, FmeaEntry
from .factors import FrequencyClass, SDFactors
from .worksheet import FmeaWorksheet

SCHEMA_VERSION = 1

#: schema-migration hooks: ``{from_version: upgrade(dict) -> dict}``.
#: An upgrade function returns a *new* dict whose ``schema`` key moved
#: strictly toward :data:`SCHEMA_VERSION`; chains are followed until
#: the current version is reached.  Register one with
#: :func:`register_worksheet_migration` to keep old exports loadable.
WORKSHEET_MIGRATIONS: dict[int, Callable[[dict], dict]] = {}


class WorksheetFormatError(DiagnosticError, ValueError):
    """A worksheet dict/file failed validation (all sites reported)."""


def register_worksheet_migration(from_version: int,
                                 upgrade: Callable[[dict], dict]
                                 ) -> None:
    """Register an upgrade hook for an older worksheet schema."""
    WORKSHEET_MIGRATIONS[from_version] = upgrade


def worksheet_to_dict(sheet: FmeaWorksheet) -> dict:
    return {
        "schema": SCHEMA_VERSION,
        "name": sheet.name,
        "entries": [_entry_to_dict(e) for e in sheet.entries],
    }


def worksheet_from_dict(data: dict, *,
                        source: str | None = None,
                        report: DiagnosticReport | None = None
                        ) -> FmeaWorksheet | None:
    """Validate and build a worksheet from its JSON dict form.

    With ``report=None`` (the default) any error raises
    :class:`WorksheetFormatError` listing *every* defect.  When a
    caller passes its own report (the ``doctor`` audit), diagnostics
    are appended there and the valid subset of entries is returned —
    or ``None`` when the document is unusable.
    """
    collect = DiagnosticReport() if report is None else report
    before = len(collect.errors)

    sheet = _worksheet_from_dict(data, source, collect)
    if report is None and len(collect.errors) > before:
        raise WorksheetFormatError(collect)
    return sheet


def _worksheet_from_dict(data, source, collect) -> FmeaWorksheet | None:
    reader = _Reader(collect, source)
    if not isinstance(data, dict):
        collect.error(
            "E300", f"worksheet root must be a JSON object, got "
                    f"{type(data).__name__}", file=source)
        return None

    data = _migrate(data, source, collect)
    if data is None:
        return None

    name = reader.field(data, "name", str, path="name")
    entries = reader.field(data, "entries", list, path="entries")
    if name is None or entries is None:
        return None
    sheet = FmeaWorksheet(name=name)
    for i, entry_data in enumerate(entries):
        entry = _entry_from_dict(entry_data, reader,
                                 path=f"entries[{i}]")
        if entry is not None:
            sheet.add(entry)
    return sheet


def save_worksheet(sheet: FmeaWorksheet, path) -> None:
    with open(path, "w") as handle:
        json.dump(worksheet_to_dict(sheet), handle, indent=1)


def load_worksheet(path, *,
                   report: DiagnosticReport | None = None
                   ) -> FmeaWorksheet | None:
    """Load a worksheet file; IO/JSON failures become ``E300``."""
    collect = DiagnosticReport() if report is None else report
    try:
        with open(path) as handle:
            data = json.load(handle)
    except OSError as err:
        collect.error("E300", f"cannot read worksheet: {err}",
                      file=str(path))
        data = None
    except json.JSONDecodeError as err:
        collect.error(
            "E300", f"worksheet is not valid JSON: {err.msg}",
            file=str(path), line=err.lineno, column=err.colno)
        data = None
    if data is None:
        if report is None:
            raise WorksheetFormatError(collect)
        return None
    return worksheet_from_dict(data, source=str(path), report=report)


def dumps_worksheet(sheet: FmeaWorksheet) -> str:
    return json.dumps(worksheet_to_dict(sheet))


def loads_worksheet(text: str) -> FmeaWorksheet:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as err:
        collect = DiagnosticReport()
        collect.error("E300",
                      f"worksheet is not valid JSON: {err.msg}",
                      line=err.lineno, column=err.colno)
        raise WorksheetFormatError(collect) from None
    return worksheet_from_dict(data)


# ----------------------------------------------------------------------
# schema migration
# ----------------------------------------------------------------------
def _migrate(data: dict, source, collect) -> dict | None:
    version = data.get("schema")
    hops = 0
    while version != SCHEMA_VERSION:
        upgrade = WORKSHEET_MIGRATIONS.get(version) \
            if isinstance(version, int) else None
        if upgrade is None or hops > 16:
            collect.error(
                "E301",
                f"unsupported worksheet schema {version!r} (current: "
                f"{SCHEMA_VERSION}, migratable: "
                f"{sorted(WORKSHEET_MIGRATIONS) or 'none'})",
                file=source, hint=None)
            return None
        data = upgrade(dict(data))
        new_version = data.get("schema")
        if new_version == version:
            collect.error(
                "E301",
                f"worksheet migration from schema {version!r} did not "
                f"advance the version", file=source)
            return None
        collect.info(
            "E301",
            f"worksheet migrated from schema {version!r} to "
            f"{new_version!r}", file=source)
        version = new_version
        hops += 1
    return data


# ----------------------------------------------------------------------
# field-path validation helpers
# ----------------------------------------------------------------------
class _Reader:
    """Field extraction that reports, rather than raises, on defects."""

    def __init__(self, report: DiagnosticReport, source: str | None):
        self.report = report
        self.source = source

    def field(self, data: dict, key: str, types, *, path: str,
              required: bool = True, default=None, enum=None,
              nullable: bool = False):
        """Fetch ``data[key]`` with type/enum checking.

        Returns the (converted) value, or ``None`` after reporting a
        coded diagnostic.  Unknown extra keys in ``data`` are by
        design never reported — forward compatibility.
        """
        if not isinstance(data, dict):
            self.report.error(
                "E303", f"{path.rsplit('.', 1)[0] or path} must be an "
                        f"object, got {type(data).__name__}",
                file=self.source)
            return None
        if key not in data:
            if not required:
                return default
            self.report.error("E302", f"missing field {path!r}",
                              file=self.source)
            return None
        value = data[key]
        if value is None and nullable:
            return None
        allowed = types if isinstance(types, tuple) else (types,)
        bad_bool = isinstance(value, bool) and bool not in allowed
        if not isinstance(value, types) or bad_bool:
            want = "/".join(t.__name__ for t in allowed)
            self.report.error(
                "E303", f"field {path!r} must be {want}, got "
                        f"{type(value).__name__} ({value!r})",
                file=self.source)
            return None
        if enum is not None:
            try:
                return enum(value)
            except ValueError:
                allowed = ", ".join(repr(m.value) for m in enum)
                self.report.error(
                    "E304", f"field {path!r} value {value!r} is not "
                            f"one of: {allowed}", file=self.source)
                return None
        return value

    def optional_number(self, data: dict, key: str, *, path: str):
        if not isinstance(data, dict) or data.get(key) is None:
            return None
        return self.field(data, key, (int, float), path=path)


# ----------------------------------------------------------------------
def _entry_to_dict(entry: FmeaEntry) -> dict:
    return {
        "zone": entry.zone,
        "kind": entry.zone_kind.value,
        "failure_mode": {
            "name": entry.failure_mode.name,
            "description": entry.failure_mode.description,
            "persistence": entry.failure_mode.persistence.value,
            "iec_reference": entry.failure_mode.iec_reference,
        },
        "raw_fit": entry.raw_fit,
        "factors": {
            "architectural": entry.factors.architectural,
            "applicational": entry.factors.applicational,
            "use_applicational": entry.factors.use_applicational,
        },
        "frequency": entry.frequency.value,
        "frequency_architectural": entry.frequency_architectural,
        "lifetime_cycles": entry.lifetime_cycles,
        "claims": [{
            "technique": c.technique_key,
            "ddf": c.claimed_ddf,
            "software": c.software,
        } for c in entry.claims],
        "measured_ddf": entry.measured_ddf,
        "measured_safe_fraction": entry.measured_safe_fraction,
        "notes": entry.notes,
    }


def _entry_from_dict(data, reader: _Reader,
                     path: str) -> FmeaEntry | None:
    if not isinstance(data, dict):
        reader.report.error(
            "E303", f"{path} must be an object, got "
                    f"{type(data).__name__}", file=reader.source)
        return None
    before = len(reader.report.errors)

    zone = reader.field(data, "zone", str, path=f"{path}.zone")
    kind = reader.field(data, "kind", str, path=f"{path}.kind",
                        enum=ZoneKind)

    fm_data = reader.field(data, "failure_mode", dict,
                           path=f"{path}.failure_mode")
    failure_mode = None
    if fm_data is not None:
        fmp = f"{path}.failure_mode"
        fm_name = reader.field(fm_data, "name", str,
                               path=f"{fmp}.name")
        persistence = reader.field(fm_data, "persistence", str,
                                   path=f"{fmp}.persistence",
                                   enum=FaultPersistence)
        if fm_name is not None and persistence is not None:
            failure_mode = FailureMode(
                name=fm_name,
                description=reader.field(
                    fm_data, "description", str,
                    path=f"{fmp}.description", required=False,
                    default=""),
                persistence=persistence,
                iec_reference=reader.field(
                    fm_data, "iec_reference", str,
                    path=f"{fmp}.iec_reference", required=False,
                    default=""))

    raw_fit = reader.field(data, "raw_fit", (int, float),
                           path=f"{path}.raw_fit")
    factors = None
    f_data = reader.field(data, "factors", dict,
                          path=f"{path}.factors")
    if f_data is not None:
        fp = f"{path}.factors"
        arch = reader.field(f_data, "architectural", (int, float),
                            path=f"{fp}.architectural")
        app = reader.field(f_data, "applicational", (int, float),
                           path=f"{fp}.applicational")
        use = reader.field(f_data, "use_applicational", bool,
                           path=f"{fp}.use_applicational",
                           required=False, default=True)
        if arch is not None and app is not None and use is not None:
            factors = SDFactors(architectural=arch, applicational=app,
                                use_applicational=use)

    frequency = reader.field(data, "frequency", str,
                             path=f"{path}.frequency",
                             enum=FrequencyClass)
    lifetime = reader.field(data, "lifetime_cycles", (int, float),
                            path=f"{path}.lifetime_cycles")

    claims = []
    claims_data = reader.field(data, "claims", list,
                               path=f"{path}.claims",
                               required=False, default=[])
    for j, claim in enumerate(claims_data or []):
        cp = f"{path}.claims[{j}]"
        if not isinstance(claim, dict):
            reader.report.error(
                "E305", f"{cp} must be an object, got "
                        f"{type(claim).__name__}", file=reader.source)
            continue
        technique = reader.field(claim, "technique", str,
                                 path=f"{cp}.technique")
        ddf = reader.field(claim, "ddf", (int, float),
                           path=f"{cp}.ddf")
        software = reader.field(claim, "software", bool,
                                path=f"{cp}.software",
                                required=False, default=None,
                                nullable=True)
        if technique is None or ddf is None:
            reader.report.error(
                "E305", f"claim {cp} is unusable and was dropped",
                file=reader.source)
            continue
        claims.append(DiagnosticClaim(technique, ddf, software))

    if len(reader.report.errors) > before or None in (
            zone, kind, failure_mode, raw_fit, factors, frequency,
            lifetime):
        return None
    return FmeaEntry(
        zone=zone,
        zone_kind=kind,
        failure_mode=failure_mode,
        raw_fit=raw_fit,
        factors=factors,
        frequency=frequency,
        frequency_architectural=bool(
            data.get("frequency_architectural", False)),
        lifetime_cycles=lifetime,
        claims=claims,
        measured_ddf=reader.optional_number(
            data, "measured_ddf", path=f"{path}.measured_ddf"),
        measured_safe_fraction=reader.optional_number(
            data, "measured_safe_fraction",
            path=f"{path}.measured_safe_fraction"),
        notes=reader.field(data, "notes", str, path=f"{path}.notes",
                           required=False, default=""))
