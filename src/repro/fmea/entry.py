"""One FMEA spreadsheet row: (sensible zone, failure mode) with factors,
diagnostic claims and resulting failure rates (paper §3-4)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..iec61508.metrics import FailureRates
from ..iec61508.techniques import clamp_claim, technique
from ..zones.model import FailureMode, FaultPersistence, ZoneKind
from .factors import FrequencyClass, SDFactors


@dataclass(frozen=True)
class DiagnosticClaim:
    """A Detected-Dangerous-Failure fraction claimed for a technique.

    ``claimed_ddf`` is the analyst's estimate; it is clamped to the
    norm-accepted maximum for the technique ("by what accepted by the
    IEC norm, Annex 2, tables A.2-A.13").  ``software`` distinguishes
    DDF due to SW techniques from HW techniques (the sheet keeps them
    separate); it defaults to the catalog's own classification.
    """

    technique_key: str
    claimed_ddf: float
    software: bool | None = None

    @property
    def effective_ddf(self) -> float:
        return clamp_claim(self.technique_key, self.claimed_ddf)

    @property
    def is_software(self) -> bool:
        if self.software is not None:
            return self.software
        return technique(self.technique_key).software


def combine_coverage(claims) -> float:
    """Union coverage of independent diagnostic techniques."""
    miss = 1.0
    for claim in claims:
        miss *= 1.0 - claim.effective_ddf
    return 1.0 - miss


@dataclass
class FmeaEntry:
    """A spreadsheet row.

    ``raw_fit`` is the failure rate computed from the extraction
    statistics and the elementary FIT model; ``measured_ddf`` is filled
    in by the fault-injection result analyzer (§5) and, when present,
    is reported next to the claimed value by the validation flow.
    """

    zone: str
    zone_kind: ZoneKind
    failure_mode: FailureMode
    raw_fit: float
    factors: SDFactors = field(default_factory=SDFactors)
    frequency: FrequencyClass = FrequencyClass.F1
    #: an architecturally-derived frequency class (start-up-only BIST,
    #: repair-window scrub registers) is a structural fact, not an
    #: assumption — the sensitivity analysis does not span it
    frequency_architectural: bool = False
    lifetime_cycles: float = 0.0
    claims: list[DiagnosticClaim] = field(default_factory=list)
    measured_ddf: float | None = None
    measured_safe_fraction: float | None = None
    notes: str = ""

    # ------------------------------------------------------------------
    @property
    def persistence(self) -> FaultPersistence:
        return self.failure_mode.persistence

    @property
    def safe_fraction(self) -> float:
        return self.factors.effective_safe_fraction(self.frequency)

    @property
    def ddf(self) -> float:
        """Combined claimed DDF over all techniques for this row."""
        return combine_coverage(self.claims)

    @property
    def ddf_hw(self) -> float:
        return combine_coverage(
            [c for c in self.claims if not c.is_software])

    @property
    def ddf_sw(self) -> float:
        return combine_coverage([c for c in self.claims if c.is_software])

    def rates(self) -> FailureRates:
        """λS / λDD / λDU of this row (in FIT)."""
        return FailureRates.split(self.raw_fit, self.safe_fraction,
                                  self.ddf)

    # ------------------------------------------------------------------
    def with_claim(self, technique_key: str, ddf: float,
                   software: bool | None = None) -> "FmeaEntry":
        claims = list(self.claims)
        claims.append(DiagnosticClaim(technique_key, ddf, software))
        return replace(self, claims=claims)

    def key(self) -> tuple[str, str]:
        return (self.zone, self.failure_mode.name)

    def validation_gap(self) -> float | None:
        """|claimed - measured| DDF, when a measurement exists."""
        if self.measured_ddf is None:
            return None
        return abs(self.ddf - self.measured_ddf)
