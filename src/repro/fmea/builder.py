"""Automatic worksheet construction from extraction results (§3-4).

"These coverage values are computed both based on the architecture, by
the numbers given by the previous described tool (concerning the
interconnections between sensible zones), by what accepted by the IEC
norm ... and by the estimation of the user."

A :class:`DiagnosticPlan` captures the user/architecture side: which
diagnostic technique covers which zones (by name pattern), with what
claimed DDF, for which failure-mode persistence.  The builder crosses
the extracted zones with the IEC failure-mode catalog, prices each row
with the FIT model, and attaches the matching diagnostic claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch

from ..iec61508.failure_modes import failure_modes_for
from ..zones.extractor import ZoneSet
from ..zones.model import FaultPersistence, SensibleZone, ZoneKind
from .entry import DiagnosticClaim, FmeaEntry
from .factors import (
    FrequencyClass,
    SDFactors,
    default_factors,
    default_frequency,
)
from .fit import DEFAULT_FIT_MODEL, FitModel
from .worksheet import FmeaWorksheet

# Sub-block zones are an alternative, coarser view of logic already
# priced through the register cones; including both would double-count
# FIT.  Primary-input zones model board-level effects outside the SoC
# failure-rate budget.
DEFAULT_WORKSHEET_KINDS = (
    ZoneKind.REGISTER,
    ZoneKind.MEMORY,
    ZoneKind.PRIMARY_OUTPUT,
    ZoneKind.CRITICAL_NET,
    ZoneKind.LOGICAL,
)


@dataclass(frozen=True)
class CoverageRule:
    """Maps zones (by glob pattern) to a diagnostic technique claim."""

    pattern: str
    technique: str
    ddf: float
    persistence: str | None = None  # "transient" / "permanent" / both
    modes: tuple[str, ...] | None = None
    software: bool | None = None

    def applies(self, zone_name: str, failure_mode) -> bool:
        if not fnmatch(zone_name, self.pattern):
            return False
        if self.persistence is not None and \
                failure_mode.persistence.value != self.persistence:
            return False
        if self.modes is not None and \
                failure_mode.name not in self.modes:
            return False
        return True


@dataclass
class FactorRule:
    """Per-pattern override of S factors and frequency class.

    ``transient_factors`` / ``permanent_factors`` override ``factors``
    for the matching persistence — e.g. a one-cycle-lifetime buffer has
    a huge architectural safe fraction for transients (an SEU must land
    in the single live cycle) while its permanent-fault exposure is
    unchanged.
    """

    pattern: str
    factors: SDFactors | None = None
    frequency: FrequencyClass | None = None
    lifetime_cycles: float | None = None
    transient_factors: SDFactors | None = None
    permanent_factors: SDFactors | None = None


@dataclass
class DiagnosticPlan:
    """The diagnostic architecture expressed as coverage rules."""

    name: str = "plan"
    coverage: list[CoverageRule] = field(default_factory=list)
    factors: list[FactorRule] = field(default_factory=list)

    def cover(self, pattern: str, technique: str, ddf: float,
              persistence: str | None = None,
              modes: tuple[str, ...] | None = None,
              software: bool | None = None) -> "DiagnosticPlan":
        self.coverage.append(CoverageRule(pattern, technique, ddf,
                                          persistence, modes, software))
        return self

    def set_factors(self, pattern: str,
                    factors: SDFactors | None = None,
                    frequency: FrequencyClass | None = None,
                    lifetime_cycles: float | None = None,
                    transient_factors: SDFactors | None = None,
                    permanent_factors: SDFactors | None = None
                    ) -> "DiagnosticPlan":
        self.factors.append(FactorRule(pattern, factors, frequency,
                                       lifetime_cycles,
                                       transient_factors,
                                       permanent_factors))
        return self

    # ------------------------------------------------------------------
    def claims_for(self, zone_name: str, failure_mode
                   ) -> list[DiagnosticClaim]:
        return [DiagnosticClaim(r.technique, r.ddf, r.software)
                for r in self.coverage
                if r.applies(zone_name, failure_mode)]

    def factors_for(self, zone: SensibleZone,
                    persistence: FaultPersistence | None = None
                    ) -> tuple[SDFactors, FrequencyClass, float, bool]:
        factors = default_factors(zone.kind)
        frequency = default_frequency(zone.kind)
        lifetime = 0.0
        freq_architectural = False
        for rule in self.factors:
            if fnmatch(zone.name, rule.pattern):
                if rule.factors is not None:
                    factors = rule.factors
                if persistence is FaultPersistence.TRANSIENT and \
                        rule.transient_factors is not None:
                    factors = rule.transient_factors
                if persistence is FaultPersistence.PERMANENT and \
                        rule.permanent_factors is not None:
                    factors = rule.permanent_factors
                if rule.frequency is not None:
                    frequency = rule.frequency
                    # plan rules encode architectural derivations
                    freq_architectural = True
                if rule.lifetime_cycles is not None:
                    lifetime = rule.lifetime_cycles
        return factors, frequency, lifetime, freq_architectural


def build_worksheet(zone_set: ZoneSet,
                    plan: DiagnosticPlan | None = None,
                    fit_model: FitModel = DEFAULT_FIT_MODEL,
                    kinds=DEFAULT_WORKSHEET_KINDS,
                    name: str = "fmea") -> FmeaWorksheet:
    """Cross zones with IEC failure modes into a priced worksheet.

    The transient FIT of a zone is shared across its transient failure
    modes and likewise for permanent modes, so the zone total always
    equals the FIT model's estimate regardless of how many modes the
    catalog lists.
    """
    plan = plan or DiagnosticPlan()
    sheet = FmeaWorksheet(name=name)
    kinds = set(kinds)

    for zone in zone_set.zones:
        if zone.kind not in kinds:
            continue
        t_fit, p_fit = fit_model.zone_fit(zone)
        modes = failure_modes_for(zone.kind)
        t_modes = [fm for fm in modes
                   if fm.persistence is FaultPersistence.TRANSIENT]
        p_modes = [fm for fm in modes
                   if fm.persistence is FaultPersistence.PERMANENT]
        if (t_fit > 0 and not t_modes) or (p_fit > 0 and not p_modes):
            raise ValueError(
                f"failure-mode catalog for {zone.kind.value} zones "
                f"cannot absorb the FIT of zone {zone.name!r} "
                f"(transient={t_fit:g}, permanent={p_fit:g}) — rates "
                f"would be silently dropped")
        t_factors, frequency, lifetime, freq_arch = plan.factors_for(
            zone, FaultPersistence.TRANSIENT)
        p_factors, _, _, _ = plan.factors_for(
            zone, FaultPersistence.PERMANENT)

        for fm in t_modes:
            sheet.add(FmeaEntry(
                zone=zone.name, zone_kind=zone.kind, failure_mode=fm,
                raw_fit=t_fit / len(t_modes),
                factors=t_factors, frequency=frequency,
                frequency_architectural=freq_arch,
                lifetime_cycles=lifetime,
                claims=plan.claims_for(zone.name, fm)))
        for fm in p_modes:
            sheet.add(FmeaEntry(
                zone=zone.name, zone_kind=zone.kind, failure_mode=fm,
                raw_fit=p_fit / len(p_modes),
                factors=p_factors, frequency=frequency,
                frequency_architectural=freq_arch,
                lifetime_cycles=lifetime,
                claims=plan.claims_for(zone.name, fm)))
    return sheet
