"""Criticality ranking of sensible zones (paper §3, §6).

"It also delivers a ranking of sensible zones in terms of their
criticality" — here measured by each zone's dangerous-undetected rate
λDU, the quantity that directly erodes the SFF.  §6 reports that, for
the baseline design, the critical zones were "the BIST control logic,
the registers involved in addresses latching, most of the blocks of the
decoder, the registers of the write buffer, some of the blocks of the
MCE".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..iec61508.metrics import FailureRates
from .worksheet import FmeaWorksheet


@dataclass
class ZoneCriticality:
    """One ranking row."""

    zone: str
    rates: FailureRates
    du_share: float      # fraction of the SoC λDU contributed
    cumulative: float    # running sum of du_share

    def __str__(self) -> str:
        return (f"{self.zone}: λDU={self.rates.lambda_du:.4f} FIT "
                f"({self.du_share * 100:.1f}%, "
                f"cum {self.cumulative * 100:.1f}%)")


def rank_zones(sheet: FmeaWorksheet,
               top: int | None = None) -> list[ZoneCriticality]:
    """Zones ordered by decreasing λDU contribution."""
    by_zone = sheet.totals_by_zone()
    total_du = sum(r.lambda_du for r in by_zone.values()) or 1.0
    ordered = sorted(by_zone.items(), key=lambda kv: -kv[1].lambda_du)
    rows: list[ZoneCriticality] = []
    running = 0.0
    for zone, rates in ordered:
        share = rates.lambda_du / total_du
        running += share
        rows.append(ZoneCriticality(zone, rates, share, running))
    return rows[:top] if top is not None else rows


def critical_zones(sheet: FmeaWorksheet,
                   du_share_threshold: float = 0.02) -> list[str]:
    """Zones individually responsible for a sizeable λDU share."""
    return [row.zone for row in rank_zones(sheet)
            if row.du_share >= du_share_threshold]
