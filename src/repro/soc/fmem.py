"""F-MEM: coder, two-stage pipelined decoder, write buffer, scrubbing.

§6: "it interfaces the memory array and it hosts the coder/decoder and
a scrubbing feature, as also the controller to generate the
corresponding alarms."

The decoder is deliberately built in two stages around the pipeline
register ("this first circuit included a write buffer and a pipeline
stage in the decoder, in order to guarantee the timing closure"):

* **stage A** (before the pipe): syndrome computation from the raw
  memory word (plus the read address when the address is folded into
  the ECC);
* **pipeline register**: data field + syndrome (baseline), plus the
  stored check bits in the improved design;
* **stage B** (after the pipe): correction network driven by the
  *pipelined* syndrome.

This reproduces the baseline's weakness: a fault hitting the pipeline
data field *after* the syndrome was computed corrupts the output with
no alarm.  The improved design adds exactly the paper's counter-
measures: (i) an error checker immediately after the coder, (ii) a
double-redundant error checker after the pipeline stage with the
no-error bypass mux, and (iii) a distributed syndrome-checking
architecture discriminating data-field, check-field and addressing
errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ecc.address import AddressedSecDed, build_address_signature
from ..ecc.hamming import build_corrector, build_encoder
from ..ecc.parity import build_parity
from ..hdl.builder import Module, Vec
from ..hdl.library import equals_const
from .config import SubsystemConfig


def _base_code(cfg: SubsystemConfig):
    code = cfg.code
    return code.base if isinstance(code, AddressedSecDed) else code


def _addr_signature(m: Module, cfg: SubsystemConfig, addr: Vec) -> Vec | None:
    if not cfg.address_in_ecc:
        return None
    return build_address_signature(m, addr, cfg.code)


# ----------------------------------------------------------------------
# coder (write path)
# ----------------------------------------------------------------------
@dataclass
class CoderSignals:
    check: Vec
    alarm: Vec   # improvement (i): error checker after the coder


def build_coder(m: Module, cfg: SubsystemConfig, data: Vec, addr: Vec,
                encoding_now: Vec) -> CoderSignals:
    """Check-bit generation, optionally self-checked (improvement i)."""
    base = _base_code(cfg)
    with m.scope("fmem/coder"):
        check = build_encoder(m, data, base)
        sig = _addr_signature(m, cfg, addr)
        if sig is not None:
            check = check ^ sig

    if cfg.coder_checker:
        # "an error checker was added immediately after the code
        # generator section of the decoder, in order to cover also the
        # errors in such coder" — an independent second network.
        with m.scope("fmem/coder_check"):
            check_b = build_encoder(m, data, base)
            sig_b = _addr_signature(m, cfg, addr)
            if sig_b is not None:
                check_b = check_b ^ sig_b
            alarm = (check.ne(check_b) & encoding_now).named("alarm")
    else:
        alarm = m.const(0)
    return CoderSignals(check=check, alarm=alarm)


# ----------------------------------------------------------------------
# write buffer
# ----------------------------------------------------------------------
@dataclass
class WriteBufferSignals:
    valid: Vec        # q of the valid flag (declared by caller)
    addr: Vec
    word: Vec         # {check, data} as stored in the array
    alarm_parity: Vec


def build_write_buffer(m: Module, cfg: SubsystemConfig, data: Vec,
                       check: Vec, addr: Vec, capture: Vec,
                       drain_gate: Vec, valid_q: Vec, rst: Vec,
                       err_inject: Vec | None = None
                       ) -> WriteBufferSignals:
    """One-deep write buffer, parity-protected in the improved design.

    ``valid_q`` must be a 1-bit register previously created with
    :meth:`Module.declare_reg`; this function connects its next-state
    logic (``capture`` sets it, a drain — ``valid & drain_gate`` —
    clears it).

    ``err_inject`` is the diagnostic self-test mask: it is XORed into
    the stored word *after* the parity and coder checkers, so software
    can plant single/double-bit errors in the array to exercise the
    correction and alarm paths (the standard error-injection test mode
    of safety memory IPs, and what makes the §5 workload able to toggle
    the corrector logic).
    """
    with m.scope("fmem/wbuf"):
        buf_data = m.reg("data", data, en=capture)
        buf_check = m.reg("check", check, en=capture)
        buf_addr = m.reg("addr", addr, en=capture)
        m.connect_reg(valid_q, capture | (valid_q & ~drain_gate))
        drain = valid_q & drain_gate

        if cfg.write_buffer_parity:
            payload_in = m.cat(data, check, addr)
            par_in = build_parity(m, payload_in)
            buf_par = m.reg("parity", par_in, en=capture)
            payload_out = m.cat(buf_data, buf_check, buf_addr)
            par_out = build_parity(m, payload_out)
            alarm = (drain & (par_out ^ buf_par)).named("alarm")
        else:
            alarm = m.const(0)

        word = m.cat(buf_data, buf_check)
        if err_inject is not None:
            err_reg = m.reg("err_mask", err_inject, en=capture)
            word = word ^ err_reg
    return WriteBufferSignals(valid=valid_q, addr=buf_addr, word=word,
                              alarm_parity=alarm)


# ----------------------------------------------------------------------
# decoder (read path)
# ----------------------------------------------------------------------
@dataclass
class DecoderSignals:
    data_out: Vec
    single: Vec           # raw corrector flags (ungated)
    double: Vec
    alarm_pipe: Vec       # improvement (ii)
    alarm_synd_data: Vec  # improvement (iii): error in the data field
    alarm_synd_check: Vec  # improvement (iii): error in the check field
    alarm_synd_addr: Vec  # improvement (iii): addressing / multi-bit
    synd_nonzero: Vec
    pipe_nets: dict = field(default_factory=dict)


def build_decoder(m: Module, cfg: SubsystemConfig, rdata: Vec,
                  addr_stage_a: Vec, addr_stage_b: Vec,
                  read_valid: Vec) -> DecoderSignals:
    """Two-stage pipelined SEC-DED decoder with the §6 improvements.

    ``addr_stage_a`` must be aligned with ``rdata`` (one cycle after
    the port request); ``addr_stage_b`` with the pipeline output.
    """
    base = _base_code(cfg)
    k, r = cfg.data_bits, cfg.check_bits
    mem_data = rdata[0:k]
    mem_check = rdata[k:k + r]

    # ---- stage A: syndrome generation -------------------------------
    with m.scope("fmem/decoder/stage_a"):
        enc = build_encoder(m, mem_data, base)
        synd_in = enc ^ mem_check
        sig = _addr_signature(m, cfg, addr_stage_a)
        if sig is not None:
            synd_in = synd_in ^ sig

    # ---- pipeline register -------------------------------------------
    with m.scope("fmem/decoder"):
        pipe_data = m.reg("pipe_data", mem_data)
        pipe_synd = m.reg("pipe_synd", synd_in)
        pipe_check = None
        if cfg.redundant_pipe_checker:
            pipe_check = m.reg("pipe_check", mem_check)

    # ---- stage B: correction ------------------------------------------
    with m.scope("fmem/decoder/stage_b"):
        corrected, single, double = build_corrector(m, pipe_data,
                                                    pipe_synd, base)

    # ---- improvement (ii): redundant checkers after the pipe ----------
    if cfg.redundant_pipe_checker:
        with m.scope("fmem/decoder/post_check_a"):
            enc_a = build_encoder(m, pipe_data, base)
            post_a = enc_a ^ pipe_check
            sig_a = _addr_signature(m, cfg, addr_stage_b)
            if sig_a is not None:
                post_a = post_a ^ sig_a
        with m.scope("fmem/decoder/post_check_b"):
            enc_b = build_encoder(m, pipe_data, base)
            post_b = enc_b ^ pipe_check
            sig_b = _addr_signature(m, cfg, addr_stage_b)
            if sig_b is not None:
                post_b = post_b ^ sig_b
        with m.scope("fmem/decoder/post_check"):
            disagree = post_a.ne(post_b)
            stale = post_a.ne(pipe_synd)
            alarm_pipe = ((disagree | stale) & read_valid).named("alarm")
            no_err = (pipe_synd.is_zero() & post_a.is_zero()
                      & post_b.is_zero())
            # "in case of no errors directly connect the decoder output
            # with the memory data"
            data_out = m.mux(no_err, pipe_data, corrected)
    else:
        alarm_pipe = m.const(0)
        data_out = corrected

    # ---- improvement (iii): distributed syndrome checking -------------
    with m.scope("fmem/decoder/synd_class"):
        synd_nonzero = pipe_synd.reduce_or()
        if cfg.distributed_syndrome:
            match_data = m.const(0)
            for col in base.columns:
                match_data = match_data | equals_const(m, pipe_synd, col)
            match_check = m.const(0)
            for j in range(r):
                match_check = match_check | equals_const(m, pipe_synd,
                                                         1 << j)
            other = synd_nonzero & ~match_data & ~match_check
            alarm_synd_data = (synd_nonzero & match_data
                               & read_valid).named("alarm_data")
            alarm_synd_check = (synd_nonzero & match_check
                                & read_valid).named("alarm_check")
            alarm_synd_addr = (other & read_valid).named("alarm_addr")
        else:
            alarm_synd_data = m.const(0)
            alarm_synd_check = m.const(0)
            alarm_synd_addr = m.const(0)

    return DecoderSignals(
        data_out=data_out, single=single, double=double,
        alarm_pipe=alarm_pipe, alarm_synd_data=alarm_synd_data,
        alarm_synd_check=alarm_synd_check,
        alarm_synd_addr=alarm_synd_addr, synd_nonzero=synd_nonzero)


# ----------------------------------------------------------------------
# scrubbing engine
# ----------------------------------------------------------------------
SCRUB_IDLE, SCRUB_W1, SCRUB_W2, SCRUB_WRITE = range(4)


@dataclass
class ScrubRegs:
    """Declared scrubber state (connected by :func:`connect_scrubber`)."""

    state: Vec
    data: Vec
    cur_addr: Vec
    pending: Vec
    pend_addr: Vec
    scan_cnt: Vec
    was_pending: Vec
    in_idle: Vec
    in_w1: Vec
    in_w2: Vec
    in_write: Vec


def declare_scrubber(m: Module, cfg: SubsystemConfig,
                     rst: Vec) -> ScrubRegs:
    """Declare scrub state registers; usable before the decoder exists.

    "The scrubbing function stores the locations where an error
    occurred, in order to repair them when the memory isn't used by the
    system or it can also perform a background scanning of the memory
    for fault-forecasting."
    """
    with m.scope("fmem/scrub"):
        state = m.declare_reg("state", 2, rst=rst)
        data = m.declare_reg("data", cfg.data_bits)
        cur_addr = m.declare_reg("cur_addr", cfg.addr_bits)
        pending = m.declare_reg("pending", 1, rst=rst)
        pend_addr = m.declare_reg("pend_addr", cfg.addr_bits)
        scan_cnt = m.declare_reg("scan_cnt", cfg.addr_bits, rst=rst)
        was_pending = m.declare_reg("was_pending", 1, rst=rst)
        in_idle = equals_const(m, state, SCRUB_IDLE)
        in_w1 = equals_const(m, state, SCRUB_W1)
        in_w2 = equals_const(m, state, SCRUB_W2)
        in_write = equals_const(m, state, SCRUB_WRITE)
    return ScrubRegs(state=state, data=data, cur_addr=cur_addr,
                     pending=pending, pend_addr=pend_addr,
                     scan_cnt=scan_cnt, was_pending=was_pending,
                     in_idle=in_idle, in_w1=in_w1, in_w2=in_w2,
                     in_write=in_write)


@dataclass
class ScrubSignals:
    read_req: Vec
    read_addr: Vec
    write_now: Vec
    busy: Vec
    fix_pulse: Vec


def scrub_requests(m: Module, cfg: SubsystemConfig, regs: ScrubRegs,
                   scrub_en: Vec, htrans: Vec, wbuf_valid: Vec,
                   bist_active: Vec) -> ScrubSignals:
    """Combinational port requests of the scrub FSM.

    Reads are issued from IDLE when the memory "isn't used by the
    system" (no bus transfer, no pending drain, no BIST); the repair
    write re-enters the normal coder/write-buffer path.
    """
    with m.scope("fmem/scrub"):
        port_free = (~htrans & ~wbuf_valid & ~bist_active)
        read_req = (regs.in_idle & scrub_en & port_free).named("read_req")
        read_addr = m.mux(regs.pending, regs.pend_addr, regs.scan_cnt)
        write_now = (regs.in_write & port_free).named("write_now")
        busy = (~regs.in_idle).named("busy")
    return ScrubSignals(read_req=read_req, read_addr=read_addr,
                        write_now=write_now, busy=busy,
                        fix_pulse=write_now)


def connect_scrubber(m: Module, cfg: SubsystemConfig, regs: ScrubRegs,
                     sig: ScrubSignals, dec: DecoderSignals,
                     sv2: Vec, rv2: Vec, addr_d2: Vec) -> Vec:
    """Close the scrub FSM loops once the decoder outputs exist.

    Returns the scrub-parity alarm (constant 0 unless
    ``cfg.scrub_parity``): the repair data and target address are
    parity-protected between capture and write-back, so a corrupted
    holding register cannot silently rewrite the array.
    """
    from ..ecc.parity import build_parity
    from ..hdl.library import increment
    with m.scope("fmem/scrub"):
        scrub_hit = regs.in_w2 & sv2 & dec.single

        nxt = m.const(SCRUB_IDLE, 2)
        nxt = m.mux(regs.in_idle & sig.read_req, m.const(SCRUB_W1, 2), nxt)
        nxt = m.mux(regs.in_w1, m.const(SCRUB_W2, 2), nxt)
        nxt = m.mux(regs.in_w2,
                    m.mux(scrub_hit, m.const(SCRUB_WRITE, 2),
                          m.const(SCRUB_IDLE, 2)), nxt)
        nxt = m.mux(regs.in_write,
                    m.mux(sig.write_now, m.const(SCRUB_IDLE, 2),
                          m.const(SCRUB_WRITE, 2)), nxt)
        m.connect_reg(regs.state, nxt)

        issue = regs.in_idle & sig.read_req
        m.connect_reg(regs.cur_addr,
                      m.mux(issue, sig.read_addr, regs.cur_addr))
        m.connect_reg(regs.was_pending,
                      m.mux(issue, regs.pending, regs.was_pending))
        m.connect_reg(regs.data,
                      m.mux(scrub_hit, dec.data_out, regs.data))

        # a corrected CPU read schedules a repair of that location
        cpu_hit = rv2 & dec.single
        done = ((regs.in_w2 & sv2 & ~dec.single & regs.was_pending)
                | (regs.in_write & sig.write_now & regs.was_pending))
        m.connect_reg(regs.pending, cpu_hit | (regs.pending & ~done))
        m.connect_reg(regs.pend_addr,
                      m.mux(cpu_hit, addr_d2, regs.pend_addr))

        scan_done = regs.in_w2 & sv2 & ~regs.was_pending
        inc, _ = increment(m, regs.scan_cnt)
        m.connect_reg(regs.scan_cnt,
                      m.mux(scan_done, inc, regs.scan_cnt))

        if cfg.scrub_parity:
            par_data = m.reg("par_data", build_parity(m, dec.data_out),
                             en=scrub_hit)
            par_addr = m.reg("par_addr",
                             build_parity(m, sig.read_addr), en=issue)
            bad = ((build_parity(m, regs.data) ^ par_data)
                   | (build_parity(m, regs.cur_addr) ^ par_addr))
            return (sig.write_now & bad).named("par_alarm")
        return m.const(0)
