"""Dual-channel (1oo2) memory sub-system — the HFT = 1 route of §2.

"With a HFT equal to zero, a SFF equal or greater than 99% is required
in order that the system or component can be granted with SIL3.  With a
HFT equal to one, the SFF should be greater than 90%."

The §6 improved design takes the first route (single channel,
SFF ≥ 99 %).  This module builds the *other* route the paper's §2
describes: two complete sub-system channels executing the same bus
traffic, with a hardware cross-comparator on the functional outputs
("double RAM with hardware or software comparison", IEC table A.6,
'high').  One channel may fail completely — the comparator exposes the
divergence — so the architecture claims HFT = 1 and needs only
SFF > 90 %, which even the *baseline* channel satisfies.
"""

from __future__ import annotations

from ..fmea.builder import DiagnosticPlan, build_worksheet
from ..fmea.fit import DEFAULT_FIT_MODEL, FitModel
from ..fmea.worksheet import FmeaWorksheet
from ..hdl.builder import Module
from ..hdl.netlist import Circuit
from ..hdl.simulator import Simulator
from ..zones.extractor import ExtractionConfig, ZoneSet, extract_zones
from .config import SubsystemConfig
from .subsystem import (
    MemorySubsystem,
    SubsystemPorts,
    elaborate_channel,
    make_diagnostic_plan,
)

CHANNELS = ("cha", "chb")


def build_dual_channel(cfg: SubsystemConfig) -> Circuit:
    """Two channels on the same bus, cross-compared (1oo2)."""
    m = Module(f"{cfg.name}_1oo2")
    ports = SubsystemPorts.declare(m, cfg)

    outs = {}
    for channel in CHANNELS:
        with m.scope(channel):
            outs[channel] = elaborate_channel(m, cfg, ports)

    a, b = outs["cha"], outs["chb"]
    with m.scope("crosscmp"):
        diverged = (a["hrdata"].ne(b["hrdata"])
                    | a["rvalid"].ne(b["rvalid"]))
        alarm = m.declare_reg("alarm", 1, rst=ports.rst)
        m.connect_reg(alarm, alarm | diverged)

    # channel A provides the mission outputs; channel B is the monitor
    for name, vec in a.items():
        m.output(name, vec)
    m.output("alarm_cross", alarm)
    # channel B's own diagnostics stay observable (prefixed)
    for name, vec in b.items():
        if name.startswith("alarm_"):
            m.output(f"chb_{name}", vec)
    return m.build()


def make_dual_plan(cfg: SubsystemConfig) -> DiagnosticPlan:
    """Per-channel plans rebased under their scopes, plus the 1oo2
    cross-comparison claim on both channels' logic."""
    plan = DiagnosticPlan(name=f"{cfg.name}-1oo2-plan")
    for channel in CHANNELS:
        sub_plan = make_diagnostic_plan(cfg, prefix=f"{channel}/")
        plan.coverage.extend(sub_plan.coverage)
        plan.factors.extend(sub_plan.factors)
        # anything that corrupts one channel's mission outputs is
        # caught by the cross-comparator ("double RAM with hardware
        # comparison", table A.6: high)
        plan.cover(f"{channel}/*", "ram_double_comparison", 0.99)
        plan.cover(f"critical:{channel}/*", "ram_double_comparison",
                   0.99)
    return plan


class DualChannelSubsystem:
    """The 1oo2 pair with analysis helpers (mirrors MemorySubsystem)."""

    #: the architecture tolerates one failed channel
    hft = 1

    def __init__(self, cfg: SubsystemConfig | None = None):
        self.cfg = cfg or SubsystemConfig.baseline(
            name="memss_dual_baseline")
        self.circuit = build_dual_channel(self.cfg)
        self._single = MemorySubsystem(self.cfg)

    # ------------------------------------------------------------------
    def idle(self, **kw) -> dict[str, int]:
        return self._single.idle(**kw)

    def write(self, addr: int, data: int, **kw) -> dict[str, int]:
        return self._single.write(addr, data, **kw)

    def read(self, addr: int, **kw) -> dict[str, int]:
        return self._single.read(addr, **kw)

    def reset_op(self, **kw) -> dict[str, int]:
        return self._single.reset_op(**kw)

    def encode_word(self, data: int, addr: int = 0) -> int:
        return self._single.encode_word(data, addr)

    def preload(self, sim: Simulator, words: dict[int, int]) -> None:
        image = [self.encode_word(0, a) for a in range(self.cfg.depth)]
        for addr, data in words.items():
            image[addr] = self.encode_word(data, addr)
        for channel in CHANNELS:
            sim.load_mem(f"{channel}/memarray/array", image)

    def simulator(self, machines: int = 1,
                  collect_toggles: bool = False) -> Simulator:
        sim = Simulator(self.circuit, machines=machines,
                        collect_toggles=collect_toggles)
        self.preload(sim, {})
        return sim

    def alarm_outputs(self) -> list[str]:
        return [name for name in self.circuit.outputs
                if "alarm" in name]

    # ------------------------------------------------------------------
    def extraction_config(self) -> ExtractionConfig:
        base = self._single.extraction_config()
        return ExtractionConfig(
            register_slice_bits=base.register_slice_bits,
            critical_fanout=base.critical_fanout,
            subblock_depth=base.subblock_depth + 1,
            memory_words_per_zone=base.memory_words_per_zone)

    def extract_zones(self) -> ZoneSet:
        return extract_zones(self.circuit, self.extraction_config())

    def worksheet(self, zone_set: ZoneSet | None = None,
                  fit_model: FitModel = DEFAULT_FIT_MODEL
                  ) -> FmeaWorksheet:
        zone_set = zone_set or self.extract_zones()
        return build_worksheet(zone_set, plan=make_dual_plan(self.cfg),
                               fit_model=fit_model,
                               name=self.circuit.name)
