"""AHB-style transaction master driving a subsystem simulator.

The bus protocol of the model (documented timing):

* a request (read or write) is presented for exactly one cycle;
* a write is captured into the write buffer at the end of that cycle
  and drains to the array one cycle later — software must leave one
  bus-idle cycle after a write before the next read (the drain owns the
  memory port);
* read data appears on ``hrdata`` with ``rvalid`` two cycles after the
  request.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hdl.simulator import Simulator
from .subsystem import MemorySubsystem

WRITE_GAP = 2      # idle cycles after a write before the next access
READ_LATENCY = 2   # cycles from request to rvalid


@dataclass
class ReadResult:
    """Outcome of a bus read."""

    addr: int
    data: int
    valid: bool
    alarms: dict[str, int] = field(default_factory=dict)

    @property
    def any_alarm(self) -> bool:
        return any(self.alarms.values())


class AhbMaster:
    """Drives reads/writes and samples responses on the right cycle."""

    def __init__(self, subsystem: MemorySubsystem,
                 sim: Simulator | None = None, scrub_en: int = 0,
                 mpu: int | None = None):
        self.sub = subsystem
        self.sim = sim if sim is not None else subsystem.simulator()
        self.scrub_en = scrub_en
        self.mpu = mpu
        self.alarm_log: list[tuple[int, str]] = []

    # ------------------------------------------------------------------
    def _kw(self) -> dict:
        kw = {"scrub_en": self.scrub_en}
        if self.mpu is not None:
            kw["mpu"] = self.mpu
        return kw

    def _sample_alarms(self) -> None:
        for name in self.sub.alarm_outputs():
            if self.sim.output(name):
                self.alarm_log.append((self.sim.cycle, name))

    def _step(self, inputs: dict) -> None:
        self.sim.step_eval(inputs)
        self._sample_alarms()
        self.sim.step_commit()

    def reset(self, cycles: int = 2) -> None:
        for _ in range(cycles):
            self._step(self.sub.reset_op(**self._kw()))

    def idle(self, cycles: int = 1) -> None:
        for _ in range(cycles):
            self._step(self.sub.idle(**self._kw()))

    def write(self, addr: int, data: int, gap: int = WRITE_GAP) -> None:
        self._step(self.sub.write(addr, data, **self._kw()))
        self.idle(gap)

    def read(self, addr: int) -> ReadResult:
        self._step(self.sub.read(addr, **self._kw()))
        for _ in range(READ_LATENCY - 1):
            self._step(self.sub.idle(**self._kw()))
        # sample during the rvalid cycle, then commit it
        self.sim.step_eval(self.sub.idle(**self._kw()))
        result = ReadResult(
            addr=addr,
            data=self.sim.output("hrdata"),
            valid=bool(self.sim.output("rvalid")),
            alarms={name: self.sim.output(name)
                    for name in self.sub.alarm_outputs()})
        for name, value in result.alarms.items():
            if value:
                self.alarm_log.append((self.sim.cycle, name))
        self.sim.step_commit()
        return result

    # ------------------------------------------------------------------
    def run_bist(self, max_cycles: int | None = None) -> bool:
        """Run the start-up BIST to completion; returns pass/fail."""
        budget = max_cycles or (4 * self.sub.cfg.depth + 32)
        self._step(self.sub.idle(bist_run=1, **self._kw()))
        for _ in range(budget):
            self.sim.step_eval(self.sub.idle(bist_run=1, **self._kw()))
            self._sample_alarms()
            done = self.sim.output("bist_done")
            fail = self.sim.output("alarm_bist")
            self.sim.step_commit()
            if done:
                return not fail
        raise RuntimeError("BIST did not complete within budget")

    def alarms_seen(self) -> set[str]:
        return {name for _, name in self.alarm_log}
