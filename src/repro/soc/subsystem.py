"""Top-level assembly of the §6 memory sub-system (Figure 5).

The block diagram: AHB-side request decode + MPU (MCE), coder / write
buffer / pipelined decoder / scrubbing engine (F-MEM), BIST + port
arbitration + address latching (memory controller), and the memory
array itself.  :class:`MemorySubsystem` wraps the built circuit with
transaction helpers, the variant-specific diagnostic plan used by the
FMEA, and zone-extraction defaults.
"""

from __future__ import annotations

from ..fmea.builder import DiagnosticPlan, build_worksheet
from ..fmea.factors import FrequencyClass, SDFactors
from ..fmea.fit import DEFAULT_FIT_MODEL, FitModel
from ..fmea.worksheet import FmeaWorksheet
from ..hdl.builder import Module
from ..hdl.netlist import Circuit
from ..hdl.simulator import Simulator
from ..zones.extractor import ExtractionConfig, ZoneSet, extract_zones
from .config import SubsystemConfig
from .fmem import (
    build_coder,
    build_decoder,
    build_write_buffer,
    connect_scrubber,
    declare_scrubber,
    scrub_requests,
)
from .mce import build_mce
from .memctrl import (
    build_bist,
    build_latch_pipeline,
    build_port_mux,
    finish_bist,
)


from dataclasses import dataclass as _dataclass


@_dataclass
class SubsystemPorts:
    """The input vectors one subsystem channel consumes."""

    haddr: object
    hwrite: object
    htrans: object
    hwdata: object
    mpu_cfg: object
    scrub_en: object
    bist_run: object
    bist_selftest: object
    err_inject: object
    rst: object

    @classmethod
    def declare(cls, m: Module, cfg: SubsystemConfig
                ) -> "SubsystemPorts":
        return cls(
            haddr=m.input("haddr", cfg.addr_bits),
            hwrite=m.input("hwrite"),
            htrans=m.input("htrans"),
            hwdata=m.input("hwdata", cfg.data_bits),
            mpu_cfg=m.input("mpu_cfg", cfg.mpu_pages),
            scrub_en=m.input("scrub_en"),
            bist_run=m.input("bist_run"),
            bist_selftest=m.input("bist_selftest"),
            err_inject=m.input("err_inject", cfg.word_bits),
            rst=m.input("rst"))


def build_subsystem(cfg: SubsystemConfig) -> Circuit:
    """Elaborate the memory sub-system into a gate-level circuit."""
    m = Module(cfg.name)
    ports = SubsystemPorts.declare(m, cfg)
    outputs = elaborate_channel(m, cfg, ports)
    for name, vec in outputs.items():
        m.output(name, vec)
    return m.build()


def elaborate_channel(m: Module, cfg: SubsystemConfig,
                      ports: SubsystemPorts) -> dict:
    """One subsystem instance; returns {output name: Vec}.

    Usable under an enclosing :meth:`Module.scope` — the dual-channel
    (HFT = 1) architecture instantiates this twice.
    """
    haddr = ports.haddr
    hwrite = ports.hwrite
    htrans = ports.htrans
    hwdata = ports.hwdata
    mpu_cfg = ports.mpu_cfg
    scrub_en = ports.scrub_en
    bist_run = ports.bist_run
    bist_selftest = ports.bist_selftest
    err_inject = ports.err_inject
    rst = ports.rst

    # ---- MCE: request decode + MPU -------------------------------------
    mce = build_mce(m, cfg, haddr, hwrite, htrans, hwdata, mpu_cfg)

    # ---- early declarations needed across blocks -----------------------
    with m.scope("fmem/wbuf"):
        wbuf_valid = m.declare_reg("valid", 1, rst=rst)
    scrub = declare_scrubber(m, cfg, rst)

    # ---- memory controller: BIST ---------------------------------------
    bist = build_bist(m, cfg, bist_run, rst, selftest=bist_selftest)

    # ---- scrub port requests (combinational, from declared state) ------
    scrub_sig = scrub_requests(m, cfg, scrub, scrub_en, htrans,
                               wbuf_valid, bist.active)

    # ---- write path: coder + write buffer -------------------------------
    coder_data = m.mux(scrub_sig.write_now, scrub.data, hwdata)
    coder_addr = m.mux(scrub_sig.write_now, scrub.cur_addr, haddr)
    encoding_now = mce.eff_write | scrub_sig.write_now
    coder = build_coder(m, cfg, coder_data, coder_addr, encoding_now)
    wbuf = build_write_buffer(m, cfg, coder_data, coder.check,
                              coder_addr, capture=encoding_now,
                              drain_gate=~bist.active,
                              valid_q=wbuf_valid, rst=rst,
                              err_inject=err_inject)

    # ---- port arbitration + memory array --------------------------------
    port = build_port_mux(m, cfg, bist, wbuf_valid, wbuf.addr, wbuf.word,
                          mce.read_req, haddr, scrub_sig.read_req,
                          scrub_sig.read_addr)
    with m.scope("memarray"):
        rdata = m.memory("array", cfg.depth, cfg.word_bits, port.addr,
                         port.wdata, port.we)
    finish_bist(m, bist, rdata)

    # ---- latch pipeline --------------------------------------------------
    # The address used by the decoder's syndrome check is latched from
    # the *bus side* (requested address), independent of the array
    # address lines — a stuck line between port mux and array therefore
    # fetches a word whose stored address signature disagrees with the
    # requested one (detectable when the address is in the ECC).
    check_addr = m.mux(mce.read_req, haddr, scrub_sig.read_addr)
    lp = build_latch_pipeline(m, cfg, check_addr, port.cpu_read_grant,
                              port.scrub_read_grant, rst)

    # ---- decoder ----------------------------------------------------------
    read_valid = lp.rv2 | lp.sv2
    dec = build_decoder(m, cfg, rdata, lp.addr_d1, lp.addr_d2, read_valid)

    # ---- scrub FSM closure --------------------------------------------------
    scrub_par_alarm = connect_scrubber(m, cfg, scrub, scrub_sig, dec,
                                       lp.sv2, lp.rv2, lp.addr_d2)

    # ---- outputs -------------------------------------------------------------
    # hrdata is qualified by rvalid: the bus master only samples read
    # data in the valid cycle, so pipeline contents in other cycles are
    # not observable failures (a spurious rvalid, however, exposes
    # whatever garbage is in flight — which is the dangerous case).
    outputs = {
        "hrdata": dec.data_out & lp.rv2.repeat(cfg.data_bits),
        "rvalid": lp.rv2,
        "alarm_ce": dec.single & read_valid,
        "alarm_ue": dec.double & read_valid,
        "alarm_mpu": mce.mpu_violation,
    }
    if cfg.with_bist:
        outputs["bist_done"] = bist.done
        outputs["alarm_bist"] = bist.fail
    if cfg.with_scrubber:
        outputs["scrub_busy"] = scrub_sig.busy
        outputs["scrub_fix"] = scrub_sig.fix_pulse
    if cfg.coder_checker:
        outputs["alarm_coder"] = coder.alarm
    if cfg.write_buffer_parity:
        outputs["alarm_wbuf"] = wbuf.alarm_parity
    if cfg.redundant_pipe_checker:
        outputs["alarm_pipe"] = dec.alarm_pipe
    if cfg.scrub_parity:
        outputs["alarm_scrub_par"] = scrub_par_alarm
    if cfg.distributed_syndrome:
        outputs["alarm_synd_data"] = dec.alarm_synd_data
        outputs["alarm_synd_check"] = dec.alarm_synd_check
        outputs["alarm_synd_addr"] = dec.alarm_synd_addr
    return outputs


class MemorySubsystem:
    """The built design plus transaction and analysis helpers."""

    def __init__(self, cfg: SubsystemConfig):
        self.cfg = cfg
        self.circuit = build_subsystem(cfg)
        self.code = cfg.code

    # ------------------------------------------------------------------
    # transaction helpers (one dict = one cycle of inputs)
    # ------------------------------------------------------------------
    def idle(self, scrub_en: int = 0, mpu: int | None = None,
             bist_run: int = 0, rst: int = 0, err_inject: int = 0,
             bist_selftest: int = 0) -> dict[str, int]:
        if mpu is None:
            mpu = (1 << self.cfg.mpu_pages) - 1
        return {"haddr": 0, "hwrite": 0, "htrans": 0, "hwdata": 0,
                "mpu_cfg": mpu, "scrub_en": scrub_en,
                "bist_run": bist_run, "rst": rst,
                "err_inject": err_inject,
                "bist_selftest": bist_selftest}

    def write(self, addr: int, data: int, **kw) -> dict[str, int]:
        op = self.idle(**kw)
        op.update({"haddr": addr, "hwrite": 1, "htrans": 1,
                   "hwdata": data})
        return op

    def read(self, addr: int, **kw) -> dict[str, int]:
        op = self.idle(**kw)
        op.update({"haddr": addr, "hwrite": 0, "htrans": 1})
        return op

    def reset_op(self, **kw) -> dict[str, int]:
        return self.idle(rst=1, **kw)

    # ------------------------------------------------------------------
    def encode_word(self, data: int, addr: int = 0) -> int:
        """The {check, data} memory word the coder would store."""
        if self.cfg.address_in_ecc:
            check = self.code.encode(data, addr)
        else:
            check = self.code.encode(data)
        return (check << self.cfg.data_bits) | data

    def preload(self, sim: Simulator, words: dict[int, int]) -> None:
        """Load encoded words into the array (address -> data)."""
        image = [self.encode_word(0, a) for a in range(self.cfg.depth)]
        for addr, data in words.items():
            image[addr] = self.encode_word(data, addr)
        sim.load_mem("memarray/array", image)

    def simulator(self, machines: int = 1,
                  collect_toggles: bool = False) -> Simulator:
        sim = Simulator(self.circuit, machines=machines,
                        collect_toggles=collect_toggles)
        # background-friendly default: array holds valid codewords
        self.preload(sim, {})
        return sim

    def read_strobes(self) -> dict[str, str]:
        """Memory-name -> read-strobe net, for the operational profiler."""
        return {"memarray/array": "memctrl/port/read_any"}

    def alarm_outputs(self) -> list[str]:
        return [name for name in self.circuit.outputs
                if name.startswith("alarm_")]

    def functional_outputs(self) -> list[str]:
        return [name for name in self.circuit.outputs
                if not name.startswith("alarm_")
                and name not in ("scrub_busy", "scrub_fix", "bist_done")]

    # ------------------------------------------------------------------
    # analysis defaults
    # ------------------------------------------------------------------
    def extraction_config(self) -> ExtractionConfig:
        return ExtractionConfig(
            register_slice_bits=4,
            critical_fanout=16,
            subblock_depth=2,
            memory_words_per_zone=max(1, self.cfg.depth // 32))

    def extract_zones(self, config: ExtractionConfig | None = None
                      ) -> ZoneSet:
        return extract_zones(self.circuit,
                             config or self.extraction_config())

    def diagnostic_plan(self) -> DiagnosticPlan:
        return make_diagnostic_plan(self.cfg)

    def worksheet(self, zone_set: ZoneSet | None = None,
                  fit_model: FitModel = DEFAULT_FIT_MODEL
                  ) -> FmeaWorksheet:
        zone_set = zone_set or self.extract_zones()
        return build_worksheet(zone_set, plan=self.diagnostic_plan(),
                               fit_model=fit_model, name=self.cfg.name)


class _PrefixedPlan(DiagnosticPlan):
    """DiagnosticPlan whose patterns are rebased under a scope prefix."""

    def __init__(self, prefix: str, name: str = "plan"):
        super().__init__(name=name)
        self._prefix = prefix

    def _rebase(self, pattern: str) -> str:
        if not self._prefix:
            return pattern
        # port-zone patterns keep their names (ports stay at the top)
        if pattern.startswith(("po:", "pi:")):
            return pattern
        if pattern.startswith("critical:"):
            return "critical:" + self._prefix + pattern[len("critical:"):]
        return self._prefix + pattern

    def cover(self, pattern, *args, **kw):
        return super().cover(self._rebase(pattern), *args, **kw)

    def set_factors(self, pattern, *args, **kw):
        return super().set_factors(self._rebase(pattern), *args, **kw)


def make_diagnostic_plan(cfg: SubsystemConfig,
                         prefix: str = "") -> DiagnosticPlan:
    """The DDF claims of the diagnostic architecture (§4).

    Claims follow the structure: what a zone's failures can be detected
    by, with values bounded by the IEC Annex A maxima.  The baseline
    plan only carries the SEC-DED claim on the array and the always-on
    MPU/BIST alarms; the improved plan adds the claims created by each
    §6 counter-measure.

    ``prefix`` rebases every zone pattern, so the same plan applies to
    a channel instantiated under a scope (the dual-channel subsystem).
    """
    plan = _PrefixedPlan(prefix, name=f"{cfg.name}-plan")

    # The array itself: SEC-DED is a 'high' (99 %) technique for data
    # errors; addressing errors are only covered when the address is
    # folded into the code.
    plan.cover("memarray/*", "ram_ecc_hamming", 0.99,
               modes=("dc_fault", "soft_error", "dynamic_crossover"))
    if cfg.address_in_ecc:
        plan.cover("memarray/*", "ram_ecc_hamming", 0.99,
                   modes=("addressing",))
    if cfg.with_bist:
        # start-up march/checkerboard: permanent faults only, low DC
        plan.cover("memarray/*", "ram_test_checkerboard", 0.60,
                   persistence="permanent")

    # Decoder stage A and the syndrome part of the pipe are
    # self-checking by construction (a corrupted syndrome mis-corrects
    # but raises alarm_ce): medium credit in both designs.
    plan.cover("fmem/decoder/pipe_synd*", "cpu_coded_processing", 0.90)
    plan.cover("fmem/decoder/stage_a*", "cpu_coded_processing", 0.75)

    if cfg.coder_checker:
        plan.cover("fmem/coder*", "cpu_hw_redundancy", 0.90)
    if cfg.redundant_pipe_checker:
        # the double-redundant post-pipe checker covers the data field
        # of the pipeline register and the correction network; the
        # piped syndrome itself is directly compared against the
        # recomputed one ("stale" check), so its corruption is detected
        plan.cover("fmem/decoder/pipe_data*", "cpu_hw_redundancy", 0.99)
        plan.cover("fmem/decoder/pipe_check*", "cpu_hw_redundancy", 0.99)
        plan.cover("fmem/decoder/pipe_synd*", "cpu_hw_redundancy", 0.99)
        plan.cover("fmem/decoder/stage_b*", "cpu_hw_redundancy", 0.95)
        plan.cover("fmem/decoder/post_check*", "cpu_hw_redundancy", 0.90)
        # a corrupted read-valid strobe exposes stale pipe contents —
        # whose address signature disagrees with the requested address,
        # so the post-pipe checks flag it
        plan.cover("memctrl/latch/rv*", "cpu_hw_redundancy", 0.85)
        plan.cover("memctrl/latch/sv*", "cpu_hw_redundancy", 0.85)
    if cfg.distributed_syndrome:
        plan.cover("fmem/decoder/synd_class*", "cpu_hw_redundancy", 0.85)
        plan.cover("po:hrdata", "io_code_protection", 0.90)
    if cfg.redundant_pipe_checker:
        # with the correction path itself verified by the redundant
        # checkers, single-bit corruption of the buffered word is
        # dependably corrected/flagged by the decoder at read-back —
        # the baseline gets no such credit because its decode logic is
        # unchecked (exactly §6's argument for the improvements)
        plan.cover("fmem/wbuf/data*", "ram_ecc_hamming", 0.90)
        plan.cover("fmem/wbuf/check*", "ram_ecc_hamming", 0.90)
        plan.cover("fmem/decoder/stage_a*", "cpu_hw_redundancy", 0.95)
        plan.cover("critical:*", "cpu_hw_redundancy", 0.85)
        plan.cover("fmem/wbuf/parity*", "cpu_hw_redundancy", 0.85)
        plan.cover("fmem/wbuf/err_mask*", "cpu_hw_redundancy", 0.80)
    if cfg.scrub_parity:
        plan.cover("fmem/scrub/data*", "bus_parity", 0.60)
        plan.cover("fmem/scrub/cur_addr*", "bus_parity", 0.60)
        plan.cover("fmem/scrub/pend_addr*", "bus_parity", 0.60)
    if cfg.write_buffer_parity:
        plan.cover("fmem/wbuf/*", "bus_parity", 0.60)
        plan.cover("fmem/wbuf/*", "bus_multibit_redundancy", 0.75)
    if cfg.address_in_ecc:
        # address latching registers are checked end-to-end by the
        # address signature in the syndrome
        plan.cover("memctrl/latch/addr_*", "bus_multibit_redundancy",
                   0.90)
        plan.cover("fmem/wbuf/addr*", "bus_multibit_redundancy", 0.90)
        plan.cover("critical:*", "bus_multibit_redundancy", 0.75)
    if cfg.sw_startup_tests:
        # "some SW start-up tests were identified for the memory
        # controller parts not covered by the memory protection IP"
        plan.cover("memctrl/*", "cpu_self_test_walking", 0.85,
                   persistence="permanent")
        plan.cover("mce/*", "cpu_self_test_walking", 0.85,
                   persistence="permanent")
        plan.cover("fmem/scrub/*", "cpu_self_test_walking", 0.85,
                   persistence="permanent")

    # BIST logic is exercised only at start-up (F4).  The scrub engine's
    # holding registers carry live data only during the few-cycle repair
    # window (lifetime ζ of a couple of cycles between capture and
    # write-back): their transient exposure is minimal — the paper's
    # frequency-class / lifetime mechanism exactly.
    plan.set_factors("memctrl/bist/*", frequency=FrequencyClass.F4)
    plan.set_factors("fmem/scrub/*", frequency=FrequencyClass.F4,
                     lifetime_cycles=3)
    # The write buffer holds live data for exactly one cycle (ζ = 1):
    # an SEU is dangerous only if it lands in that cycle, while hard
    # faults remain fully exposed.
    plan.set_factors("fmem/wbuf/*", lifetime_cycles=1,
                     transient_factors=SDFactors(architectural=0.90))
    # The MPU configuration register is re-loaded from the config port
    # every cycle: a bit flip survives a single cycle, so most of its
    # raw failures are architecturally safe.
    plan.set_factors("mce/mpu_cfg_reg",
                     factors=SDFactors(architectural=0.85))
    # alarm outputs: a failed alarm line is mostly 'safe' (false alarm)
    # but can mask detection — keep default factors elsewhere.
    plan.set_factors("po:alarm_*",
                     factors=SDFactors(architectural=0.70))
    return plan
