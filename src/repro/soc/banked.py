"""Multi-bank memory sub-system — the parametric scale knob.

The paper's FMEA covers a sub-system with ~170 sensible zones; one
fmem channel extracts ~90-140 depending on geometry.  This module
banks N channels behind one shared bus: the top address bits select a
bank, each bank is a complete channel (MCE + F-MEM + memory controller
+ array) with its own protection flags, its own alarms and its own
read-data lane observed by the safety island.

Two properties matter for design-space exploration:

* **independent tuning** — every bank carries its own
  :class:`~repro.soc.config.SubsystemConfig`, so a mitigation
  transform applies per bank (per group of zones), like the paper's
  per-IP decisions;
* **structural locality** — bank logic only fans out to that bank's
  outputs, and only fans in from the shared bus.  A transform applied
  to bank *k* therefore changes nothing in any other bank's support
  cones, preloaded state or reachable observation points — the
  content-addressed campaign store serves every untouched bank warm.
"""

from __future__ import annotations

from dataclasses import replace

from ..fmea.builder import DiagnosticPlan, build_worksheet
from ..fmea.fit import DEFAULT_FIT_MODEL, FitModel
from ..fmea.worksheet import FmeaWorksheet
from ..hdl.builder import Module
from ..hdl.netlist import Circuit
from ..hdl.simulator import Simulator
from ..zones.extractor import ExtractionConfig, ZoneSet, extract_zones
from .config import BankedConfig, SubsystemConfig
from .subsystem import (
    MemorySubsystem,
    SubsystemPorts,
    elaborate_channel,
    make_diagnostic_plan,
)


def bank_scope(bank: int) -> str:
    return f"bank{bank}"


def build_banked(bcfg: BankedConfig) -> Circuit:
    """Elaborate the banked sub-system into one gate-level circuit."""
    m = Module(bcfg.name)
    haddr = m.input("haddr", bcfg.addr_bits)
    hwrite = m.input("hwrite")
    htrans = m.input("htrans")
    hwdata = m.input("hwdata", bcfg.data_bits)
    mpu_cfg = m.input("mpu_cfg", bcfg.mpu_pages)
    scrub_en = m.input("scrub_en")
    bist_run = m.input("bist_run")
    bist_selftest = m.input("bist_selftest")
    # the test port is sized for the widest ECC layout (see
    # BankedConfig.word_bits) so its width never changes under a
    # per-bank flag flip; narrower banks consume a slice
    err_inject = m.input("err_inject", bcfg.word_bits)
    rst = m.input("rst")

    local = haddr[:bcfg.bank_addr_bits]
    sel_bits = haddr[bcfg.bank_addr_bits:]
    for k, cfg in enumerate(bcfg.banks):
        with m.scope(bank_scope(k)):
            if bcfg.bank_bits:
                with m.scope("busdec"):
                    sel = sel_bits.eq(m.const(k, bcfg.bank_bits))
                    trans_k = (htrans & sel).named("trans")
            else:
                trans_k = htrans
            ports = SubsystemPorts(
                haddr=local, hwrite=hwrite, htrans=trans_k,
                hwdata=hwdata, mpu_cfg=mpu_cfg, scrub_en=scrub_en,
                bist_run=bist_run, bist_selftest=bist_selftest,
                err_inject=err_inject[:cfg.word_bits], rst=rst)
            outs = elaborate_channel(m, cfg, ports)
        for name, vec in outs.items():
            m.output(f"{bank_scope(k)}_{name}", vec)
    return m.build()


def make_banked_plan(bcfg: BankedConfig) -> DiagnosticPlan:
    """Per-bank diagnostic plans rebased under their scopes.

    Logic patterns get the ``bankN/`` scope prefix (the
    :class:`~repro.soc.subsystem._PrefixedPlan` mechanism); primary-
    output patterns are rewritten to the banked port names
    (``po:hrdata`` → ``po:bankN_hrdata``) because output ports live at
    the top level under per-bank names.
    """
    plan = DiagnosticPlan(name=f"{bcfg.name}-plan")
    for k, cfg in enumerate(bcfg.banks):
        prefix = f"{bank_scope(k)}_"
        sub = make_diagnostic_plan(cfg, prefix=f"{bank_scope(k)}/")

        def rebase_ports(rule):
            if rule.pattern.startswith("po:"):
                return replace(rule,
                               pattern="po:" + prefix
                               + rule.pattern[len("po:"):])
            return rule

        plan.coverage.extend(rebase_ports(r) for r in sub.coverage)
        plan.factors.extend(rebase_ports(r) for r in sub.factors)
    return plan


class BankedMemorySubsystem:
    """The banked design plus transaction and analysis helpers.

    Mirrors :class:`~repro.soc.subsystem.MemorySubsystem`: the ``cfg``
    facade exposes bus-level geometry (``depth`` is the total address
    space, ``addr_bits`` the bus address width), so every workload
    generator drives the banked design unchanged.
    """

    def __init__(self, cfg: BankedConfig):
        self.cfg = cfg
        self.circuit = build_banked(cfg)

    # transaction helpers: identical input dictionaries, wider haddr
    idle = MemorySubsystem.idle
    write = MemorySubsystem.write
    read = MemorySubsystem.read
    reset_op = MemorySubsystem.reset_op

    # ------------------------------------------------------------------
    def split_addr(self, addr: int) -> tuple[int, int]:
        """Bus address -> (bank index, bank-local address)."""
        return (addr >> self.cfg.bank_addr_bits,
                addr & ((1 << self.cfg.bank_addr_bits) - 1))

    def encode_word(self, data: int, addr: int = 0) -> int:
        """The stored word for a *bus* address, per that bank's ECC."""
        bank, local = self.split_addr(addr)
        cfg = self.cfg.banks[bank]
        if cfg.address_in_ecc:
            check = cfg.code.encode(data, local)
        else:
            check = cfg.code.encode(data)
        return (check << cfg.data_bits) | data

    def preload(self, sim: Simulator, words: dict[int, int]) -> None:
        """Load encoded words into the banks (bus address -> data)."""
        bank_depth = 1 << self.cfg.bank_addr_bits
        images = {}
        for k in range(self.cfg.n_banks):
            base = k << self.cfg.bank_addr_bits
            images[k] = [self.encode_word(0, base + a)
                         for a in range(bank_depth)]
        for addr, data in words.items():
            bank, local = self.split_addr(addr)
            images[bank][local] = self.encode_word(data, addr)
        for k, image in images.items():
            sim.load_mem(f"{bank_scope(k)}/memarray/array", image)

    def simulator(self, machines: int = 1,
                  collect_toggles: bool = False) -> Simulator:
        sim = Simulator(self.circuit, machines=machines,
                        collect_toggles=collect_toggles)
        self.preload(sim, {})
        return sim

    def read_strobes(self) -> dict[str, str]:
        return {f"{bank_scope(k)}/memarray/array":
                f"{bank_scope(k)}/memctrl/port/read_any"
                for k in range(self.cfg.n_banks)}

    def alarm_outputs(self) -> list[str]:
        return [name for name in self.circuit.outputs
                if "alarm_" in name]

    def functional_outputs(self) -> list[str]:
        skip = ("scrub_busy", "scrub_fix", "bist_done")
        out = []
        for name in self.circuit.outputs:
            tail = name.split("_", 1)[1] if "_" in name else name
            if "alarm_" not in name and tail not in skip:
                out.append(name)
        return out

    # ------------------------------------------------------------------
    # analysis defaults
    # ------------------------------------------------------------------
    def extraction_config(self) -> ExtractionConfig:
        bank_depth = 1 << self.cfg.bank_addr_bits
        return ExtractionConfig(
            register_slice_bits=4,
            critical_fanout=16,
            # one level deeper than the single channel: sub-blocks are
            # bankN/fmem/wbuf, not bankN/fmem
            subblock_depth=3,
            memory_words_per_zone=max(1, bank_depth // 32))

    def extract_zones(self, config: ExtractionConfig | None = None
                      ) -> ZoneSet:
        return extract_zones(self.circuit,
                             config or self.extraction_config())

    def diagnostic_plan(self) -> DiagnosticPlan:
        return make_banked_plan(self.cfg)

    def worksheet(self, zone_set: ZoneSet | None = None,
                  fit_model: FitModel = DEFAULT_FIT_MODEL
                  ) -> FmeaWorksheet:
        zone_set = zone_set or self.extract_zones()
        return build_worksheet(zone_set, plan=self.diagnostic_plan(),
                               fit_model=fit_model, name=self.cfg.name)


def bank_of_zone(zone_name: str) -> int | None:
    """The bank a zone name belongs to, or ``None`` for shared logic.

    Handles every extracted shape: ``bank0/fmem/...`` register and
    memory slices, ``block:bank0/...`` sub-blocks,
    ``critical:bank0/...`` nets, and ``po:bank0_*`` port zones (input
    ports are shared — ``None``).
    """
    name = zone_name
    for head in ("block:", "critical:"):
        if name.startswith(head):
            name = name[len(head):]
            break
    if name.startswith("po:"):
        name = name[len("po:"):]
        if name.startswith("bank") and "_" in name:
            digits = name[len("bank"):name.index("_")]
            return int(digits) if digits.isdigit() else None
        return None
    if name.startswith("bank") and "/" in name:
        digits = name[len("bank"):name.index("/")]
        return int(digits) if digits.isdigit() else None
    return None
