"""Configuration of the §6 memory sub-system.

Two named design points reproduce the paper's experiment:

* **baseline** — SEC-DED with a standard modified-Hamming architecture,
  a write buffer and a pipeline stage in the decoder "to guarantee the
  timing closure" — the first implementation, whose SFF (~95 %) was not
  enough to reach SIL3;
* **improved** — the second implementation: addresses folded into the
  coding, parity bits on the write buffer, an error checker immediately
  after the coder, a double-redundant error checker after the decoder
  pipeline stage (with the no-error bypass), a distributed syndrome
  checking architecture, and SW start-up tests for the memory
  controller — SFF 99.38 %.

Every improvement is an independent flag so the ablation benchmark can
enable them one at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import cached_property

from ..ecc.address import AddressedSecDed
from ..ecc.hamming import SecDedCode


@dataclass(frozen=True)
class SubsystemConfig:
    """Structural and diagnostic-architecture parameters."""

    name: str = "memss"
    data_bits: int = 32
    addr_bits: int = 8
    mpu_pages: int = 4
    # §6 improvements (all False = baseline)
    address_in_ecc: bool = False
    write_buffer_parity: bool = False
    coder_checker: bool = False
    redundant_pipe_checker: bool = False
    distributed_syndrome: bool = False
    sw_startup_tests: bool = False
    scrub_parity: bool = False  # parity on the repair-engine registers
    # substrate features present in both variants
    with_scrubber: bool = True
    with_bist: bool = True

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        return 1 << self.addr_bits

    @property
    def page_bits(self) -> int:
        return max(1, (self.mpu_pages - 1).bit_length())

    @cached_property
    def code(self):
        """The ECC in use: address-augmented for the improved design."""
        if self.address_in_ecc:
            return AddressedSecDed(self.data_bits, self.addr_bits)
        return SecDedCode(self.data_bits)

    @property
    def check_bits(self) -> int:
        return self.code.r

    @property
    def word_bits(self) -> int:
        """Memory word width: data plus check bits."""
        return self.data_bits + self.check_bits

    @property
    def is_improved(self) -> bool:
        return (self.address_in_ecc and self.write_buffer_parity
                and self.coder_checker and self.redundant_pipe_checker
                and self.distributed_syndrome)

    # ------------------------------------------------------------------
    @classmethod
    def baseline(cls, **overrides) -> "SubsystemConfig":
        return cls(name=overrides.pop("name", "memss_baseline"),
                   **overrides)

    @classmethod
    def improved(cls, **overrides) -> "SubsystemConfig":
        return cls(name=overrides.pop("name", "memss_improved"),
                   address_in_ecc=True, write_buffer_parity=True,
                   coder_checker=True, redundant_pipe_checker=True,
                   distributed_syndrome=True, sw_startup_tests=True,
                   scrub_parity=True, **overrides)

    @classmethod
    def small_baseline(cls, **overrides) -> "SubsystemConfig":
        """A reduced configuration for fast unit tests."""
        name = overrides.pop("name", "memss_small_baseline")
        return cls.baseline(name=name, data_bits=8, addr_bits=4,
                            **overrides)

    @classmethod
    def small_improved(cls, **overrides) -> "SubsystemConfig":
        name = overrides.pop("name", "memss_small_improved")
        return cls.improved(name=name, data_bits=8, addr_bits=4,
                            **overrides)

    def with_flags(self, **flags) -> "SubsystemConfig":
        """A copy with selected feature flags changed (for ablations)."""
        return replace(self, **flags)

    def to_dict(self) -> dict:
        from dataclasses import asdict
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SubsystemConfig":
        from dataclasses import fields as _fields
        known = {f.name for f in _fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


#: the §6 improvement flags, in the order the paper introduces them
IMPROVEMENT_FLAGS = (
    "address_in_ecc",
    "write_buffer_parity",
    "coder_checker",
    "redundant_pipe_checker",
    "distributed_syndrome",
    "sw_startup_tests",
    "scrub_parity",
)


@dataclass(frozen=True)
class BankedConfig:
    """A multi-bank memory sub-system: one channel per bank behind a
    shared bus, each bank individually configurable.

    This is the parametric scale knob of the benchmark design: the
    paper's sub-system has ~170 sensible zones, a single fmem channel
    ~90-140 depending on geometry — banking multiplies the zone count
    while keeping each bank's protection architecture independently
    tunable, which is exactly the shape design-space exploration
    needs (a mitigation applied to one bank leaves every other bank's
    support cones untouched, so the campaign store serves them warm).
    """

    name: str = "memss_banked"
    banks: tuple[SubsystemConfig, ...] = ()

    def __post_init__(self):
        if not self.banks:
            raise ValueError("BankedConfig needs at least one bank")
        first = self.banks[0]
        for cfg in self.banks[1:]:
            if (cfg.data_bits, cfg.addr_bits, cfg.mpu_pages) != \
                    (first.data_bits, first.addr_bits,
                     first.mpu_pages):
                raise ValueError(
                    "all banks must share data_bits/addr_bits/"
                    "mpu_pages (protection flags may differ)")

    # ------------------------------------------------------------------
    # facade geometry: what workloads and transaction helpers consume
    # ------------------------------------------------------------------
    @property
    def n_banks(self) -> int:
        return len(self.banks)

    @property
    def bank_bits(self) -> int:
        return max(0, (self.n_banks - 1).bit_length())

    @property
    def bank_addr_bits(self) -> int:
        return self.banks[0].addr_bits

    @property
    def addr_bits(self) -> int:
        """Bus address width: bank-local address plus bank select."""
        return self.bank_addr_bits + self.bank_bits

    @property
    def depth(self) -> int:
        """Addressable words across all banks (bus view)."""
        return self.n_banks << self.bank_addr_bits

    @property
    def data_bits(self) -> int:
        return self.banks[0].data_bits

    @property
    def mpu_pages(self) -> int:
        return self.banks[0].mpu_pages

    @property
    def page_bits(self) -> int:
        return self.banks[0].page_bits

    @cached_property
    def word_bits(self) -> int:
        """Width of the shared ``err_inject`` test port.

        Deliberately the *maximum* over both ECC layouts — not the max
        over the current banks — so the port (and therefore every
        workload's stimuli) stays bit-identical when a bank's ECC flag
        toggles; cross-variant store reuse depends on stable stimuli.
        """
        base = self.banks[0]
        return base.data_bits + max(
            SecDedCode(base.data_bits).r,
            AddressedSecDed(base.data_bits, base.addr_bits).r)

    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, cfg: SubsystemConfig, banks: int,
                name: str | None = None) -> "BankedConfig":
        """``banks`` identical channels of one base configuration."""
        return cls(name=name or f"{cfg.name}_x{banks}",
                   banks=tuple(replace(cfg, name=f"{cfg.name}_b{i}")
                               for i in range(banks)))

    @classmethod
    def scaled_baseline(cls, banks: int = 2, **overrides
                        ) -> "BankedConfig":
        """The scaled benchmark design: paper-geometry baseline banks
        (two full-size banks ≈ 280 sensible zones, the paper's ~170
        scale and beyond)."""
        return cls.uniform(SubsystemConfig.baseline(**overrides), banks)

    @classmethod
    def scaled_improved(cls, banks: int = 2, **overrides
                        ) -> "BankedConfig":
        return cls.uniform(SubsystemConfig.improved(**overrides), banks)

    def with_bank_flags(self, bank: int, **flags) -> "BankedConfig":
        """A copy with one bank's feature flags changed."""
        banks = list(self.banks)
        banks[bank] = banks[bank].with_flags(**flags)
        return replace(self, banks=tuple(banks))

    def with_flags(self, **flags) -> "BankedConfig":
        """A copy with every bank's feature flags changed."""
        return replace(self, banks=tuple(b.with_flags(**flags)
                                         for b in self.banks))

    @property
    def is_improved(self) -> bool:
        return all(b.is_improved for b in self.banks)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {"name": self.name,
                "banks": [b.to_dict() for b in self.banks]}

    @classmethod
    def from_dict(cls, data: dict) -> "BankedConfig":
        return cls(name=data["name"],
                   banks=tuple(SubsystemConfig.from_dict(b)
                               for b in data["banks"]))
