"""Configuration of the §6 memory sub-system.

Two named design points reproduce the paper's experiment:

* **baseline** — SEC-DED with a standard modified-Hamming architecture,
  a write buffer and a pipeline stage in the decoder "to guarantee the
  timing closure" — the first implementation, whose SFF (~95 %) was not
  enough to reach SIL3;
* **improved** — the second implementation: addresses folded into the
  coding, parity bits on the write buffer, an error checker immediately
  after the coder, a double-redundant error checker after the decoder
  pipeline stage (with the no-error bypass), a distributed syndrome
  checking architecture, and SW start-up tests for the memory
  controller — SFF 99.38 %.

Every improvement is an independent flag so the ablation benchmark can
enable them one at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import cached_property

from ..ecc.address import AddressedSecDed
from ..ecc.hamming import SecDedCode


@dataclass(frozen=True)
class SubsystemConfig:
    """Structural and diagnostic-architecture parameters."""

    name: str = "memss"
    data_bits: int = 32
    addr_bits: int = 8
    mpu_pages: int = 4
    # §6 improvements (all False = baseline)
    address_in_ecc: bool = False
    write_buffer_parity: bool = False
    coder_checker: bool = False
    redundant_pipe_checker: bool = False
    distributed_syndrome: bool = False
    sw_startup_tests: bool = False
    scrub_parity: bool = False  # parity on the repair-engine registers
    # substrate features present in both variants
    with_scrubber: bool = True
    with_bist: bool = True

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        return 1 << self.addr_bits

    @property
    def page_bits(self) -> int:
        return max(1, (self.mpu_pages - 1).bit_length())

    @cached_property
    def code(self):
        """The ECC in use: address-augmented for the improved design."""
        if self.address_in_ecc:
            return AddressedSecDed(self.data_bits, self.addr_bits)
        return SecDedCode(self.data_bits)

    @property
    def check_bits(self) -> int:
        return self.code.r

    @property
    def word_bits(self) -> int:
        """Memory word width: data plus check bits."""
        return self.data_bits + self.check_bits

    @property
    def is_improved(self) -> bool:
        return (self.address_in_ecc and self.write_buffer_parity
                and self.coder_checker and self.redundant_pipe_checker
                and self.distributed_syndrome)

    # ------------------------------------------------------------------
    @classmethod
    def baseline(cls, **overrides) -> "SubsystemConfig":
        return cls(name=overrides.pop("name", "memss_baseline"),
                   **overrides)

    @classmethod
    def improved(cls, **overrides) -> "SubsystemConfig":
        return cls(name=overrides.pop("name", "memss_improved"),
                   address_in_ecc=True, write_buffer_parity=True,
                   coder_checker=True, redundant_pipe_checker=True,
                   distributed_syndrome=True, sw_startup_tests=True,
                   scrub_parity=True, **overrides)

    @classmethod
    def small_baseline(cls, **overrides) -> "SubsystemConfig":
        """A reduced configuration for fast unit tests."""
        name = overrides.pop("name", "memss_small_baseline")
        return cls.baseline(name=name, data_bits=8, addr_bits=4,
                            **overrides)

    @classmethod
    def small_improved(cls, **overrides) -> "SubsystemConfig":
        name = overrides.pop("name", "memss_small_improved")
        return cls.improved(name=name, data_bits=8, addr_bits=4,
                            **overrides)

    def with_flags(self, **flags) -> "SubsystemConfig":
        """A copy with selected feature flags changed (for ablations)."""
        return replace(self, **flags)
