"""The §6 case study: a fault-robust memory sub-system (F-MEM + MCE)."""

from .config import BankedConfig, SubsystemConfig
from .subsystem import MemorySubsystem, build_subsystem, \
    make_diagnostic_plan
from .banked import BankedMemorySubsystem, bank_of_zone, build_banked
from .ahb import READ_LATENCY, WRITE_GAP, AhbMaster, ReadResult
from .minicpu import CpuConfig, MiniCpu, assemble, build_minicpu
from .dualchannel import DualChannelSubsystem, build_dual_channel, \
    make_dual_plan
from .workloads import (
    Workload,
    address_decoder_test,
    app_profile,
    error_selftest,
    march_test,
    mpu_probe,
    random_traffic,
    scrub_exercise,
    startup_bist,
    validation_workload,
)

__all__ = [
    "SubsystemConfig", "MemorySubsystem", "build_subsystem",
    "make_diagnostic_plan",
    "BankedConfig", "BankedMemorySubsystem", "bank_of_zone",
    "build_banked",
    "AhbMaster", "ReadResult", "READ_LATENCY", "WRITE_GAP",
    "CpuConfig", "MiniCpu", "assemble", "build_minicpu",
    "DualChannelSubsystem", "build_dual_channel", "make_dual_plan",
    "Workload", "address_decoder_test", "app_profile", "error_selftest",
    "march_test", "mpu_probe",
    "random_traffic", "scrub_exercise", "startup_bist",
    "validation_workload",
]
