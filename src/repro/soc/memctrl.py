"""Memory controller: BIST engine, port arbitration, address latching.

§6 names the "BIST control logic" and "the registers involved in
addresses latching" among the most critical zones of the baseline
design — both live here.  The BIST engine walks the array with a
two-pattern write/read-compare sequence (a start-up test for the parts
"not covered by the memory protection IP"); the port arbiter multiplexes
the single-port array between BIST, the write-buffer drain, CPU reads
and the scrubbing DMA; the latch pipeline carries the read address and
the read-valid strobes to the decoder stage.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hdl.builder import Module, Vec
from ..hdl.library import equals_const, increment
from .config import SubsystemConfig

# BIST FSM state encoding
BIST_IDLE, BIST_W0, BIST_R0, BIST_W1, BIST_R1, BIST_DONE = range(6)


def _pattern(cfg: SubsystemConfig, inverted: bool) -> int:
    pat = 0
    for i in range(0, cfg.word_bits, 2):
        pat |= 1 << i
    mask = (1 << cfg.word_bits) - 1
    return (~pat & mask) if inverted else pat


@dataclass
class BistSignals:
    """The BIST engine's interface to the port arbiter and outputs."""

    active: Vec
    addr: Vec
    we: Vec
    wdata: Vec
    done: Vec
    fail: Vec          # sticky fail latch (q)
    chk_valid: Vec
    exp_vec: Vec
    _fail_q: Vec = None
    _cmp_parts: tuple = ()


def build_bist(m: Module, cfg: SubsystemConfig, bist_run: Vec,
               rst: Vec, selftest: Vec | None = None) -> BistSignals:
    """The BIST FSM; call :func:`finish_bist` once rdata exists.

    ``selftest`` inverts the expected read-back vector, forcing a
    guaranteed miscompare — the engine's own fail-path self-test (the
    alarm and fail latch can be exercised without a real array defect).
    """
    with m.scope("memctrl/bist"):
        state = m.declare_reg("state", 3, rst=rst)
        cnt = m.declare_reg("cnt", cfg.addr_bits, rst=rst)
        chk_valid = m.declare_reg("chk_valid", 1, rst=rst)
        exp_sel = m.declare_reg("exp_sel", 1, rst=rst)
        fail = m.declare_reg("fail", 1, rst=rst)

        in_idle = equals_const(m, state, BIST_IDLE)
        in_w0 = equals_const(m, state, BIST_W0)
        in_r0 = equals_const(m, state, BIST_R0)
        in_w1 = equals_const(m, state, BIST_W1)
        in_r1 = equals_const(m, state, BIST_R1)
        in_done = equals_const(m, state, BIST_DONE)

        at_top = equals_const(m, cnt, cfg.depth - 1)
        writing = in_w0 | in_w1
        reading = in_r0 | in_r1
        active = (~in_idle & ~in_done).named("active")

        # next-state logic
        def advance(cur: int, nxt: int, cond: Vec) -> Vec:
            return cond  # placeholder for readability below

        _ = advance
        nxt = m.const(BIST_IDLE, 3)
        nxt = m.mux(in_idle & bist_run, m.const(BIST_W0, 3), nxt)
        nxt = m.mux(in_w0, m.mux(at_top, m.const(BIST_R0, 3),
                                 m.const(BIST_W0, 3)), nxt)
        nxt = m.mux(in_r0, m.mux(at_top, m.const(BIST_W1, 3),
                                 m.const(BIST_R0, 3)), nxt)
        nxt = m.mux(in_w1, m.mux(at_top, m.const(BIST_R1, 3),
                                 m.const(BIST_W1, 3)), nxt)
        nxt = m.mux(in_r1, m.mux(at_top, m.const(BIST_DONE, 3),
                                 m.const(BIST_R1, 3)), nxt)
        nxt = m.mux(in_done, m.const(BIST_DONE, 3), nxt)
        m.connect_reg(state, nxt)

        inc, _carry = increment(m, cnt)
        cnt_next = m.mux(active & ~at_top, inc,
                         m.const(0, cfg.addr_bits))
        m.connect_reg(cnt, cnt_next)

        m.connect_reg(chk_valid, reading)
        m.connect_reg(exp_sel, in_r1)

        pat0 = m.const(_pattern(cfg, False), cfg.word_bits)
        pat1 = m.const(_pattern(cfg, True), cfg.word_bits)
        wdata = m.mux(in_w1, pat1, pat0)
        exp_vec = m.mux(exp_sel, pat1, pat0)
        if selftest is not None:
            exp_vec = exp_vec ^ selftest.repeat(cfg.word_bits)

    return BistSignals(active=active, addr=cnt, we=writing, wdata=wdata,
                       done=in_done, fail=fail, chk_valid=chk_valid,
                       exp_vec=exp_vec, _fail_q=fail)


def finish_bist(m: Module, bist: BistSignals, rdata: Vec) -> None:
    """Close the BIST compare loop once memory read data exists."""
    with m.scope("memctrl/bist"):
        mismatch = rdata.ne(bist.exp_vec)
        cmp_fail = bist.chk_valid & mismatch
        m.connect_reg(bist._fail_q, bist.fail | cmp_fail)


@dataclass
class PortSignals:
    """Arbitrated single-port memory interface."""

    addr: Vec
    wdata: Vec
    we: Vec
    drain: Vec            # write buffer draining this cycle
    cpu_read_grant: Vec
    scrub_read_grant: Vec


def build_port_mux(m: Module, cfg: SubsystemConfig, bist: BistSignals,
                   wbuf_valid: Vec, wbuf_addr: Vec, wbuf_word: Vec,
                   read_req: Vec, haddr: Vec,
                   scrub_read_req: Vec, scrub_addr: Vec) -> PortSignals:
    """Priority mux onto the array: BIST > drain > CPU read > scrub."""
    with m.scope("memctrl/port"):
        drain = (wbuf_valid & ~bist.active).named("drain")
        cpu_grant = (read_req & ~bist.active & ~drain).named("cpu_grant")
        scrub_grant = (scrub_read_req & ~bist.active & ~drain
                       & ~read_req).named("scrub_grant")

        addr = m.mux(bist.active, bist.addr,
                     m.mux(drain, wbuf_addr,
                           m.mux(read_req, haddr, scrub_addr)))
        wdata = m.mux(bist.active, bist.wdata, wbuf_word)
        we = ((bist.active & bist.we) | drain).named("we")
        # profiler strobe: the array is actively read this cycle
        (cpu_grant | scrub_grant
         | (bist.active & ~bist.we)).named("read_any")
    return PortSignals(addr=addr, wdata=wdata, we=we, drain=drain,
                       cpu_read_grant=cpu_grant,
                       scrub_read_grant=scrub_grant)


@dataclass
class LatchPipeline:
    """Address and read-valid strobes aligned with the decoder stage.

    ``addr_d2``/``rv2``/``sv2`` line up with the decoder pipeline
    register (two cycles after the read was issued on the port).
    """

    addr_d1: Vec
    addr_d2: Vec
    rv1: Vec
    rv2: Vec
    sv1: Vec
    sv2: Vec


def build_latch_pipeline(m: Module, cfg: SubsystemConfig, port_addr: Vec,
                         cpu_grant: Vec, scrub_grant: Vec,
                         rst: Vec) -> LatchPipeline:
    """The address-latching registers of §6's criticality list."""
    with m.scope("memctrl/latch"):
        addr_d1 = m.reg("addr_d1", port_addr)
        addr_d2 = m.reg("addr_d2", addr_d1)
        rv1 = m.reg("rv1", cpu_grant, rst=rst)
        rv2 = m.reg("rv2", rv1, rst=rst)
        sv1 = m.reg("sv1", scrub_grant, rst=rst)
        sv2 = m.reg("sv2", sv1, rst=rst)
    return LatchPipeline(addr_d1=addr_d1, addr_d2=addr_d2,
                         rv1=rv1, rv2=rv2, sv1=sv1, sv2=sv2)
