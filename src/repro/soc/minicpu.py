"""A gate-level accumulator CPU with an optional lock-step checker.

The paper's §2 lists processing-unit failure modes (DC faults on
registers, "wrong coding or wrong execution") and the Annex A
techniques against them — with HW redundancy (lock-step cores with
comparison) assessed as a *high* (99 %) diagnostic-coverage technique.
The companion papers ([8][16][17]: the fault-robust microcontroller /
fRCPU line) build exactly such checked CPUs.

This module provides the processing-unit counterpart of the memory
case study: a small Harvard-architecture accumulator machine built
through the same DSL, so the whole methodology (zones, FMEA, fault
injection) applies unchanged — plus a lock-step variant in which a
shadow core re-executes everything and a comparator raises a sticky
``alarm_lockstep`` on any divergence of the architectural outputs.

ISA (8-bit instructions: ``ooo aaaaa``):

====  ======  ================================
op    name    effect
====  ======  ================================
0     NOP     —
1     LDI i   ACC <- i (5-bit immediate)
2     LD  a   ACC <- DMEM[a]
3     ST  a   DMEM[a] <- ACC
4     ADD a   ACC <- ACC + DMEM[a]
5     XOR a   ACC <- ACC ^ DMEM[a]
6     JNZ a   if ACC != 0: PC <- a
7     OUT     out_port <- ACC, pulse out_valid
====  ======  ================================

Timing: 2 cycles per instruction (FETCH, EXEC); memory-reading
instructions take a third MEM cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hdl.builder import Module, Vec
from ..hdl.library import equals_const, increment, ripple_add
from ..hdl.netlist import Circuit
from ..hdl.simulator import Simulator

OP_NOP, OP_LDI, OP_LD, OP_ST, OP_ADD, OP_XOR, OP_JNZ, OP_OUT = range(8)

_MNEMONICS = {"nop": OP_NOP, "ldi": OP_LDI, "ld": OP_LD, "st": OP_ST,
              "add": OP_ADD, "xor": OP_XOR, "jnz": OP_JNZ,
              "out": OP_OUT}

# FSM states
S_FETCH, S_EXEC, S_MEM = 0, 1, 2


def assemble(program) -> list[int]:
    """Assemble ``[("ldi", 5), ("st", 0), ...]`` into machine words."""
    words = []
    for entry in program:
        if isinstance(entry, int):
            words.append(entry & 0xFF)
            continue
        mnemonic, *operand = entry
        op = _MNEMONICS[mnemonic.lower()]
        arg = operand[0] if operand else 0
        if not 0 <= arg < 32:
            raise ValueError(f"operand out of range: {entry}")
        words.append((op << 5) | arg)
    return words


@dataclass(frozen=True)
class CpuConfig:
    """Structure of the mini CPU."""

    name: str = "minicpu"
    pc_bits: int = 5           # 32-word program memory
    addr_bits: int = 5         # 32-word data memory
    data_bits: int = 8
    lockstep: bool = False     # shadow core + comparator

    @classmethod
    def plain(cls, **kw) -> "CpuConfig":
        return cls(name=kw.pop("name", "minicpu_plain"), **kw)

    @classmethod
    def lockstep_pair(cls, **kw) -> "CpuConfig":
        return cls(name=kw.pop("name", "minicpu_lockstep"),
                   lockstep=True, **kw)


@dataclass
class _CoreSignals:
    """Architectural outputs of one core (compared in lock-step)."""

    pc: Vec
    acc: Vec
    dmem_addr: Vec
    dmem_wdata: Vec
    dmem_we: Vec
    out_reg: Vec
    out_valid: Vec


def _build_core(m: Module, cfg: CpuConfig, scope: str, instr: Vec,
                dmem_rdata: Vec, rst: Vec) -> _CoreSignals:
    """One accumulator core: 3-state FSM plus datapath.

    ``instr`` is the program-memory read port (stable through EXEC and
    MEM since the fetch address only changes when the PC advances);
    ``dmem_rdata`` is the data-memory read port (valid during MEM).
    """
    with m.scope(scope):
        state = m.declare_reg("state", 2, rst=rst)
        pc = m.declare_reg("pc", cfg.pc_bits, rst=rst)
        acc = m.declare_reg("acc", cfg.data_bits, rst=rst)
        out_reg = m.declare_reg("out_reg", cfg.data_bits, rst=rst)
        out_valid = m.declare_reg("out_valid", 1, rst=rst)

        in_fetch = equals_const(m, state, S_FETCH)
        in_exec = equals_const(m, state, S_EXEC)
        in_mem = equals_const(m, state, S_MEM)

        opcode = instr[5:8]
        operand = instr[0:5]
        is_ldi = equals_const(m, opcode, OP_LDI)
        is_st = equals_const(m, opcode, OP_ST)
        is_add = equals_const(m, opcode, OP_ADD)
        is_xor = equals_const(m, opcode, OP_XOR)
        is_jnz = equals_const(m, opcode, OP_JNZ)
        is_out = equals_const(m, opcode, OP_OUT)
        needs_mem = (equals_const(m, opcode, OP_LD) | is_add
                     | is_xor).named("needs_mem")

        # ---- next state --------------------------------------------
        nxt = m.const(S_FETCH, 2)
        nxt = m.mux(in_fetch, m.const(S_EXEC, 2), nxt)
        nxt = m.mux(in_exec,
                    m.mux(needs_mem, m.const(S_MEM, 2),
                          m.const(S_FETCH, 2)), nxt)
        m.connect_reg(state, nxt)

        # ---- program counter ----------------------------------------
        pc_inc, _ = increment(m, pc)
        taken = in_exec & is_jnz & acc.reduce_or()
        pc_next_exec = m.mux(taken, operand, pc_inc)
        done_exec = in_exec & ~needs_mem
        pc_next = pc
        pc_next = m.mux(done_exec, pc_next_exec, pc_next)
        pc_next = m.mux(in_mem, pc_inc, pc_next)
        m.connect_reg(pc, pc_next)

        # ---- accumulator ---------------------------------------------
        imm = operand.zext(cfg.data_bits)
        summed, _carry = ripple_add(m, acc, dmem_rdata)
        xored = acc ^ dmem_rdata
        mem_result = m.mux(is_add, summed,
                           m.mux(is_xor, xored, dmem_rdata))
        acc_next = acc
        acc_next = m.mux(in_exec & is_ldi, imm, acc_next)
        acc_next = m.mux(in_mem, mem_result, acc_next)
        m.connect_reg(acc, acc_next)

        # ---- data-memory interface ------------------------------------
        dmem_we = (in_exec & is_st).named("dmem_we")

        # ---- output port -----------------------------------------------
        do_out = in_exec & is_out
        m.connect_reg(out_reg, m.mux(do_out, acc, out_reg))
        m.connect_reg(out_valid, do_out)

    return _CoreSignals(pc=pc, acc=acc, dmem_addr=operand,
                        dmem_wdata=acc, dmem_we=dmem_we,
                        out_reg=out_reg, out_valid=out_valid)


def build_minicpu(cfg: CpuConfig) -> Circuit:
    """Elaborate the CPU (optionally as a lock-step pair)."""
    m = Module(cfg.name)
    rst = m.input("rst")
    imem_wdata = m.input("imem_wdata", 8)   # program-load port
    imem_waddr = m.input("imem_waddr", cfg.pc_bits)
    imem_we = m.input("imem_we")

    # cores consume the memories' read ports; memories consume the
    # master core's addresses — broken with forward vectors (memory
    # read data is a sequential source, so no combinational loop)
    instr = m.forward("instr", 8)
    dmem_rdata = m.forward("dmem_rdata", cfg.data_bits)

    core_a = _build_core(m, cfg, "core_a", instr, dmem_rdata, rst)
    core_b = _build_core(m, cfg, "core_b", instr, dmem_rdata, rst) \
        if cfg.lockstep else None

    with m.scope("imem"):
        imem_addr = m.mux(imem_we, imem_waddr, core_a.pc)
        rom_out = m.memory("rom", 1 << cfg.pc_bits, 8, imem_addr,
                           imem_wdata, imem_we)
    m.resolve(instr, rom_out)

    with m.scope("dmem"):
        ram_out = m.memory("ram", 1 << cfg.addr_bits, cfg.data_bits,
                           core_a.dmem_addr, core_a.dmem_wdata,
                           core_a.dmem_we)
    m.resolve(dmem_rdata, ram_out)

    # ---- lock-step comparator (sticky alarm) --------------------------
    if core_b is not None:
        with m.scope("lockstep"):
            mismatch = (core_a.pc.ne(core_b.pc)
                        | core_a.acc.ne(core_b.acc)
                        | core_a.dmem_we.ne(core_b.dmem_we)
                        | core_a.dmem_addr.ne(core_b.dmem_addr)
                        | core_a.dmem_wdata.ne(core_b.dmem_wdata)
                        | core_a.out_reg.ne(core_b.out_reg)
                        | core_a.out_valid.ne(core_b.out_valid))
            alarm = m.declare_reg("alarm", 1, rst=rst)
            m.connect_reg(alarm, alarm | mismatch)
        m.output("alarm_lockstep", alarm)

    m.output("pc", core_a.pc)
    m.output("acc", core_a.acc)
    m.output("out_port", core_a.out_reg)
    m.output("out_valid", core_a.out_valid)
    return m.build()


class MiniCpu:
    """Built CPU plus program-load and execution helpers."""

    def __init__(self, cfg: CpuConfig):
        self.cfg = cfg
        self.circuit = build_minicpu(cfg)

    # ------------------------------------------------------------------
    def idle(self, rst: int = 0) -> dict[str, int]:
        return {"rst": rst, "imem_wdata": 0, "imem_waddr": 0,
                "imem_we": 0}

    def simulator(self, program=None, data=None,
                  machines: int = 1) -> Simulator:
        sim = Simulator(self.circuit, machines=machines)
        if program is not None:
            sim.load_mem("imem/rom", assemble(program))
        if data is not None:
            sim.load_mem("dmem/ram", list(data))
        return sim

    def run(self, sim: Simulator, cycles: int) -> list[int]:
        """Reset then run; returns the OUT-port values in order."""
        outputs: list[int] = []
        sim.step(self.idle(rst=1))
        sim.step(self.idle(rst=1))
        for _ in range(cycles):
            sim.step_eval(self.idle())
            if sim.output("out_valid"):
                outputs.append(sim.output("out_port"))
            sim.step_commit()
        return outputs

    def execute(self, program, data=None, cycles: int = 200,
                machines: int = 1):
        """Assemble, load, reset, run; returns (sim, out values)."""
        sim = self.simulator(program, data, machines=machines)
        outputs = self.run(sim, cycles)
        return sim, outputs
