"""Workload (testbench stimulus) generators for the memory sub-system.

§5: "verification components available on the market can be easily
reused as a workload to inject faults" — our equivalents: the start-up
BIST sequence, March-style memory tests (the software RAM tests of IEC
table A.6), random bus traffic and a bursty application profile.  Each
workload is a flat, replayable list of per-cycle input dictionaries, so
the operational profiler and the fault-injection manager can correlate
"Workload, Operational Profiles, Fault List, and final measures".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .ahb import READ_LATENCY, WRITE_GAP
from .subsystem import MemorySubsystem


@dataclass
class Phase:
    """A labeled cycle range within a workload.

    ``is_test`` marks software/hardware test phases (start-up BIST,
    march, self-tests): a golden/faulty mismatch observed inside a test
    phase counts as *detected* — it is exactly what the test's compare
    step would flag (the detection mechanism behind the "SW start-up
    tests" DDF claims of §6).
    """

    name: str
    start: int
    end: int          # exclusive
    is_test: bool = False

    def shifted(self, offset: int) -> "Phase":
        return Phase(self.name, self.start + offset, self.end + offset,
                     self.is_test)


@dataclass
class Workload:
    """A named, replayable stimulus sequence with phase annotations."""

    name: str
    stimuli: list[dict] = field(default_factory=list)
    description: str = ""
    phases: list[Phase] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.stimuli)

    def __iter__(self):
        return iter(self.stimuli)

    def __add__(self, other: "Workload") -> "Workload":
        offset = len(self.stimuli)
        phases = list(self.phases) + [p.shifted(offset)
                                      for p in other.phases]
        return Workload(name=f"{self.name}+{other.name}",
                        stimuli=self.stimuli + other.stimuli,
                        description="concatenation", phases=phases)

    def test_windows(self) -> list[tuple[int, int]]:
        return [(p.start, p.end) for p in self.phases if p.is_test]


class _Builder:
    """Accumulates bus operations with the protocol gaps applied."""

    def __init__(self, sub: MemorySubsystem, scrub_en: int = 0,
                 mpu: int | None = None):
        self.sub = sub
        self.kw = {"scrub_en": scrub_en}
        if mpu is not None:
            self.kw["mpu"] = mpu
        self.ops: list[dict] = []

    def reset(self, cycles: int = 2):
        self.ops.extend(self.sub.reset_op(**self.kw)
                        for _ in range(cycles))
        return self

    def idle(self, cycles: int = 1):
        self.ops.extend(self.sub.idle(**self.kw) for _ in range(cycles))
        return self

    def write(self, addr: int, data: int, gap: int = WRITE_GAP):
        self.ops.append(self.sub.write(addr, data, **self.kw))
        return self.idle(gap)

    def read(self, addr: int, settle: int = READ_LATENCY):
        self.ops.append(self.sub.read(addr, **self.kw))
        return self.idle(settle)

    def bist(self, selftest: int = 0):
        budget = 4 * self.sub.cfg.depth + 32
        op = self.sub.idle(bist_run=1, bist_selftest=selftest,
                           **self.kw)
        self.ops.extend(dict(op) for _ in range(budget))
        return self

    def done(self, name: str, description: str = "",
             is_test: bool = False) -> Workload:
        phases = [Phase(name, 0, len(self.ops), is_test=is_test)]
        return Workload(name=name, stimuli=self.ops,
                        description=description, phases=phases)


# ----------------------------------------------------------------------
# workload generators
# ----------------------------------------------------------------------
def startup_bist(sub: MemorySubsystem) -> Workload:
    """Reset followed by a full hardware BIST pass."""
    return (_Builder(sub).reset().bist().idle(2)
            .done("startup_bist", "reset + 2-pattern array BIST",
                  is_test=True))


def march_elements(depth: int) -> list[tuple[str, int]]:
    """March C- elements as (op, value) with op in w0/w1/r0/r1."""
    return [("w", 0), ("rw", 1), ("rw", 0), ("rw_down", 1),
            ("rw_down", 0), ("r", 0)]


def march_test(sub: MemorySubsystem, addresses=None,
               scrub_en: int = 0) -> Workload:
    """A March C- style software RAM test over the bus.

    Data values are the per-word all-zeros / all-ones patterns (bit
    width limited to the data bus).  This is the IEC A.6 'march' class
    software test the baseline claims its BIST/start-up coverage from.
    """
    ones = (1 << sub.cfg.data_bits) - 1
    addrs = list(addresses) if addresses is not None \
        else list(range(sub.cfg.depth))
    b = _Builder(sub, scrub_en=scrub_en).reset()
    # up: w0
    for a in addrs:
        b.write(a, 0)
    # up: r0, w1
    for a in addrs:
        b.read(a)
        b.write(a, ones)
    # up: r1, w0
    for a in addrs:
        b.read(a)
        b.write(a, 0)
    # down: r0, w1
    for a in reversed(addrs):
        b.read(a)
        b.write(a, ones)
    # down: r1, w0
    for a in reversed(addrs):
        b.read(a)
        b.write(a, 0)
    # up: r0
    for a in addrs:
        b.read(a)
    return b.done("march_c", "March C- over the bus",
                  is_test=True)


def address_decoder_test(sub: MemorySubsystem,
                         scrub_en: int = 0) -> Workload:
    """Marching address-lines test (IEC A.1 'no/wrong/multiple
    addressing').

    Writes a unique value to address 0 and to every power-of-two
    address, then reads them back: any stuck/bridged address line
    aliases two of those addresses onto the same cell, so at least one
    read-back mismatches — the classic address-decoder test pattern.
    """
    b = _Builder(sub, scrub_en=scrub_en).reset()
    targets = [0] + [1 << i for i in range(sub.cfg.addr_bits)]
    for i, addr in enumerate(targets):
        b.write(addr, (i + 1) & ((1 << sub.cfg.data_bits) - 1))
    for addr in targets:
        b.read(addr)
    return b.done("address_decoder_test",
                  "marching address lines (unique value per 2^k)",
                  is_test=True)


def random_traffic(sub: MemorySubsystem, n_ops: int = 64,
                   seed: int = 1234, scrub_en: int = 0,
                   address_pool=None) -> Workload:
    """Uniform random reads/writes with protocol gaps."""
    rng = random.Random(seed)
    pool = list(address_pool) if address_pool is not None \
        else list(range(sub.cfg.depth))
    b = _Builder(sub, scrub_en=scrub_en).reset()
    written: list[int] = []
    for _ in range(n_ops):
        if written and rng.random() < 0.5:
            b.read(rng.choice(written))
        else:
            addr = rng.choice(pool)
            b.write(addr, rng.getrandbits(sub.cfg.data_bits))
            written.append(addr)
    b.idle(4)
    return b.done(f"random_{n_ops}", "uniform random bus traffic")


def app_profile(sub: MemorySubsystem, bursts: int = 6,
                burst_len: int = 6, seed: int = 99,
                scrub_en: int = 1) -> Workload:
    """A bursty 'application' profile: local write bursts, read-back
    phases, idle windows (where the scrubber gets the port), and an
    occasional MPU-violating store."""
    rng = random.Random(seed)
    protected_mpu = (1 << sub.cfg.mpu_pages) - 2  # page 0 read-only
    b = _Builder(sub, scrub_en=scrub_en, mpu=protected_mpu).reset()
    page_words = sub.cfg.depth // sub.cfg.mpu_pages
    for burst in range(bursts):
        base = rng.randrange(max(1, sub.cfg.depth - burst_len))
        base = max(base, page_words)  # stay out of the protected page
        for i in range(burst_len):
            addr = min(base + i, sub.cfg.depth - 1)
            b.write(addr, rng.getrandbits(sub.cfg.data_bits))
        b.idle(3)
        for i in range(burst_len):
            b.read(min(base + i, sub.cfg.depth - 1))
        if burst % 3 == 1:
            # store into the protected page: must raise alarm_mpu
            b.write(rng.randrange(page_words),
                    rng.getrandbits(sub.cfg.data_bits))
        b.idle(6)
    return b.done("app_profile", "bursty application traffic with "
                  "MPU probes and scrub windows")


def mpu_probe(sub: MemorySubsystem) -> Workload:
    """Directed MPU test: one allowed and one denied store per page."""
    page_words = sub.cfg.depth // sub.cfg.mpu_pages
    b = _Builder(sub, mpu=0).reset()           # all pages protected
    for page in range(sub.cfg.mpu_pages):
        b.write(page * page_words, 0xA)        # all must be blocked
    b2 = _Builder(sub, mpu=(1 << sub.cfg.mpu_pages) - 1)
    b2.idle(1)                # let the MPU config register latch
    for page in range(sub.cfg.mpu_pages):
        b2.write(page * page_words, 0x5)       # all must pass
        b2.read(page * page_words)
    return (b.done("mpu_deny", is_test=True)
            + b2.done("mpu_allow", is_test=True))


def bist_selftest(sub: MemorySubsystem) -> Workload:
    """BIST fail-path self-test: inverted expect forces a miscompare.

    Exercises the fail latch and ``alarm_bist`` without a real defect
    (run last — the array content is trashed by the patterns anyway).
    A write is issued while BIST owns the array, so the write-buffer-
    held-during-BIST corner (drain blocked until BIST completes) is
    reached too.
    """
    b = _Builder(sub).reset()
    b.bist(selftest=1).idle(2)
    # overwrite one mid-BIST cycle with a bus write (bist_run kept high)
    mid = min(6, len(b.ops) - 3)
    b.ops[mid] = sub.write(0, 1, bist_run=1, bist_selftest=1)
    return b.done("bist_selftest", "forced-miscompare BIST pass",
                  is_test=True)


def error_selftest(sub: MemorySubsystem, scrub_en: int = 0,
                   max_bits: int | None = None) -> Workload:
    """Diagnostic self-test: walk the error-injection mask (§5).

    For every bit of the stored word, plant a single-bit error via the
    ``err_inject`` test mode and read it back — exercising every column
    of the corrector and raising ``alarm_ce`` — then plant one double-
    bit error to exercise the DED path (``alarm_ue``).  This is what
    lets the validation workload toggle the decoder's correction logic,
    which a fault-free workload never reaches.
    """
    b = _Builder(sub, scrub_en=scrub_en).reset()
    base = 0x5A5A5A5A & ((1 << sub.cfg.data_bits) - 1)
    mask = (1 << sub.cfg.data_bits) - 1
    if max_bits is None or max_bits >= sub.cfg.word_bits:
        walk = list(range(sub.cfg.word_bits))
    else:
        # stride the walk so every err_mask slice is exercised
        stride = max(1, sub.cfg.word_bits // max_bits)
        walk = list(range(0, sub.cfg.word_bits, stride))[:max_bits]
    for bit in walk:
        addr = bit % sub.cfg.depth
        # rotate the pattern so every data bit sees both values across
        # the walk (the scrub data register must fully toggle too)
        pattern = (base ^ (mask if bit % 2 else 0)) & mask
        b.ops.append(sub.write(addr, pattern, err_inject=1 << bit,
                               scrub_en=scrub_en))
        b.idle(WRITE_GAP)
        b.read(addr)
        if scrub_en:
            b.idle(8)                     # let the scrubber repair
        b.write(addr, pattern)            # restore a clean word
    # double-bit error: DED path
    b.ops.append(sub.write(0, base, err_inject=0b11,
                           scrub_en=scrub_en))
    b.idle(WRITE_GAP)
    b.read(0)
    b.write(0, base)
    return b.done("error_selftest",
                  "walking error-injection self-test", is_test=True)


def scrub_exercise(sub: MemorySubsystem, cycles: int = 60) -> Workload:
    """Idle time with scrubbing enabled (background scan)."""
    return (_Builder(sub, scrub_en=1).reset().idle(cycles)
            .done("scrub_scan", "idle bus, background scrubbing"))


def validation_workload(sub: MemorySubsystem,
                        quick: bool = False) -> Workload:
    """The §5 campaign workload: BIST + march + random + MPU + scrub.

    ``quick=True`` trims the march to a handful of addresses for
    per-fault injection runs; the full version is used for the
    toggle-coverage completeness check (§5 step b).
    """
    if quick:
        addrs = list(range(0, sub.cfg.depth,
                           max(1, sub.cfg.depth // 4)))[:4]
        march = march_test(sub, addresses=addrs, scrub_en=1)
        rand = random_traffic(sub, n_ops=12, seed=7, scrub_en=1,
                              address_pool=addrs)
        selftest = error_selftest(sub, scrub_en=1, max_bits=6)
        return (startup_bist(sub) + march + rand + selftest
                + mpu_probe(sub))
    return (startup_bist(sub) + march_test(sub)
            + random_traffic(sub, n_ops=48, seed=7, scrub_en=1)
            + app_profile(sub) + error_selftest(sub, scrub_en=1)
            + mpu_probe(sub) + scrub_exercise(sub)
            + bist_selftest(sub))
