"""MCE: the Memory Control Extension between bus and F-MEM (§6 b).

"It interfaces the F-MEM with the memory controller and with the bus,
providing the DMA access for F-MEM scrubbing feature as also a
distributed MPU functionality.  This MPU function considers that the
memory is divided in number of pages associated with attributes and
permissions.  The MCE block uses signals from the bus ... to
discriminate these attributes and permissions and in case of faults,
proper alarms are generated."

The MPU here implements per-page write permissions: the page index is
the top address bits, the permission word arrives on the ``mpu_cfg``
port and is registered inside the MCE (so MPU configuration registers
are sensible zones of their own).  A write to a protected page is
blocked and raises ``alarm_mpu``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hdl.builder import Module, Vec
from ..hdl.library import mux_many
from .config import SubsystemConfig


@dataclass
class MceSignals:
    """Decoded bus request with MPU screening applied."""

    read_req: Vec
    write_req: Vec
    eff_write: Vec      # write allowed by the MPU
    mpu_violation: Vec
    page: Vec
    mpu_reg: Vec


def build_mce(m: Module, cfg: SubsystemConfig, haddr: Vec, hwrite: Vec,
              htrans: Vec, hwdata: Vec, mpu_cfg: Vec) -> MceSignals:
    """Bus request decode and distributed-MPU page check."""
    with m.scope("mce"):
        mpu_reg = m.reg("mpu_cfg_reg", mpu_cfg)
        page = haddr[cfg.addr_bits - cfg.page_bits:cfg.addr_bits]
        writable = mux_many(
            m, page, [mpu_reg[i] for i in range(cfg.mpu_pages)])
        read_req = (htrans & ~hwrite).named("read_req")
        write_req = (htrans & hwrite).named("write_req")
        violation = (write_req & ~writable).named("mpu_violation")
        eff_write = (write_req & ~violation).named("eff_write")
        _ = hwdata  # data passes straight through to the coder
    return MceSignals(read_req=read_req, write_req=write_req,
                      eff_write=eff_write, mpu_violation=violation,
                      page=page, mpu_reg=mpu_reg)
