"""The retrying campaign API client.

:class:`ApiClient` wraps the server's JSON endpoints with the retry
discipline the ISSUE's failure model demands, so callers get exactly
one semantic submit no matter what the network or server does:

* **transport faults and shed load retry** — connection errors,
  timeouts, 408/429/5xx — honoring the server's ``Retry-After``
  header when present and falling back to seeded decorrelated-jitter
  delays (:func:`repro.backoff.decorrelated_delay`) otherwise, so a
  thundering herd of recovering clients de-synchronizes itself;
* **submits are idempotent by construction** — every
  :meth:`ApiClient.submit` call fixes an idempotency key up front
  (caller-supplied or a fresh UUID) and replays it on every retry,
  so "kill the server after it enqueued but before it answered"
  converges on the same job instead of double-enqueuing;
* **progress streams resume** — events are state snapshots, so
  :meth:`ApiClient.stream` transparently reconnects a dropped stream
  and continues from the current state, deduping what it already
  yielded;
* **coded failures are terminal** — a 4xx other than 408/429 raises
  :class:`ApiClientError` carrying the server's diagnostic code
  immediately; retrying a deterministic rejection cannot help.

Stdlib-only (``http.client``), synchronous — the intended callers
are the CLI, tests and the chaos harness.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
import uuid

from ..backoff import decorrelated_delay
from .events import is_terminal, parse_event

#: statuses the client treats as transient (retry with backoff)
RETRYABLE_STATUSES = (408, 429, 500, 502, 503, 504)


class ApiClientError(Exception):
    """A terminal API failure (coded server rejection, or retries
    exhausted)."""

    def __init__(self, message: str, status: int | None = None,
                 code: str | None = None,
                 payload: dict | None = None):
        super().__init__(message)
        self.status = status
        self.code = code
        self.payload = payload or {}


class ApiClient:
    """Synchronous client of one campaign API server."""

    def __init__(self, host: str, port: int,
                 token: str | None = None,
                 max_retries: int = 8,
                 backoff_base: float = 0.2,
                 backoff_cap: float = 5.0,
                 backoff_seed: int | None = None,
                 timeout: float = 10.0):
        self.host = host
        self.port = port
        self.token = token
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.backoff_seed = backoff_seed
        self.timeout = timeout

    # ------------------------------------------------------------------
    # transport with retries
    # ------------------------------------------------------------------
    def _headers(self, extra: dict | None = None) -> dict:
        headers = {"Accept": "application/json"}
        if self.token:
            headers["Authorization"] = f"Bearer {self.token}"
        if extra:
            headers.update(extra)
        return headers

    def _once(self, method: str, path: str,
              body: bytes | None) -> tuple[int, dict, dict]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            headers = self._headers()
            if body is not None:
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            resp_headers = {k.lower(): v
                            for k, v in response.getheaders()}
            try:
                payload = json.loads(raw.decode("utf-8")) \
                    if raw.strip() else {}
            except ValueError:
                payload = {}
            if not isinstance(payload, dict):
                payload = {}
            return response.status, resp_headers, payload
        finally:
            conn.close()

    def _delay(self, attempt: int, retry_after: str | None,
               token: str) -> float:
        if retry_after:
            try:
                return max(float(retry_after), 0.05)
            except ValueError:
                pass
        return decorrelated_delay(
            attempt, self.backoff_base, cap=self.backoff_cap,
            seed=self.backoff_seed, token=token)

    def request(self, method: str, path: str,
                body: dict | None = None) -> dict:
        """One semantic request, retried until it sticks.

        Every verb of this API is safe to replay: reads trivially,
        cancel/retry because they are state-targeted, submit because
        :meth:`submit` always attaches an idempotency key before
        calling here.
        """
        encoded = json.dumps(body).encode("utf-8") \
            if body is not None else None
        failure: str | None = None
        for attempt in range(self.max_retries + 1):
            retry_after = None
            try:
                status, headers, payload = self._once(
                    method, path, encoded)
            except (ConnectionError, socket.timeout, socket.error,
                    http.client.HTTPException) as err:
                failure = f"{type(err).__name__}: {err}"
            else:
                if status < 400:
                    return payload
                error = payload.get("error") or {}
                if status not in RETRYABLE_STATUSES:
                    raise ApiClientError(
                        f"{method} {path} → {status} "
                        f"{error.get('code', '')}: "
                        f"{error.get('message', '')}",
                        status=status, code=error.get("code"),
                        payload=payload)
                failure = (f"{status} {error.get('code', '')}: "
                           f"{error.get('message', 'transient')}")
                retry_after = headers.get("retry-after")
            if attempt == self.max_retries:
                break
            time.sleep(self._delay(attempt + 1, retry_after,
                                   token=path))
        raise ApiClientError(
            f"{method} {path} failed after "
            f"{self.max_retries + 1} attempt(s): {failure}",
            code="retries-exhausted")

    # ------------------------------------------------------------------
    # the API surface
    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self.request("GET", "/healthz")

    def ready(self) -> dict:
        return self.request("GET", "/readyz")

    def submit(self, spec: dict | None = None,
               project: str | None = None,
               idempotency_key: str | None = None,
               max_attempts: int | None = None) -> dict:
        """Submit one campaign; returns ``{"job": id, "deduped":
        bool, ...}``.

        The idempotency key is fixed *before* the first attempt and
        replayed verbatim on every retry — the mechanism that makes
        a lost response or a mid-submit server crash converge on a
        single enqueued job.  Pass your own key to make retries
        converge across client restarts too.
        """
        body = dict(spec or {})
        if project is not None:
            body["project"] = project
        if max_attempts is not None:
            body["max_attempts"] = max_attempts
        body["idempotency_key"] = idempotency_key or str(uuid.uuid4())
        return self.request("POST", "/v1/jobs", body=body)

    def job(self, job_id: int) -> dict:
        return self.request("GET", f"/v1/jobs/{job_id}")

    def jobs(self, project: str | None = None,
             status: str | None = None) -> list[dict]:
        query = []
        if project is not None:
            query.append(f"project={project}")
        if status is not None:
            query.append(f"status={status}")
        path = "/v1/jobs" + ("?" + "&".join(query) if query else "")
        return self.request("GET", path).get("jobs", [])

    def cancel(self, job_id: int) -> bool:
        return bool(self.request(
            "POST", f"/v1/jobs/{job_id}/cancel").get("cancel"))

    def retry(self, job_id: int) -> bool:
        return bool(self.request(
            "POST", f"/v1/jobs/{job_id}/retry").get("retry"))

    # ------------------------------------------------------------------
    # progress streaming with resume
    # ------------------------------------------------------------------
    def stream(self, job_id: int):
        """Yield progress events until the job is terminal.

        Because events are state snapshots, a dropped connection —
        server killed mid-stream, network blip — costs nothing: the
        stream reconnects (with backoff) and resumes from the
        current state, suppressing the duplicate snapshot it already
        yielded.  Consecutive failed reconnects beyond the retry
        budget raise :class:`ApiClientError`.
        """
        path = f"/v1/jobs/{job_id}/events"
        last_key = None
        failures = 0
        while True:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
            saw_terminal = False
            try:
                conn.request("GET", path,
                             headers=self._headers())
                response = conn.getresponse()
                if response.status >= 400:
                    raw = response.read()
                    try:
                        payload = json.loads(raw.decode("utf-8"))
                    except ValueError:
                        payload = {}
                    error = (payload or {}).get("error") or {}
                    if response.status not in RETRYABLE_STATUSES:
                        raise ApiClientError(
                            f"stream of job #{job_id} → "
                            f"{response.status}: "
                            f"{error.get('message', '')}",
                            status=response.status,
                            code=error.get("code"), payload=payload)
                    raise ConnectionError(
                        f"transient {response.status}")
                while True:
                    line = response.readline()
                    if not line:
                        break
                    event = parse_event(line.decode("utf-8"))
                    if event is None:
                        continue
                    failures = 0
                    key = json.dumps(event, sort_keys=True)
                    if key != last_key:
                        last_key = key
                        yield event
                    if is_terminal(event):
                        saw_terminal = True
                if saw_terminal:
                    return
                # stream ended without a terminal snapshot (server
                # drain or mid-stream kill): reconnect and resume
                raise ConnectionError("stream ended early")
            except (ConnectionError, socket.timeout, socket.error,
                    http.client.HTTPException) as err:
                failures += 1
                if failures > self.max_retries:
                    raise ApiClientError(
                        f"stream of job #{job_id} failed after "
                        f"{failures} consecutive attempt(s): "
                        f"{type(err).__name__}: {err}",
                        code="retries-exhausted") from None
                time.sleep(self._delay(failures, None, token=path))
            finally:
                conn.close()

    def wait(self, job_id: int, timeout: float | None = None,
             poll: float = 0.5) -> dict:
        """Block until the job is terminal; returns its final state.

        Polls :meth:`job` (not the stream) so it survives any number
        of server restarts trivially.
        """
        deadline = time.monotonic() + timeout \
            if timeout is not None else None
        while True:
            state = self.job(job_id)
            if state.get("status") in ("done", "dead", "cancelled"):
                return state
            if deadline is not None \
                    and time.monotonic() > deadline:
                raise ApiClientError(
                    f"job #{job_id} still "
                    f"{state.get('status')!r} after {timeout:.0f}s",
                    code="wait-timeout", payload=state)
            time.sleep(poll)
