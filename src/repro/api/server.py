"""The campaign API server — ``soc-fmea serve --http HOST:PORT``.

A stdlib-``asyncio`` HTTP/JSON front end over the existing
:class:`~repro.service.queue.JobQueue` /
:class:`~repro.service.core.CampaignService` stack.  Designed
robustness-first, the PR-9 way: every failure mode is enumerated,
coded, and injectable —

* **bad input** → E420/E424/E425 4xx (bounded parsing, never a
  traceback);
* **authn/authz** → E421 401 / E422 403;
* **overload** → admission control sheds at the queue-depth
  watermark (E427 / 429 + ``Retry-After``) and at per-project quotas
  (E426 / 429);
* **store faults** → a disk-full/i/o-paused store answers E428 / 503
  + ``Retry-After`` while the queue holds jobs instead of
  dead-lettering;
* **server death** → client idempotency keys make a retried submit
  converge on the same job (see :mod:`repro.api.client`), and the
  content-addressed store makes the re-claimed job resume warm;
* **graceful SIGTERM** → stop accepting, finish in-flight responses,
  release worker leases via the daemon's drain path, exit 0.

Endpoints (all JSON; the error body is ``{"error": {"code",
"title", "message", "hint", "retry_after"?}}``):

==============================  =====================================
``GET  /healthz``               process liveness
``GET  /readyz``                store reachability + E410 lease audit
``POST /v1/jobs``               submit a campaign (idempotency keys)
``GET  /v1/jobs``               list jobs (``?project=``/``?status=``)
``GET  /v1/jobs/<id>``          one job's state
``GET  /v1/jobs/<id>/events``   chunked JSON-line progress stream
``POST /v1/jobs/<id>/cancel``   cancel an active job
``POST /v1/jobs/<id>/retry``    re-queue a dead/cancelled job
==============================  =====================================

Concurrency model: the event loop owns the sockets; every queue/store
touch runs in a worker thread (``asyncio.to_thread``) on a *fresh*
SQLite connection, so a slow disk stalls one request, not the loop.
Campaign execution itself lives in embedded
:class:`~repro.service.daemon.ServiceDaemon` worker threads (or a
separate ``soc-fmea serve`` daemon pointed at the same store — the
queue is the only coupling).
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from dataclasses import dataclass

from ..chaos.failpoints import fail_at
from ..diagnostics import DiagnosticError
from ..diagnostics.codes import default_hint, describe
from ..service.core import CampaignRequest, CampaignService
from ..service.queue import JobQueue, JobRow
from ..store.db import StoreBusyError
from ..store.errors import StoreIOError
from .auth import AuthConfig, estimate_faults
from .events import TERMINAL_STATES, event_key, job_event
from .protocol import (
    MAX_BODY_BYTES,
    MAX_HEADER_BYTES,
    REQUEST_TIMEOUT,
    ProtocolError,
    Request,
    chunk,
    chunked_head,
    last_chunk,
    read_request,
    response_bytes,
)

#: spec fields a submit body may carry beyond CampaignRequest's
_SUBMIT_META_FIELDS = ("project", "max_attempts", "idempotency_key")

#: rolling window of the faults-per-day quota
_QUOTA_WINDOW_SECONDS = 86400.0


@dataclass
class ApiConfig:
    """One ``serve --http`` invocation's policy."""

    host: str = "127.0.0.1"
    port: int = 0                       # 0 = ephemeral (tests)
    #: auth file path (None = open mode, see repro.api.auth)
    auth_path: str | None = None
    #: global admission watermark: active jobs beyond this shed
    #: submits with E427 / 429 + Retry-After
    max_queue_depth: int = 64
    max_header_bytes: int = MAX_HEADER_BYTES
    max_body_bytes: int = MAX_BODY_BYTES
    request_timeout: float = REQUEST_TIMEOUT
    #: poll period of the progress stream (state-snapshot events)
    stream_poll_interval: float = 0.2
    #: Retry-After for overload (429) responses
    retry_after: float = 2.0
    #: Retry-After for store-fault (503) responses — matches the
    #: daemon's io-pause
    io_retry_after: float = 5.0
    verbose: bool = True


class ApiError(Exception):
    """A request outcome with an HTTP status and diagnostic code."""

    def __init__(self, status: int, code: str, message: str,
                 retry_after: float | None = None,
                 diagnostics: list | None = None):
        super().__init__(message)
        self.status = status
        self.code = code
        self.retry_after = retry_after
        self.diagnostics = diagnostics


def error_payload(code: str, message: str,
                  retry_after: float | None = None,
                  diagnostics: list | None = None) -> dict:
    error = {
        "code": code,
        "title": describe(code),
        "message": message,
    }
    hint = default_hint(code)
    if hint:
        error["hint"] = hint
    if retry_after is not None:
        error["retry_after"] = retry_after
    if diagnostics:
        error["diagnostics"] = diagnostics
    return {"error": error}


def _job_payload(job: JobRow) -> dict:
    payload = job_event(job)
    payload["created_at"] = job.created_at
    payload["updated_at"] = job.updated_at
    if job.idempotency_key is not None:
        payload["idempotency_key"] = job.idempotency_key
    if job.run_id is not None:
        payload["run_id"] = job.run_id
    return payload


class ApiServer:
    """The HTTP front end rooted at one campaign store."""

    def __init__(self, store_root, config: ApiConfig | None = None,
                 daemon=None):
        self.config = config or ApiConfig()
        self.service = CampaignService(store_root)
        self.root = self.service.root
        self.auth = AuthConfig.load(self.config.auth_path) \
            if self.config.auth_path else AuthConfig.open()
        #: optional embedded ServiceDaemon whose worker loops run in
        #: threads of this process (None = queue-only front end)
        self.daemon = daemon
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.base_events.Server | None = None
        self._stopping: asyncio.Event | None = None
        self._inflight: set[asyncio.Task] = set()
        self._workers: list[threading.Thread] = []
        self.port: int | None = None
        self._started = threading.Event()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def run(self) -> int:
        """Serve until :meth:`stop` or SIGTERM/SIGINT; returns the
        process exit code (always 0 on a graceful drain)."""
        return asyncio.run(self._main())

    def stop(self) -> None:
        """Request a graceful stop from any thread."""
        loop = self._loop
        if loop is not None:
            loop.call_soon_threadsafe(self._request_stop, "stop()")

    def wait_started(self, timeout: float = 10.0) -> bool:
        return self._started.wait(timeout)

    def _request_stop(self, why: str) -> None:
        if self._stopping is not None \
                and not self._stopping.is_set():
            self._log(f"received {why} — draining gracefully")
            self._stopping.set()

    async def _main(self) -> int:
        cfg = self.config
        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(
                    signum, self._request_stop,
                    signal.Signals(signum).name)
            except (NotImplementedError, RuntimeError):
                pass
        if self.daemon is not None:
            self._start_workers()
        self._server = await asyncio.start_server(
            self._client, cfg.host, cfg.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._log(f"listening on http://{cfg.host}:{self.port} "
                  f"(store {self.root}, "
                  + ("open mode" if self.auth.open_mode
                     else "token auth") + ")")
        self._started.set()
        await self._stopping.wait()
        # graceful drain: no new connections, finish in-flight
        # responses, then release the embedded workers' leases
        self._server.close()
        await self._server.wait_closed()
        if self._inflight:
            await asyncio.wait(
                set(self._inflight),
                timeout=max(cfg.request_timeout, 10.0))
        self._stop_workers()
        self._log("drained — exiting")
        return 0

    def _start_workers(self) -> None:
        for index in range(self.daemon.config.workers):
            thread = threading.Thread(
                target=self.daemon.worker_loop, args=(index,),
                name=f"campaign-worker-{index}", daemon=True)
            thread.start()
            self._workers.append(thread)

    def _stop_workers(self) -> None:
        if self.daemon is None:
            return
        # the daemon's own drain path: the heartbeat raises
        # _GracefulStop, the supervisor checkpoints, the lease is
        # released — same as SIGTERM on a standalone serve
        self.daemon._stop = True
        for thread in self._workers:
            thread.join(timeout=30.0)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _client(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._inflight.add(task)
        try:
            await self._client_inner(reader, writer)
        finally:
            self._inflight.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass

    async def _client_inner(self, reader, writer) -> None:
        cfg = self.config
        try:
            fail_at("api.accept")
            request = await read_request(
                reader, max_header_bytes=cfg.max_header_bytes,
                max_body_bytes=cfg.max_body_bytes,
                timeout=cfg.request_timeout)
            if request is None:
                return
            await self._dispatch(request, writer)
        except ProtocolError as err:
            await self._respond(
                writer, err.status,
                error_payload(err.code, str(err)))
        except ApiError as err:
            await self._respond_error(writer, err)
        except ConnectionError:
            pass                      # client went away mid-response
        except StoreIOError as err:
            await self._respond_error(writer, self._unavailable(err))
        except StoreBusyError as err:
            await self._respond_error(writer, ApiError(
                503, _store_code(err, "E409"),
                "store write lock is contended; retry",
                retry_after=cfg.retry_after))
        except OSError as err:
            # an injected (or real) disk fault outside the store
            # wrappers still degrades coded, never a traceback
            await self._respond_error(writer, ApiError(
                503, "E428", f"i/o failure while serving the "
                             f"request: {err}",
                retry_after=cfg.io_retry_after))
        except DiagnosticError as err:
            report = getattr(err, "report", None)
            await self._respond_error(writer, ApiError(
                400, _store_code(err, "E420"),
                "request failed validation",
                diagnostics=_report_payload(report)))
        except Exception as err:  # noqa: BLE001 — coded containment
            await self._respond_error(writer, ApiError(
                500, "E001",
                f"internal error: {type(err).__name__}: {err}"))

    def _unavailable(self, err) -> ApiError:
        # E428 is the API-surface code; the store's own E413/E414
        # cause rides along in the message and diagnostics
        return ApiError(
            503, "E428",
            f"store unavailable "
            f"({_store_code(err, 'io-pause')}): "
            f"{_first_line(err)}",
            retry_after=self.config.io_retry_after,
            diagnostics=_report_payload(
                getattr(err, "report", None)))

    async def _respond_error(self, writer, err: ApiError) -> None:
        try:
            await self._respond(
                writer, err.status,
                error_payload(err.code, str(err),
                              retry_after=err.retry_after,
                              diagnostics=err.diagnostics),
                retry_after=err.retry_after)
        except (ConnectionError, OSError):
            pass

    async def _respond(self, writer, status: int, payload: dict,
                       retry_after: float | None = None) -> None:
        headers = {}
        if retry_after is not None:
            headers["Retry-After"] = str(
                max(int(round(retry_after)), 1))
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        # crash window: the request's effect (e.g. an enqueued job)
        # is durable but the client never hears — recovery is the
        # client's idempotency-key retry
        fail_at("api.pre-response")
        writer.write(response_bytes(status, body, headers=headers))
        await writer.drain()
        fail_at("api.post-response")

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _dispatch(self, request: Request, writer) -> None:
        path, method = request.path, request.method
        if path == "/healthz" and method == "GET":
            await self._respond(writer, 200, {"ok": True})
            return
        if path == "/readyz" and method == "GET":
            await self._readyz(writer)
            return
        if path == "/v1/jobs":
            if method == "POST":
                await self._submit(request, writer)
                return
            if method == "GET":
                await self._list_jobs(request, writer)
                return
            raise ApiError(405, "E420",
                           f"{method} not allowed on {path}")
        parts = [p for p in path.split("/") if p]
        if len(parts) >= 3 and parts[0] == "v1" \
                and parts[1] == "jobs":
            try:
                job_id = int(parts[2])
            except ValueError:
                raise ApiError(404, "E423",
                               f"bad job id {parts[2]!r}") from None
            action = parts[3] if len(parts) > 3 else None
            if action is None and method == "GET":
                await self._job_detail(request, job_id, writer)
                return
            if action == "events" and method == "GET":
                await self._stream(request, job_id, writer)
                return
            if action in ("cancel", "retry") and method == "POST":
                await self._job_action(request, job_id, action,
                                       writer)
                return
        raise ApiError(404, "E423", f"no route {method} {path}")

    # ------------------------------------------------------------------
    # queue access (worker threads, fresh connection per op)
    # ------------------------------------------------------------------
    async def _queue_op(self, op):
        def call():
            with JobQueue(self.root) as queue:
                return op(queue)
        return await asyncio.to_thread(call)

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    async def _readyz(self, writer) -> None:
        cfg = self.config

        def audit(queue: JobQueue):
            import time as _time
            counts = queue.counts()
            stale = len(queue.db.stale_job_leases(_time.time()))
            return counts, stale

        try:
            counts, stale = await self._queue_op(audit)
        except StoreIOError as err:
            raise self._unavailable(err) from None
        active = sum(counts.get(s, 0)
                     for s in ("queued", "leased", "running"))
        if active >= cfg.max_queue_depth:
            raise ApiError(
                503, "E427",
                f"queue depth {active} is at the watermark "
                f"({cfg.max_queue_depth})",
                retry_after=cfg.retry_after)
        await self._respond(writer, 200, {
            "ready": True,
            "jobs": counts,
            "stale_leases": stale,     # doctor's E410 audit, live
        })

    async def _submit(self, request: Request, writer) -> None:
        cfg = self.config
        principal = self._authenticate(request)
        data = _parse_json_object(request)
        unknown = [k for k in data
                   if k not in _SUBMIT_META_FIELDS
                   and k not in CampaignRequest.__dataclass_fields__]
        if unknown:
            raise ApiError(
                400, "E420",
                f"unknown field(s): {', '.join(sorted(unknown))}")
        try:
            project = principal.resolve_project(data.get("project"))
        except PermissionError as err:
            raise ApiError(403, "E422", str(err)) from None
        spec_fields = {k: v for k, v in data.items()
                       if k not in _SUBMIT_META_FIELDS}
        try:
            campaign = CampaignRequest.from_dict(spec_fields)
        except (TypeError, ValueError) as err:
            raise ApiError(400, "E420",
                           f"bad request body: {err}") from None
        report = campaign.validate()
        if not report.ok:
            raise ApiError(400, "E420",
                           "campaign request failed validation",
                           diagnostics=_report_payload(report))
        max_attempts = data.get("max_attempts")
        if max_attempts is not None and (
                not isinstance(max_attempts, int)
                or max_attempts < 1):
            raise ApiError(400, "E430",
                           f"max_attempts must be a positive "
                           f"integer, got {max_attempts!r}")
        idem_key = data.get("idempotency_key") \
            or request.headers.get("idempotency-key")
        if idem_key is not None and (
                not isinstance(idem_key, str)
                or not idem_key.strip() or len(idem_key) > 200):
            raise ApiError(400, "E420",
                           "idempotency_key must be a non-empty "
                           "string of at most 200 characters")

        spec = campaign.to_dict()
        job_id, deduped = await self._admit_and_enqueue(
            principal, project, spec, max_attempts, idem_key)
        self._log(f"job #{job_id} "
                  + ("deduped" if deduped else "submitted")
                  + f" (project {project})")
        await self._respond(writer, 200 if deduped else 201, {
            "job": job_id,
            "project": project,
            "deduped": deduped,
        })

    async def _admit_and_enqueue(self, principal, project: str,
                                 spec: dict,
                                 max_attempts: int | None,
                                 idem_key: str | None):
        """Admission control + enqueue, one thread hop.

        The dedupe check runs before the quotas on purpose: a retry
        of an already-accepted submit must converge on its job even
        when the project has since filled its quota.
        """
        cfg = self.config
        quota = principal.quota

        def admit(queue: JobQueue):
            import time as _time
            fail_at("api.quota-check")
            if idem_key is not None:
                row = queue.db._conn.execute(
                    "SELECT job_id FROM jobs WHERE project=?"
                    " AND idempotency_key=? AND status!='cancelled'"
                    " ORDER BY job_id LIMIT 1",
                    (project, idem_key)).fetchone()
                if row is not None:
                    return row[0], True
            counts = queue.counts()
            active_total = sum(counts.get(s, 0) for s in
                               ("queued", "leased", "running"))
            if active_total >= cfg.max_queue_depth:
                raise ApiError(
                    429, "E427",
                    f"queue depth {active_total} is at the "
                    f"watermark ({cfg.max_queue_depth}); load shed",
                    retry_after=cfg.retry_after)
            mine = queue.jobs(project=project)
            active_mine = [j for j in mine if j.status in
                           ("queued", "leased", "running")]
            if len(active_mine) >= quota.max_queued:
                raise ApiError(
                    429, "E426",
                    f"project {project!r} holds "
                    f"{len(active_mine)} active job(s), at its "
                    f"max_queued quota ({quota.max_queued})",
                    retry_after=cfg.retry_after)
            if quota.max_faults_per_day is not None:
                horizon = _time.time() - _QUOTA_WINDOW_SECONDS
                charged = sum(
                    estimate_faults(j.spec) for j in mine
                    if j.created_at >= horizon
                    and j.status != "cancelled")
                asking = estimate_faults(spec)
                if charged + asking > quota.max_faults_per_day:
                    raise ApiError(
                        429, "E426",
                        f"project {project!r} has ~{charged} "
                        f"fault(s) charged in the last day; "
                        f"+{asking} would exceed its "
                        f"max_faults_per_day quota "
                        f"({quota.max_faults_per_day})",
                        retry_after=min(
                            _QUOTA_WINDOW_SECONDS / 24,
                            3600.0))
            return queue.submit_idempotent(
                spec, project=project, max_attempts=max_attempts,
                idempotency_key=idem_key)

        try:
            return await self._queue_op(admit)
        except StoreIOError as err:
            raise self._unavailable(err) from None

    def _authenticate(self, request: Request):
        try:
            return self.auth.authenticate(
                request.headers.get("authorization"))
        except LookupError as err:
            raise ApiError(401, "E421", str(err)) from None

    async def _list_jobs(self, request: Request, writer) -> None:
        principal = self._authenticate(request)
        project = request.query.get("project")
        if principal.project is not None:
            project = principal.project
        status = request.query.get("status")
        jobs = await self._queue_op(
            lambda q: q.jobs(status=status, project=project))
        await self._respond(writer, 200, {
            "jobs": [_job_payload(j) for j in jobs]})

    async def _get_job(self, job_id: int, principal) -> JobRow:
        job = await self._queue_op(lambda q: q.job(job_id))
        if job is None or (principal.project is not None
                           and job.project != principal.project):
            # a pinned token can't probe other projects' job ids
            raise ApiError(404, "E423", f"no job #{job_id}")
        return job

    async def _job_detail(self, request: Request, job_id: int,
                          writer) -> None:
        principal = self._authenticate(request)
        job = await self._get_job(job_id, principal)
        await self._respond(writer, 200, _job_payload(job))

    async def _job_action(self, request: Request, job_id: int,
                          action: str, writer) -> None:
        principal = self._authenticate(request)
        await self._get_job(job_id, principal)     # 404 on miss
        if action == "cancel":
            done = await self._queue_op(
                lambda q: q.cancel(job_id))
        else:
            done = await self._queue_op(lambda q: q.retry(job_id))
        await self._respond(writer, 200,
                            {"job": job_id, action: done})

    async def _stream(self, request: Request, job_id: int,
                      writer) -> None:
        """Chunked JSON-line progress stream.

        Events are state snapshots fed by the worker's heartbeat
        (the ``progress`` column), emitted on change; the stream
        ends after the terminal snapshot.  A dropped connection
        loses nothing: reconnecting replays the current state as
        the first event (see :mod:`repro.api.events`).
        """
        cfg = self.config
        principal = self._authenticate(request)
        await self._get_job(job_id, principal)     # 404 before head
        fail_at("api.pre-response")
        writer.write(chunked_head(200))
        await writer.drain()
        last = None
        while True:
            job = await self._queue_op(lambda q: q.job(job_id))
            if job is None:
                break              # deleted under us: end the stream
            event = job_event(job)
            key = event_key(event)
            if key != last:
                # crash window: a mid-stream kill here is the
                # harness's dropped-stream scenario — the client
                # reconnects and resumes from the current snapshot
                fail_at("api.stream")
                writer.write(chunk(
                    (key + "\n").encode("utf-8")))
                await writer.drain()
                last = key
            if job.status in TERMINAL_STATES:
                break
            if self._stopping is not None \
                    and self._stopping.is_set():
                break             # drain: finish the response now
            await asyncio.sleep(cfg.stream_poll_interval)
        writer.write(last_chunk())
        await writer.drain()
        fail_at("api.post-response")

    def _log(self, message: str) -> None:
        if self.config.verbose:
            print(f"api: {message}", flush=True)


def _parse_json_object(request: Request) -> dict:
    if not request.body:
        return {}
    try:
        data = json.loads(request.body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as err:
        raise ApiError(400, "E420",
                       f"request body is not valid JSON: "
                       f"{err}") from None
    if not isinstance(data, dict):
        raise ApiError(400, "E420",
                       "request body must be a JSON object")
    return data


def _report_payload(report) -> list:
    if report is None:
        return []
    return [{
        "code": d.code,
        "severity": d.severity,
        "message": d.message,
    } for d in report.diagnostics]


def _store_code(err, fallback: str) -> str:
    """The first code of a DiagnosticError's report."""
    report = getattr(err, "report", None)
    if report is not None:
        for d in report.diagnostics:
            return d.code
    return fallback


def _first_line(err) -> str:
    text = str(err).strip()
    for line in text.splitlines():
        line = line.strip()
        if line and not line.startswith(("===", "---")):
            return line[:200]
    return text[:200]
