"""Token-per-project authentication and quotas for the campaign API.

The auth file (``serve --http ... --auth FILE``) is a small JSON
document mapping bearer tokens to projects and their quotas::

    {
      "schema": 1,
      "tokens": {
        "s3cret-alpha": {
          "project": "alpha",
          "max_queued": 8,
          "max_faults_per_day": 500000
        },
        "s3cret-beta": {"project": "beta"}
      }
    }

With no auth file the server runs **open**: every request is an
anonymous principal that may target any project under the default
quotas — the single-user workstation mode.  With an auth file, every
request must carry ``Authorization: Bearer <token>`` (E421 / 401
otherwise) and is pinned to the token's project: naming a different
project in the submit body is E422 / 403, and omitting it submits to
the token's project.

Quotas are admission-control inputs, enforced by the server:

* ``max_queued`` — active (queued/leased/running) jobs the project
  may hold; beyond it the submit is shed with E426 / 429 +
  ``Retry-After``.
* ``max_faults_per_day`` — injection budget per rolling day, charged
  against an *estimate* of each submitted campaign's fault count
  (``sample`` when set, otherwise a per-variant candidate estimate
  scaled by ``banks``).  Estimates are deliberately static — the
  point is a cheap admission bound, not billing-grade metering.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from ..diagnostics import DiagnosticError, DiagnosticReport

#: default quotas for anonymous principals and tokens that omit them
DEFAULT_MAX_QUEUED = 16
DEFAULT_MAX_FAULTS_PER_DAY = None       # unmetered

#: quick-mode candidate counts per variant (measured once; see
#: tests/test_api.py which cross-checks small-improved) — the
#: faults-per-day estimator's lookup table, scaled by ``banks``
VARIANT_FAULT_ESTIMATE = {
    "small-baseline": 181,
    "small-improved": 192,
    "baseline": 347,
    "improved": 361,
}
_FALLBACK_FAULT_ESTIMATE = 400


@dataclass(frozen=True)
class Quota:
    """Per-project admission limits."""

    max_queued: int = DEFAULT_MAX_QUEUED
    max_faults_per_day: int | None = DEFAULT_MAX_FAULTS_PER_DAY


@dataclass(frozen=True)
class Principal:
    """Who a request acts as, after authentication."""

    project: str | None          # None = anonymous, any project
    quota: Quota
    token: str | None = None

    def resolve_project(self, requested: str | None) -> str:
        """The project a submit lands in (policy in the docstring
        above); raises ``PermissionError`` on a cross-project
        attempt by a pinned token."""
        if self.project is None:
            return requested or "default"
        if requested is not None and requested != self.project:
            raise PermissionError(
                f"token is pinned to project {self.project!r}, "
                f"not {requested!r}")
        return self.project


def estimate_faults(spec: dict) -> int:
    """Cheap upper-ish estimate of one campaign's injection count."""
    sample = spec.get("sample")
    if isinstance(sample, int) and sample > 0:
        return sample
    base = VARIANT_FAULT_ESTIMATE.get(
        spec.get("variant", ""), _FALLBACK_FAULT_ESTIMATE)
    banks = spec.get("banks") or 1
    try:
        banks = max(int(banks), 1)
    except (TypeError, ValueError):
        banks = 1
    return base * banks


class AuthConfig:
    """The parsed auth file (or the open, anonymous configuration)."""

    def __init__(self, tokens: dict[str, Principal] | None = None):
        self._tokens = tokens       # None = open mode

    @property
    def open_mode(self) -> bool:
        return self._tokens is None

    @classmethod
    def open(cls) -> "AuthConfig":
        return cls(None)

    @classmethod
    def load(cls, path: str | Path) -> "AuthConfig":
        """Parse an auth file; raises
        :class:`~repro.diagnostics.DiagnosticError` (E420-coded) on
        anything malformed so ``serve`` refuses to start open by
        accident."""
        report = DiagnosticReport()
        try:
            data = json.loads(Path(path).read_text())
        except OSError as err:
            report.error("E420", f"auth file unreadable: {err}",
                         file=str(path))
            raise DiagnosticError(report)
        except ValueError as err:
            report.error("E420", f"auth file is not valid JSON: "
                                 f"{err}", file=str(path))
            raise DiagnosticError(report)
        if not isinstance(data, dict) \
                or not isinstance(data.get("tokens"), dict):
            report.error("E420",
                         "auth file must be an object with a "
                         "`tokens` mapping", file=str(path))
            raise DiagnosticError(report)
        tokens: dict[str, Principal] = {}
        for token, entry in data["tokens"].items():
            if not isinstance(entry, dict) \
                    or not isinstance(entry.get("project"), str):
                report.error(
                    "E420",
                    f"token entry {token[:8]!r}… needs a string "
                    f"`project` field", file=str(path))
                continue
            quota = Quota(
                max_queued=int(entry.get("max_queued",
                                         DEFAULT_MAX_QUEUED)),
                max_faults_per_day=(
                    int(entry["max_faults_per_day"])
                    if entry.get("max_faults_per_day") is not None
                    else DEFAULT_MAX_FAULTS_PER_DAY))
            tokens[token] = Principal(project=entry["project"],
                                      quota=quota, token=token)
        report.raise_if_errors()
        return cls(tokens)

    def authenticate(self, authorization: str | None) -> Principal:
        """Resolve a request's ``Authorization`` header value.

        Raises ``LookupError`` when a credential is required and
        missing or unknown (the server maps it to E421 / 401).
        """
        if self.open_mode:
            return Principal(project=None, quota=Quota())
        if not authorization:
            raise LookupError("missing Authorization: Bearer token")
        scheme, _, token = authorization.partition(" ")
        if scheme.lower() != "bearer" or not token.strip():
            raise LookupError(
                "Authorization header is not `Bearer <token>`")
        principal = self._tokens.get(token.strip())
        if principal is None:
            raise LookupError("unknown token")
        return principal
