"""Job progress events — the shared vocabulary of the API stream.

An event is a *state snapshot* of one job row, not a delta.  That
choice is what makes the stream resumable: a client that reconnects
after a dropped connection (or a server crash) receives the current
state as its first event and has lost nothing it needs — there is no
cursor to negotiate and no replay window to miss.

The server's ``GET /v1/jobs/<id>/events`` endpoint emits one JSON
line per *changed* snapshot; :mod:`repro.api.client` parses them back
into dicts; ``soc-fmea jobs status --follow`` renders the same
snapshots locally with :func:`format_event` — one formatting path for
all three surfaces.
"""

from __future__ import annotations

import json

from ..service.queue import JOB_CANCELLED, JOB_DEAD, JOB_DONE

#: states after which a stream ends (nothing further can change
#: except an operator retry, which is a new lifecycle)
TERMINAL_STATES = (JOB_DONE, JOB_DEAD, JOB_CANCELLED)


def job_event(job) -> dict:
    """The state snapshot of one :class:`~repro.service.queue.JobRow`.

    Keys are stable: ``job``, ``project``, ``status``, ``attempts``,
    ``max_attempts``; ``done``/``total`` when the executing worker
    has heartbeated progress; ``result`` on ``done``; ``error`` on
    ``dead``/failure.
    """
    event = {
        "job": job.job_id,
        "project": job.project,
        "status": job.status,
        "attempts": job.attempts,
        "max_attempts": job.max_attempts,
    }
    if job.progress:
        done = job.progress.get("done")
        total = job.progress.get("total")
        if done is not None:
            event["done"] = done
        if total is not None:
            event["total"] = total
    if job.status == JOB_DONE and job.result is not None:
        event["result"] = job.result
    if job.error is not None and job.status != JOB_DONE:
        event["error"] = job.error
    return event


def event_key(event: dict) -> str:
    """Canonical identity of a snapshot (emit-on-change filter)."""
    return json.dumps(event, sort_keys=True)


def is_terminal(event: dict) -> bool:
    return event.get("status") in TERMINAL_STATES


def format_event(event: dict) -> str:
    """One human-readable line per snapshot (``--follow`` and the
    client demos print these)."""
    job = event.get("job", "?")
    status = event.get("status", "?")
    text = f"job #{job} {status}"
    done, total = event.get("done"), event.get("total")
    if done is not None:
        if total:
            text += f" {done}/{total} ({done / total:7.2%})"
        else:
            text += f" {done} done"
    if status == JOB_DONE:
        result = event.get("result") or {}
        dc = result.get("measured_dc")
        sff = result.get("safe_fraction")
        if dc is not None:
            text += f" — measured DC {dc:.4%}"
        if sff is not None:
            text += f", safe fraction {sff:.4%}"
    elif event.get("error"):
        error = event["error"]
        message = error.get("message") or error.get("kind") or ""
        if message:
            text += f" — {message}"
    return text


def parse_event(line: str) -> dict | None:
    """Parse one streamed JSON line; ``None`` for blanks/noise."""
    line = line.strip()
    if not line:
        return None
    try:
        value = json.loads(line)
    except ValueError:
        return None
    return value if isinstance(value, dict) else None
