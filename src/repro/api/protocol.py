"""Bounded HTTP/1.1 request parsing over asyncio streams.

The server speaks just enough HTTP for a JSON job API — and treats
the wire as an input surface to harden like any other (cf. the E1xx/
E2xx parsers): every read is bounded in **bytes** and **time**, so a
slow-loris client or an over-long header/body is shed with a coded
diagnostic instead of parking a task or ballooning memory:

* request line + headers are capped at ``max_header_bytes``;
* bodies require ``Content-Length`` (no request chunking) and are
  capped at ``max_body_bytes`` → ``E424`` / 413 beyond it;
* every read runs under ``timeout`` → ``E425`` / 408 on expiry;
* anything malformed → ``E420`` / 400.

Responses are plain (``Content-Length``) or chunked — the progress
stream uses chunked JSON lines so a client can read events as they
happen over a keep-alive-free, one-request connection.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

#: request line + headers budget — generous for a JSON API client
MAX_HEADER_BYTES = 8192
#: request body budget — campaign submissions are small JSON records
MAX_BODY_BYTES = 64 * 1024
#: seconds a client has to deliver each piece of its request
REQUEST_TIMEOUT = 10.0

_REASONS = {
    200: "OK", 201: "Created", 400: "Bad Request",
    401: "Unauthorized", 403: "Forbidden", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class ProtocolError(Exception):
    """A malformed, over-long or overdue request.

    Carries the HTTP status and diagnostic code the server answers
    with — the protocol layer never decides policy beyond that.
    """

    def __init__(self, status: int, code: str, message: str):
        super().__init__(message)
        self.status = status
        self.code = code


@dataclass
class Request:
    """One parsed request."""

    method: str
    target: str
    path: str
    query: dict = field(default_factory=dict)
    headers: dict = field(default_factory=dict)   # lower-cased keys
    body: bytes = b""


async def _readline(reader: asyncio.StreamReader, budget: int,
                    timeout: float) -> bytes:
    try:
        line = await asyncio.wait_for(
            reader.readuntil(b"\n"), timeout=timeout)
    except asyncio.TimeoutError:
        raise ProtocolError(
            408, "E425", "timed out waiting for the request") \
            from None
    except asyncio.IncompleteReadError as err:
        if not err.partial:
            raise EOFError from None          # clean connection close
        raise ProtocolError(
            400, "E420", "connection closed mid-request") from None
    except asyncio.LimitOverrunError:
        raise ProtocolError(
            400, "E420", "request line exceeds the header budget") \
            from None
    if len(line) > budget:
        raise ProtocolError(
            413, "E424",
            f"request headers exceed {MAX_HEADER_BYTES} bytes")
    return line


async def read_request(reader: asyncio.StreamReader,
                       max_header_bytes: int = MAX_HEADER_BYTES,
                       max_body_bytes: int = MAX_BODY_BYTES,
                       timeout: float = REQUEST_TIMEOUT
                       ) -> Request | None:
    """Parse one bounded request; ``None`` on a clean pre-request EOF.

    Raises :class:`ProtocolError` for anything the server should
    answer with a coded 4xx.
    """
    budget = max_header_bytes
    try:
        line = await _readline(reader, budget, timeout)
    except EOFError:
        return None
    budget -= len(line)
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1"):
        raise ProtocolError(
            400, "E420", f"malformed request line: "
                         f"{line[:80]!r}")
    method, target = parts[0].upper(), parts[1]

    headers: dict[str, str] = {}
    while True:
        if budget <= 0:
            raise ProtocolError(
                413, "E424",
                f"request headers exceed {max_header_bytes} bytes")
        line = await _readline(reader, budget, timeout)
        budget -= len(line)
        text = line.decode("latin-1").strip()
        if not text:
            break
        name, sep, value = text.partition(":")
        if not sep:
            raise ProtocolError(
                400, "E420", f"malformed header line: {text[:80]!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "transfer-encoding" in headers:
        raise ProtocolError(
            400, "E420",
            "chunked request bodies are not accepted; send "
            "Content-Length")
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise ProtocolError(
                400, "E420",
                f"bad Content-Length: {length_text!r}") from None
        if length < 0:
            raise ProtocolError(
                400, "E420", f"bad Content-Length: {length}")
        if length > max_body_bytes:
            raise ProtocolError(
                413, "E424",
                f"request body of {length} bytes exceeds the "
                f"{max_body_bytes}-byte bound")
        if length:
            try:
                body = await asyncio.wait_for(
                    reader.readexactly(length), timeout=timeout)
            except asyncio.TimeoutError:
                raise ProtocolError(
                    408, "E425",
                    "timed out reading the request body") from None
            except asyncio.IncompleteReadError:
                raise ProtocolError(
                    400, "E420",
                    "connection closed mid-body") from None

    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return Request(method=method, target=target,
                   path=unquote(split.path) or "/", query=query,
                   headers=headers, body=body)


def reason(status: int) -> str:
    return _REASONS.get(status, "Unknown")


def response_bytes(status: int, body: bytes,
                   headers: dict | None = None,
                   content_type: str = "application/json") -> bytes:
    """A complete, single-buffer HTTP response."""
    lines = [f"HTTP/1.1 {status} {reason(status)}",
             f"Content-Type: {content_type}",
             f"Content-Length: {len(body)}",
             "Connection: close"]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def chunked_head(status: int, headers: dict | None = None,
                 content_type: str = "application/json"
                 ) -> bytes:
    """Response head opening a chunked (streaming) body."""
    lines = [f"HTTP/1.1 {status} {reason(status)}",
             f"Content-Type: {content_type}",
             "Transfer-Encoding: chunked",
             "Connection: close"]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def chunk(data: bytes) -> bytes:
    """One chunked-transfer frame (empty data is the terminator —
    use :func:`last_chunk` for clarity)."""
    return f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n"


def last_chunk() -> bytes:
    return b"0\r\n\r\n"
