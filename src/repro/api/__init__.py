"""The campaign HTTP/JSON API (docs/methodology.md §4j).

``repro.api`` is the network front end of the campaign service
stack: :mod:`~repro.api.server` serves the queue over bounded
HTTP/1.1 (``soc-fmea serve --http``), :mod:`~repro.api.client` is
the retrying client, :mod:`~repro.api.auth` holds token/quota
policy, :mod:`~repro.api.events` the shared progress-event
vocabulary, and :mod:`~repro.api.protocol` the bounded wire parsing.
"""

from .auth import AuthConfig, Principal, Quota, estimate_faults
from .client import ApiClient, ApiClientError
from .events import (
    TERMINAL_STATES,
    format_event,
    is_terminal,
    job_event,
    parse_event,
)
from .protocol import ProtocolError, Request
from .server import ApiConfig, ApiError, ApiServer

__all__ = [
    "ApiClient", "ApiClientError", "ApiConfig", "ApiError",
    "ApiServer", "AuthConfig", "Principal", "ProtocolError",
    "Quota", "Request", "TERMINAL_STATES", "estimate_faults",
    "format_event", "is_terminal", "job_event", "parse_event",
]
