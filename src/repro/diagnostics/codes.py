"""The diagnostic code taxonomy (documented in docs/methodology.md §4e).

Codes are stable, machine-readable identifiers grouped by the artifact
they describe:

* ``E0xx`` — tool/CLI level (internal errors, unusable invocations);
* ``E1xx`` — netlist / structural Verilog;
* ``E2xx`` — zone configuration and stimuli;
* ``E3xx`` — FMEA worksheet;
* ``E4xx`` — campaign store.

Each entry maps the code to a short kebab-case title (shown in machine
output) and a default remediation hint (shown when the emitting site
does not provide a more specific one).  Severity is **not** part of the
code: the same code may be an error on one surface and a warning on
another (e.g. an orphan blob is an error for ``store fsck`` but only a
warning inside ``doctor``).
"""

from __future__ import annotations

#: code -> (title, default remediation hint)
CODES: dict[str, tuple[str, str]] = {
    # ------------------------------------------------------------ E0xx
    "E001": ("internal-error",
             "re-run with SOCFMEA_DEBUG=1 to see the full traceback "
             "and report the issue"),
    "E002": ("nothing-to-audit",
             "pass a project directory or at least one of --netlist/"
             "--zones/--worksheet/--stimuli/--store"),
    # ------------------------------------------------------------ E1xx
    "E100": ("netlist-unreadable",
             "check the path and that the file is a structural "
             "Verilog netlist"),
    "E101": ("no-module-found",
             "the file contains no `module ... endmodule` block in "
             "the structural subset emitted by `soc-fmea verilog`"),
    "E102": ("bad-instance-arity",
             "the primitive cell was instantiated with the wrong pin "
             "count; re-emit the netlist or fix the instance"),
    "E103": ("malformed-net-reference",
             "instance pins must be sanitized `n<id>` wires"),
    "E104": ("malformed-flop-instance",
             "DFF cells need at least (clk, q, d) pins plus one per "
             "E/R suffix"),
    "E105": ("net-index-out-of-range",
             "the instance references a wire with no `wire n<id>;` "
             "declaration"),
    "E110": ("unknown-cell-type",
             "the cell is not part of the structural interchange "
             "subset and was ignored"),
    "E111": ("incomplete-memory-block",
             "a `// MEM` header was not followed by addr/wdata/rdata "
             "pin comments"),
    "E120": ("combinational-loop",
             "the netlist cannot be levelized into a feed-forward "
             "program; break the cycle (e.g. insert a flop) or fix "
             "the extraction"),
    # ------------------------------------------------------------ E2xx
    "E200": ("unknown-zone",
             "the zone name does not match any extracted sensible "
             "zone of this netlist"),
    "E201": ("zone-config-unreadable",
             "the zone configuration is not valid JSON of the "
             "`soc-fmea export` schema"),
    "E202": ("zone-config-bad-field",
             "fix the named field or re-export the configuration"),
    "E203": ("zone-unknown-net",
             "the zone definition references a net name absent from "
             "the netlist — re-extract after netlist edits"),
    "E204": ("zone-kind-mismatch",
             "the stored zone kind differs from the extracted one"),
    "E205": ("unknown-observation-point",
             "the observation point is not an output of this netlist"),
    "E210": ("stimuli-unreadable",
             "the stimuli file is not valid JSON of the "
             "`{\"schema\": 1, \"cycles\": [...]}` form"),
    "E211": ("stimuli-unknown-signal",
             "the workload drives a signal that is not a primary "
             "input — typically a typo or a stale name after a "
             "netlist edit"),
    "E212": ("stimuli-undriven-input",
             "a primary input is never driven and would silently hold "
             "its reset value for the whole workload"),
    "E213": ("stimuli-bad-value",
             "stimuli values must be integers"),
    # ------------------------------------------------------------ E3xx
    "E300": ("worksheet-unreadable",
             "the worksheet is not a valid JSON object"),
    "E301": ("worksheet-schema-unsupported",
             "the schema version has no registered migration; "
             "re-export the worksheet with this tool version"),
    "E302": ("worksheet-missing-field",
             "add the named field (see fmea/io.py for the schema)"),
    "E303": ("worksheet-bad-type",
             "the named field has the wrong JSON type"),
    "E304": ("worksheet-bad-enum",
             "the named field must be one of the documented "
             "enumeration values"),
    "E305": ("worksheet-bad-claim",
             "each claim needs `technique`, `ddf` and `software` "
             "fields"),
    "E310": ("worksheet-zone-not-in-config",
             "the worksheet prices a zone the zone configuration "
             "does not define"),
    # ------------------------------------------------------------ E4xx
    "E400": ("store-unreadable",
             "the path is not a campaign store (missing store.db)"),
    "E401": ("corrupt-blob",
             "the object no longer matches its content address; "
             "`store fsck --repair` deletes it so the next campaign "
             "recomputes it"),
    "E402": ("golden-missing-blob",
             "the golden index points at a blob that does not exist; "
             "`store fsck --repair` drops the index entry"),
    "E403": ("run-missing-golden",
             "a recorded run references a golden blob that does not "
             "exist; `store fsck --repair` clears the reference"),
    "E404": ("dangling-run-rows",
             "run-scoped rows reference a run that no longer exists; "
             "`store fsck --repair` deletes them"),
    "E405": ("unparsable-outcome",
             "the cached outcome row cannot be decoded; `store fsck "
             "--repair` deletes it so the fault is re-simulated"),
    "E406": ("dangling-anomaly",
             "a quarantine record points at a fault no recorded run "
             "knows; `store fsck --repair` deletes it"),
    "E407": ("orphan-blob",
             "the blob is referenced by no golden entry or run; "
             "`store fsck --repair` reclaims it"),
    "E408": ("interrupted-run",
             "a run is still marked `running` — it was killed; "
             "re-running the campaign resumes and completes it"),
    "E409": ("store-busy",
             "another process held the store's write lock past the "
             "retry budget; let the other campaign finish or point "
             "this one at a different --store"),
    "E410": ("stale-job-lease",
             "a job's lease deadline passed without a heartbeat — "
             "its worker died; any `soc-fmea serve` re-claims it, or "
             "`store fsck --repair` releases it back to the queue"),
    "E411": ("orphan-job-row",
             "a job references a campaign run the store no longer "
             "records; `store fsck --repair` clears the reference"),
    "E412": ("dead-letter-evidence-gone",
             "a dead-letter job's recorded run was garbage-collected; "
             "`store fsck --repair` deletes the job row — re-submit "
             "if the campaign is still wanted"),
    "E413": ("store-out-of-space",
             "the disk under the store is full; free space and re-run "
             "— the store is consistent and resumes warm, and queued "
             "jobs pause rather than dead-letter"),
    "E414": ("store-io-error",
             "the device under the store reported an i/o error; check "
             "the filesystem, then `store fsck` — checksummed blobs "
             "and WAL transactions bound the damage"),
    # ------------------------------------------------- E42x campaign API
    "E420": ("api-bad-request",
             "the request body is not valid JSON of the documented "
             "shape, or a field failed validation; see the attached "
             "diagnostics"),
    "E421": ("api-unauthorized",
             "pass a valid token in the `Authorization: Bearer` "
             "header (tokens live in the server's --auth file)"),
    "E422": ("api-forbidden",
             "the token is valid but not entitled to the requested "
             "project; use the project the token maps to"),
    "E423": ("api-not-found",
             "no such route or job id"),
    "E424": ("api-payload-too-large",
             "the request body exceeds the server's size bound; "
             "campaign submissions are small JSON documents — check "
             "what the client is sending"),
    "E425": ("api-timeout",
             "the client did not deliver a complete request in time; "
             "retry over a healthier connection"),
    "E426": ("api-quota-exceeded",
             "the project is at its queued-job or faults-per-day "
             "quota; wait for jobs to finish (see Retry-After) or "
             "raise the quota in the server's --auth file"),
    "E427": ("api-overloaded",
             "the queue is past its depth watermark; the server is "
             "shedding load — retry after the Retry-After delay"),
    "E428": ("api-unavailable",
             "the store under the server is paused on a disk fault "
             "(full disk / i/o error); the queue holds jobs instead "
             "of dead-lettering — retry after the Retry-After delay"),
    # ---------------------------------------- E43x campaign request
    "E430": ("request-bad-value",
             "the named campaign parameter is out of range; fix the "
             "flag (CLI) or JSON field (API) and re-submit"),
    "E431": ("request-unknown-variant",
             "the design variant is not one of the registered "
             "subsystem variants"),
    "E432": ("request-unknown-engine",
             "engine must be `interpreted` or `compiled`"),
}


def describe(code: str) -> str:
    """Short kebab-case title of a code (``unknown-code`` fallback)."""
    entry = CODES.get(code)
    return entry[0] if entry else "unknown-code"


def default_hint(code: str) -> str | None:
    entry = CODES.get(code)
    return entry[1] if entry else None


def is_known(code: str) -> bool:
    return code in CODES
