"""Structured diagnostics: coded, located, collectable failures.

A TÜV-auditable flow must fail loudly, precisely and recoverably when
an artifact is malformed — never with a raw Python traceback.  Every
ingestion and persistence surface of the tool therefore reports
problems as :class:`Diagnostic` records: a stable code from the
taxonomy in :mod:`repro.diagnostics.codes`, a severity, a human
message, an optional ``file:line:column`` source location and a
remediation hint.  Diagnostics are *collected* into a
:class:`DiagnosticReport` instead of raised on first error, so one run
of ``soc-fmea doctor`` (or one failed load) surfaces **all** the
problems of an artifact at once.

Surfaces that must abort raise :class:`DiagnosticError`, which carries
the full report; the CLI renders it to stderr and exits with code 2.
Domain exceptions multiply-inherit their legacy base so existing
callers keep working (``WorksheetFormatError`` is still a
``ValueError``, ``VerilogParseError`` a ``NetlistError``,
``ZoneLookupError`` a ``KeyError``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .codes import describe, default_hint

SEV_ERROR = "error"
SEV_WARNING = "warning"
SEV_INFO = "info"

_SEVERITIES = (SEV_ERROR, SEV_WARNING, SEV_INFO)


@dataclass(frozen=True)
class SourceLocation:
    """Where in an input artifact a diagnostic anchors (clickable)."""

    file: str | None = None
    line: int | None = None
    column: int | None = None

    def __str__(self) -> str:
        parts = [self.file or "<input>"]
        if self.line is not None:
            parts.append(str(self.line))
            if self.column is not None:
                parts.append(str(self.column))
        return ":".join(parts)


@dataclass(frozen=True)
class Diagnostic:
    """One coded finding about one input artifact."""

    code: str                       # stable taxonomy code, e.g. "E102"
    message: str
    severity: str = SEV_ERROR
    location: SourceLocation | None = None
    hint: str | None = None         # remediation; falls back to taxonomy

    def __post_init__(self):
        if self.severity not in _SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def title(self) -> str:
        return describe(self.code)

    @property
    def remediation(self) -> str | None:
        return self.hint or default_hint(self.code)

    def render(self) -> str:
        where = f"{self.location}: " if self.location else ""
        text = f"{self.code} {self.severity}: {where}{self.message}"
        hint = self.remediation
        if hint:
            text += f"\n    hint: {hint}"
        return text

    def to_dict(self) -> dict:
        out: dict = {"code": self.code, "severity": self.severity,
                     "title": self.title, "message": self.message}
        if self.location is not None:
            out["file"] = self.location.file
            out["line"] = self.location.line
            out["column"] = self.location.column
        if self.remediation:
            out["hint"] = self.remediation
        return out


@dataclass
class DiagnosticReport:
    """An ordered collection of diagnostics from one audit or load.

    The collection never raises while being filled — callers keep
    parsing/validating after the first problem so a single run surfaces
    every defect.  :meth:`raise_if_errors` converts an error-bearing
    report into a :class:`DiagnosticError` at the surface boundary.
    """

    diagnostics: list[Diagnostic] = field(default_factory=list)

    # ------------------------------------------------------------------
    def add(self, diagnostic: Diagnostic) -> Diagnostic:
        self.diagnostics.append(diagnostic)
        return diagnostic

    def _emit(self, severity: str, code: str, message: str,
              location: SourceLocation | None = None,
              file: str | None = None, line: int | None = None,
              column: int | None = None,
              hint: str | None = None) -> Diagnostic:
        if location is None and (file is not None or line is not None):
            location = SourceLocation(file=file, line=line,
                                      column=column)
        return self.add(Diagnostic(code=code, message=message,
                                   severity=severity, location=location,
                                   hint=hint))

    def error(self, code: str, message: str, **kw) -> Diagnostic:
        return self._emit(SEV_ERROR, code, message, **kw)

    def warn(self, code: str, message: str, **kw) -> Diagnostic:
        return self._emit(SEV_WARNING, code, message, **kw)

    def info(self, code: str, message: str, **kw) -> Diagnostic:
        return self._emit(SEV_INFO, code, message, **kw)

    def extend(self, other: "DiagnosticReport") -> None:
        self.diagnostics.extend(other.diagnostics)

    # ------------------------------------------------------------------
    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == SEV_ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity == SEV_WARNING]

    @property
    def ok(self) -> bool:
        return not self.errors

    def codes(self) -> set[str]:
        return {d.code for d in self.diagnostics}

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    # ------------------------------------------------------------------
    def summary(self) -> str:
        return (f"{len(self.errors)} error(s), "
                f"{len(self.warnings)} warning(s), "
                f"{len(self.diagnostics) - len(self.errors) - len(self.warnings)}"
                f" note(s)")

    def render(self, title: str | None = None) -> str:
        lines = []
        if title:
            lines.append(f"=== {title} ===")
        if not self.diagnostics:
            lines.append("no diagnostics — all checks passed")
        else:
            lines.extend(d.render() for d in self.diagnostics)
            lines.append(self.summary())
        return "\n".join(lines)

    def to_json_dict(self) -> dict:
        return {
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self, indent: int | None = 1) -> str:
        return json.dumps(self.to_json_dict(), indent=indent)

    # ------------------------------------------------------------------
    def raise_if_errors(self, exc_type: type | None = None) -> None:
        """Raise ``exc_type(report)`` when the report carries errors."""
        if self.errors:
            raise (exc_type or DiagnosticError)(self)


class DiagnosticError(Exception):
    """An operation failed with one or more coded diagnostics.

    ``str(err)`` renders the full report so legacy ``pytest.raises(...,
    match=...)`` assertions against the old one-line messages keep
    matching.
    """

    def __init__(self, report: DiagnosticReport | Diagnostic | str,
                 *extra):
        if isinstance(report, Diagnostic):
            single, report = report, DiagnosticReport()
            report.add(single)
        elif isinstance(report, str):
            message, report = report, DiagnosticReport()
            report.error("E001", message)
        self.report = report
        super().__init__(report.render(), *extra)

    def __str__(self) -> str:
        return self.args[0]

    @property
    def diagnostics(self) -> list[Diagnostic]:
        return self.report.diagnostics
