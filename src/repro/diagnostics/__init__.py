"""Structured diagnostics for every ingestion and persistence surface.

The subsystem has three parts:

* :mod:`~repro.diagnostics.core` — the :class:`Diagnostic` record
  (stable code, severity, message, source location, remediation hint),
  the collecting :class:`DiagnosticReport` and the carrying
  :class:`DiagnosticError`;
* :mod:`~repro.diagnostics.codes` — the E1xx/E2xx/E3xx/E4xx taxonomy;
* :mod:`~repro.diagnostics.project` — the ``soc-fmea doctor`` project
  audit that cross-checks netlist, zone configuration, worksheet,
  stimuli and store against each other.
"""

from .codes import CODES, default_hint, describe, is_known
from .core import (
    SEV_ERROR,
    SEV_INFO,
    SEV_WARNING,
    Diagnostic,
    DiagnosticError,
    DiagnosticReport,
    SourceLocation,
)

from .project import (
    CONVENTIONAL,
    ProjectAudit,
    audit_project,
    discover_project,
)

__all__ = [
    "CODES", "default_hint", "describe", "is_known",
    "SEV_ERROR", "SEV_INFO", "SEV_WARNING",
    "Diagnostic", "DiagnosticError", "DiagnosticReport",
    "SourceLocation",
    "CONVENTIONAL", "ProjectAudit", "audit_project",
    "discover_project",
]
