"""Whole-project audit behind ``soc-fmea doctor``.

The methodology's inputs — netlist, zone configuration, FMEA
worksheet, stimuli, campaign store — are produced by different tools
at different times and drift independently.  ``doctor`` loads every
artifact it can find, runs all per-file validators *and* the
cross-artifact consistency checks (zones vs netlist, stimuli vs input
ports, worksheet vs zone config, store invariants) and reports every
problem at once as coded diagnostics.  Nothing is modified.

Artifacts are discovered by convention inside a project directory
(``netlist.v``, ``zones.json``, ``worksheet.json``, ``stimuli.json``,
``.socfmea_store/``) and can be pinned individually by flag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from .core import DiagnosticReport

#: conventional artifact file names inside a project directory
CONVENTIONAL = {
    "netlist": "netlist.v",
    "zones": "zones.json",
    "worksheet": "worksheet.json",
    "stimuli": "stimuli.json",
    "store": ".socfmea_store",
}


def discover_project(directory) -> dict[str, Path]:
    """Paths of the conventional artifacts present in ``directory``."""
    root = Path(directory)
    found = {}
    for kind, name in CONVENTIONAL.items():
        path = root / name
        if path.exists():
            found[kind] = path
    return found


@dataclass
class ProjectAudit:
    """Everything one ``doctor`` pass looked at and concluded."""

    report: DiagnosticReport
    audited: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.report.ok

    def to_json_dict(self) -> dict:
        data = self.report.to_json_dict()
        data["audited"] = list(self.audited)
        return data

    def summary(self) -> str:
        what = ", ".join(self.audited) if self.audited else "nothing"
        return f"doctor audited {what}: {self.report.summary()}"


def audit_project(*, netlist=None, zones=None, worksheet=None,
                  stimuli=None, store=None,
                  report: DiagnosticReport | None = None
                  ) -> ProjectAudit:
    """Audit whichever artifacts are given; report ALL findings.

    Per-file validation first, then every cross-check whose inputs
    loaded: zone config and stimuli against the parsed netlist,
    worksheet zone references against the zone config, the campaign
    store against its own invariants (a read-only
    :func:`~repro.store.fsck.fsck_store` pass).
    """
    collect = report if report is not None else DiagnosticReport()
    audit = ProjectAudit(report=collect)

    circuit = None
    if netlist is not None:
        from ..hdl.verilog import parse_verilog_file
        circuit = parse_verilog_file(netlist, report=collect)
        audit.audited.append(f"netlist {netlist}")

    zone_config = None
    if zones is not None:
        from ..zones.io import load_zone_config
        zone_config = load_zone_config(zones, report=collect)
        audit.audited.append(f"zone config {zones}")

    zone_set = None
    if circuit is not None:
        from ..zones.extractor import extract_zones
        from ..zones.io import extraction_config_from_dict
        config = None
        if zone_config is not None:
            # zone names depend on the extraction granularity the
            # config was exported with — reproduce it
            config = extraction_config_from_dict(
                zone_config, str(zones), collect)
        zone_set = extract_zones(circuit, config,
                                 analyze_cones=False)

    if zone_config is not None:
        if zone_set is not None:
            from ..zones.io import resolve_zone_config
            resolve_zone_config(zone_config, zone_set, circuit,
                                collect, source=str(zones))
        else:
            collect.info(
                "E002", f"no netlist available — zone config "
                        f"{zones} was shape-checked only",
                hint="pass --netlist (or add netlist.v) to "
                     "cross-check zones against the design")

    if worksheet is not None:
        from ..fmea.io import load_worksheet
        sheet = load_worksheet(worksheet, report=collect)
        audit.audited.append(f"worksheet {worksheet}")
        if sheet is not None and zone_config is not None:
            configured = {z["name"] for z in zone_config["zones"]}
            seen = set()
            for entry in sheet.entries:
                if entry.zone not in configured \
                        and entry.zone not in seen:
                    seen.add(entry.zone)
                    collect.error(
                        "E310", f"worksheet row references zone "
                                f"{entry.zone!r} which is not in "
                                f"the zone config",
                        file=str(worksheet),
                        hint="re-export the zone config or rebuild "
                             "the worksheet")

    if stimuli is not None:
        from ..faultinjection.environment import (
            load_stimuli,
            validate_stimuli_report,
        )
        cycles = load_stimuli(stimuli, report=collect)
        audit.audited.append(f"stimuli {stimuli}")
        if cycles is not None and circuit is not None:
            validate_stimuli_report(circuit, cycles, collect,
                                    source=str(stimuli))
        elif cycles is not None and circuit is None:
            collect.info(
                "E002", f"no netlist available — stimuli {stimuli} "
                        f"were shape-checked only",
                hint="pass --netlist (or add netlist.v) to "
                     "cross-check signals against the input ports")

    if store is not None:
        from ..store.cache import CampaignCache
        from ..store.fsck import fsck_store
        audit.audited.append(f"store {store}")
        try:
            cache = CampaignCache(store)
        except Exception as err:
            collect.error(
                "E400", f"cannot open campaign store: {err}",
                file=str(store))
        else:
            try:
                fsck_store(cache, repair=False, report=collect)
            finally:
                cache.close()

    if not audit.audited:
        collect.error(
            "E002", "nothing to audit — no artifact was given or "
                    "discovered",
            hint="run inside a project directory containing "
                 "netlist.v / zones.json / worksheet.json / "
                 "stimuli.json, or pass artifacts explicitly")
    return audit
