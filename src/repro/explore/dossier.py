"""The exploration dossier: frontier, recommendation, evidence.

Ranks the Pareto front, recommends the cheapest configuration meeting
the SIL target, and backs the recommendation with per-zone ΔSFF
evidence (which zones the accepted mitigations de-risked, by how much)
plus the store-backed lineage of every evaluated variant — run ids,
warm-hit counts and the faults actually simulated versus what cold
per-variant campaigns would have cost.
"""

from __future__ import annotations

from ..iec61508.sil import required_sff
from ..reporting.tables import pct, render_kv, render_table
from .search import ExplorationResult
from .transforms import TRANSFORM_LIBRARY

RULE = "=" * 70


def _point_label(evaluated) -> str:
    name = evaluated.point.name
    return name if len(name) <= 44 else name[:41] + "..."


def zone_sff_deltas(base_point, improved_point,
                    top: int = 10) -> list[tuple[str, float, float]]:
    """Per-zone (λDU before, λDU after) movements, biggest first.

    λDU is the quantity that erodes the SFF, so "this zone's
    dangerous-undetected rate fell from X to Y FIT" is the per-zone
    evidence behind an SFF delta.  Zones are matched by name; a zone
    whose protection changed its shape (e.g. parity registers added)
    contributes its full before/after rate.
    """
    before = base_point.build().worksheet().totals_by_zone()
    after = improved_point.build().worksheet().totals_by_zone()
    rows = []
    for zone in set(before) | set(after):
        du_b = before[zone].lambda_du if zone in before else 0.0
        du_a = after[zone].lambda_du if zone in after else 0.0
        if abs(du_b - du_a) > 1e-12:
            rows.append((zone, du_b, du_a))
    rows.sort(key=lambda r: -(r[1] - r[2]))
    return rows[:top]


def render_explore_dossier(result: ExplorationResult,
                           zone_evidence: bool = True) -> str:
    """The full exploration dossier text."""
    config = result.config
    parts: list[str] = [RULE,
                        f"EXPLORATION DOSSIER — {config.variant} "
                        f"x{config.banks} banks",
                        RULE]

    # 1. the search
    parts.append(render_kv([
        ("target", f"SFF >= {pct(config.target_sff, 0)} "
                   f"(SIL3 @ HFT={config.hft} needs "
                   f"{pct(required_sff_safe(config), 0)})"),
        ("campaign budget", config.budget),
        ("points evaluated", len(result.evaluations)),
        ("candidate steps considered", result.steps_considered),
        ("workload", "full" if config.full else "quick"),
    ], title="\n1. search setup"))

    # 2. evaluation trace
    rows = []
    for i, ev in enumerate(result.evaluations):
        rows.append([
            i, _point_label(ev), ev.cost.scalar,
            pct(ev.claimed_sff),
            pct(ev.measured_dc) if ev.measured_dc is not None
            else "n/a",
            f"{ev.hits}/{ev.hits + ev.misses}",
            (ev.sil_at(config.hft).name
             if ev.sil_at(config.hft) else "none"),
        ])
    parts.append(render_table(
        ["#", "design point", "cost", "claimed SFF", "measured DC",
         "warm", "SIL"],
        rows, title="\n2. evaluation trace (store-backed lineage)"))

    # 3. the Pareto front
    rows = []
    for ev in result.front.points():
        marker = ""
        if result.recommended is not None and \
                ev.point == result.recommended.point:
            marker = " <= recommended"
        rows.append([_point_label(ev), ev.cost.scalar,
                     pct(ev.claimed_sff),
                     (ev.sil_at(config.hft).name
                      if ev.sil_at(config.hft) else "none") + marker])
    parts.append(render_table(
        ["design point", "cost", "claimed SFF", "SIL"],
        rows, title="\n3. Pareto front (cost vs SFF, non-dominated)"))

    # 4. recommendation
    parts.append("\n4. recommendation")
    if result.recommended is None:
        parts.append("   no point evaluated — nothing to recommend")
    else:
        rec = result.recommended
        verdict = "MEETS TARGET" if result.target_met else \
            "TARGET NOT MET (best available)"
        applied = [
            f"bank {bank}: {TRANSFORM_LIBRARY[key].title}"
            for bank, key in rec.point.applied] or ["(base design)"]
        parts.append(render_kv([
            ("recommended", rec.point.name),
            ("verdict", verdict),
            ("claimed SFF", pct(rec.claimed_sff)),
            ("SIL @ HFT=%d" % config.hft,
             rec.sil_at(config.hft).name
             if rec.sil_at(config.hft) else "none"),
            ("structural cost",
             f"{rec.cost.gate_delta:+d} gates, "
             f"{rec.cost.flop_delta:+d} flops "
             f"(scalar {rec.cost.scalar})"),
            ("measured DC", pct(rec.measured_dc)
             if rec.measured_dc is not None else "n/a"),
            ("campaign run", f"run {rec.run_id}"
             + (f", job {rec.job_id}" if rec.job_id else "")),
        ]))
        parts.append("   mechanisms:")
        parts.extend(f"     - {line}" for line in applied)

        if zone_evidence and rec.point.applied:
            deltas = zone_sff_deltas(result.base.point, rec.point)
            rows = [[zone, f"{du_b:.4f}", f"{du_a:.4f}",
                     f"{du_b - du_a:+.4f}"]
                    for zone, du_b, du_a in deltas]
            if rows:
                parts.append(render_table(
                    ["zone", "λDU before", "λDU after", "delta"],
                    rows,
                    title="\n   per-zone evidence (FIT, top movers)"))

    # 5. incremental-store economics
    pairs = [
        ("faults simulated", result.total_simulated),
        ("cold equivalent",
         f"{result.cold_faults} (every variant from scratch)"),
        ("warm hits / lookups",
         f"{result.total_hits}/"
         f"{result.total_hits + result.total_misses}"),
        ("hit rate", pct(result.hit_rate)),
        ("hit rate (incremental phase)",
         f"{pct(result.incremental_hit_rate)} "
         "(excluding the cold base seed)"),
    ]
    if result.verification is not None:
        ver = result.verification
        ident = (result.recommended is not None
                 and ver.measured_dc == result.recommended.measured_dc
                 and ver.safe_fraction ==
                 result.recommended.safe_fraction)
        pairs.append(("verification re-run",
                      f"warm {ver.hits}/{ver.hits + ver.misses}, "
                      f"metrics {'bit-identical' if ident else 'DIFFER'}"))
    parts.append(render_kv(
        pairs, title="\n5. incremental-campaign economics"))

    parts.append("\n6. search log")
    parts.extend(f"   {line}" for line in result.log)
    parts.append(RULE)
    return "\n".join(parts)


def required_sff_safe(config) -> float:
    """SIL3's SFF floor at the configured HFT (for the header line)."""
    from ..iec61508.sil import SIL
    try:
        return required_sff(SIL.SIL3, config.hft)
    except Exception:
        return 0.99
