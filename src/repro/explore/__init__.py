"""Design-space exploration of protection mechanisms (paper §6).

The paper's arc — a baseline memory sub-system at SFF ≈ 95 % that
fails SIL3, improved step by step (addresses folded into the ECC,
write-buffer parity, checkers after the coder and the decoder pipe,
distributed syndrome checking, SW start-up tests) until SFF ≥ 99 % —
is a search problem: walk the cost-vs-SFF Pareto front over mitigation
variants, guided by the criticality ranking, until the SIL target is
met or the frontier is exhausted.

The content-addressed campaign store makes the walk incremental: a
candidate that changes one bank's protection re-simulates only the
fault cones that bank touches; every other cone is a warm hit.

* :mod:`~repro.explore.transforms` — the mitigation library and
  composable design points with structural costs;
* :mod:`~repro.explore.search` — the Pareto-front driver over
  :class:`~repro.service.core.CampaignService` campaigns;
* :mod:`~repro.explore.dossier` — the exploration dossier with the
  recommendation and its per-zone evidence.
"""

from .dossier import render_explore_dossier
from .search import (
    EvaluatedPoint,
    ExplorationResult,
    ExploreConfig,
    ParetoFront,
    explore,
)
from .transforms import (
    TRANSFORM_LIBRARY,
    DesignPoint,
    MitigationTransform,
    StructuralCost,
    structural_cost,
    touched_zones,
    transforms_for_zone,
)

__all__ = [
    "TRANSFORM_LIBRARY", "DesignPoint", "EvaluatedPoint",
    "ExplorationResult", "ExploreConfig", "MitigationTransform",
    "ParetoFront", "StructuralCost", "explore",
    "render_explore_dossier", "structural_cost", "touched_zones",
    "transforms_for_zone",
]
