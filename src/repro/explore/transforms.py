"""The mitigation-transform library and composable design points.

Each :class:`MitigationTransform` is a config-level netlist transform:
applying it to a bank of the scaled design
(:class:`~repro.soc.banked.BankedMemorySubsystem`) re-elaborates that
bank with one §6 protection mechanism enabled.  Transforms carry the
zone patterns whose diagnostic coverage they raise — the hook that
lets the search seed candidates from the criticality ranking: a
critical zone matches the patterns of the transforms that would
protect it.

A :class:`DesignPoint` is a set of ``(bank, transform)`` applications
over a base variant.  Its identity is canonical (applications are
sorted and deduplicated), its structural cost is measured on the
elaborated netlist (gate/flop delta against the base point), and the
cones it touches are reported exactly, by comparing per-fault store
fingerprints between the two elaborations — the same fingerprints the
campaign cache dedupes on, so "untouched" provably means "warm hit".
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatch


@dataclass(frozen=True)
class MitigationTransform:
    """One config-level protection mechanism (a §6 improvement)."""

    key: str                 # the SubsystemConfig flag it sets
    title: str
    kind: str                # parity | ecc | duplication | checker |
    #                          scrubbing | software
    description: str
    #: zone-name patterns (relative to one bank) whose coverage the
    #: mechanism raises — matched against the criticality ranking
    zone_patterns: tuple[str, ...] = ()
    #: True for mechanisms that change only the diagnostic *plan*
    #: (claimed software coverage), not the netlist
    plan_only: bool = False


#: the §6 mechanisms, keyed by their config flag
TRANSFORM_LIBRARY: dict[str, MitigationTransform] = {
    t.key: t for t in (
        MitigationTransform(
            key="address_in_ecc", title="addresses folded into ECC",
            kind="ecc",
            description="fold the address into the SEC-DED code so "
                        "address-path corruption is detected as a "
                        "data error",
            zone_patterns=("memarray/*", "memctrl/latch/*",
                           "fmem/decoder/*")),
        MitigationTransform(
            key="write_buffer_parity", title="write-buffer parity",
            kind="parity",
            description="parity bits across the write-buffer data, "
                        "address and valid registers",
            zone_patterns=("fmem/wbuf/*",)),
        MitigationTransform(
            key="coder_checker", title="checker after the coder",
            kind="checker",
            description="re-decode immediately after encoding and "
                        "alarm on disagreement",
            zone_patterns=("fmem/coder/*",)),
        MitigationTransform(
            key="redundant_pipe_checker",
            title="redundant decoder-pipe checker",
            kind="duplication",
            description="double-redundant checker on the decoder "
                        "pipeline registers, with the no-error bypass",
            zone_patterns=("fmem/decoder/pipe*",)),
        MitigationTransform(
            key="distributed_syndrome",
            title="distributed syndrome checking", kind="checker",
            description="split syndrome reduction with per-slice "
                        "cross-checks (data/check/address alarms)",
            zone_patterns=("fmem/decoder/*", "critical:*")),
        MitigationTransform(
            key="sw_startup_tests", title="SW start-up tests",
            kind="software",
            description="memory-controller start-up self-tests "
                        "claimed as software diagnostic coverage",
            zone_patterns=("memctrl/*", "mce/*"),
            plan_only=True),
        MitigationTransform(
            key="scrub_parity", title="scrubber register parity",
            kind="scrubbing",
            description="parity on the repair-engine registers",
            zone_patterns=("fmem/scrub/*",)),
    )
}


def transforms_for_zone(zone_name: str) -> list[MitigationTransform]:
    """Transforms whose patterns cover a (bank-local) zone name."""
    local = zone_name
    if "/" in local and local.split("/", 1)[0].startswith("bank"):
        local = local.split("/", 1)[1]
    for head in ("block:", ):
        if local.startswith(head):
            local = local[len(head):]
            if local.startswith("bank") and "/" in local:
                local = local.split("/", 1)[1]
    out = []
    for t in TRANSFORM_LIBRARY.values():
        if any(fnmatch(local, pat) for pat in t.zone_patterns):
            out.append(t)
    return out


@dataclass(frozen=True)
class DesignPoint:
    """A named point of the design space: base variant + transforms.

    ``applied`` is a canonical (sorted, deduplicated) tuple of
    ``(bank, transform_key)`` pairs; ``bank`` is an index into the
    banked design.  Two points composed in different orders compare
    equal — design-point identity is the *set* of applications.
    """

    variant: str = "baseline"
    banks: int = 2
    applied: tuple[tuple[int, str], ...] = ()

    def __post_init__(self):
        canonical = tuple(sorted(set(self.applied)))
        if canonical != self.applied:
            object.__setattr__(self, "applied", canonical)
        for bank, key in self.applied:
            if key not in TRANSFORM_LIBRARY:
                raise ValueError(f"unknown transform {key!r}")
            if not 0 <= bank < self.banks:
                raise ValueError(f"bank {bank} out of range")

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        if not self.applied:
            return self.variant
        steps = "+".join(f"b{bank}:{key}"
                         for bank, key in self.applied)
        return f"{self.variant}+{steps}"

    def with_transform(self, bank: int, key: str) -> "DesignPoint":
        return DesignPoint(variant=self.variant, banks=self.banks,
                           applied=self.applied + ((bank, key),))

    def bank_flags(self) -> list[dict]:
        """Per-bank flag overrides, the `CampaignRequest` encoding."""
        flags: list[dict] = [{} for _ in range(self.banks)]
        for bank, key in self.applied:
            flags[bank][key] = True
        return flags

    def transforms_on(self, bank: int) -> list[MitigationTransform]:
        return [TRANSFORM_LIBRARY[key] for b, key in self.applied
                if b == bank]

    def build(self):
        """Elaborate this point into a banked subsystem."""
        from ..service.core import make_subsystem
        return make_subsystem(self.variant, banks=self.banks,
                              bank_flags=self.bank_flags())

    def request(self, **kw):
        """The campaign request that evaluates this point."""
        from ..service.core import CampaignRequest
        return CampaignRequest(variant=self.variant, banks=self.banks,
                               bank_flags=self.bank_flags(), **kw)

    def to_dict(self) -> dict:
        return {"variant": self.variant, "banks": self.banks,
                "applied": [list(pair) for pair in self.applied]}

    @classmethod
    def from_dict(cls, data: dict) -> "DesignPoint":
        return cls(variant=data["variant"], banks=data["banks"],
                   applied=tuple((int(b), k)
                                 for b, k in data["applied"]))


# ----------------------------------------------------------------------
# structural cost and touched cones
# ----------------------------------------------------------------------
@dataclass
class StructuralCost:
    """Gate/flop tally of a point and its delta against the base."""

    gates: int
    flops: int
    gate_delta: int = 0
    flop_delta: int = 0

    @property
    def scalar(self) -> int:
        """The single cost number the Pareto walk minimises.

        Flops are weighted 4× gates: a register costs roughly that
        much more area/power than a 2-input gate in the technologies
        the paper targets, and it is the unit the §6 trade-offs are
        argued in (parity *registers*, redundant *pipe* stages).
        """
        return self.gate_delta + 4 * self.flop_delta


def _tally(subsystem) -> tuple[int, int]:
    circuit = subsystem.circuit
    return len(circuit.gates), len(circuit.flops)


def structural_cost(point: DesignPoint,
                    base: "DesignPoint | None" = None,
                    subsystem=None, base_subsystem=None
                    ) -> StructuralCost:
    """Measured on the elaborated netlists, not estimated.

    Pre-built subsystems can be passed to avoid re-elaboration.
    """
    base = base or DesignPoint(variant=point.variant,
                               banks=point.banks)
    gates, flops = _tally(subsystem or point.build())
    if base == point:
        return StructuralCost(gates=gates, flops=flops)
    bgates, bflops = _tally(base_subsystem or base.build())
    return StructuralCost(gates=gates, flops=flops,
                          gate_delta=gates - bgates,
                          flop_delta=flops - bflops)


def touched_zones(env_a, env_b) -> tuple[set[str], set[str], int]:
    """Compare two environments' per-fault store fingerprints.

    Returns ``(touched, untouched, shared_faults)``: the zones whose
    faults would miss the cache when moving from environment *a* to
    *b*, the zones provably served warm, and how many fault names the
    two fault lists share.  A zone with any changed, added or removed
    fault counts as touched.  These are the exact fingerprints the
    campaign cache keys on, so the "untouched" set is a proof of
    warm-hit reuse, not an estimate.
    """
    from ..store.fingerprint import FingerprintContext

    def fingerprints(env):
        # key on (name, offset) — the collapser's identity — because
        # fault *names* alone collide (same-flop SEUs at two instants)
        ctx = FingerprintContext.from_spec(env.spec())
        return {(f.name, getattr(f, "offset", None)):
                (ctx.fault_fingerprint(f), f.zone or "?")
                for f in env.candidates().faults}

    fp_a, fp_b = fingerprints(env_a), fingerprints(env_b)
    touched: set[str] = set()
    untouched: set[str] = set()
    shared = 0
    for name, (fp, zone) in fp_b.items():
        if name in fp_a:
            shared += 1
            if fp_a[name][0] == fp:
                untouched.add(zone)
            else:
                touched.add(zone)
        else:
            touched.add(zone)
    for name, (fp, zone) in fp_a.items():
        if name not in fp_b:
            touched.add(zone)
    untouched -= touched
    return touched, untouched, shared
