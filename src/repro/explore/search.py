"""The Pareto-front exploration driver (paper §6 as a search).

The walk is greedy and criticality-seeded:

1. evaluate the base point with a full campaign;
2. rank zones by λDU share (:func:`~repro.fmea.ranking.rank_zones`)
   and turn every (critical zone → covering transform) pair into a
   candidate step on that zone's bank;
3. score the open candidate steps *analytically* — elaborate the
   candidate, read the worksheet's claimed SFF and the measured
   gate/flop delta, no simulation — and take the best claimed-ΔSFF
   per unit cost;
4. evaluate the chosen point with a campaign routed through
   :class:`~repro.service.core.CampaignService` — queued as a durable
   job, lease-recovered if a worker dies, and deduped by the
   content-addressed store so only the cones the step touched are
   re-simulated;
5. insert into the :class:`ParetoFront`, pruning dominated points,
   until the SFF target is met, the campaign budget is spent, or no
   candidate remains.

A final verification campaign re-runs the recommended configuration;
by construction it must be served entirely warm from the store, and
its metrics must be bit-identical to the accepted evaluation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..fmea.ranking import rank_zones
from ..iec61508.sil import SIL, max_sil
from ..soc.banked import bank_of_zone
from .transforms import (
    TRANSFORM_LIBRARY,
    DesignPoint,
    StructuralCost,
    structural_cost,
    transforms_for_zone,
)


@dataclass
class ExploreConfig:
    """One exploration's policy knobs (the CLI flags)."""

    variant: str = "baseline"
    banks: int = 2
    target_sff: float = 0.99
    hft: int = 0
    #: campaign budget: maximum evaluated points including the base
    #: (verification is free — it must be warm)
    budget: int = 12
    #: analytic scoring looks at most this many open candidates per
    #: step (they are criticality-ordered, so the tail rarely matters)
    probe_width: int = 3
    full: bool = False
    engine: str = "compiled"
    workers: int = 1
    #: route evaluations through the durable job queue (the default);
    #: False runs them in-process, for tests
    use_queue: bool = True
    project: str = "default"
    verify: bool = True


@dataclass
class EvaluatedPoint:
    """One design point with its campaign evidence."""

    point: DesignPoint
    cost: StructuralCost
    claimed_sff: float
    claimed_dc: float
    measured_dc: float | None = None
    safe_fraction: float | None = None
    faults: int = 0
    hits: int = 0
    misses: int = 0
    simulated: int = 0
    run_id: int | None = None
    job_id: int | None = None
    exit_code: int = 0

    def sil_at(self, hft: int) -> SIL | None:
        return max_sil(self.claimed_sff, hft)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def dominates(a: EvaluatedPoint, b: EvaluatedPoint) -> bool:
    """Pareto dominance on (structural cost ↓, claimed SFF ↑)."""
    if a.cost.scalar > b.cost.scalar or a.claimed_sff < b.claimed_sff:
        return False
    return (a.cost.scalar < b.cost.scalar
            or a.claimed_sff > b.claimed_sff)


class ParetoFront:
    """The non-dominated evaluated points, cheapest first."""

    def __init__(self):
        self._points: list[EvaluatedPoint] = []

    def add(self, candidate: EvaluatedPoint) -> bool:
        """Insert unless dominated; prunes newly dominated points.
        Returns True if the candidate made the front."""
        for existing in self._points:
            if dominates(existing, candidate) or \
                    (existing.cost.scalar == candidate.cost.scalar
                     and existing.claimed_sff == candidate.claimed_sff):
                return False
        self._points = [p for p in self._points
                        if not dominates(candidate, p)]
        self._points.append(candidate)
        self._points.sort(key=lambda p: (p.cost.scalar,
                                         -p.claimed_sff))
        return True

    def points(self) -> list[EvaluatedPoint]:
        return list(self._points)

    def __len__(self) -> int:
        return len(self._points)

    def cheapest_meeting(self, target_sff: float
                         ) -> EvaluatedPoint | None:
        for p in self._points:           # already cost-ascending
            if p.claimed_sff >= target_sff:
                return p
        return None


@dataclass
class ExplorationResult:
    """Everything the dossier needs, in evaluation order."""

    config: ExploreConfig
    base: EvaluatedPoint
    evaluations: list[EvaluatedPoint] = field(default_factory=list)
    front: ParetoFront = field(default_factory=ParetoFront)
    recommended: EvaluatedPoint | None = None
    verification: EvaluatedPoint | None = None
    target_met: bool = False
    steps_considered: int = 0
    log: list[str] = field(default_factory=list)

    @property
    def total_simulated(self) -> int:
        sims = sum(e.simulated for e in self.evaluations)
        if self.verification is not None:
            sims += self.verification.simulated
        return sims

    @property
    def total_hits(self) -> int:
        hits = sum(e.hits for e in self.evaluations)
        if self.verification is not None:
            hits += self.verification.hits
        return hits

    @property
    def total_misses(self) -> int:
        misses = sum(e.misses for e in self.evaluations)
        if self.verification is not None:
            misses += self.verification.misses
        return misses

    @property
    def hit_rate(self) -> float:
        total = self.total_hits + self.total_misses
        return self.total_hits / total if total else 0.0

    @property
    def incremental_hit_rate(self) -> float:
        """Warm-hit rate over the incremental phase only.

        The base seed campaign is excluded: it is the cold baseline
        every later campaign's reuse is measured against, so counting
        its misses would understate what the store saves on the walk.
        """
        hits = self.total_hits - self.base.hits
        misses = self.total_misses - self.base.misses
        total = hits + misses
        return hits / total if total else 0.0

    @property
    def cold_faults(self) -> int:
        """What cold per-variant campaigns would have simulated."""
        cold = sum(e.faults for e in self.evaluations)
        if self.verification is not None:
            cold += self.verification.faults
        return cold


# ----------------------------------------------------------------------
# evaluation: one campaign through the service
# ----------------------------------------------------------------------
def _run_point(service, point: DesignPoint, config: ExploreConfig,
               progress=None) -> dict:
    """Evaluate one point; returns the campaign's summary dict."""
    request = point.request(
        full=config.full, engine=config.engine,
        workers=config.workers)
    if not config.use_queue:
        outcome = service.run_campaign(request)
        summary = outcome.summary_dict()
        summary["job_id"] = None
        return summary
    from ..service.daemon import DaemonConfig, ServiceDaemon
    job_id = service.submit(request)
    daemon = ServiceDaemon(service.root, DaemonConfig(
        drain=True, verbose=False))
    daemon.worker_loop(0)
    job = service.status(job_id)
    if job is None or job.result is None:
        error = getattr(job, "error", None)
        detail = f": {json.dumps(error)}" if error else ""
        raise RuntimeError(
            f"exploration job {job_id} for {point.name!r} did not "
            f"complete{detail}")
    summary = dict(job.result)
    summary["job_id"] = job_id
    return summary


def _evaluate(service, point: DesignPoint, config: ExploreConfig,
              base_sub=None, progress=None) -> EvaluatedPoint:
    sub = point.build()
    cost = structural_cost(point, subsystem=sub,
                           base_subsystem=base_sub)
    summary = _run_point(service, point, config, progress=progress)
    return EvaluatedPoint(
        point=point, cost=cost,
        claimed_sff=summary.get("claimed_sff") or 0.0,
        claimed_dc=summary.get("claimed_dc") or 0.0,
        measured_dc=summary.get("measured_dc"),
        safe_fraction=summary.get("safe_fraction"),
        faults=summary.get("faults") or 0,
        hits=summary.get("hits") or 0,
        misses=summary.get("misses") or 0,
        simulated=summary.get("simulated") or 0,
        run_id=summary.get("run_id"),
        job_id=summary.get("job_id"),
        exit_code=summary.get("exit_code") or 0)


# ----------------------------------------------------------------------
# candidate generation: criticality-seeded steps
# ----------------------------------------------------------------------
def candidate_steps(worksheet, banks: int) -> list[tuple[int, str]]:
    """(bank, transform) steps ordered by the λDU share they attack.

    Every ranked zone proposes the transforms that cover it, on its
    own bank; zones that belong to no bank (shared bus/ports) propose
    the step on every bank.  The first proposal wins the ordering —
    λDU ranking is the paper's "ranking of sensible zones in terms of
    their criticality" driving which mitigation to try first.
    """
    seen: set[tuple[int, str]] = set()
    ordered: list[tuple[int, str]] = []
    for row in rank_zones(worksheet):
        bank = bank_of_zone(row.zone)
        targets = [bank] if bank is not None else list(range(banks))
        for transform in transforms_for_zone(row.zone):
            for b in targets:
                step = (b, transform.key)
                if step not in seen:
                    seen.add(step)
                    ordered.append(step)
    # anything the ranking never proposed (fully covered zones still
    # benefit from defence-in-depth steps) goes last, deterministic
    for key in TRANSFORM_LIBRARY:
        for b in range(banks):
            step = (b, key)
            if step not in seen:
                seen.add(step)
                ordered.append(step)
    return ordered


def _claimed_sff(point: DesignPoint, cache: dict) -> float:
    """Analytic score of a point: worksheet SFF, no simulation."""
    if point.applied not in cache:
        sub = point.build()
        cache[point.applied] = sub.worksheet().totals().sff
    return cache[point.applied]


# ----------------------------------------------------------------------
# the walk
# ----------------------------------------------------------------------
def explore(service, config: ExploreConfig | None = None,
            progress=None) -> ExplorationResult:
    """Walk the cost-vs-SFF front until target, budget, or frontier
    exhaustion.  ``service`` is a
    :class:`~repro.service.core.CampaignService`."""
    config = config or ExploreConfig()

    def say(line: str) -> None:
        if progress is not None:
            progress(line)

    base_point = DesignPoint(variant=config.variant,
                             banks=config.banks)
    base_sub = base_point.build()
    say(f"evaluating base point {base_point.name!r} "
        f"({config.banks} banks)")
    base = _evaluate(service, base_point, config, base_sub=base_sub,
                     progress=progress)
    result = ExplorationResult(config=config, base=base)
    result.evaluations.append(base)
    result.front.add(base)
    result.log.append(
        f"base {base_point.name}: SFF {base.claimed_sff:.4%}, "
        f"cost 0, measured DC "
        f"{(base.measured_dc or 0.0):.4%}")

    steps = candidate_steps(base_sub.worksheet(), config.banks)
    result.steps_considered = len(steps)
    score_cache: dict = {base_point.applied: base.claimed_sff}

    current = base
    budget = max(1, config.budget) - 1   # base consumed one
    while budget > 0 and current.claimed_sff < config.target_sff:
        open_steps = [s for s in steps
                      if s not in current.point.applied]
        if not open_steps:
            result.log.append("frontier exhausted: no step left")
            break
        # analytic probe of the criticality-ordered head
        best = None
        for step in open_steps[:config.probe_width]:
            candidate = current.point.with_transform(*step)
            sff = _claimed_sff(candidate, score_cache)
            gain = sff - current.claimed_sff
            if best is None or gain > best[1]:
                best = (candidate, gain, step)
        candidate, gain, step = best
        if gain <= 0:
            # head of the ranking is a no-op from here; drop it and
            # let the next-ranked steps bid
            steps.remove(step)
            result.log.append(
                f"pruned {step[1]} on bank {step[0]}: no claimed "
                f"SFF gain at this point")
            continue
        say(f"step: {step[1]} on bank {step[0]} "
            f"(claimed SFF -> {_claimed_sff(candidate, score_cache):.4%})")
        evaluated = _evaluate(service, candidate, config,
                              base_sub=base_sub, progress=progress)
        budget -= 1
        result.evaluations.append(evaluated)
        on_front = result.front.add(evaluated)
        result.log.append(
            f"step {evaluated.point.name}: SFF "
            f"{evaluated.claimed_sff:.4%}, cost "
            f"{evaluated.cost.scalar}, warm {evaluated.hits}/"
            f"{evaluated.hits + evaluated.misses}"
            f"{'' if on_front else ' (dominated)'}")
        current = evaluated

    recommended = result.front.cheapest_meeting(config.target_sff)
    result.target_met = recommended is not None
    result.recommended = recommended or (
        max(result.front.points(), key=lambda p: p.claimed_sff)
        if len(result.front) else None)

    if config.verify and result.recommended is not None:
        say(f"verification re-run of "
            f"{result.recommended.point.name!r}")
        verification = _evaluate(service, result.recommended.point,
                                 config, base_sub=base_sub,
                                 progress=progress)
        result.verification = verification
        result.log.append(
            f"verification {verification.point.name}: warm "
            f"{verification.hits}/{verification.hits + verification.misses},"
            f" measured DC {(verification.measured_dc or 0.0):.4%}")
    return result
