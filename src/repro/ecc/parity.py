"""Parity coding — reference model and gate-level generator.

Used by the improved §6 design for the write buffer ("adding parity bits
to the write buffer") and as the lowest-coverage diagnostic technique of
the IEC 61508 Annex A catalog.
"""

from __future__ import annotations

from ..hdl.builder import Module, Vec


def parity_of(value: int) -> int:
    """Even-parity bit of an integer (1 if an odd number of ones)."""
    return bin(value).count("1") & 1


def encode_parity(value: int, odd: bool = False) -> int:
    """Parity bit making the total (value + parity) even (or odd)."""
    p = parity_of(value)
    return p ^ 1 if odd else p


def check_parity(value: int, parity_bit: int, odd: bool = False) -> bool:
    """True when the stored parity matches the data."""
    return encode_parity(value, odd) == parity_bit


def build_parity(m: Module, data: Vec) -> Vec:
    """Gate-level even-parity generator (balanced XOR tree)."""
    return data.reduce_xor()


def build_parity_checker(m: Module, data: Vec, parity_bit: Vec) -> Vec:
    """Gate-level checker: output is 1 on a parity violation."""
    return build_parity(m, data) ^ parity_bit


def interleaved_parity(value: int, width: int, lanes: int) -> int:
    """Per-lane parity (bit i of result = parity of lane i).

    Interleaving makes adjacent multi-bit upsets land in different
    lanes, a standard memory-protection trick.
    """
    out = 0
    for lane in range(lanes):
        bits = 0
        for i in range(lane, width, lanes):
            bits ^= (value >> i) & 1
        out |= bits << lane
    return out


def build_interleaved_parity(m: Module, data: Vec, lanes: int) -> Vec:
    """Gate-level per-lane parity generator."""
    outs = []
    for lane in range(lanes):
        nets = data.nets[lane::lanes]
        outs.append(Vec(m, nets).reduce_xor())
    return m.cat(*outs)
