"""SEC-DED coding with the Hsiao (odd-weight-column modified Hamming)
construction used by the paper's coder/decoder.

Provides both a bit-exact reference model (:class:`SecDedCode`) and
gate-level generators (:func:`build_encoder`, :func:`build_syndrome`,
:func:`build_corrector`) that lower to XOR trees through the builder
DSL, so the decoder logic itself becomes part of the analyzed netlist —
exactly the situation §6 of the paper studies (errors *inside* the
coder/decoder are failure modes too).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from ..hdl.builder import Module, Vec
from ..hdl.library import equals_const


def hsiao_columns(r: int, count: int, skip_units: bool = True) -> list[int]:
    """``count`` distinct odd-weight columns of height ``r``.

    Unit-weight columns are reserved for the check bits themselves when
    ``skip_units`` is true.  Columns are produced weight-3 first (then
    5, 7, ...) which is the Hsiao minimum-weight heuristic.
    """
    cols: list[int] = []
    start_weight = 3 if skip_units else 1
    for weight in range(start_weight, r + 1, 2):
        for positions in combinations(range(r), weight):
            col = 0
            for p in positions:
                col |= 1 << p
            cols.append(col)
            if len(cols) == count:
                return cols
    raise ValueError(
        f"cannot build {count} odd-weight columns of height {r}")


def _comb(n: int, k: int) -> int:
    from math import comb
    return comb(n, k)


@dataclass
class DecodeResult:
    """Outcome of a SEC-DED decode."""

    data: int
    corrected: bool
    uncorrectable: bool
    error_position: int | None = None  # data-bit index if corrected


class SecDedCode:
    """A (k + r, k) Hsiao SEC-DED code.

    ``columns[i]`` is the r-bit syndrome signature of data bit ``i``;
    check bit ``j`` has the unit signature ``1 << j``.
    """

    def __init__(self, data_bits: int, check_bits: int | None = None):
        self.k = data_bits
        self.r = check_bits if check_bits is not None \
            else suggest_check_bits(data_bits)
        self.n = self.k + self.r
        self.columns = hsiao_columns(self.r, self.k)
        self._column_index = {col: i for i, col in enumerate(self.columns)}

    # -- reference model ------------------------------------------------
    def encode(self, data: int) -> int:
        """Check bits for a data word."""
        check = 0
        for i in range(self.k):
            if (data >> i) & 1:
                check ^= self.columns[i]
        return check

    def codeword(self, data: int) -> int:
        """Data in the low k bits, check bits above."""
        return (self.encode(data) << self.k) | (data & ((1 << self.k) - 1))

    def syndrome(self, data: int, check: int) -> int:
        return self.encode(data) ^ check

    def decode(self, data: int, check: int) -> DecodeResult:
        synd = self.syndrome(data, check)
        if synd == 0:
            return DecodeResult(data, False, False)
        weight = bin(synd).count("1")
        if weight % 2 == 0:
            return DecodeResult(data, False, True)
        if synd in self._column_index:
            pos = self._column_index[synd]
            return DecodeResult(data ^ (1 << pos), True, False, pos)
        if weight == 1:
            # error in a check bit: data is intact
            return DecodeResult(data, True, False)
        # odd-weight syndrome not matching any column: detectable,
        # not correctable (3+ bit error aliasing)
        return DecodeResult(data, False, True)

    def decode_word(self, codeword: int) -> DecodeResult:
        data = codeword & ((1 << self.k) - 1)
        check = codeword >> self.k
        return self.decode(data, check)

    def distance_check(self) -> bool:
        """All column signatures distinct and odd weight (SEC-DED)."""
        if len(set(self.columns)) != self.k:
            return False
        return all(bin(c).count("1") % 2 == 1 for c in self.columns)


def suggest_check_bits(data_bits: int) -> int:
    """Smallest r with enough non-unit odd-weight columns for the data.

    Yields the classic values: 8 data -> 5 check, 16 -> 6, 32 -> 7,
    64 -> 8.
    """
    r = 3
    while True:
        capacity = sum(_comb(r, w) for w in range(3, r + 1, 2))
        if capacity >= data_bits:
            return r
        r += 1


# ----------------------------------------------------------------------
# gate-level generators
# ----------------------------------------------------------------------
def build_encoder(m: Module, data: Vec, code: SecDedCode) -> Vec:
    """XOR-tree check-bit generator; returns the r check bits."""
    if len(data) != code.k:
        raise ValueError("data width does not match code")
    outs = []
    for j in range(code.r):
        taps = [data.nets[i] for i in range(code.k)
                if (code.columns[i] >> j) & 1]
        outs.append(Vec(m, taps).reduce_xor())
    return m.cat(*outs)


def build_syndrome(m: Module, data: Vec, check: Vec,
                   code: SecDedCode) -> Vec:
    """Syndrome = recomputed check XOR stored check."""
    recomputed = build_encoder(m, data, code)
    return recomputed ^ check


def build_corrector(m: Module, data: Vec, synd: Vec,
                    code: SecDedCode) -> tuple[Vec, Vec, Vec]:
    """Correction network.

    Returns ``(corrected_data, single_error, double_error)`` where
    ``single_error`` covers corrected data/check-bit errors and
    ``double_error`` is the DED alarm (even-weight non-zero syndrome or
    unmatched odd syndrome).
    """
    flips = []
    matched_any = m.const(0)
    for i in range(code.k):
        hit = equals_const(m, synd, code.columns[i])
        flips.append(hit)
        matched_any = matched_any | hit
    corrected = data ^ m.cat(*flips)

    synd_nonzero = synd.reduce_or()
    synd_odd = synd.reduce_xor()
    # single check-bit error: odd syndrome of weight 1 (a unit column)
    unit_hit = m.const(0)
    for j in range(code.r):
        unit_hit = unit_hit | equals_const(m, synd, 1 << j)
    single = matched_any | unit_hit
    double = synd_nonzero & (~synd_odd | (synd_odd & ~single & ~unit_hit))
    return corrected, single, double
