"""Address-augmented SEC-DED coding.

The paper's improved implementation "add[s] the addresses to the coding
(required as well by IEC61508)": the check bits stored with each word
are computed over the data *and* the word's address.  On read, the
syndrome is computed with the *requested* address — so no/wrong/multiple
addressing faults (an IEC 61508 variable-memory failure mode) surface as
non-zero syndromes even though the stored codeword is internally
consistent.

Address bits are assigned odd-weight Hsiao columns disjoint from the
data columns, so a single address-line error produces a syndrome that
does not alias to a correctable data-bit error.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hdl.builder import Module, Vec
from .hamming import DecodeResult, SecDedCode, hsiao_columns


class AddressedSecDed:
    """SEC-DED over data, with the word address folded into the check."""

    def __init__(self, data_bits: int, addr_bits: int,
                 check_bits: int | None = None):
        if check_bits is None:
            # need disjoint odd-weight columns for data *and* address
            from .hamming import suggest_check_bits
            check_bits = suggest_check_bits(data_bits + addr_bits)
        self.base = SecDedCode(data_bits, check_bits)
        self.k = self.base.k
        self.r = self.base.r
        self.n = self.base.n
        self.addr_bits = addr_bits
        all_cols = hsiao_columns(self.r, self.k + addr_bits)
        self.addr_columns = all_cols[self.k:]

    def address_signature(self, addr: int) -> int:
        sig = 0
        for i in range(self.addr_bits):
            if (addr >> i) & 1:
                sig ^= self.addr_columns[i]
        return sig

    def encode(self, data: int, addr: int) -> int:
        return self.base.encode(data) ^ self.address_signature(addr)

    def syndrome(self, data: int, check: int, addr: int) -> int:
        return self.encode(data, addr) ^ check

    def decode(self, data: int, check: int, addr: int) -> DecodeResult:
        # Remove the address contribution, then decode as plain SEC-DED.
        return self.base.decode(data,
                                check ^ self.address_signature(addr))

    def addressing_fault_detected(self, data: int, check: int,
                                  requested_addr: int) -> bool:
        """True when the syndrome reveals an addressing error."""
        synd = self.syndrome(data, check, requested_addr)
        return synd != 0 and synd not in self.base._column_index \
            and not _is_unit(synd)


def _is_unit(value: int) -> bool:
    return value != 0 and value & (value - 1) == 0


@dataclass
class AddressedWord:
    """A stored (data, check) pair produced for a given address."""

    data: int
    check: int
    addr: int


def build_address_signature(m: Module, addr: Vec,
                            code: AddressedSecDed) -> Vec:
    """Gate-level XOR network computing the address signature."""
    if len(addr) != code.addr_bits:
        raise ValueError("address width does not match code")
    outs = []
    for j in range(code.r):
        taps = [addr.nets[i] for i in range(code.addr_bits)
                if (code.addr_columns[i] >> j) & 1]
        if taps:
            outs.append(Vec(m, taps).reduce_xor())
        else:
            outs.append(m.const(0))
    return m.cat(*outs)


def build_addressed_encoder(m: Module, data: Vec, addr: Vec,
                            code: AddressedSecDed) -> Vec:
    """Gate-level check-bit generator over data and address."""
    from .hamming import build_encoder
    base_check = build_encoder(m, data, code.base)
    return base_check ^ build_address_signature(m, addr, code)
