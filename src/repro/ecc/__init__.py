"""Error-correcting-code substrate: parity and SEC-DED Hsiao codes."""

from .parity import (
    build_interleaved_parity,
    build_parity,
    build_parity_checker,
    check_parity,
    encode_parity,
    interleaved_parity,
    parity_of,
)
from .hamming import (
    DecodeResult,
    SecDedCode,
    build_corrector,
    build_encoder,
    build_syndrome,
    hsiao_columns,
    suggest_check_bits,
)
from .address import (
    AddressedSecDed,
    build_address_signature,
    build_addressed_encoder,
)

__all__ = [
    "parity_of", "encode_parity", "check_parity", "build_parity",
    "build_parity_checker", "interleaved_parity",
    "build_interleaved_parity",
    "DecodeResult", "SecDedCode", "hsiao_columns", "suggest_check_bits",
    "build_encoder", "build_syndrome", "build_corrector",
    "AddressedSecDed", "build_address_signature",
    "build_addressed_encoder",
]
