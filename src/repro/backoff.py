"""Decorrelated-jitter exponential backoff shared by retry loops.

N daemons recovering from the same fault (a store lock storm, a
crashed sibling's lease expiring) must not retry in lockstep: a
deterministic ``base * factor**attempt`` schedule synchronizes them
into a thundering herd.  Each delay is therefore drawn uniformly from
``[base, min(cap, base * factor**attempt)]`` — the jitter scheme of
Brooker, "Exponential Backoff And Jitter" (AWS, 2015).

Chaos tests need the opposite property, reproducibility, so a
``seed`` keys the draw: ``(seed, token, attempt)`` is hashed into the
RNG seed (via BLAKE2, *not* Python's randomized ``hash``), making
every delay identical across processes and runs while distinct
``token`` values (job ids, fault indices) still de-correlate from
each other.
"""

from __future__ import annotations

import hashlib
import random


def decorrelated_delay(attempt: int, base: float,
                       factor: float = 2.0,
                       cap: float | None = None,
                       seed: int | None = None,
                       token: object = None) -> float:
    """Backoff delay for retry ``attempt`` (1-based).

    Unseeded, the draw uses the process RNG (different every call);
    seeded, it is a pure function of ``(seed, token, attempt)``.
    The minimum is always ``base``, so callers may still rely on
    "attempt k waits at least base seconds".
    """
    attempt = max(1, int(attempt))
    high = base * factor ** attempt
    if cap is not None:
        high = min(high, cap)
    high = max(high, base)
    if seed is None:
        return random.uniform(base, high)
    key = f"{seed}:{token}:{attempt}".encode()
    digest = hashlib.blake2b(key, digest_size=8).digest()
    rng = random.Random(int.from_bytes(digest, "big"))
    return rng.uniform(base, high)
