"""Rendering for the self-FMEA worksheet (``soc-fmea chaos``).

Same table grammar as the safety worksheet reports: an ASCII table
of failure mode → effect → detection → recovery → verdict, plus a
summary block.  The worksheet itself is built by
:mod:`repro.chaos.selffmea`.
"""

from __future__ import annotations

from .tables import render_kv, render_table


def _wrap(text: str, width: int) -> str:
    """Clip long prose cells so the table stays terminal-sized."""
    return text if len(text) <= width else text[:width - 1] + "…"


def render_self_fmea(worksheet, verbose: bool = False) -> str:
    """The infrastructure failure-modes table + verdict summary."""
    rows = []
    for row in worksheet.rows:
        s = row.scenario
        rows.append([
            _wrap(s.failure_mode, 44),
            s.spec,
            _wrap(s.detection, 40),
            _wrap(s.recovery, 40),
            row.verdict,
        ])
    out = [render_table(
        ["failure mode", "failpoint", "detection", "recovery",
         "verdict"],
        rows,
        title="=== self-FMEA: infrastructure failure modes ===")]
    out.append(render_kv([
        ("enumerated modes", len(worksheet.rows)),
        ("verified", worksheet.verified),
        ("failed", worksheet.failed),
        ("not run", worksheet.not_run),
        ("verdict", "PASS" if worksheet.ok else "FAIL"),
    ], title="=== verdict ==="))
    failing = [row for row in worksheet.rows if row.failures]
    if failing:
        lines = []
        for row in failing:
            lines.append(f"{row.scenario.failure_mode} "
                         f"[{row.scenario.spec}]:")
            for failure in row.failures:
                lines.append(f"  - {failure if verbose else _wrap(failure, 120)}")
        out.append("=== failed checks ===\n" + "\n".join(lines))
    return "\n\n".join(out)


def render_failpoint_list(sites) -> str:
    """``soc-fmea chaos --list`` — the registry table."""
    return render_table(
        ["failpoint", "module", "kinds", "site"],
        [[s.name, s.module, ",".join(s.kinds), s.description]
         for s in sites],
        title="=== failpoint registry ===")
