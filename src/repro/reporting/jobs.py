"""Rendering for the campaign job queue (``soc-fmea jobs``)."""

from __future__ import annotations

import time

from .tables import pct, render_kv, render_table


def _age(now: float, then: float | None) -> str:
    if then is None:
        return "-"
    seconds = max(0.0, now - then)
    if seconds < 90:
        return f"{seconds:.0f}s"
    if seconds < 5400:
        return f"{seconds / 60:.0f}m"
    return f"{seconds / 3600:.1f}h"


def render_job_table(jobs, now: float | None = None) -> str:
    """One row per job, newest last (submission order)."""
    now = now if now is not None else time.time()
    rows = []
    for job in jobs:
        variant = job.spec.get("variant", "?")
        lease = "-"
        if job.lease_deadline is not None:
            remain = job.lease_deadline - now
            lease = f"{remain:.0f}s" if remain >= 0 \
                else f"stale {-remain:.0f}s"
        note = "-"
        if job.error:
            note = job.error.get("message", "?")
        elif job.result and job.result.get("measured_dc") is not None:
            note = f"DC {pct(job.result['measured_dc'])}"
        rows.append([
            job.job_id, job.project, job.status, variant,
            f"{job.attempts}/{job.max_attempts}", lease,
            _age(now, job.created_at),
            note if len(note) <= 48 else note[:45] + "...",
        ])
    return render_table(
        ["job", "project", "status", "variant", "att", "lease",
         "age", "note"],
        rows, title="=== campaign jobs ===")


def job_detail_pairs(job, now: float | None = None
                     ) -> list[tuple[str, object]]:
    """Key/value lines for ``jobs status`` (render with render_kv)."""
    now = now if now is not None else time.time()
    pairs: list[tuple[str, object]] = [
        ("job", job.job_id),
        ("project", job.project),
        ("status", job.status),
        ("attempts", f"{job.attempts}/{job.max_attempts}"),
        ("submitted", f"{_age(now, job.created_at)} ago"),
    ]
    for key in ("variant", "engine", "workers", "sample"):
        if job.spec.get(key) is not None:
            pairs.append((key, job.spec[key]))
    if job.idempotency_key:
        pairs.append(("idempotency key", job.idempotency_key))
    if job.progress and job.progress.get("done") is not None:
        done = job.progress["done"]
        total = job.progress.get("total")
        pairs.append(("progress",
                      f"{done}/{total} ({pct(done / total)})"
                      if total else str(done)))
    if job.lease_owner:
        pairs.append(("lease owner", job.lease_owner))
    if job.lease_deadline is not None:
        remain = job.lease_deadline - now
        pairs.append(("lease", f"{remain:.0f}s remaining" if remain >= 0
                      else f"expired {-remain:.0f}s ago"))
    if job.run_id is not None:
        pairs.append(("store run", f"#{job.run_id}"))
    if job.result:
        for key in ("exit_code", "faults", "hits", "misses",
                    "simulated", "quarantined"):
            if job.result.get(key) is not None:
                pairs.append((f"result {key}", job.result[key]))
        if job.result.get("measured_dc") is not None:
            pairs.append(("result measured DC",
                          pct(job.result["measured_dc"])))
        if job.result.get("safe_fraction") is not None:
            pairs.append(("result safe fraction",
                          pct(job.result["safe_fraction"])))
    if job.error:
        pairs.append(("error kind", job.error.get("kind", "?")))
        pairs.append(("error", job.error.get("message", "?")))
    return pairs


def render_job_detail(job, now: float | None = None) -> str:
    text = render_kv(job_detail_pairs(job, now=now),
                     title=f"=== job #{job.job_id} ===")
    if job.error and job.error.get("detail"):
        text += "\n--- recorded cause ---\n" \
            + str(job.error["detail"])
    return text
