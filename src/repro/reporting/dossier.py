"""The certification dossier: one text bundle with all the evidence.

Assembles what the paper's flow hands to the assessor (TÜV-SÜD in the
paper's case): design inventory, sensible-zone census, the FMEA with
criticality ranking, claimed-vs-measured validation results, coverage
ledger, sensitivity analysis and the SIL verdict.
"""

from __future__ import annotations

from ..iec61508.sil import SIL, max_sil, required_sff
from .tables import pct, render_kv

RULE = "=" * 70


def build_dossier(name: str, subsystem, zone_set, worksheet,
                  validation=None, target_sil: SIL = SIL.SIL3,
                  hft: int = 0) -> str:
    """Return the full dossier text."""
    # imported here: fmea.report itself renders with reporting.tables
    from ..fmea.report import criticality_report, summary_report, \
        validation_report
    from ..fmea.sensitivity import stability_report
    parts: list[str] = []
    parts.append(RULE)
    parts.append(f"SAFETY DOSSIER — {name}")
    parts.append(RULE)

    # 1. design inventory
    stats = subsystem.circuit.stats()
    parts.append(render_kv(sorted(stats.items()),
                           title="\n1. design inventory"))

    # 2. sensible zones
    parts.append(render_kv(sorted(zone_set.summary().items()),
                           title="\n2. sensible-zone census (§3)"))
    if zone_set.correlation is not None:
        parts.append(f"   shared-logic (wide-fault) gates: "
                     f"{zone_set.correlation.wide_gate_count}")

    # 3. the FMEA
    parts.append("\n3. FMEA (§3-4)")
    parts.append(summary_report(worksheet, hft=hft))
    parts.append("")
    parts.append(criticality_report(worksheet, top=12))

    # 4. validation evidence
    parts.append("\n4. validation (§5)")
    if validation is None:
        parts.append("   NOT RUN — the dossier is incomplete without "
                     "fault-injection evidence")
    else:
        parts.append(validation.summary())
        if validation.coverage is not None:
            parts.append(validation.coverage.report())
        measured = validation_report(worksheet)
        if not measured.startswith("no injection"):
            parts.append(measured)

    # 5. sensitivity
    parts.append("\n5. sensitivity of the result (§4)")
    stability = stability_report(worksheet)
    parts.append(stability.summary())

    # 6. verdict
    totals = worksheet.totals()
    granted = max_sil(totals.sff, hft)
    needed = required_sff(target_sil, hft)
    ok = granted is not None and granted >= target_sil
    validated = validation is not None and validation.passed
    parts.append(f"\n6. verdict")
    parts.append(render_kv([
        ("target", f"{target_sil.name} @ HFT={hft} "
                   f"(needs SFF >= {pct(needed, 0)})"),
        ("achieved SFF", pct(totals.sff)),
        ("granted", granted.name if granted else "none"),
        ("validated by injection", "yes" if validated else "NO"),
        ("dossier conclusion",
         "COMPLIANT" if ok and validated else "NOT COMPLIANT"),
    ]))
    parts.append(RULE)
    return "\n".join(parts)
