"""Minimal ASCII table renderer used by all report modules."""

from __future__ import annotations


def render_table(headers: list[str], rows: list[list],
                 title: str | None = None) -> str:
    """Render a fixed-width ASCII table; cells are str()'d."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(items):
        return "| " + " | ".join(item.ljust(w)
                                 for item, w in zip(items, widths)) + " |"

    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    out = []
    if title:
        out.append(title)
    out.append(sep)
    out.append(line(headers))
    out.append(sep)
    out.extend(line(row) for row in cells)
    out.append(sep)
    return "\n".join(out)


def render_kv(pairs: list[tuple[str, object]],
              title: str | None = None) -> str:
    """Render key/value pairs aligned on the colon."""
    width = max((len(k) for k, _ in pairs), default=0)
    out = [title] if title else []
    out.extend(f"{k.ljust(width)} : {v}" for k, v in pairs)
    return "\n".join(out)


def pct(x: float, digits: int = 2) -> str:
    return f"{x * 100:.{digits}f}%"
