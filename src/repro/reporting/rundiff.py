"""Rendering of cross-run campaign comparisons (``store diff``)."""

from __future__ import annotations

from .tables import pct, render_kv, render_table


def _signed_pct(delta: float) -> str:
    return f"{delta * 100:+.2f} pt"


def render_run_diff(diff) -> str:
    """Human-readable report of a :class:`repro.store.RunDiff`."""
    a, b = diff.run_a, diff.run_b
    out = [render_kv([
        ("reference run", f"#{a['run_id']} ({a['design']}, "
                          f"{a['faults']} faults)"),
        ("candidate run", f"#{b['run_id']} ({b['design']}, "
                          f"{b['faults']} faults)"),
        ("measured DC", f"{pct(a['measured_dc'] or 0.0)} -> "
                        f"{pct(b['measured_dc'] or 0.0)} "
                        f"({_signed_pct(diff.dc_delta)})"),
        ("safe fraction", f"{pct(a['safe_fraction'] or 0.0)} -> "
                          f"{pct(b['safe_fraction'] or 0.0)} "
                          f"({_signed_pct(diff.safe_delta)})"),
        ("faults reclassified", len(diff.changed_faults)),
        ("zones affected", len(diff.affected_zones())),
        ("zones regressed", len(diff.regressed_zones())),
    ], title=f"=== store diff: run #{a['run_id']} -> "
             f"#{b['run_id']} ===")]

    changed = [c for c in diff.zone_changes if c.changed]
    if changed:
        rows = []
        for change in changed:
            keys = sorted(set(change.counts_a) | set(change.counts_b))
            delta = ", ".join(
                f"{k}: {change.counts_a.get(k, 0)}"
                f"->{change.counts_b.get(k, 0)}"
                for k in keys
                if change.counts_a.get(k, 0)
                != change.counts_b.get(k, 0))
            rows.append([change.zone,
                         "REGRESSED" if change.regressed else "changed",
                         delta])
        out.append(render_table(["zone", "verdict", "outcome shift"],
                                rows, title="affected zones"))
    else:
        out.append("no zone-level outcome changes")

    if diff.changed_faults:
        rows = [[name, zone or "?", before or "(absent)",
                 after or "(absent)"]
                for name, zone, before, after
                in diff.changed_faults[:25]]
        title = "reclassified faults"
        if len(diff.changed_faults) > 25:
            title += (f" (first 25 of {len(diff.changed_faults)})")
        out.append(render_table(
            ["fault", "zone", "before", "after"], rows, title=title))
    return "\n\n".join(out)
