"""Campaign-health reporting: quarantined faults and metric bounds.

A quarantined fault is *missing evidence*, not a benign omission: the
campaign cannot claim anything about how the safety mechanisms would
have handled it.  IEC 61508 arguments must therefore bound the
claimed metrics pessimistically — every quarantined fault might have
been dangerous-undetected — while the optimistic bound (all
quarantined faults behave like the measured population's best case)
shows how much the quarantine actually costs.  This module computes
those bounds and renders the per-zone quarantine table that goes in
the campaign report.
"""

from __future__ import annotations

from dataclasses import dataclass

from .tables import pct, render_kv, render_table

# outcome class names, mirrored from repro.faultinjection.manager —
# importing the manager here would be circular (the campaign modules
# import the reporting table helpers)
OUTCOME_SAFE = "safe"
OUTCOME_DETECTED_SAFE = "detected_safe"
OUTCOME_DD = "dangerous_detected"
OUTCOME_DU = "dangerous_undetected"


@dataclass
class QuarantineBounds:
    """Best/worst-case DC and safe-fraction under missing evidence.

    *Best* assumes every quarantined fault would have been safe (the
    measured metrics stand, and quarantined faults add to the safe
    population); *worst* assumes every quarantined fault would have
    been dangerous-undetected.
    """

    measured: int          # faults with evidence
    quarantined: int       # faults without
    dc_measured: float
    dc_best: float
    dc_worst: float
    safe_measured: float
    safe_best: float
    safe_worst: float

    @property
    def clean(self) -> bool:
        return self.quarantined == 0


def quarantine_bounds(result, quarantined: int) -> QuarantineBounds:
    """Bound campaign DC / safe fraction given quarantined faults."""
    counts = result.outcomes()
    dd = counts[OUTCOME_DD]
    du = counts[OUTCOME_DU]
    safe = counts[OUTCOME_SAFE] + counts[OUTCOME_DETECTED_SAFE]
    measured = len(result.results)
    total = measured + quarantined
    dc_measured = result.measured_dc()
    dangerous = dd + du
    # best case: no quarantined fault was dangerous — measured DC holds
    dc_best = dc_measured
    # worst case: every quarantined fault was dangerous-undetected
    dc_worst = dd / (dangerous + quarantined) \
        if dangerous + quarantined else dc_measured
    safe_measured = result.measured_safe_fraction()
    safe_best = (safe + quarantined) / total if total else 0.0
    safe_worst = safe / total if total else 0.0
    return QuarantineBounds(
        measured=measured, quarantined=quarantined,
        dc_measured=dc_measured, dc_best=dc_best, dc_worst=dc_worst,
        safe_measured=safe_measured, safe_best=safe_best,
        safe_worst=safe_worst)


@dataclass
class DegradedBounds:
    """Metric bounds of a ``--degraded`` campaign that skipped zones.

    A zone that no longer resolves against the netlist contributes no
    candidate faults, so the campaign's measured DC/SFF silently
    overstate what the evidence supports.  Degraded mode makes the
    loss explicit: the faults the skipped zones *would* have
    contributed are treated exactly like quarantined faults (missing
    evidence) and pushed through :func:`quarantine_bounds`.
    """

    bounds: QuarantineBounds
    skipped_zones: tuple[str, ...]
    faults_lost: int
    estimated: bool     # faults_lost was inferred, not counted

    @property
    def clean(self) -> bool:
        return not self.skipped_zones


def degraded_bounds(result, skipped_zones,
                    faults_lost: int | None = None) -> DegradedBounds:
    """Bound DC / safe fraction for a campaign that skipped zones.

    ``faults_lost`` is the number of candidate faults the skipped
    zones would have contributed; when unknown it is estimated from
    the campaign's own density (average measured faults per resolved
    zone, falling back to the fault-list default of 4 per zone).
    """
    skipped = tuple(skipped_zones)
    estimated = faults_lost is None
    if faults_lost is None:
        zone_results = result.by_zone()
        if zone_results:
            per_zone = max(1, round(len(result.results)
                                    / len(zone_results)))
        else:
            per_zone = 4
        faults_lost = per_zone * len(skipped)
    return DegradedBounds(
        bounds=quarantine_bounds(result, faults_lost),
        skipped_zones=skipped, faults_lost=faults_lost,
        estimated=estimated)


def render_degraded_health(degraded: DegradedBounds) -> str:
    """Render the lost-evidence section of a degraded campaign."""
    if degraded.clean:
        return ("degraded mode: no zones were skipped — results "
                "match a strict run")
    bounds = degraded.bounds
    source = ("estimated from campaign density" if degraded.estimated
              else "counted from the fault list")
    pairs = [
        ("zones skipped", len(degraded.skipped_zones)),
        ("faults lost", f"{degraded.faults_lost} ({source})"),
        ("faults with evidence", bounds.measured),
        ("DC (measured / worst-case)",
         f"{pct(bounds.dc_measured)} / {pct(bounds.dc_worst)}"),
        ("safe fraction (best / worst)",
         f"{pct(bounds.safe_best)} / {pct(bounds.safe_worst)}"),
    ]
    parts = [render_kv(pairs, title="Metric bounds under degraded "
                                    "evidence")]
    names = ", ".join(degraded.skipped_zones[:8])
    if len(degraded.skipped_zones) > 8:
        names += f", … ({len(degraded.skipped_zones) - 8} more)"
    parts.append(
        f"skipped zones (no evidence collected): {names}\n"
        f"claims about these zones are NOT supported by this "
        f"campaign; re-extract zones or fix the configuration to "
        f"restore full coverage")
    return "\n\n".join(parts)


def render_campaign_health(result, anomalies, health=None) -> str:
    """Render the quarantine section of a campaign report.

    ``anomalies`` is the supervisor's :class:`FaultAnomaly` list;
    ``health`` the optional :class:`CampaignHealth` counters.  With no
    anomalies the section is a single all-clear line.
    """
    if not anomalies:
        return ("campaign health: clean — every candidate fault "
                "produced evidence")

    by_zone: dict[str, list] = {}
    for anomaly in anomalies:
        by_zone.setdefault(anomaly.zone or "?", []).append(anomaly)

    zone_results = result.by_zone()
    rows = []
    for zone in sorted(set(by_zone) | set(zone_results)):
        zone_anomalies = by_zone.get(zone, [])
        if not zone_anomalies:
            continue
        kinds: dict[str, int] = {}
        for anomaly in zone_anomalies:
            kinds[anomaly.kind] = kinds.get(anomaly.kind, 0) + 1
        kind_text = ", ".join(f"{n}×{k}"
                              for k, n in sorted(kinds.items()))
        dd = du = 0
        for res in zone_results.get(zone, []):
            outcome = result.outcome_of(res)
            if outcome == OUTCOME_DD:
                dd += 1
            elif outcome == OUTCOME_DU:
                du += 1
        q = len(zone_anomalies)
        measured_dc = (f"{pct(dd / (dd + du))}"
                       if dd + du else "-")
        worst_dc = (f"{pct(dd / (dd + du + q))}"
                    if dd + du + q else "-")
        rows.append([zone, q, kind_text,
                     len(zone_results.get(zone, [])),
                     measured_dc, worst_dc])

    bounds = quarantine_bounds(result, len(anomalies))
    parts = [render_table(
        ["zone", "quarantined", "kinds", "measured", "zone DC",
         "worst-case DC"],
        rows, title="Quarantined faults by zone")]
    pairs = [
        ("faults with evidence", bounds.measured),
        ("faults quarantined", bounds.quarantined),
        ("DC (measured / worst-case)",
         f"{pct(bounds.dc_measured)} / {pct(bounds.dc_worst)}"),
        ("safe fraction (best / worst)",
         f"{pct(bounds.safe_best)} / {pct(bounds.safe_worst)}"),
    ]
    if health is not None:
        pairs.append(("engine failures",
                      f"{health.crashes} crash(es), "
                      f"{health.hangs} hang(s), "
                      f"{health.exceptions} exception(s)"))
    parts.append(render_kv(pairs, title="Metric bounds under "
                                        "quarantine"))
    names = ", ".join(a.fault_name for a in anomalies[:8])
    if len(anomalies) > 8:
        names += f", … ({len(anomalies) - 8} more)"
    parts.append(f"quarantined: {names}")
    return "\n\n".join(parts)
