"""Report rendering helpers."""

from .tables import pct, render_kv, render_table
from .dossier import build_dossier
from .health import (
    QuarantineBounds,
    quarantine_bounds,
    render_campaign_health,
)
from .rundiff import render_run_diff

__all__ = ["pct", "render_kv", "render_table", "build_dossier",
           "QuarantineBounds", "quarantine_bounds",
           "render_campaign_health",
           "render_run_diff"]
