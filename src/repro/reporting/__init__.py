"""Report rendering helpers."""

from .tables import pct, render_kv, render_table
from .dossier import build_dossier
from .rundiff import render_run_diff

__all__ = ["pct", "render_kv", "render_table", "build_dossier",
           "render_run_diff"]
