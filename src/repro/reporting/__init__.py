"""Report rendering helpers."""

from .tables import pct, render_kv, render_table
from .dossier import build_dossier

__all__ = ["pct", "render_kv", "render_table", "build_dossier"]
