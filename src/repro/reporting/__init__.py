"""Report rendering helpers."""

from .tables import pct, render_kv, render_table
from .dossier import build_dossier
from .health import (
    DegradedBounds,
    QuarantineBounds,
    degraded_bounds,
    quarantine_bounds,
    render_campaign_health,
    render_degraded_health,
)
from .rundiff import render_run_diff
from .jobs import job_detail_pairs, render_job_detail, \
    render_job_table

__all__ = ["pct", "render_kv", "render_table", "build_dossier",
           "DegradedBounds", "QuarantineBounds", "degraded_bounds",
           "quarantine_bounds", "render_campaign_health",
           "render_degraded_health",
           "render_run_diff", "render_explore_dossier",
           "job_detail_pairs", "render_job_detail",
           "render_job_table"]


def render_explore_dossier(result, zone_evidence: bool = True) -> str:
    """The exploration dossier (lazy import: reporting must not pull
    the whole explore/service stack in at import time)."""
    from ..explore.dossier import render_explore_dossier as render
    return render(result, zone_evidence=zone_evidence)
