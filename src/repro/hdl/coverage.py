"""Workload-completeness measurement (paper §5 step b).

The IEC 61508 validation flow requires demonstrating that the workload
used for fault injection actually exercises the hardware: the paper uses
toggle-count coverage (every net seen at both 0 and 1) with a default
acceptance threshold of 99 %.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .netlist import Circuit
from .simulator import Simulator

DEFAULT_THRESHOLD = 0.99


@dataclass
class ToggleReport:
    """Result of a toggle-coverage measurement."""

    toggled: int
    total: int
    untoggled: list[str] = field(default_factory=list)
    threshold: float = DEFAULT_THRESHOLD

    @property
    def coverage(self) -> float:
        return self.toggled / self.total if self.total else 1.0

    @property
    def passed(self) -> bool:
        return self.coverage >= self.threshold

    def summary(self) -> str:
        return (f"toggle coverage {self.coverage * 100:.2f}% "
                f"({self.toggled}/{self.total} nets), "
                f"{'PASS' if self.passed else 'FAIL'} "
                f"at {self.threshold * 100:.0f}% threshold")


def measure_toggle_coverage(circuit: Circuit, stimuli,
                            threshold: float = DEFAULT_THRESHOLD,
                            setup=None) -> ToggleReport:
    """Run ``stimuli`` (iterable of input dicts) and report net toggles.

    ``setup`` is an optional callable receiving the simulator before the
    run (memory preload etc.).
    """
    sim = Simulator(circuit, machines=1, collect_toggles=True)
    if setup is not None:
        setup(sim)
    for inputs in stimuli:
        sim.step(inputs)
    toggled, total = sim.toggle_report()
    return ToggleReport(toggled=toggled, total=total,
                        untoggled=sim.untoggled_nets(),
                        threshold=threshold)
