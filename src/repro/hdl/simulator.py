"""Levelized bit-parallel gate-level simulator with fault overlays.

The simulator evaluates a :class:`~repro.hdl.netlist.Circuit` cycle by
cycle.  Every net carries an integer whose bit *k* is the logic value in
*machine* k — machine 0 is the fault-free golden run, machines 1..N-1
carry injected faults.  This is the classic parallel-fault-simulation
trick: one pass of the netlist simulates the golden design and up to 63
faulty variants simultaneously, which is what makes exhaustive
sensible-zone injection campaigns tractable in pure Python.

Supported fault overlays (see :mod:`repro.faultinjection.faults` for the
user-facing descriptors):

* permanent stuck-at on any net (:meth:`Simulator.stick_net`),
* single-cycle transient bit-flips on flip-flops (SEU) or nets (SET),
* dominant-aggressor bridging between two nets,
* memory cell stuck-at, memory soft errors and inter-cell coupling,
* everything can be restricted to a subset of machines via a bit mask.
"""

from __future__ import annotations

from .netlist import (
    Circuit,
    NetlistError,
    OP_AND,
    OP_BUF,
    OP_CONST0,
    OP_CONST1,
    OP_MUX,
    OP_NAND,
    OP_NOR,
    OP_NOT,
    OP_OR,
    OP_XNOR,
    OP_XOR,
)

BRIDGE_AND = "and"
BRIDGE_OR = "or"
BRIDGE_DOMINANT = "dominant"


class CycleBudgetExceeded(RuntimeError):
    """The simulation ran past its cycle budget (runaway watchdog).

    Raised from :meth:`Simulator.step_eval` once the simulator has
    already evaluated ``cycle_budget`` cycles.  Campaign engines treat
    it as a structured *hang* anomaly rather than a crash: the budget
    is the deterministic, in-process counterpart of the supervisor's
    wall-clock shard timeout.
    """


class Simulator:
    """Cycle-based simulator for a fixed number of parallel machines."""

    def __init__(self, circuit: Circuit, machines: int = 1,
                 collect_toggles: bool = False,
                 toggle_any_machine: bool = False,
                 cycle_budget: int | None = None):
        if machines < 1:
            raise ValueError("need at least one machine")
        self.circuit = circuit
        self.machines = machines
        self.full_mask = (1 << machines) - 1
        self.cycle = 0
        #: watchdog: evaluating more than this many cycles raises
        #: :class:`CycleBudgetExceeded` (``None`` disables the check)
        self.cycle_budget = cycle_budget

        order = circuit.levelize()
        self._program = []
        for gi in order:
            g = circuit.gates[gi]
            ins = g.inputs + (0,) * (3 - len(g.inputs))
            self._program.append((g.op, g.out, ins[0], ins[1], ins[2]))

        self._values = [0] * circuit.num_nets
        self._flop_state = [self.full_mask if f.init else 0
                            for f in circuit.flops]
        self._mem_store = [[[0] * m.width for _ in range(m.depth)]
                           for m in circuit.memories]
        self._mem_rdata = [[0] * m.width for m in circuit.memories]

        self._flop_index = {f.name: i for i, f in enumerate(circuit.flops)}
        self._mem_index = {m.name: i for i, m in enumerate(circuit.memories)}
        self._net_index: dict[str, int] | None = None

        # fault state
        self._forced: dict[int, tuple[int, int]] = {}
        self._flop_flips: dict[int, list[tuple[int, int]]] = {}
        self._net_glitches: dict[int, list[tuple[int, int]]] = {}
        self._mem_flips: dict[int, list[tuple[int, int, int, int]]] = {}
        self._bridges: list[tuple[int, int, str, int]] = []
        self._mem_stuck: dict[int, dict[tuple[int, int], tuple[int, int]]] = {}
        self._mem_coupling: dict[int, list[tuple]] = {}

        # toggle coverage (golden machine, or any machine when
        # toggle_any_machine is set — used to credit diagnostic-only
        # logic exercised by injected faults)
        self.collect_toggles = collect_toggles
        self.toggle_any_machine = toggle_any_machine
        self._seen0 = bytearray(circuit.num_nets)
        self._seen1 = bytearray(circuit.num_nets)

    # ------------------------------------------------------------------
    # name resolution
    # ------------------------------------------------------------------
    def _resolve_net(self, net) -> int:
        if isinstance(net, int):
            return net
        if self._net_index is None:
            self._net_index = {name: i for i, name
                               in enumerate(self.circuit.net_names)}
        try:
            return self._net_index[net]
        except KeyError:
            raise NetlistError(f"no net named {net!r}") from None

    def _resolve_flop(self, flop) -> int:
        if isinstance(flop, int):
            return flop
        try:
            return self._flop_index[flop]
        except KeyError:
            raise NetlistError(f"no flop named {flop!r}") from None

    def _resolve_mem(self, mem) -> int:
        if isinstance(mem, int):
            return mem
        try:
            return self._mem_index[mem]
        except KeyError:
            raise NetlistError(f"no memory named {mem!r}") from None

    def _mask(self, machines) -> int:
        if machines is None:
            return self.full_mask
        if isinstance(machines, int):
            return machines & self.full_mask
        mask = 0
        for k in machines:
            mask |= 1 << k
        return mask & self.full_mask

    # ------------------------------------------------------------------
    # fault programming
    # ------------------------------------------------------------------
    def stick_net(self, net, value: int, machines=None) -> None:
        """Permanent stuck-at-``value`` on a net in selected machines."""
        net = self._resolve_net(net)
        mask = self._mask(machines)
        clear, setm = self._forced.get(net, (0, 0))
        clear |= mask
        setm = (setm & ~mask) | (mask if value else 0)
        self._forced[net] = (clear, setm)

    def schedule_flop_flip(self, flop, cycle: int, machines=None) -> None:
        """Flip a flip-flop's stored state at the start of ``cycle``."""
        idx = self._resolve_flop(flop)
        self._flop_flips.setdefault(cycle, []).append(
            (idx, self._mask(machines)))

    def schedule_net_glitch(self, net, cycle: int, machines=None) -> None:
        """Invert a net for one evaluation at ``cycle`` (SET model)."""
        net = self._resolve_net(net)
        self._net_glitches.setdefault(cycle, []).append(
            (net, self._mask(machines)))

    def add_bridge(self, aggressor, victim, mode: str = BRIDGE_DOMINANT,
                   machines=None) -> None:
        """Bridging fault: the victim net is corrupted by the aggressor."""
        self._bridges.append((self._resolve_net(aggressor),
                              self._resolve_net(victim), mode,
                              self._mask(machines)))

    def set_mem_cell_stuck(self, mem, word: int, bit: int, value: int,
                           machines=None) -> None:
        mem = self._resolve_mem(mem)
        mask = self._mask(machines)
        table = self._mem_stuck.setdefault(mem, {})
        clear, setm = table.get((word, bit), (0, 0))
        clear |= mask
        setm = (setm & ~mask) | (mask if value else 0)
        table[(word, bit)] = (clear, setm)

    def schedule_mem_flip(self, mem, word: int, bit: int, cycle: int,
                          machines=None) -> None:
        """Soft error: flip a memory cell at the start of ``cycle``."""
        mem = self._resolve_mem(mem)
        self._mem_flips.setdefault(cycle, []).append(
            (mem, word, bit, self._mask(machines)))

    def add_mem_coupling(self, mem, aggressor: tuple[int, int],
                         victim: tuple[int, int], machines=None) -> None:
        """Coupling fault: a write transition on aggressor flips victim."""
        mem = self._resolve_mem(mem)
        self._mem_coupling.setdefault(mem, []).append(
            (aggressor, victim, self._mask(machines)))

    def clear_faults(self) -> None:
        self._forced.clear()
        self._flop_flips.clear()
        self._net_glitches.clear()
        self._mem_flips.clear()
        self._bridges.clear()
        self._mem_stuck.clear()
        self._mem_coupling.clear()

    # ------------------------------------------------------------------
    # state access
    # ------------------------------------------------------------------
    def set_input(self, name: str, value: int) -> None:
        """Drive an input port with an integer, same in all machines."""
        try:
            nets = self.circuit.inputs[name]
        except KeyError:
            raise NetlistError(f"no input named {name!r}") from None
        full = self.full_mask
        vals = self._values
        for bit, net in enumerate(nets):
            vals[net] = full if (value >> bit) & 1 else 0

    def set_input_lane(self, name: str, machine: int, value: int) -> None:
        """Override an input port's value in a single machine."""
        nets = self.circuit.inputs[name]
        lane = 1 << machine
        vals = self._values
        for bit, net in enumerate(nets):
            if (value >> bit) & 1:
                vals[net] |= lane
            else:
                vals[net] &= ~lane

    def peek(self, net) -> int:
        """Raw machine-mask value of a net (after the last evaluation)."""
        return self._values[self._resolve_net(net)]

    def peek_bit(self, net, machine: int = 0) -> int:
        return (self.peek(net) >> machine) & 1

    def value_of(self, nets, machine: int = 0) -> int:
        """Assemble an integer from a list of nets for one machine."""
        out = 0
        vals = self._values
        for bit, net in enumerate(nets):
            out |= ((vals[net] >> machine) & 1) << bit
        return out

    def output(self, name: str, machine: int = 0) -> int:
        return self.value_of(self.circuit.outputs[name], machine)

    def set_flop(self, flop, value: int, machines=None) -> None:
        idx = self._resolve_flop(flop)
        mask = self._mask(machines)
        state = self._flop_state[idx]
        self._flop_state[idx] = (state & ~mask) | (mask if value else 0)

    def flop_value(self, flop, machine: int = 0) -> int:
        return (self._flop_state[self._resolve_flop(flop)] >> machine) & 1

    def load_mem(self, mem, words: list[int]) -> None:
        """Initialize memory contents (broadcast to all machines)."""
        mi = self._resolve_mem(mem)
        block = self.circuit.memories[mi]
        store = self._mem_store[mi]
        full = self.full_mask
        for w, word in enumerate(words):
            if w >= block.depth:
                break
            for b in range(block.width):
                store[w][b] = full if (word >> b) & 1 else 0

    def read_mem_word(self, mem, word: int, machine: int = 0) -> int:
        mi = self._resolve_mem(mem)
        store = self._mem_store[mi]
        out = 0
        for b, bits in enumerate(store[word]):
            out |= ((bits >> machine) & 1) << b
        return out

    def flop_state_mismatch(self, flops) -> int:
        """Machines whose stored state differs from machine 0."""
        full = self.full_mask
        diff = 0
        for flop in flops:
            v = self._flop_state[self._resolve_flop(flop)]
            golden = full if v & 1 else 0
            diff |= v ^ golden
        return diff & ~1 & full

    def mem_word_mismatch(self, mem, word: int) -> int:
        """Machines whose copy of a memory word differs from machine 0."""
        full = self.full_mask
        diff = 0
        for bits in self._mem_store[self._resolve_mem(mem)][word]:
            golden = full if bits & 1 else 0
            diff |= bits ^ golden
        return diff & ~1 & full

    def mismatch_mask(self, nets) -> int:
        """Machines whose value differs from the golden machine 0."""
        full = self.full_mask
        diff = 0
        vals = self._values
        for net in nets:
            v = vals[net]
            golden = full if v & 1 else 0
            diff |= v ^ golden
        return diff & ~1 & full

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------
    def eval_comb(self) -> None:
        """Propagate sources through the combinational network."""
        vals = self._values
        full = self.full_mask

        for i, flop in enumerate(self.circuit.flops):
            vals[flop.q] = self._flop_state[i]
        for mi, mem in enumerate(self.circuit.memories):
            rdata = self._mem_rdata[mi]
            for b, net in enumerate(mem.rdata):
                vals[net] = rdata[b]

        forced = self._forced
        glitches = self._net_glitches.get(self.cycle)
        glitch_map: dict[int, int] = {}
        if glitches:
            for net, mask in glitches:
                glitch_map[net] = glitch_map.get(net, 0) | mask

        self._eval_pass(forced, glitch_map)

        if self._bridges:
            extra = dict(forced)
            for agg, vic, mode, mask in self._bridges:
                a, v = vals[agg], vals[vic]
                if mode == BRIDGE_AND:
                    bridged = a & v
                elif mode == BRIDGE_OR:
                    bridged = a | v
                else:  # dominant aggressor wins
                    bridged = a
                clear, setm = extra.get(vic, (0, 0))
                clear |= mask
                setm = (setm & ~mask) | (bridged & mask)
                extra[vic] = (clear, setm)
            self._eval_pass(extra, glitch_map)

    def _eval_pass(self, forced, glitch_map) -> None:
        vals = self._values
        full = self.full_mask
        has_mods = bool(forced or glitch_map)

        if has_mods:
            for net, (clear, setm) in forced.items():
                vals[net] = (vals[net] & ~clear) | setm
            for net, mask in glitch_map.items():
                vals[net] ^= mask

        for op, out, a, b, c in self._program:
            if op == OP_AND:
                v = vals[a] & vals[b]
            elif op == OP_XOR:
                v = vals[a] ^ vals[b]
            elif op == OP_OR:
                v = vals[a] | vals[b]
            elif op == OP_NOT:
                v = vals[a] ^ full
            elif op == OP_BUF:
                v = vals[a]
            elif op == OP_MUX:
                s = vals[a]
                v = (vals[b] & s) | (vals[c] & ~s)
            elif op == OP_NAND:
                v = (vals[a] & vals[b]) ^ full
            elif op == OP_NOR:
                v = (vals[a] | vals[b]) ^ full
            elif op == OP_XNOR:
                v = (vals[a] ^ vals[b]) ^ full
            elif op == OP_CONST0:
                v = 0
            else:  # OP_CONST1
                v = full
            if has_mods:
                pair = forced.get(out)
                if pair is not None:
                    clear, setm = pair
                    v = (v & ~clear) | setm
                g = glitch_map.get(out)
                if g is not None:
                    v ^= g
            vals[out] = v

        if self.collect_toggles:
            seen0, seen1 = self._seen0, self._seen1
            if self.toggle_any_machine:
                for net, v in enumerate(vals):
                    if v:
                        seen1[net] = 1
                    if v != full:
                        seen0[net] = 1
            else:
                for net, v in enumerate(vals):
                    if v & 1:
                        seen1[net] = 1
                    else:
                        seen0[net] = 1

    def clock_edge(self) -> None:
        """Commit flop/memory state for the next cycle."""
        vals = self._values
        full = self.full_mask

        new_state = self._flop_state
        for i, flop in enumerate(self.circuit.flops):
            d = vals[flop.d]
            q = new_state[i]
            en = full if flop.en is None else vals[flop.en]
            nxt = (d & en) | (q & ~en)
            if flop.rst is not None:
                rst = vals[flop.rst]
                init = full if flop.init else 0
                nxt = (init & rst) | (nxt & ~rst)
            new_state[i] = nxt

        for mi, mem in enumerate(self.circuit.memories):
            self._mem_cycle(mi, mem)

        self.cycle += 1

    def _begin_cycle_events(self) -> None:
        flips = self._flop_flips.get(self.cycle)
        if flips:
            for idx, mask in flips:
                self._flop_state[idx] ^= mask
        mflips = self._mem_flips.get(self.cycle)
        if mflips:
            for mi, word, bit, mask in mflips:
                self._mem_store[mi][word][bit] ^= mask

    def step(self, inputs: dict[str, int] | None = None) -> None:
        """One full clock cycle: inputs, events, evaluate, clock edge.

        Peeking at outputs should be done between :meth:`eval_comb` and
        :meth:`clock_edge`; use :meth:`step_eval` + :meth:`step_commit`
        when a testbench needs to react to outputs within the cycle.
        """
        self.step_eval(inputs)
        self.step_commit()

    def step_eval(self, inputs: dict[str, int] | None = None) -> None:
        if self.cycle_budget is not None and \
                self.cycle >= self.cycle_budget:
            raise CycleBudgetExceeded(
                f"simulation of {self.circuit.name!r} exceeded its "
                f"cycle budget of {self.cycle_budget} cycle(s)")
        if inputs:
            for name, value in inputs.items():
                self.set_input(name, value)
        self._begin_cycle_events()
        self.eval_comb()

    def step_commit(self) -> None:
        self.clock_edge()

    # ------------------------------------------------------------------
    # memory engine
    # ------------------------------------------------------------------
    def _mem_cycle(self, mi: int, mem) -> None:
        vals = self._values
        full = self.full_mask
        store = self._mem_store[mi]
        addr_bits = [vals[n] for n in mem.addr]
        we = vals[mem.we]
        stuck = self._mem_stuck.get(mi)
        coupling = self._mem_coupling.get(mi)

        uniform = all(bits == 0 or bits == full for bits in addr_bits)
        if uniform:
            addr = 0
            for i, bits in enumerate(addr_bits):
                if bits:
                    addr |= 1 << i
            addr %= mem.depth
            word = store[addr]
            rdata = list(word)
            if we:
                for b in range(mem.width):
                    old = word[b]
                    new = (old & ~we) | (vals[mem.wdata[b]] & we)
                    word[b] = new
                    if coupling:
                        self._apply_coupling(store, coupling, addr, b,
                                             (old ^ new) & we)
        else:
            rdata = [0] * mem.width
            for k in range(self.machines):
                addr = 0
                for i, bits in enumerate(addr_bits):
                    if (bits >> k) & 1:
                        addr |= 1 << i
                addr %= mem.depth
                lane = 1 << k
                word = store[addr]
                for b in range(mem.width):
                    rdata[b] |= word[b] & lane
                if we & lane:
                    for b in range(mem.width):
                        old = word[b]
                        new = (old & ~lane) | (vals[mem.wdata[b]] & lane)
                        word[b] = new
                        if coupling:
                            self._apply_coupling(store, coupling, addr, b,
                                                 (old ^ new) & lane)

        if stuck:
            for (word_idx, bit), (clear, setm) in stuck.items():
                cell = store[word_idx][bit]
                store[word_idx][bit] = (cell & ~clear) | setm
            if uniform:
                for (word_idx, bit), (clear, setm) in stuck.items():
                    if word_idx == addr:
                        rdata[bit] = (rdata[bit] & ~clear) | setm

        self._mem_rdata[mi] = rdata

    @staticmethod
    def _apply_coupling(store, coupling, addr, bit, transition_mask):
        if not transition_mask:
            return
        for (aw, ab), (vw, vb), mask in coupling:
            if aw == addr and ab == bit:
                store[vw][vb] ^= transition_mask & mask

    # ------------------------------------------------------------------
    # toggle coverage
    # ------------------------------------------------------------------
    def toggle_report(self) -> tuple[int, int]:
        """(nets that saw both values, total observable nets)."""
        total = 0
        both = 0
        const_nets = {g.out for g in self.circuit.gates
                      if g.op in (OP_CONST0, OP_CONST1)}
        for net in range(self.circuit.num_nets):
            if net in const_nets:
                continue
            total += 1
            if self._seen0[net] and self._seen1[net]:
                both += 1
        return both, total

    def toggle_coverage(self) -> float:
        both, total = self.toggle_report()
        return both / total if total else 1.0

    def untoggled_nets(self) -> list[str]:
        const_nets = {g.out for g in self.circuit.gates
                      if g.op in (OP_CONST0, OP_CONST1)}
        names = []
        for net in range(self.circuit.num_nets):
            if net in const_nets:
                continue
            if not (self._seen0[net] and self._seen1[net]):
                names.append(self.circuit.net_names[net])
        return names
