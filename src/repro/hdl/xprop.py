"""Three-valued (0/1/X) simulation for reset-coverage analysis.

The bit-parallel engine is two-valued (states start at their declared
init).  For *verifying* initialization this module provides a separate
3-valued interpreter: all flip-flops and memory cells start at X, the
reset sequence is applied, and anything still X afterwards — or worse,
X reaching a primary output during operation — is reported.

This is the standard X-propagation check of RTL sign-off: a register
without reset is fine as long as its X can never reach an output
before being overwritten by real data; the analysis tells the two
cases apart.

Pessimism note: this is classic "X-pessimism" simulation — ``X & 0``
is 0 and ``X | 1`` is 1, but ``mux(X, a, a)`` is X even though both
arms agree.  Anything reported clean is truly clean; reports may
over-approximate X reach.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .netlist import (
    Circuit,
    OP_AND,
    OP_BUF,
    OP_CONST0,
    OP_CONST1,
    OP_MUX,
    OP_NAND,
    OP_NOR,
    OP_NOT,
    OP_OR,
    OP_XNOR,
    OP_XOR,
)

X = None  # the unknown value; 0/1 are known


def _and3(a, b):
    if a == 0 or b == 0:
        return 0
    if a == 1 and b == 1:
        return 1
    return X


def _or3(a, b):
    if a == 1 or b == 1:
        return 1
    if a == 0 and b == 0:
        return 0
    return X


def _not3(a):
    return X if a is X else 1 - a


def _xor3(a, b):
    if a is X or b is X:
        return X
    return a ^ b


class XSimulator:
    """Levelized 3-valued simulator (one machine, X-pessimistic)."""

    def __init__(self, circuit: Circuit, x_memories: bool = True):
        self.circuit = circuit
        self._order = circuit.levelize()
        self.values: list = [X] * circuit.num_nets
        self.flop_state: list = [X] * len(circuit.flops)
        self._mem: list = [
            [X] * (m.depth * 0 + m.depth) for m in circuit.memories]
        # each word modelled as a single symbol: X or an int
        if not x_memories:
            self._mem = [[0] * m.depth for m in circuit.memories]
        self._mem_rdata: list = [X] * len(circuit.memories)
        self.cycle = 0

    # ------------------------------------------------------------------
    def step(self, inputs: dict[str, int]) -> None:
        vals = self.values
        for name, value in inputs.items():
            for bit, net in enumerate(self.circuit.inputs[name]):
                vals[net] = (value >> bit) & 1
        for i, flop in enumerate(self.circuit.flops):
            vals[flop.q] = self.flop_state[i]
        for mi, mem in enumerate(self.circuit.memories):
            word = self._mem_rdata[mi]
            for bit, net in enumerate(mem.rdata):
                vals[net] = X if word is X else (word >> bit) & 1

        for gi in self._order:
            gate = self.circuit.gates[gi]
            ins = [vals[n] for n in gate.inputs]
            op = gate.op
            if op == OP_AND:
                v = _and3(ins[0], ins[1])
            elif op == OP_OR:
                v = _or3(ins[0], ins[1])
            elif op == OP_XOR:
                v = _xor3(ins[0], ins[1])
            elif op == OP_NOT:
                v = _not3(ins[0])
            elif op == OP_BUF:
                v = ins[0]
            elif op == OP_NAND:
                v = _not3(_and3(ins[0], ins[1]))
            elif op == OP_NOR:
                v = _not3(_or3(ins[0], ins[1]))
            elif op == OP_XNOR:
                v = _not3(_xor3(ins[0], ins[1]))
            elif op == OP_MUX:
                s, a, b = ins
                if s is X:
                    v = a if a == b and a is not X else X
                else:
                    v = a if s else b
            elif op == OP_CONST0:
                v = 0
            else:
                v = 1
            vals[gate.out] = v

        # sequential commit
        for i, flop in enumerate(self.circuit.flops):
            d = vals[flop.d]
            q = self.flop_state[i]
            en = 1 if flop.en is None else vals[flop.en]
            if en is X:
                nxt = d if d == q and d is not X else X
            else:
                nxt = d if en else q
            if flop.rst is not None:
                rst = vals[flop.rst]
                if rst is X:
                    nxt = nxt if nxt == flop.init else X
                elif rst:
                    nxt = flop.init
            self.flop_state[i] = nxt

        for mi, mem in enumerate(self.circuit.memories):
            addr_bits = [vals[n] for n in mem.addr]
            we = vals[mem.we]
            store = self._mem[mi]
            if any(b is X for b in addr_bits):
                self._mem_rdata[mi] = X
                if we is X or we == 1:
                    # writing to an unknown address poisons the array
                    for w in range(mem.depth):
                        store[w] = X
            else:
                addr = sum(b << i for i, b in enumerate(addr_bits))
                addr %= mem.depth
                self._mem_rdata[mi] = store[addr]
                if we is X:
                    store[addr] = X
                elif we:
                    wbits = [vals[n] for n in mem.wdata]
                    if any(b is X for b in wbits):
                        store[addr] = X
                    else:
                        store[addr] = sum(
                            b << i for i, b in enumerate(wbits))
        self.cycle += 1

    # ------------------------------------------------------------------
    def unknown_flops(self) -> list[str]:
        return [f.name for i, f in enumerate(self.circuit.flops)
                if self.flop_state[i] is X]

    def unknown_outputs(self) -> list[str]:
        out = []
        for name, nets in self.circuit.outputs.items():
            if any(self.values[n] is X for n in nets):
                out.append(name)
        return out


@dataclass
class ResetReport:
    """Outcome of a reset-coverage analysis."""

    cycles_of_reset: int
    unknown_after_reset: list[str] = field(default_factory=list)
    x_reaching_outputs: list[str] = field(default_factory=list)

    @property
    def fully_initialized(self) -> bool:
        return not self.unknown_after_reset

    @property
    def clean(self) -> bool:
        """No X observable at the outputs (the sign-off criterion)."""
        return not self.x_reaching_outputs

    def summary(self) -> str:
        return (f"reset coverage: {len(self.unknown_after_reset)} flops "
                f"still X after {self.cycles_of_reset} reset cycles; "
                f"X at outputs during check: "
                f"{self.x_reaching_outputs or 'none'}")


def reset_coverage(circuit: Circuit, reset_sequence,
                   check_sequence=()) -> ResetReport:
    """Apply reset stimuli from all-X, then check X observability.

    ``reset_sequence``/``check_sequence`` are iterables of input dicts.
    Registers still X after reset are only a problem if the check
    sequence exposes an X at a primary output.
    """
    sim = XSimulator(circuit)
    count = 0
    for inputs in reset_sequence:
        sim.step(inputs)
        count += 1
    report = ResetReport(cycles_of_reset=count,
                         unknown_after_reset=sim.unknown_flops())
    seen: set[str] = set()
    for inputs in check_sequence:
        sim.step(inputs)
        seen.update(sim.unknown_outputs())
    report.x_reaching_outputs = sorted(seen)
    return report
