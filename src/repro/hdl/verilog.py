"""Structural Verilog writer and parser for the netlist IR.

The paper's extraction tool works on netlists synthesized by commercial
EDA tools.  This module provides the interchange point: any circuit
built with the DSL is dumped as flat structural Verilog in the style of
a synthesis netlist (sanitized ``n<id>`` wires, primitive cells, DFF
cells with parameters), and such a netlist can be read back into the IR.
Original hierarchical names are preserved through trailing comments so a
re-parsed circuit yields the same sensible zones as the original.
"""

from __future__ import annotations

import re

from ..diagnostics import DiagnosticError, DiagnosticReport
from .netlist import (
    Circuit,
    Flop,
    NetlistError,
    OP_ARITY,
    OP_BY_NAME,
    OP_NAMES,
)


class VerilogParseError(DiagnosticError, NetlistError):
    """A netlist failed to parse; carries every coded parse site.

    Subclasses :class:`NetlistError` so legacy callers that catch the
    old single-site failure keep working, while the attached
    :class:`~repro.diagnostics.DiagnosticReport` lists *all* problems
    with ``file:line`` locations.
    """

_PRIMS = {"buf": "BUF", "not": "INV", "and": "AND2", "or": "OR2",
          "xor": "XOR2", "nand": "NAND2", "nor": "NOR2", "xnor": "XNOR2",
          "mux": "MUX2", "const0": "TIE0", "const1": "TIE1"}
_PRIMS_REV = {v: k for k, v in _PRIMS.items()}


def write_verilog(circuit: Circuit) -> str:
    """Emit the circuit as a flat structural Verilog module."""
    out: list[str] = []
    ports = ["clk"] + list(circuit.inputs) + list(circuit.outputs)
    out.append(f"module {circuit.name} ({', '.join(ports)});")
    out.append("  input clk;")
    for name, nets in circuit.inputs.items():
        rng = f"[{len(nets) - 1}:0] " if len(nets) > 1 else ""
        out.append(f"  input {rng}{name};")
    for name, nets in circuit.outputs.items():
        rng = f"[{len(nets) - 1}:0] " if len(nets) > 1 else ""
        out.append(f"  output {rng}{name};")

    for net, name in enumerate(circuit.net_names):
        out.append(f"  wire n{net}; // {name}")

    for name, nets in circuit.inputs.items():
        for bit, net in enumerate(nets):
            sel = f"{name}[{bit}]" if len(nets) > 1 else name
            out.append(f"  assign n{net} = {sel};")
    for name, nets in circuit.outputs.items():
        for bit, net in enumerate(nets):
            sel = f"{name}[{bit}]" if len(nets) > 1 else name
            out.append(f"  assign {sel} = n{net};")

    for i, gate in enumerate(circuit.gates):
        cell = _PRIMS[OP_NAMES[gate.op]]
        pins = ", ".join(f"n{n}" for n in (gate.out, *gate.inputs))
        tail = f" // path: {gate.path}" if gate.path else ""
        out.append(f"  {cell} g{i} ({pins});{tail}")

    for i, flop in enumerate(circuit.flops):
        cell = "DFF"
        pins = [f"n{flop.q}", f"n{flop.d}"]
        if flop.en is not None:
            cell += "E"
            pins.append(f"n{flop.en}")
        if flop.rst is not None:
            cell += "R"
            pins.append(f"n{flop.rst}")
        out.append(f"  {cell} #(.INIT({flop.init})) f{i} "
                   f"(clk, {', '.join(pins)}); // {flop.name}")

    for mem in circuit.memories:
        addr = " ".join(f"n{n}" for n in mem.addr)
        wdat = " ".join(f"n{n}" for n in mem.wdata)
        rdat = " ".join(f"n{n}" for n in mem.rdata)
        out.append(f"  // MEM {mem.name} depth={mem.depth} "
                   f"width={mem.width} we=n{mem.we}")
        out.append(f"  // MEM.addr {addr}")
        out.append(f"  // MEM.wdata {wdat}")
        out.append(f"  // MEM.rdata {rdat}")
    out.append("endmodule")
    return "\n".join(out) + "\n"


_WIRE_RE = re.compile(r"^\s*wire\s+n(\d+);\s*//\s*(.*)$")
_PORT_RE = re.compile(
    r"^\s*(input|output)\s+(?:\[(\d+):0\]\s+)?(\w+);\s*$")
_ASSIGN_RE = re.compile(
    r"^\s*assign\s+(\S+)\s*=\s*(\S+)\s*;\s*$")
_INST_RE = re.compile(
    r"^\s*(\w+)\s+(?:#\(\.INIT\((\d)\)\)\s+)?\w+\s*\(([^)]*)\)\s*;"
    r"(?:\s*//\s*(.*))?$")
_MEM_RE = re.compile(
    r"^\s*//\s*MEM\s+(\S+)\s+depth=(\d+)\s+width=(\d+)\s+we=n(\d+)\s*$")
_MEMPINS_RE = re.compile(r"^\s*//\s*MEM\.(addr|wdata|rdata)\s+(.*)$")


def _pin_nets(pins: list[str]) -> list[int] | None:
    """Decode ``n<id>`` pin tokens; ``None`` when any token is not one."""
    nets = []
    for pin in pins:
        if not pin.startswith("n") or not pin[1:].isdigit():
            return None
        nets.append(int(pin[1:]))
    return nets


def parse_verilog(text: str, *, source: str | None = None,
                  report: DiagnosticReport | None = None
                  ) -> Circuit | None:
    """Parse the structural subset produced by :func:`write_verilog`.

    Parse problems are collected as coded ``E1xx`` diagnostics with
    ``file:line`` locations and the parser *recovers* — a bad instance
    is skipped and parsing continues, so one run reports every bad
    site (all the ``bad arity`` instances at once, not just the
    first).

    With ``report=None`` (the default) an error-bearing parse raises
    :class:`VerilogParseError`.  When a caller passes its own
    :class:`~repro.diagnostics.DiagnosticReport` (the ``doctor``
    audit), diagnostics are appended there and the best-effort circuit
    — or ``None`` when no module was found — is returned instead.
    """
    collect = DiagnosticReport() if report is None else report
    circuit: Circuit | None = None
    names: dict[int, str] = {}
    port_widths: dict[str, tuple[str, int]] = {}
    assigns: list[tuple[str, str]] = []
    pending_mem: dict | None = None
    pending_mem_line = 0

    lines = text.splitlines()
    max_net = -1
    for line in lines:
        m = _WIRE_RE.match(line)
        if m:
            net = int(m.group(1))
            names[net] = m.group(2).strip()
            max_net = max(max_net, net)

    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        if stripped.startswith("module"):
            modname = stripped.split()[1].split("(")[0]
            circuit = Circuit(modname)
            for net in range(max_net + 1):
                circuit.new_net(names.get(net, f"n{net}"))
            continue
        if circuit is None:
            continue
        m = _PORT_RE.match(line)
        if m:
            direction, msb, name = m.groups()
            if name != "clk":
                port_widths[name] = (direction, int(msb or 0) + 1)
            continue
        m = _ASSIGN_RE.match(line)
        if m:
            assigns.append((m.group(1), m.group(2)))
            continue
        m = _MEM_RE.match(line)
        if m:
            if pending_mem is not None:
                collect.error(
                    "E111",
                    f"memory block {pending_mem['name']!r} is missing "
                    f"addr/wdata/rdata pin comments",
                    file=source, line=pending_mem_line)
            pending_mem = {"name": m.group(1), "depth": int(m.group(2)),
                           "width": int(m.group(3)), "we": int(m.group(4))}
            pending_mem_line = lineno
            continue
        m = _MEMPINS_RE.match(line)
        if m and pending_mem is not None:
            nets = _pin_nets(m.group(2).split())
            if nets is None:
                collect.error(
                    "E103",
                    f"memory pin list {m.group(2)!r} contains a token "
                    f"that is not an `n<id>` wire",
                    file=source, line=lineno)
                pending_mem = None
                continue
            pending_mem[m.group(1)] = tuple(nets)
            if all(k in pending_mem for k in ("addr", "wdata", "rdata")):
                name = pending_mem["name"]
                path = name.rsplit("/", 1)[0] if "/" in name else ""
                from .netlist import MemoryBlock
                circuit.memories.append(MemoryBlock(
                    name=name, depth=pending_mem["depth"],
                    width=pending_mem["width"],
                    addr=pending_mem["addr"],
                    wdata=pending_mem["wdata"],
                    we=pending_mem["we"], rdata=pending_mem["rdata"],
                    path=path))
                pending_mem = None
            continue
        m = _INST_RE.match(line)
        if m:
            cell, init, pins_txt, comment = m.groups()
            pins = [p.strip() for p in pins_txt.split(",") if p.strip()]
            if cell in _PRIMS_REV:
                op = OP_BY_NAME[_PRIMS_REV[cell]]
                nets = _pin_nets(pins)
                if nets is None:
                    collect.error(
                        "E103",
                        f"{cell} instance pin list {pins_txt.strip()!r}"
                        f" contains a token that is not an `n<id>` "
                        f"wire", file=source, line=lineno)
                    continue
                if len(nets) - 1 != OP_ARITY[op]:
                    collect.error(
                        "E102",
                        f"bad arity: {cell} expects "
                        f"{OP_ARITY[op] + 1} pins, got {len(nets)} "
                        f"in {stripped!r}",
                        file=source, line=lineno)
                    continue
                if any(n > max_net or n < 0 for n in nets):
                    collect.error(
                        "E105",
                        f"{cell} instance references undeclared "
                        f"wire(s) "
                        f"{[f'n{n}' for n in nets if n > max_net]}",
                        file=source, line=lineno)
                    continue
                path = ""
                if comment and comment.startswith("path:"):
                    path = comment[len("path:"):].strip()
                circuit.add_gate(op, nets[1:], nets[0], path)
            elif cell.startswith("DFF"):
                rest = _pin_nets(pins[1:])  # skip clk
                want = 2 + ("E" in cell[3:]) + ("R" in cell[3:])
                if rest is None or len(rest) < want:
                    collect.error(
                        "E104",
                        f"malformed {cell} instance {stripped!r}: "
                        f"expected clk plus {want} `n<id>` pins",
                        file=source, line=lineno)
                    continue
                q, d = rest[0], rest[1]
                extra = rest[2:]
                en = extra.pop(0) if "E" in cell[3:] else None
                rst = extra.pop(0) if "R" in cell[3:] else None
                fname = (comment or names.get(q, f"n{q}")).strip()
                fpath = fname.rsplit("/", 1)[0] if "/" in fname else ""
                circuit.flops.append(Flop(
                    name=fname, d=d, q=q, path=fpath, en=en, rst=rst,
                    init=int(init or 0)))
            elif cell not in ("module", "input", "output", "wire",
                              "assign", "endmodule"):
                collect.warn(
                    "E110",
                    f"unknown cell type {cell!r} ignored",
                    file=source, line=lineno)

    if circuit is None:
        collect.error("E101", "no module found", file=source)
    else:
        for lhs, rhs in assigns:
            if lhs.startswith("n") and lhs[1:].isdigit():
                port, bit = _split_index(rhs)
                _set_port_bit(circuit.inputs, port, bit, int(lhs[1:]),
                              port_widths)
            elif rhs.startswith("n") and rhs[1:].isdigit():
                port, bit = _split_index(lhs)
                _set_port_bit(circuit.outputs, port, bit, int(rhs[1:]),
                              port_widths)
    if report is None and not collect.ok:
        raise VerilogParseError(collect)
    return circuit


def parse_verilog_file(path, *,
                       report: DiagnosticReport | None = None
                       ) -> Circuit | None:
    """Parse a netlist file; IO failures become ``E100`` diagnostics."""
    collect = DiagnosticReport() if report is None else report
    try:
        with open(path) as handle:
            text = handle.read()
    except OSError as err:
        collect.error("E100", f"cannot read netlist: {err}",
                      file=str(path))
        if report is None:
            raise VerilogParseError(collect) from None
        return None
    return parse_verilog(text, source=str(path), report=report)


def _split_index(token: str) -> tuple[str, int]:
    m = re.match(r"^(\w+)\[(\d+)\]$", token)
    if m:
        return m.group(1), int(m.group(2))
    return token, 0


def _set_port_bit(table: dict[str, list[int]], port: str, bit: int,
                  net: int, port_widths) -> None:
    width = port_widths.get(port, (None, bit + 1))[1]
    nets = table.setdefault(port, [-1] * width)
    while len(nets) <= bit:
        nets.append(-1)
    nets[bit] = net


def roundtrip(circuit: Circuit) -> Circuit:
    """Write then re-parse a circuit (used in interchange tests)."""
    return parse_verilog(write_verilog(circuit))
