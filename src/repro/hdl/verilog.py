"""Structural Verilog writer and parser for the netlist IR.

The paper's extraction tool works on netlists synthesized by commercial
EDA tools.  This module provides the interchange point: any circuit
built with the DSL is dumped as flat structural Verilog in the style of
a synthesis netlist (sanitized ``n<id>`` wires, primitive cells, DFF
cells with parameters), and such a netlist can be read back into the IR.
Original hierarchical names are preserved through trailing comments so a
re-parsed circuit yields the same sensible zones as the original.
"""

from __future__ import annotations

import re

from .netlist import (
    Circuit,
    Flop,
    NetlistError,
    OP_ARITY,
    OP_BY_NAME,
    OP_NAMES,
)

_PRIMS = {"buf": "BUF", "not": "INV", "and": "AND2", "or": "OR2",
          "xor": "XOR2", "nand": "NAND2", "nor": "NOR2", "xnor": "XNOR2",
          "mux": "MUX2", "const0": "TIE0", "const1": "TIE1"}
_PRIMS_REV = {v: k for k, v in _PRIMS.items()}


def write_verilog(circuit: Circuit) -> str:
    """Emit the circuit as a flat structural Verilog module."""
    out: list[str] = []
    ports = ["clk"] + list(circuit.inputs) + list(circuit.outputs)
    out.append(f"module {circuit.name} ({', '.join(ports)});")
    out.append("  input clk;")
    for name, nets in circuit.inputs.items():
        rng = f"[{len(nets) - 1}:0] " if len(nets) > 1 else ""
        out.append(f"  input {rng}{name};")
    for name, nets in circuit.outputs.items():
        rng = f"[{len(nets) - 1}:0] " if len(nets) > 1 else ""
        out.append(f"  output {rng}{name};")

    for net, name in enumerate(circuit.net_names):
        out.append(f"  wire n{net}; // {name}")

    for name, nets in circuit.inputs.items():
        for bit, net in enumerate(nets):
            sel = f"{name}[{bit}]" if len(nets) > 1 else name
            out.append(f"  assign n{net} = {sel};")
    for name, nets in circuit.outputs.items():
        for bit, net in enumerate(nets):
            sel = f"{name}[{bit}]" if len(nets) > 1 else name
            out.append(f"  assign {sel} = n{net};")

    for i, gate in enumerate(circuit.gates):
        cell = _PRIMS[OP_NAMES[gate.op]]
        pins = ", ".join(f"n{n}" for n in (gate.out, *gate.inputs))
        tail = f" // path: {gate.path}" if gate.path else ""
        out.append(f"  {cell} g{i} ({pins});{tail}")

    for i, flop in enumerate(circuit.flops):
        cell = "DFF"
        pins = [f"n{flop.q}", f"n{flop.d}"]
        if flop.en is not None:
            cell += "E"
            pins.append(f"n{flop.en}")
        if flop.rst is not None:
            cell += "R"
            pins.append(f"n{flop.rst}")
        out.append(f"  {cell} #(.INIT({flop.init})) f{i} "
                   f"(clk, {', '.join(pins)}); // {flop.name}")

    for mem in circuit.memories:
        addr = " ".join(f"n{n}" for n in mem.addr)
        wdat = " ".join(f"n{n}" for n in mem.wdata)
        rdat = " ".join(f"n{n}" for n in mem.rdata)
        out.append(f"  // MEM {mem.name} depth={mem.depth} "
                   f"width={mem.width} we=n{mem.we}")
        out.append(f"  // MEM.addr {addr}")
        out.append(f"  // MEM.wdata {wdat}")
        out.append(f"  // MEM.rdata {rdat}")
    out.append("endmodule")
    return "\n".join(out) + "\n"


_WIRE_RE = re.compile(r"^\s*wire\s+n(\d+);\s*//\s*(.*)$")
_PORT_RE = re.compile(
    r"^\s*(input|output)\s+(?:\[(\d+):0\]\s+)?(\w+);\s*$")
_ASSIGN_RE = re.compile(
    r"^\s*assign\s+(\S+)\s*=\s*(\S+)\s*;\s*$")
_INST_RE = re.compile(
    r"^\s*(\w+)\s+(?:#\(\.INIT\((\d)\)\)\s+)?\w+\s*\(([^)]*)\)\s*;"
    r"(?:\s*//\s*(.*))?$")
_MEM_RE = re.compile(
    r"^\s*//\s*MEM\s+(\S+)\s+depth=(\d+)\s+width=(\d+)\s+we=n(\d+)\s*$")
_MEMPINS_RE = re.compile(r"^\s*//\s*MEM\.(addr|wdata|rdata)\s+(.*)$")


def parse_verilog(text: str) -> Circuit:
    """Parse the structural subset produced by :func:`write_verilog`."""
    circuit: Circuit | None = None
    names: dict[int, str] = {}
    port_widths: dict[str, tuple[str, int]] = {}
    assigns: list[tuple[str, str]] = []
    pending_mem: dict | None = None

    lines = text.splitlines()
    max_net = -1
    for line in lines:
        m = _WIRE_RE.match(line)
        if m:
            net = int(m.group(1))
            names[net] = m.group(2).strip()
            max_net = max(max_net, net)

    for line in lines:
        stripped = line.strip()
        if stripped.startswith("module"):
            modname = stripped.split()[1].split("(")[0]
            circuit = Circuit(modname)
            for net in range(max_net + 1):
                circuit.new_net(names.get(net, f"n{net}"))
            continue
        if circuit is None:
            continue
        m = _PORT_RE.match(line)
        if m:
            direction, msb, name = m.groups()
            if name != "clk":
                port_widths[name] = (direction, int(msb or 0) + 1)
            continue
        m = _ASSIGN_RE.match(line)
        if m:
            assigns.append((m.group(1), m.group(2)))
            continue
        m = _MEM_RE.match(line)
        if m:
            pending_mem = {"name": m.group(1), "depth": int(m.group(2)),
                           "width": int(m.group(3)), "we": int(m.group(4))}
            continue
        m = _MEMPINS_RE.match(line)
        if m and pending_mem is not None:
            nets = tuple(int(tok[1:]) for tok in m.group(2).split())
            pending_mem[m.group(1)] = nets
            if all(k in pending_mem for k in ("addr", "wdata", "rdata")):
                name = pending_mem["name"]
                path = name.rsplit("/", 1)[0] if "/" in name else ""
                from .netlist import MemoryBlock
                circuit.memories.append(MemoryBlock(
                    name=name, depth=pending_mem["depth"],
                    width=pending_mem["width"],
                    addr=pending_mem["addr"],
                    wdata=pending_mem["wdata"],
                    we=pending_mem["we"], rdata=pending_mem["rdata"],
                    path=path))
                pending_mem = None
            continue
        m = _INST_RE.match(line)
        if m:
            cell, init, pins_txt, comment = m.groups()
            pins = [p.strip() for p in pins_txt.split(",") if p.strip()]
            if cell in _PRIMS_REV:
                op = OP_BY_NAME[_PRIMS_REV[cell]]
                nets = [int(p[1:]) for p in pins]
                if len(nets) - 1 != OP_ARITY[op]:
                    raise NetlistError(f"bad arity: {line!r}")
                path = ""
                if comment and comment.startswith("path:"):
                    path = comment[len("path:"):].strip()
                circuit.add_gate(op, nets[1:], nets[0], path)
            elif cell.startswith("DFF"):
                rest = [int(p[1:]) for p in pins[1:]]  # skip clk
                q, d = rest[0], rest[1]
                extra = rest[2:]
                en = extra.pop(0) if "E" in cell[3:] else None
                rst = extra.pop(0) if "R" in cell[3:] else None
                fname = (comment or names.get(q, f"n{q}")).strip()
                fpath = fname.rsplit("/", 1)[0] if "/" in fname else ""
                circuit.flops.append(Flop(
                    name=fname, d=d, q=q, path=fpath, en=en, rst=rst,
                    init=int(init or 0)))

    if circuit is None:
        raise NetlistError("no module found")

    for lhs, rhs in assigns:
        if lhs.startswith("n") and lhs[1:].isdigit():
            port, bit = _split_index(rhs)
            _set_port_bit(circuit.inputs, port, bit, int(lhs[1:]),
                          port_widths)
        elif rhs.startswith("n") and rhs[1:].isdigit():
            port, bit = _split_index(lhs)
            _set_port_bit(circuit.outputs, port, bit, int(rhs[1:]),
                          port_widths)
    return circuit


def _split_index(token: str) -> tuple[str, int]:
    m = re.match(r"^(\w+)\[(\d+)\]$", token)
    if m:
        return m.group(1), int(m.group(2))
    return token, 0


def _set_port_bit(table: dict[str, list[int]], port: str, bit: int,
                  net: int, port_widths) -> None:
    width = port_widths.get(port, (None, bit + 1))[1]
    nets = table.setdefault(port, [-1] * width)
    while len(nets) <= bit:
        nets.append(-1)
    nets[bit] = net


def roundtrip(circuit: Circuit) -> Circuit:
    """Write then re-parse a circuit (used in interchange tests)."""
    return parse_verilog(write_verilog(circuit))
