"""Compiled bit-parallel simulation kernel (numpy ``uint64`` lanes).

The interpreted :class:`~repro.hdl.simulator.Simulator` walks the gate
list in Python, one big-int per net.  This module compiles a
:class:`~repro.hdl.netlist.Circuit` once into a straight-line program of
vectorized numpy bitwise operations and evaluates *all* machines of a
campaign pass in packed 64-bit words:

* :func:`compile_circuit` — levelize the netlist (ASAP levels), renumber
  the nets so that the outputs of every ``(level, opcode)`` group are a
  contiguous row range, and precompute one fused gather index per level.
  Combinational loops are rejected with :class:`CompileError` carrying
  the stable diagnostic code ``E120`` instead of a raw traceback.
* :func:`decompile` — reconstruct an equivalent :class:`Circuit` from a
  compiled program.  The round-trip preserves ``structural_hash``.
* :class:`CompiledSimulator` — a drop-in replacement for the interpreted
  simulator (same public API, same fault overlays, bit-identical
  results).  Net values live in a ``(rows, W)`` ``uint64`` array where
  ``W = ceil(machines / 64)``; machine *k* is bit ``k % 64`` of word
  ``k // 64`` and machine 0 stays the golden reference, exactly like the
  interpreted big-int layout.

Constructs with no compiled implementation (bridging faults, memory
coupling faults) raise :class:`CompiledUnsupported`; the campaign
engine catches it and falls back to the interpreted oracle for that
pass, so ``engine='compiled'`` is always safe to request.
"""

from __future__ import annotations

import numpy as np

from ..diagnostics.core import Diagnostic, DiagnosticError
from .netlist import (
    Circuit,
    Gate,
    NetlistError,
    OP_AND,
    OP_ARITY,
    OP_BUF,
    OP_CONST0,
    OP_CONST1,
    OP_MUX,
    OP_NAND,
    OP_NOR,
    OP_NOT,
    OP_OR,
    OP_XNOR,
    OP_XOR,
)
from .simulator import CycleBudgetExceeded

_U64 = np.uint64
_WORD_BITS = 64

#: diagnostic code raised for combinational loops at compile time
LOOP_CODE = "E120"


class CompiledUnsupported(NetlistError):
    """A construct or fault overlay has no compiled implementation.

    Campaign engines treat this as a *fallback* signal: the batch is
    re-run on the interpreted simulator, never dropped.
    """


class CompileError(DiagnosticError, NetlistError):
    """The circuit cannot be compiled (coded diagnostic, e.g. E120)."""

    def __init__(self, diagnostic: Diagnostic):
        super().__init__(diagnostic)
        self.code = diagnostic.code


# ----------------------------------------------------------------------
# compiled program representation
# ----------------------------------------------------------------------
class _Group:
    """One ``(opcode, arity)`` run of gates inside a level."""

    __slots__ = ("op", "arity", "arg_lo", "count", "out_lo", "out_hi")

    def __init__(self, op, arity, arg_lo, count, out_lo):
        self.op = op
        self.arity = arity
        self.arg_lo = arg_lo
        self.count = count
        self.out_lo = out_lo
        self.out_hi = out_lo + count


class _Level:
    """One topological level: a fused gather plus its op groups."""

    __slots__ = ("gather", "groups", "nargs")

    def __init__(self, gather, groups):
        self.gather = gather
        self.groups = groups
        self.nargs = len(gather)


class CompiledCircuit:
    """A levelized, renumbered straight-line program for one circuit.

    Immutable and shareable: any number of :class:`CompiledSimulator`
    instances (with different machine counts) can run the same program.
    """

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        n = circuit.num_nets
        self.num_nets = n
        # two sentinel rows give flops without en/rst a constant input
        self.zero_row = n
        self.one_row = n + 1
        self.num_rows = n + 2

        drivers: dict[int, tuple[str, int]] = {}

        def claim(net: int, desc: tuple[str, int]) -> None:
            if net in drivers:
                raise CompiledUnsupported(
                    f"net {circuit.net_names[net]!r} has multiple "
                    f"drivers; compiled renumbering requires the "
                    f"single-driver rule")
            drivers[net] = desc

        for name, nets in circuit.inputs.items():
            for net in nets:
                claim(net, ("input", -1))
        for i, flop in enumerate(circuit.flops):
            claim(flop.q, ("flop", i))
        for i, mem in enumerate(circuit.memories):
            for net in mem.rdata:
                claim(net, ("mem", i))
        for i, gate in enumerate(circuit.gates):
            kind = "const" if gate.op in (OP_CONST0, OP_CONST1) \
                else "gate"
            claim(gate.out, (kind, i))

        gate_level = self._levelize(circuit, drivers)
        self.depth = (max(gate_level) + 1) if gate_level else 0

        # renumber: sources (inputs, flop q, rdata, consts, undriven
        # nets) first in original order, then gate outputs grouped by
        # (level, opcode) so every group's outputs are one contiguous
        # row range and per-group scatter is a plain slice store.
        perm = np.full(n, -1, dtype=np.intp)
        next_row = 0
        for net in range(n):
            kind = drivers.get(net, ("undriven", -1))[0]
            if kind != "gate":
                perm[net] = next_row
                next_row += 1
        self.num_source_rows = next_row

        by_level_op: dict[tuple[int, int], list[int]] = {}
        for gi, gate in enumerate(circuit.gates):
            if gate.op in (OP_CONST0, OP_CONST1):
                continue
            by_level_op.setdefault((gate_level[gi], gate.op),
                                   []).append(gi)

        levels: list[_Level] = []
        for lvl in range(self.depth):
            gather: list[int] = []
            groups: list[_Group] = []
            for op in sorted(op for (lv, op) in by_level_op
                             if lv == lvl):
                gis = by_level_op[(lvl, op)]
                arity = OP_ARITY[op]
                group = _Group(op, arity, len(gather), len(gis),
                               next_row)
                for gi in gis:
                    perm[circuit.gates[gi].out] = next_row
                    next_row += 1
                    gather.extend(circuit.gates[gi].inputs)
                groups.append(group)
            levels.append(_Level(gather, groups))
        assert next_row == n

        # gather indices reference *rows*, so translate through perm
        # once the whole permutation is known
        for level in levels:
            level.gather = perm[np.asarray(level.gather,
                                           dtype=np.intp)] \
                if level.gather else np.empty(0, dtype=np.intp)
        self.levels = levels
        self.perm = perm
        self.max_level_args = max((lv.nargs for lv in levels),
                                  default=0)
        self.max_mux_count = max(
            (g.count for lv in levels for g in lv.groups
             if g.op == OP_MUX), default=0)

        # overlay bucket of a row: 0 = applied before level 0 (sources
        # and const outputs), k+1 = applied right after level k
        bucket = np.zeros(n, dtype=np.intp)
        for gi, gate in enumerate(circuit.gates):
            if gate.op not in (OP_CONST0, OP_CONST1):
                bucket[gate.out] = gate_level[gi] + 1
        self.bucket_of = bucket            # indexed by *original* net id

        self.const0_rows = perm[np.array(
            [g.out for g in circuit.gates if g.op == OP_CONST0],
            dtype=np.intp)]
        self.const1_rows = perm[np.array(
            [g.out for g in circuit.gates if g.op == OP_CONST1],
            dtype=np.intp)]

        flops = circuit.flops
        self.flop_q_rows = perm[np.array([f.q for f in flops],
                                         dtype=np.intp)]
        self.flop_d_rows = perm[np.array([f.d for f in flops],
                                         dtype=np.intp)]
        self.flop_en_rows = np.array(
            [self.one_row if f.en is None else perm[f.en]
             for f in flops], dtype=np.intp)
        self.flop_rst_rows = np.array(
            [self.zero_row if f.rst is None else perm[f.rst]
             for f in flops], dtype=np.intp)
        self.flop_init = np.array([bool(f.init) for f in flops],
                                  dtype=bool)

        self.mem_addr_rows = [perm[np.array(m.addr, dtype=np.intp)]
                              for m in circuit.memories]
        self.mem_wdata_rows = [perm[np.array(m.wdata, dtype=np.intp)]
                               for m in circuit.memories]
        self.mem_we_rows = [int(perm[m.we]) for m in circuit.memories]
        self.mem_rdata_rows = [perm[np.array(m.rdata, dtype=np.intp)]
                               for m in circuit.memories]

    @staticmethod
    def _levelize(circuit: Circuit, drivers) -> list[int]:
        """ASAP level per gate index; CompileError (E120) on a loop."""
        n = circuit.num_nets
        net_level = [0] * n
        gate_level = [0] * len(circuit.gates)
        ready = [False] * n
        for net, (kind, _) in drivers.items():
            if kind != "gate":
                ready[net] = True
        for net in range(n):
            if net not in drivers:
                ready[net] = True

        remaining: dict[int, int] = {}
        waiters: dict[int, list[int]] = {}
        queue: list[int] = []
        for gi, gate in enumerate(circuit.gates):
            if gate.op in (OP_CONST0, OP_CONST1):
                ready[gate.out] = True
        for gi, gate in enumerate(circuit.gates):
            if gate.op in (OP_CONST0, OP_CONST1):
                continue
            missing = sum(1 for net in gate.inputs if not ready[net])
            if missing == 0:
                queue.append(gi)
            else:
                remaining[gi] = missing
                for net in gate.inputs:
                    if not ready[net]:
                        waiters.setdefault(net, []).append(gi)

        placed = 0
        while queue:
            gi = queue.pop()
            gate = circuit.gates[gi]
            lvl = 0
            for net in gate.inputs:
                nl = net_level[net]
                if nl > lvl:
                    lvl = nl
            gate_level[gi] = lvl
            placed += 1
            out = gate.out
            if not ready[out]:
                ready[out] = True
                net_level[out] = lvl + 1
                for gj in waiters.get(out, ()):
                    remaining[gj] -= 1
                    if remaining[gj] == 0:
                        queue.append(gj)

        total = sum(1 for g in circuit.gates
                    if g.op not in (OP_CONST0, OP_CONST1))
        if placed != total:
            stuck = [gi for gi, left in remaining.items() if left > 0]
            names = [circuit.net_names[circuit.gates[gi].out]
                     for gi in stuck[:5]]
            raise CompileError(Diagnostic(
                code=LOOP_CODE,
                message=(f"circuit {circuit.name!r} has a "
                         f"combinational cycle involving nets "
                         f"{names} ({len(stuck)} gates unplaced)")))
        return gate_level


def compile_circuit(circuit: Circuit) -> CompiledCircuit:
    """Compile a circuit into a straight-line numpy program.

    Raises :class:`CompileError` (code ``E120``) on combinational
    loops and :class:`CompiledUnsupported` on structures the compiled
    renumbering cannot represent (multi-driven nets).
    """
    return CompiledCircuit(circuit)


def decompile(compiled: CompiledCircuit) -> Circuit:
    """Reconstruct a behaviourally identical :class:`Circuit`.

    Gate order follows the compiled schedule, not the original
    construction order; the canonical serialization sorts gates, so
    ``decompile(compile_circuit(c)).structural_hash()`` equals
    ``c.structural_hash()``.
    """
    src = compiled.circuit
    out = Circuit(name=src.name,
                  net_names=list(src.net_names),
                  inputs={k: list(v) for k, v in src.inputs.items()},
                  outputs={k: list(v) for k, v in src.outputs.items()})
    by_path = {g.out: g.path for g in src.gates}
    inv = np.empty(compiled.num_nets, dtype=np.intp)
    inv[compiled.perm] = np.arange(compiled.num_nets, dtype=np.intp)

    for gate in src.gates:               # consts stay source-level
        if gate.op in (OP_CONST0, OP_CONST1):
            out.add_gate(gate.op, (), gate.out, path=gate.path)
    for level in compiled.levels:
        gather = level.gather
        for grp in level.groups:
            base = grp.arg_lo
            for k in range(grp.count):
                o = int(inv[grp.out_lo + k])
                ins = tuple(
                    int(inv[gather[base + k * grp.arity + j]])
                    for j in range(grp.arity))
                out.add_gate(grp.op, ins, o, path=by_path.get(o, ""))
    for f in src.flops:
        out.flops.append(type(f)(name=f.name, d=f.d, q=f.q,
                                 path=f.path, en=f.en, rst=f.rst,
                                 init=f.init))
    for m in src.memories:
        out.memories.append(type(m)(name=m.name, depth=m.depth,
                                    width=m.width, addr=m.addr,
                                    wdata=m.wdata, we=m.we,
                                    rdata=m.rdata, path=m.path))
    return out


# ----------------------------------------------------------------------
# the simulator
# ----------------------------------------------------------------------
class CompiledSimulator:
    """Drop-in bit-parallel simulator running a compiled program.

    API-compatible with :class:`~repro.hdl.simulator.Simulator`; fault
    overlays accept the same arguments and Python-int machine masks.
    Bridging and memory-coupling overlays raise
    :class:`CompiledUnsupported` (the campaign engine falls back to
    the interpreted simulator for those).
    """

    def __init__(self, circuit, machines: int = 1,
                 collect_toggles: bool = False,
                 toggle_any_machine: bool = False,
                 cycle_budget: int | None = None):
        if machines < 1:
            raise ValueError("need at least one machine")
        cc = circuit if isinstance(circuit, CompiledCircuit) \
            else compile_circuit(circuit)
        self.compiled = cc
        self.circuit = cc.circuit
        self.machines = machines
        self.full_mask = (1 << machines) - 1
        self.cycle = 0
        self.cycle_budget = cycle_budget

        W = (machines + _WORD_BITS - 1) // _WORD_BITS
        self.words = W
        self._full = self._pack(self.full_mask)
        self._notone = self._full.copy()
        self._notone[0] &= _U64(~np.uint64(1))

        self._vals = np.zeros((cc.num_rows, W), dtype=_U64)
        self._vals[cc.one_row] = self._full
        if len(cc.const1_rows):
            self._vals[cc.const1_rows] = self._full
        self._gbuf = np.empty((cc.max_level_args, W), dtype=_U64)
        self._mux_tmp = np.empty((cc.max_mux_count, W), dtype=_U64)
        self._program = self._build_program()

        F = len(self.circuit.flops)
        self._flop_state = np.where(cc.flop_init[:, None],
                                    self._full, _U64(0)) \
            if F else np.zeros((0, W), dtype=_U64)
        self._flop_init_words = self._flop_state.copy()

        # transposed store layout (depth, W, width): one fancy-index
        # per divergent-address access touches all bits of a word
        self._mem_store = [np.zeros((m.depth, W, m.width), dtype=_U64)
                           for m in self.circuit.memories]
        self._mem_rdata = [np.zeros((W, m.width), dtype=_U64)
                           for m in self.circuit.memories]
        # address-bit weights: golden/per-lane addresses assemble as a
        # dot product instead of a Python loop over address bits
        self._mem_pow2 = [
            np.left_shift(np.int64(1),
                          np.arange(len(cc.mem_addr_rows[i]),
                                    dtype=np.int64))
            for i in range(len(self.circuit.memories))]

        self._input_rows = {
            name: cc.perm[np.asarray(nets, dtype=np.intp)]
            for name, nets in self.circuit.inputs.items()}
        # last-driven value per port: rows of an unchanged port are
        # only rewritten by eval-start overlays, which are idempotent,
        # so re-driving the same value can be skipped.  Glitches on
        # primary inputs XOR the rows in place and void that reasoning.
        self._input_last: dict[str, int] = {}
        self._input_nets = {net for nets in self.circuit.inputs.values()
                            for net in nets}
        self._input_cache_ok = True
        # double-buffered flop state + scratch for zero-alloc commits
        self._state_alt = np.zeros_like(self._flop_state)
        self._fbuf_a = np.empty_like(self._flop_state)
        self._fbuf_b = np.empty_like(self._flop_state)
        self._flop_index = {f.name: i
                            for i, f in enumerate(self.circuit.flops)}
        self._mem_index = {m.name: i for i, m
                           in enumerate(self.circuit.memories)}
        self._net_index: dict[str, int] | None = None

        # per-machine word/bit coordinates for the divergent-address
        # memory path
        lanes = np.arange(machines, dtype=np.intp)
        self._lane_word = lanes >> 6
        self._lane_shift = (lanes & 63).astype(_U64)

        # fault state: original net id -> (clear, set) word vectors
        self._forced: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._overlay_plan: list | None = None
        self._flop_flips: dict[int, list] = {}
        self._net_glitches: dict[int, dict[int, np.ndarray]] = {}
        self._mem_flips: dict[int, list] = {}
        self._mem_stuck: dict[int, dict[tuple[int, int], tuple]] = {}
        # per-memory stacked (words, bits, ~clear, set) arrays, built
        # lazily from _mem_stuck and applied as one gather/scatter
        self._mem_stuck_cache: dict[int, tuple] = {}

        self.collect_toggles = collect_toggles
        self.toggle_any_machine = toggle_any_machine
        n = cc.num_nets
        self._t_seen0 = np.zeros(n, dtype=bool)
        self._t_seen1 = np.zeros(n, dtype=bool)

    # ------------------------------------------------------------------
    # packing helpers
    # ------------------------------------------------------------------
    def _pack(self, mask: int) -> np.ndarray:
        """Python-int machine mask -> little-endian uint64 words."""
        return np.frombuffer(
            mask.to_bytes(self.words * 8, "little"),
            dtype="<u8").astype(_U64)

    @staticmethod
    def _unpack(words: np.ndarray) -> int:
        return int.from_bytes(np.ascontiguousarray(
            words.astype("<u8")).tobytes(), "little")

    # ------------------------------------------------------------------
    # name resolution (same contract as the interpreted simulator)
    # ------------------------------------------------------------------
    def _resolve_net(self, net) -> int:
        if isinstance(net, (int, np.integer)):
            return int(net)
        if self._net_index is None:
            self._net_index = {name: i for i, name
                               in enumerate(self.circuit.net_names)}
        try:
            return self._net_index[net]
        except KeyError:
            raise NetlistError(f"no net named {net!r}") from None

    def _resolve_flop(self, flop) -> int:
        if isinstance(flop, (int, np.integer)):
            return int(flop)
        try:
            return self._flop_index[flop]
        except KeyError:
            raise NetlistError(f"no flop named {flop!r}") from None

    def _resolve_mem(self, mem) -> int:
        if isinstance(mem, (int, np.integer)):
            return int(mem)
        try:
            return self._mem_index[mem]
        except KeyError:
            raise NetlistError(f"no memory named {mem!r}") from None

    def _mask(self, machines) -> int:
        if machines is None:
            return self.full_mask
        if isinstance(machines, int):
            return machines & self.full_mask
        mask = 0
        for k in machines:
            mask |= 1 << k
        return mask & self.full_mask

    def _row(self, net) -> int:
        return int(self.compiled.perm[self._resolve_net(net)])

    # ------------------------------------------------------------------
    # fault programming
    # ------------------------------------------------------------------
    def stick_net(self, net, value: int, machines=None) -> None:
        net = self._resolve_net(net)
        mask = self._pack(self._mask(machines))
        clear, setm = self._forced.get(
            net, (np.zeros(self.words, dtype=_U64),
                  np.zeros(self.words, dtype=_U64)))
        clear = clear | mask
        setm = (setm & ~mask) | (mask if value else _U64(0))
        self._forced[net] = (clear, setm)
        self._overlay_plan = None

    def schedule_flop_flip(self, flop, cycle: int, machines=None) \
            -> None:
        idx = self._resolve_flop(flop)
        self._flop_flips.setdefault(cycle, []).append(
            (idx, self._pack(self._mask(machines))))

    def schedule_net_glitch(self, net, cycle: int, machines=None) \
            -> None:
        net = self._resolve_net(net)
        if net in self._input_nets:
            self._input_cache_ok = False
            self._input_last.clear()
        mask = self._pack(self._mask(machines))
        table = self._net_glitches.setdefault(cycle, {})
        prev = table.get(net)
        table[net] = mask if prev is None else (prev | mask)

    def add_bridge(self, aggressor, victim, mode=None, machines=None) \
            -> None:
        raise CompiledUnsupported(
            "bridging faults are not supported by the compiled "
            "kernel; use the interpreted engine")

    def set_mem_cell_stuck(self, mem, word: int, bit: int, value: int,
                           machines=None) -> None:
        mem = self._resolve_mem(mem)
        mask = self._pack(self._mask(machines))
        table = self._mem_stuck.setdefault(mem, {})
        clear, setm = table.get(
            (word, bit), (np.zeros(self.words, dtype=_U64),
                          np.zeros(self.words, dtype=_U64)))
        clear = clear | mask
        setm = (setm & ~mask) | (mask if value else _U64(0))
        table[(word, bit)] = (clear, setm)
        self._mem_stuck_cache.pop(mem, None)

    def schedule_mem_flip(self, mem, word: int, bit: int, cycle: int,
                          machines=None) -> None:
        mem = self._resolve_mem(mem)
        self._mem_flips.setdefault(cycle, []).append(
            (mem, word, bit, self._pack(self._mask(machines))))

    def add_mem_coupling(self, mem, aggressor, victim, machines=None) \
            -> None:
        raise CompiledUnsupported(
            "memory coupling faults are not supported by the "
            "compiled kernel; use the interpreted engine")

    def clear_faults(self) -> None:
        self._forced.clear()
        self._flop_flips.clear()
        self._net_glitches.clear()
        self._mem_flips.clear()
        self._mem_stuck.clear()
        self._mem_stuck_cache.clear()
        self._overlay_plan = None

    # ------------------------------------------------------------------
    # state access
    # ------------------------------------------------------------------
    def set_input(self, name: str, value: int) -> None:
        try:
            rows = self._input_rows[name]
        except KeyError:
            raise NetlistError(f"no input named {name!r}") from None
        if self._input_cache_ok:
            if self._input_last.get(name) == value:
                return
            self._input_last[name] = value
        bits = np.asarray(
            [(value >> b) & 1 for b in range(len(rows))], dtype=bool)
        self._vals[rows] = np.where(bits[:, None], self._full,
                                    _U64(0))

    def set_input_lane(self, name: str, machine: int, value: int) \
            -> None:
        self._input_last.pop(name, None)
        nets = self.circuit.inputs[name]
        w = machine >> 6
        lane = _U64(1) << _U64(machine & 63)
        vals = self._vals
        perm = self.compiled.perm
        for bit, net in enumerate(nets):
            row = perm[net]
            if (value >> bit) & 1:
                vals[row, w] |= lane
            else:
                vals[row, w] &= ~lane

    def peek(self, net) -> int:
        return self._unpack(self._vals[self._row(net)])

    def peek_bit(self, net, machine: int = 0) -> int:
        v = self._vals[self._row(net), machine >> 6]
        return int(v >> _U64(machine & 63)) & 1

    def value_of(self, nets, machine: int = 0) -> int:
        out = 0
        vals = self._vals
        perm = self.compiled.perm
        w = machine >> 6
        s = _U64(machine & 63)
        for bit, net in enumerate(nets):
            out |= (int(vals[perm[net], w] >> s) & 1) << bit
        return out

    def output(self, name: str, machine: int = 0) -> int:
        return self.value_of(self.circuit.outputs[name], machine)

    def set_flop(self, flop, value: int, machines=None) -> None:
        idx = self._resolve_flop(flop)
        mask = self._pack(self._mask(machines))
        state = self._flop_state[idx]
        self._flop_state[idx] = (state & ~mask) | \
            (mask if value else _U64(0))

    def flop_value(self, flop, machine: int = 0) -> int:
        v = self._flop_state[self._resolve_flop(flop), machine >> 6]
        return int(v >> _U64(machine & 63)) & 1

    def load_mem(self, mem, words) -> None:
        mi = self._resolve_mem(mem)
        block = self.circuit.memories[mi]
        store = self._mem_store[mi]
        for w, word in enumerate(words):
            if w >= block.depth:
                break
            bits = np.asarray(
                [(word >> b) & 1 for b in range(block.width)],
                dtype=bool)
            store[w] = np.where(bits[None, :], self._full[:, None],
                                _U64(0))

    def read_mem_word(self, mem, word: int, machine: int = 0) -> int:
        mi = self._resolve_mem(mem)
        cells = self._mem_store[mi][word, machine >> 6]
        s = _U64(machine & 63)
        out = 0
        for b in range(cells.shape[0]):
            out |= (int(cells[b] >> s) & 1) << b
        return out

    # ------------------------------------------------------------------
    # mismatch extraction
    # ------------------------------------------------------------------
    def _diff_words(self, sub: np.ndarray) -> np.ndarray:
        """OR-reduced golden diff of a (k, W) value block -> (W,)."""
        if not sub.shape[0]:
            return np.zeros(self.words, dtype=_U64)
        golden = np.where((sub[:, 0] & _U64(1)).astype(bool)[:, None],
                          self._full, _U64(0))
        return np.bitwise_or.reduce(sub ^ golden, axis=0) \
            & self._notone

    def flop_state_mismatch(self, flops) -> int:
        idxs = np.asarray([self._resolve_flop(f) for f in flops],
                          dtype=np.intp)
        return self._unpack(self._diff_words(self._flop_state[idxs]))

    def mem_word_mismatch(self, mem, word: int) -> int:
        cells = self._mem_store[self._resolve_mem(mem)][word]
        golden = np.where((cells[0] & _U64(1)).astype(bool)[None, :],
                          self._full[:, None], _U64(0))
        diff = np.bitwise_or.reduce(cells ^ golden, axis=1) \
            & self._notone
        return self._unpack(diff)

    def mismatch_mask(self, nets) -> int:
        rows = self.compiled.perm[np.asarray(
            [self._resolve_net(n) for n in nets], dtype=np.intp)]
        return self._unpack(self._diff_words(self._vals[rows]))

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------
    def _build_program(self) -> list[tuple]:
        """Flatten the compiled levels into reusable micro-ops.

        Every operand/destination is a *fixed view* into the gather
        buffer or the value array, created once here; the per-cycle
        loop is then nothing but ufunc calls with ``out=``.
        """
        full = self._full
        program = []
        for level in self.compiled.levels:
            buf = self._gbuf[:level.nargs]
            micro: list[tuple] = []
            for g in level.groups:
                lo, n, ar = g.arg_lo, g.count, g.arity
                a = buf[lo:lo + n * ar:ar]
                b = buf[lo + 1:lo + n * ar:ar] if ar >= 2 else None
                c = buf[lo + 2:lo + n * ar:ar] if ar >= 3 else None
                dst = self._vals[g.out_lo:g.out_hi]
                op = g.op
                if op == OP_AND:
                    micro.append((np.bitwise_and, a, b, dst))
                elif op == OP_OR:
                    micro.append((np.bitwise_or, a, b, dst))
                elif op == OP_XOR:
                    micro.append((np.bitwise_xor, a, b, dst))
                elif op == OP_NOT:
                    micro.append((np.bitwise_xor, a, full, dst))
                elif op == OP_BUF:
                    micro.append((np.bitwise_or, a, _U64(0), dst))
                elif op == OP_NAND:
                    micro.append((np.bitwise_and, a, b, dst))
                    micro.append((np.bitwise_xor, dst, full, dst))
                elif op == OP_NOR:
                    micro.append((np.bitwise_or, a, b, dst))
                    micro.append((np.bitwise_xor, dst, full, dst))
                elif op == OP_XNOR:
                    micro.append((np.bitwise_xor, a, b, dst))
                    micro.append((np.bitwise_xor, dst, full, dst))
                else:  # OP_MUX: dst = (b & sel) | (c & ~sel)
                    tmp = self._mux_tmp[:n]
                    micro.append((np.bitwise_not, a, None, tmp))
                    micro.append((np.bitwise_and, tmp, c, tmp))
                    micro.append((np.bitwise_and, a, b, dst))
                    micro.append((np.bitwise_or, dst, tmp, dst))
            program.append((level.gather if level.nargs else None,
                            buf, micro))
        return program

    def _build_overlay_plan(self) -> list:
        """Forced nets grouped by overlay bucket (0=sources, L+1 after
        level L), as a bucket-indexed list of
        ``(rows, notclear, setm, scratch)`` entries (``None`` where the
        bucket is empty) so the eval loop applies each with four
        allocation-free numpy calls."""
        plan: list = [None] * (len(self.compiled.levels) + 1)
        buckets: dict[int, list[int]] = {}
        for net in self._forced:
            buckets.setdefault(
                int(self.compiled.bucket_of[net]), []).append(net)
        for b, nets in buckets.items():
            rows = self.compiled.perm[np.asarray(nets, dtype=np.intp)]
            notclear = np.stack([~self._forced[n][0] for n in nets])
            setm = np.stack([self._forced[n][1] for n in nets])
            plan[b] = (rows, notclear, setm, np.empty_like(setm))
        return plan

    def _glitch_buckets(self) -> dict[int, tuple] | None:
        table = self._net_glitches.get(self.cycle)
        if not table:
            return None
        buckets: dict[int, list[int]] = {}
        for net in table:
            buckets.setdefault(
                int(self.compiled.bucket_of[net]), []).append(net)
        return {b: (self.compiled.perm[np.asarray(nets,
                                                  dtype=np.intp)],
                    np.stack([table[n] for n in nets]))
                for b, nets in buckets.items()}

    def eval_comb(self) -> None:
        cc = self.compiled
        vals = self._vals
        if len(cc.flop_q_rows):
            vals[cc.flop_q_rows] = self._flop_state
        for mi, rows in enumerate(cc.mem_rdata_rows):
            if len(rows):
                vals[rows] = self._mem_rdata[mi].T
        # overlays may have clobbered constant rows last cycle
        if len(cc.const0_rows):
            vals[cc.const0_rows] = _U64(0)
        if len(cc.const1_rows):
            vals[cc.const1_rows] = self._full

        if self._overlay_plan is None:
            self._overlay_plan = self._build_overlay_plan()
        plan = self._overlay_plan
        glitches = self._glitch_buckets()
        overlayed = bool(self._forced) or glitches is not None

        take = vals.take
        band = np.bitwise_and
        bor = np.bitwise_or
        if overlayed:
            entry = plan[0]
            if entry is not None:
                rows, nc, sm, obuf = entry
                take(rows, axis=0, out=obuf)
                band(obuf, nc, out=obuf)
                bor(obuf, sm, out=obuf)
                vals[rows] = obuf
            if glitches is not None:
                g = glitches.get(0)
                if g is not None:
                    grows, gmasks = g
                    vals[grows] = vals[grows] ^ gmasks
            for lvl, (gather, buf, micro) in enumerate(self._program):
                if gather is not None:
                    take(gather, axis=0, out=buf)
                for fn, a, b, dst in micro:
                    if b is None:
                        fn(a, out=dst)
                    else:
                        fn(a, b, out=dst)
                entry = plan[lvl + 1]
                if entry is not None:
                    rows, nc, sm, obuf = entry
                    take(rows, axis=0, out=obuf)
                    band(obuf, nc, out=obuf)
                    bor(obuf, sm, out=obuf)
                    vals[rows] = obuf
                if glitches is not None:
                    g = glitches.get(lvl + 1)
                    if g is not None:
                        grows, gmasks = g
                        vals[grows] = vals[grows] ^ gmasks
        else:
            for gather, buf, micro in self._program:
                if gather is not None:
                    take(gather, axis=0, out=buf)
                for fn, a, b, dst in micro:
                    if b is None:
                        fn(a, out=dst)
                    else:
                        fn(a, b, out=dst)

        if self.collect_toggles:
            nets = vals[:cc.num_nets]
            if self.toggle_any_machine:
                self._t_seen1 |= nets.any(axis=1)
                self._t_seen0 |= (nets != self._full).any(axis=1)
            else:
                bit0 = (nets[:, 0] & _U64(1)).astype(bool)
                self._t_seen1 |= bit0
                self._t_seen0 |= ~bit0

    def clock_edge(self) -> None:
        cc = self.compiled
        vals = self._vals
        if len(cc.flop_d_rows):
            d = vals.take(cc.flop_d_rows, axis=0, out=self._fbuf_a)
            en = vals.take(cc.flop_en_rows, axis=0, out=self._fbuf_b)
            q = self._flop_state
            nxt = self._state_alt
            np.bitwise_and(d, en, out=nxt)      # d & en
            np.bitwise_not(en, out=en)
            np.bitwise_and(q, en, out=en)       # q & ~en
            np.bitwise_or(nxt, en, out=nxt)
            rst = vals.take(cc.flop_rst_rows, axis=0,
                            out=self._fbuf_a)
            np.bitwise_and(self._flop_init_words, rst,
                           out=self._fbuf_b)    # init & rst
            np.bitwise_not(rst, out=rst)
            np.bitwise_and(nxt, rst, out=nxt)
            np.bitwise_or(nxt, self._fbuf_b, out=nxt)
            self._state_alt = q
            self._flop_state = nxt
        for mi in range(len(self.circuit.memories)):
            self._mem_cycle(mi)
        self.cycle += 1

    def _begin_cycle_events(self) -> None:
        flips = self._flop_flips.get(self.cycle)
        if flips:
            for idx, mask in flips:
                self._flop_state[idx] ^= mask
        mflips = self._mem_flips.get(self.cycle)
        if mflips:
            for mi, word, bit, mask in mflips:
                self._mem_store[mi][word, :, bit] ^= mask

    def step(self, inputs=None) -> None:
        self.step_eval(inputs)
        self.step_commit()

    def step_eval(self, inputs=None) -> None:
        if self.cycle_budget is not None and \
                self.cycle >= self.cycle_budget:
            raise CycleBudgetExceeded(
                f"simulation of {self.circuit.name!r} exceeded its "
                f"cycle budget of {self.cycle_budget} cycle(s)")
        if inputs:
            for name, value in inputs.items():
                self.set_input(name, value)
        self._begin_cycle_events()
        self.eval_comb()

    def step_commit(self) -> None:
        self.clock_edge()

    # ------------------------------------------------------------------
    # memory engine
    # ------------------------------------------------------------------
    def _mem_cycle(self, mi: int) -> None:
        cc = self.compiled
        mem = self.circuit.memories[mi]
        vals = self._vals
        store = self._mem_store[mi]
        addr_rows = vals[cc.mem_addr_rows[mi]]      # (A, W)
        we = vals[cc.mem_we_rows[mi]]               # (W,)
        full = self._full

        # golden address + lanes-that-diverge words, in one sweep: a
        # lane agrees with machine 0 iff every address row matches the
        # golden bit broadcast
        b0 = addr_rows[:, 0] & _U64(1)              # (A,)
        mism = np.bitwise_or.reduce(
            addr_rows ^ b0[:, None] * full, axis=0)  # (W,)
        addr = int(b0.astype(np.int64) @ self._mem_pow2[mi]) \
            % mem.depth

        if not mism.any():
            uniform = True
            word = store[addr]                      # (W, width) view
            rdata = word.copy()
            if we.any():
                # wdata rows are (width, W); the store is transposed
                wdata = vals[cc.mem_wdata_rows[mi]].T
                word &= ~we[:, None]
                word |= wdata & we[:, None]
        else:
            uniform = False
            rdata = self._mem_cycle_divergent(mi, mem, addr_rows, we,
                                              mism, addr)
            addr = None

        stuck = self._mem_stuck.get(mi)
        if stuck:
            arrs = self._mem_stuck_cache.get(mi)
            if arrs is None:
                arrs = (np.asarray([k[0] for k in stuck],
                                   dtype=np.intp),
                        np.asarray([k[1] for k in stuck],
                                   dtype=np.intp),
                        np.stack([~c for c, _ in stuck.values()]),
                        np.stack([s for _, s in stuck.values()]))
                self._mem_stuck_cache[mi] = arrs
            sw, sb, nclear, sset = arrs
            cells = store[sw, :, sb]                # (S, W) copy
            np.bitwise_and(cells, nclear, out=cells)
            np.bitwise_or(cells, sset, out=cells)
            store[sw, :, sb] = cells
            if uniform:
                # the interpreted engine patches read data only on the
                # uniform path — replicated bit-for-bit
                rsel = np.flatnonzero(sw == addr)
                if rsel.size:
                    cols = sb[rsel]
                    rdata[:, cols] = ((rdata[:, cols].T
                                       & nclear[rsel])
                                      | sset[rsel]).T

        self._mem_rdata[mi] = rdata

    def _mem_cycle_divergent(self, mi, mem, addr_rows, we,
                             mism, addr_g):
        """Per-machine addressing: a golden-address base read/write
        plus a scatter patch restricted to the (usually few) lanes
        whose address actually diverges from machine 0's.

        All reads are gathered before any write lands; lane isolation
        makes the interpreted per-machine loop order-independent, so
        this is bit-equivalent."""
        store = self._mem_store[mi]
        vals = self._vals
        w_of = self._lane_word                      # (M,) intp
        s_of = self._lane_shift                     # (M,) uint64
        one = _U64(1)

        dsel = np.flatnonzero((mism[w_of] >> s_of) & one)
        wD = w_of[dsel]
        sD = s_of[dsel]
        bits = (addr_rows[:, wD] >> sD[None, :]) & one    # (A, D)
        addrs = (self._mem_pow2[mi] @ bits.astype(np.int64)) \
            % mem.depth

        rdata = store[addr_g].copy()                # (W, width)
        cells = store[addrs, wD]                    # (D, width)
        contrib = ((cells >> sD[:, None]) & one) << sD[:, None]
        np.bitwise_and(rdata, ~mism[:, None], out=rdata)
        # dsel ascends, so wD is sorted: per-word OR-pack is segmented
        smask = np.empty(wD.shape[0], dtype=bool)
        smask[0] = True
        np.not_equal(wD[1:], wD[:-1], out=smask[1:])
        starts = np.flatnonzero(smask)
        rdata[wD[starts]] |= np.bitwise_or.reduceat(
            contrib, starts, axis=0)

        wdata = vals[self.compiled.mem_wdata_rows[mi]]  # (width, W)
        uw = we & ~mism                             # uniform writers
        if uw.any():
            word = store[addr_g]
            word &= ~uw[:, None]
            word |= wdata.T & uw[:, None]

        webits = ((we[wD] >> sD) & one).astype(bool)
        if webits.any():
            sel = np.nonzero(webits)[0]
            aw = addrs[sel]
            ww = wD[sel]
            ss = sD[sel]
            lane = (one << ss)[:, None]              # (K, 1)
            wd = ((wdata.T[ww] >> ss[:, None]) & one) << ss[:, None]
            # group writers hitting the same (word, lane-word) cell so
            # the read-modify-write can use unique fancy indices
            key = ww * np.int64(mem.depth) + aw
            order = np.argsort(key, kind="stable")
            sorted_key = key[order]
            kmask = np.empty(sorted_key.shape[0], dtype=bool)
            kmask[0] = True
            np.not_equal(sorted_key[1:], sorted_key[:-1],
                         out=kmask[1:])
            kstarts = np.flatnonzero(kmask)
            clear = np.bitwise_or.reduceat(lane[order], kstarts, axis=0)
            setm = np.bitwise_or.reduceat(wd[order], kstarts, axis=0)
            aw_u = aw[order][kstarts]
            ww_u = ww[order][kstarts]
            cell = store[aw_u, ww_u]
            np.bitwise_and(cell, ~clear, out=cell)
            np.bitwise_or(cell, setm, out=cell)
            store[aw_u, ww_u] = cell
        return rdata

    # ------------------------------------------------------------------
    # toggle coverage (same views as the interpreted simulator)
    # ------------------------------------------------------------------
    @property
    def _seen0(self) -> bytearray:
        return bytearray(
            self._t_seen0[self.compiled.perm[:self.compiled.num_nets]]
            .astype(np.uint8).tobytes())

    @property
    def _seen1(self) -> bytearray:
        return bytearray(
            self._t_seen1[self.compiled.perm[:self.compiled.num_nets]]
            .astype(np.uint8).tobytes())

    def toggle_report(self) -> tuple[int, int]:
        total = 0
        both = 0
        const_nets = {g.out for g in self.circuit.gates
                      if g.op in (OP_CONST0, OP_CONST1)}
        seen0, seen1 = self._seen0, self._seen1
        for net in range(self.circuit.num_nets):
            if net in const_nets:
                continue
            total += 1
            if seen0[net] and seen1[net]:
                both += 1
        return both, total

    def toggle_coverage(self) -> float:
        both, total = self.toggle_report()
        return both / total if total else 1.0

    def untoggled_nets(self) -> list[str]:
        const_nets = {g.out for g in self.circuit.gates
                      if g.op in (OP_CONST0, OP_CONST1)}
        seen0, seen1 = self._seen0, self._seen1
        names = []
        for net in range(self.circuit.num_nets):
            if net in const_nets:
                continue
            if not (seen0[net] and seen1[net]):
                names.append(self.circuit.net_names[net])
        return names
