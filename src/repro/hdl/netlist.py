"""Gate-level netlist intermediate representation.

This is the post-synthesis view the paper's extraction tool works on: a
flat network of 2-input gates, D flip-flops and memory macros, organized
in hierarchical *scopes* (instance paths) so that sub-block sensible zones
can be recovered.  The IR is deliberately simple — every net has exactly
one driver, gates are primitive boolean functions — which keeps the
levelized simulator and the cone analysis honest and fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

# Gate opcodes.  Kept as small ints so the simulator can dispatch quickly.
OP_CONST0 = 0
OP_CONST1 = 1
OP_BUF = 2
OP_NOT = 3
OP_AND = 4
OP_OR = 5
OP_XOR = 6
OP_NAND = 7
OP_NOR = 8
OP_XNOR = 9
OP_MUX = 10  # inputs (sel, a, b): out = a if sel else b

OP_NAMES = {
    OP_CONST0: "const0",
    OP_CONST1: "const1",
    OP_BUF: "buf",
    OP_NOT: "not",
    OP_AND: "and",
    OP_OR: "or",
    OP_XOR: "xor",
    OP_NAND: "nand",
    OP_NOR: "nor",
    OP_XNOR: "xnor",
    OP_MUX: "mux",
}
OP_BY_NAME = {name: op for op, name in OP_NAMES.items()}

OP_ARITY = {
    OP_CONST0: 0,
    OP_CONST1: 0,
    OP_BUF: 1,
    OP_NOT: 1,
    OP_AND: 2,
    OP_OR: 2,
    OP_XOR: 2,
    OP_NAND: 2,
    OP_NOR: 2,
    OP_XNOR: 2,
    OP_MUX: 3,
}


class NetlistError(Exception):
    """Raised for malformed netlists (multiple drivers, comb loops, ...)."""


@dataclass
class Gate:
    """A primitive combinational gate."""

    op: int
    inputs: tuple[int, ...]
    out: int
    path: str = ""

    @property
    def op_name(self) -> str:
        return OP_NAMES[self.op]


@dataclass
class Flop:
    """A D flip-flop with optional synchronous enable and reset.

    Update rule on the (implicit, global) rising clock edge::

        q' = init            if rst net is 1
        q' = d               elif en is None or en net is 1
        q' = q               otherwise
    """

    name: str
    d: int
    q: int
    path: str = ""
    en: int | None = None
    rst: int | None = None
    init: int = 0


@dataclass
class MemoryBlock:
    """A synchronous-read, synchronous-write single-port memory macro.

    On each rising clock edge: if ``we`` is 1 the word addressed by
    ``addr`` is overwritten with ``wdata``; the read data registered on
    ``rdata`` is the (pre-write) content of the addressed word.
    """

    name: str
    depth: int
    width: int
    addr: tuple[int, ...]
    wdata: tuple[int, ...]
    we: int
    rdata: tuple[int, ...]
    path: str = ""


@dataclass
class Circuit:
    """A flat gate-level circuit with named hierarchy scopes."""

    name: str
    net_names: list[str] = field(default_factory=list)
    gates: list[Gate] = field(default_factory=list)
    flops: list[Flop] = field(default_factory=list)
    memories: list[MemoryBlock] = field(default_factory=list)
    inputs: dict[str, list[int]] = field(default_factory=dict)
    outputs: dict[str, list[int]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def new_net(self, name: str) -> int:
        net = len(self.net_names)
        self.net_names.append(name)
        return net

    def add_gate(self, op: int, inputs: Iterable[int], out: int,
                 path: str = "") -> Gate:
        inputs = tuple(inputs)
        if len(inputs) != OP_ARITY[op]:
            raise NetlistError(
                f"gate {OP_NAMES[op]} expects {OP_ARITY[op]} inputs, "
                f"got {len(inputs)}")
        gate = Gate(op, inputs, out, path)
        self.gates.append(gate)
        return gate

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def num_nets(self) -> int:
        return len(self.net_names)

    def net_name(self, net: int) -> str:
        return self.net_names[net]

    def find_net(self, name: str) -> int:
        try:
            return self.net_names.index(name)
        except ValueError:
            raise NetlistError(f"no net named {name!r}") from None

    def input_nets(self) -> list[int]:
        return [n for nets in self.inputs.values() for n in nets]

    def output_nets(self) -> list[int]:
        return [n for nets in self.outputs.values() for n in nets]

    def gate_count(self) -> int:
        """Number of logic gates, excluding constants and buffers."""
        return sum(1 for g in self.gates
                   if g.op not in (OP_CONST0, OP_CONST1, OP_BUF))

    def flop_count(self) -> int:
        return len(self.flops)

    def memory_bits(self) -> int:
        return sum(m.depth * m.width for m in self.memories)

    def scopes(self) -> list[str]:
        """All distinct non-empty instance paths, sorted."""
        paths: set[str] = set()
        for g in self.gates:
            if g.path:
                paths.add(g.path)
        for f in self.flops:
            if f.path:
                paths.add(f.path)
        for m in self.memories:
            if m.path:
                paths.add(m.path)
        return sorted(paths)

    # ------------------------------------------------------------------
    # structural maps
    # ------------------------------------------------------------------
    def driver_map(self) -> dict[int, tuple]:
        """Map net -> driver descriptor.

        Descriptors are ``('gate', gate_index)``, ``('flop', flop_index)``,
        ``('mem', mem_index, bit)`` or ``('input', port_name, bit)``.
        Raises :class:`NetlistError` on nets with several drivers.
        """
        drivers: dict[int, tuple] = {}

        def claim(net: int, desc: tuple) -> None:
            if net in drivers:
                raise NetlistError(
                    f"net {self.net_names[net]!r} has multiple drivers: "
                    f"{drivers[net]} and {desc}")
            drivers[net] = desc

        for name, nets in self.inputs.items():
            for bit, net in enumerate(nets):
                claim(net, ("input", name, bit))
        for i, gate in enumerate(self.gates):
            claim(gate.out, ("gate", i))
        for i, flop in enumerate(self.flops):
            claim(flop.q, ("flop", i))
        for i, mem in enumerate(self.memories):
            for bit, net in enumerate(mem.rdata):
                claim(net, ("mem", i, bit))
        return drivers

    def fanout_map(self) -> dict[int, list[tuple]]:
        """Map net -> list of consumer descriptors.

        Consumers are ``('gate', gate_index, port)``,
        ``('flop', flop_index, role)`` with role in ``d``/``en``/``rst``,
        ``('mem', mem_index, role, bit)`` with role in
        ``addr``/``wdata``/``we``, or ``('output', port_name, bit)``.
        """
        fanout: dict[int, list[tuple]] = {}

        def use(net: int, desc: tuple) -> None:
            fanout.setdefault(net, []).append(desc)

        for i, gate in enumerate(self.gates):
            for port, net in enumerate(gate.inputs):
                use(net, ("gate", i, port))
        for i, flop in enumerate(self.flops):
            use(flop.d, ("flop", i, "d"))
            if flop.en is not None:
                use(flop.en, ("flop", i, "en"))
            if flop.rst is not None:
                use(flop.rst, ("flop", i, "rst"))
        for i, mem in enumerate(self.memories):
            for bit, net in enumerate(mem.addr):
                use(net, ("mem", i, "addr", bit))
            for bit, net in enumerate(mem.wdata):
                use(net, ("mem", i, "wdata", bit))
            use(mem.we, ("mem", i, "we", 0))
        for name, nets in self.outputs.items():
            for bit, net in enumerate(nets):
                use(net, ("output", name, bit))
        return fanout

    def levelize(self) -> list[int]:
        """Topologically order gate indices for single-pass evaluation.

        Sources are primary inputs, flop ``q`` outputs, memory ``rdata``
        and constant gates.  Raises :class:`NetlistError` if the
        combinational logic contains a cycle.
        """
        ready: set[int] = set(self.input_nets())
        for flop in self.flops:
            ready.add(flop.q)
        for mem in self.memories:
            ready.update(mem.rdata)

        remaining: dict[int, int] = {}
        waiters: dict[int, list[int]] = {}
        order: list[int] = []
        queue: list[int] = []

        for i, gate in enumerate(self.gates):
            missing = sum(1 for n in gate.inputs if n not in ready)
            if missing == 0:
                queue.append(i)
            else:
                remaining[i] = missing
                for n in gate.inputs:
                    if n not in ready:
                        waiters.setdefault(n, []).append(i)

        while queue:
            i = queue.pop()
            order.append(i)
            out = self.gates[i].out
            if out in ready:
                continue
            ready.add(out)
            for j in waiters.get(out, ()):  # wake consumers
                remaining[j] -= 1
                if remaining[j] == 0:
                    queue.append(j)

        if len(order) != len(self.gates):
            stuck = [i for i, left in remaining.items() if left > 0]
            names = [self.net_names[self.gates[i].out] for i in stuck[:5]]
            raise NetlistError(
                f"combinational cycle involving nets {names} "
                f"({len(stuck)} gates unplaced)")
        return order

    def validate(self) -> None:
        """Check single-driver rule, net ranges and levelizability."""
        nnets = self.num_nets
        for gate in self.gates:
            for net in (*gate.inputs, gate.out):
                if not 0 <= net < nnets:
                    raise NetlistError(f"gate references unknown net {net}")
        for flop in self.flops:
            nets = [flop.d, flop.q]
            if flop.en is not None:
                nets.append(flop.en)
            if flop.rst is not None:
                nets.append(flop.rst)
            for net in nets:
                if not 0 <= net < nnets:
                    raise NetlistError(
                        f"flop {flop.name!r} references unknown net {net}")
        self.driver_map()
        self.levelize()

    def stats(self) -> dict[str, int]:
        """Headline size statistics used by reports and the FMEA."""
        return {
            "nets": self.num_nets,
            "gates": self.gate_count(),
            "flops": self.flop_count(),
            "memories": len(self.memories),
            "memory_bits": self.memory_bits(),
            "inputs": len(self.input_nets()),
            "outputs": len(self.output_nets()),
        }

    # ------------------------------------------------------------------
    # canonical serialization (content addressing)
    # ------------------------------------------------------------------
    def canonical_dict(self) -> dict:
        """A deterministic, name-based view of the circuit's behaviour.

        Net *indices* are an artifact of construction order, so every
        reference is resolved to its net name and the element lists are
        sorted by a unique key (driven net for gates, element name for
        flops and memories).  Instance paths are cosmetic — they do not
        change simulation — and are therefore excluded: two circuits
        with the same canonical dict are behaviourally identical, and
        renaming a scope does not invalidate cached campaign results.
        """
        name_of = self.net_names

        def names(nets) -> list[str]:
            return [name_of[n] for n in nets]

        return {
            "name": self.name,
            "gates": sorted(
                (name_of[g.out], OP_NAMES[g.op], names(g.inputs))
                for g in self.gates),
            "flops": sorted(
                (f.name, name_of[f.d], name_of[f.q],
                 None if f.en is None else name_of[f.en],
                 None if f.rst is None else name_of[f.rst],
                 f.init)
                for f in self.flops),
            "memories": sorted(
                (m.name, m.depth, m.width, names(m.addr),
                 names(m.wdata), name_of[m.we], names(m.rdata))
                for m in self.memories),
            "inputs": {name: names(nets)
                       for name, nets in sorted(self.inputs.items())},
            "outputs": {name: names(nets)
                        for name, nets in sorted(self.outputs.items())},
        }

    def canonical_bytes(self) -> bytes:
        """UTF-8 JSON of :meth:`canonical_dict`, stable across runs."""
        import json
        return json.dumps(self.canonical_dict(), sort_keys=True,
                          separators=(",", ":")).encode()

    def structural_hash(self) -> str:
        """SHA-256 content address of the canonical serialization."""
        import hashlib
        return hashlib.sha256(self.canonical_bytes()).hexdigest()

    def iter_flops_by_register(self) -> Iterator[tuple[str, list[Flop]]]:
        """Group flops into registers by their base name.

        ``decoder/pipe[3]`` and ``decoder/pipe[0]`` belong to register
        ``decoder/pipe``.  Yields ``(register_name, flops)`` sorted by
        name, flops sorted by bit index.
        """
        groups: dict[str, list[tuple[int, Flop]]] = {}
        for flop in self.flops:
            base, bit = split_bit_suffix(flop.name)
            groups.setdefault(base, []).append((bit, flop))
        for base in sorted(groups):
            members = sorted(groups[base], key=lambda pair: pair[0])
            yield base, [flop for _, flop in members]


def split_bit_suffix(name: str) -> tuple[str, int]:
    """Split ``"foo[7]"`` into ``("foo", 7)``; plain names get bit 0."""
    if name.endswith("]"):
        open_idx = name.rfind("[")
        if open_idx >= 0:
            digits = name[open_idx + 1:-1]
            if digits.isdigit():
                return name[:open_idx], int(digits)
    return name, 0
