"""Reusable structural generators (adders, counters, decoders, muxes).

These produce plain gate networks through the builder DSL, so everything
they generate is visible to the sensible-zone extractor and the fault
injector exactly like hand-written logic.
"""

from __future__ import annotations

from .builder import Module, Vec
from .netlist import NetlistError


def full_adder(m: Module, a: Vec, b: Vec, cin: Vec) -> tuple[Vec, Vec]:
    """1-bit full adder; returns (sum, carry_out)."""
    axb = a ^ b
    s = axb ^ cin
    carry = (a & b) | (axb & cin)
    return s, carry


def ripple_add(m: Module, a: Vec, b: Vec,
               cin: Vec | None = None) -> tuple[Vec, Vec]:
    """Ripple-carry adder; returns (sum, carry_out)."""
    if len(a) != len(b):
        raise NetlistError("ripple_add: width mismatch")
    carry = cin if cin is not None else m.const(0)
    bits = []
    for i in range(len(a)):
        s, carry = full_adder(m, a[i], b[i], carry)
        bits.append(s)
    return m.cat(*bits), carry


def increment(m: Module, a: Vec) -> tuple[Vec, Vec]:
    """a + 1 with a half-adder chain; returns (sum, carry_out)."""
    carry = m.const(1)
    bits = []
    for i in range(len(a)):
        bits.append(a[i] ^ carry)
        carry = a[i] & carry
    return m.cat(*bits), carry


def counter(m: Module, name: str, width: int, en: Vec | None = None,
            rst: Vec | None = None, wrap_at: int | None = None) -> Vec:
    """A free-running (or enabled) counter register.

    If ``wrap_at`` is given the counter resets to 0 after reaching
    ``wrap_at - 1``; otherwise it wraps naturally at 2**width.
    """
    q = m.declare_reg(name, width, en=en, rst=rst, init=0)
    nxt, _ = increment(m, q)
    if wrap_at is not None and wrap_at != (1 << width):
        at_top = equals_const(m, q, wrap_at - 1)
        nxt = m.mux(at_top, m.const(0, width), nxt)
    m.connect_reg(q, nxt)
    return q


def equals_const(m: Module, v: Vec, value: int) -> Vec:
    """1-bit signal asserted when vector equals a constant."""
    terms = []
    for i in range(len(v)):
        bit = v[i]
        terms.append(bit if (value >> i) & 1 else ~bit)
    return m.cat(*terms).reduce_and()


def decoder(m: Module, sel: Vec, n: int | None = None) -> Vec:
    """Binary to one-hot decoder with ``n`` outputs."""
    n = n if n is not None else (1 << len(sel))
    outs = [equals_const(m, sel, i) for i in range(n)]
    return m.cat(*outs)


def mux_many(m: Module, sel: Vec, options: list[Vec]) -> Vec:
    """Select one of ``options`` (power-of-two padded mux tree)."""
    if not options:
        raise NetlistError("mux_many: no options")
    options = list(options)
    level = 0
    while len(options) > 1:
        nxt = []
        bit = sel[level]
        for i in range(0, len(options) - 1, 2):
            nxt.append(m.mux(bit, options[i + 1], options[i]))
        if len(options) % 2:
            nxt.append(options[-1])
        options = nxt
        level += 1
    return options[0]


def onehot_mux(m: Module, selects: list[Vec], options: list[Vec]) -> Vec:
    """OR of option vectors gated by one-hot selects."""
    if len(selects) != len(options):
        raise NetlistError("onehot_mux: select/option count mismatch")
    acc = None
    for sel, opt in zip(selects, options):
        gated = opt & sel.repeat(len(opt))
        acc = gated if acc is None else (acc | gated)
    return acc


def priority_encoder(m: Module, requests: Vec) -> tuple[Vec, Vec]:
    """Lowest-index priority encoder; returns (index, valid)."""
    n = len(requests)
    width = max(1, (n - 1).bit_length())
    taken = m.const(0)
    index = m.const(0, width)
    for i in range(n):
        grant = requests[i] & ~taken
        index = m.mux(grant, m.const(i, width), index)
        taken = taken | requests[i]
    return index, taken


def less_than_const(m: Module, v: Vec, value: int) -> Vec:
    """1-bit signal asserted when unsigned vector < constant."""
    # Walk from MSB: v < c iff at the first differing bit c has 1, v has 0.
    lt = m.const(0)
    eq = m.const(1)
    for i in reversed(range(len(v))):
        cbit = (value >> i) & 1
        if cbit:
            lt = lt | (eq & ~v[i])
        else:
            eq = eq & ~v[i]
            continue
        eq = eq & v[i]
    return lt


def register_chain(m: Module, name: str, d: Vec, stages: int,
                   en: Vec | None = None, rst: Vec | None = None) -> Vec:
    """A pipeline of ``stages`` registers; returns the final stage."""
    cur = d
    for s in range(stages):
        cur = m.reg(f"{name}_s{s}", cur, en=en, rst=rst)
    return cur
