"""Minimal VCD (value change dump) writer for golden-machine traces.

Debugging the gate-level subsystem (or any DSL-built design) is far
easier with waveforms.  :class:`VcdTracer` snapshots a chosen set of
signals every cycle and writes a standard VCD file readable by GTKWave
and friends.

Usage::

    sim = Simulator(circuit)
    tracer = VcdTracer(circuit, ["haddr", "hrdata", "alarm_ce"])
    for op in workload:
        sim.step_eval(op)
        tracer.sample(sim)
        sim.step_commit()
    tracer.write("trace.vcd")
"""

from __future__ import annotations

from .netlist import Circuit
from .simulator import Simulator

_ID_CHARS = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def _identifier(index: int) -> str:
    chars = []
    index += 1
    while index:
        index, rem = divmod(index, len(_ID_CHARS))
        chars.append(_ID_CHARS[rem])
    return "".join(chars)


class VcdTracer:
    """Samples named ports/nets each cycle and emits a VCD file."""

    def __init__(self, circuit: Circuit, signals=None, machine: int = 0,
                 timescale: str = "1 ns"):
        self.circuit = circuit
        self.machine = machine
        self.timescale = timescale
        if signals is None:
            signals = list(circuit.inputs) + list(circuit.outputs)
        self._signals: list[tuple[str, list[int], str]] = []
        for i, name in enumerate(signals):
            nets = self._resolve(name)
            self._signals.append((name, nets, _identifier(i)))
        self._changes: list[tuple[int, str, int, int]] = []
        self._last: dict[str, int | None] = {
            name: None for name, _, _ in self._signals}
        self._cycles = 0

    def _resolve(self, name: str) -> list[int]:
        if name in self.circuit.inputs:
            return list(self.circuit.inputs[name])
        if name in self.circuit.outputs:
            return list(self.circuit.outputs[name])
        return [self.circuit.find_net(name)]

    # ------------------------------------------------------------------
    def sample(self, sim: Simulator) -> None:
        """Record the current (post-evaluation) values."""
        t = self._cycles
        for name, nets, ident in self._signals:
            value = sim.value_of(nets, machine=self.machine)
            if self._last[name] != value:
                self._changes.append((t, ident, value, len(nets)))
                self._last[name] = value
        self._cycles += 1

    # ------------------------------------------------------------------
    def dumps(self) -> str:
        out = [f"$timescale {self.timescale} $end",
               f"$scope module {self.circuit.name} $end"]
        for name, nets, ident in self._signals:
            kind = "wire"
            out.append(f"$var {kind} {len(nets)} {ident} "
                       f"{name.replace('/', '.')} $end")
        out.append("$upscope $end")
        out.append("$enddefinitions $end")

        current = -1
        for t, ident, value, width in self._changes:
            if t != current:
                out.append(f"#{t}")
                current = t
            if width == 1:
                out.append(f"{value}{ident}")
            else:
                out.append(f"b{value:b} {ident}")
        out.append(f"#{self._cycles}")
        return "\n".join(out) + "\n"

    def write(self, path) -> None:
        with open(path, "w") as handle:
            handle.write(self.dumps())


def trace_workload(circuit: Circuit, stimuli, signals=None,
                   setup=None) -> str:
    """Convenience: run a workload and return the VCD text."""
    sim = Simulator(circuit)
    if setup is not None:
        setup(sim)
    tracer = VcdTracer(circuit, signals)
    for inputs in stimuli:
        sim.step_eval(inputs)
        tracer.sample(sim)
        sim.step_commit()
    return tracer.dumps()
