"""RTL-like builder DSL that lowers to the gate-level netlist IR.

The paper's flow works on *synthesized* RTL: the designs in this
repository are therefore described with a small synthesizable DSL whose
vector expressions are immediately lowered to 2-input gates, flip-flops
and memory macros.  Hierarchy is captured with :meth:`Module.scope`
context managers so the zone extractor can recover sub-blocks.

Example::

    m = Module("toy")
    a = m.input("a", 4)
    b = m.input("b", 4)
    with m.scope("datapath"):
        q = m.reg("q", a ^ b)
    m.output("y", q)
    circuit = m.build()
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Sequence

from .netlist import (
    Circuit,
    NetlistError,
    OP_AND,
    OP_BUF,
    OP_CONST0,
    OP_CONST1,
    OP_MUX,
    OP_NAND,
    OP_NOR,
    OP_NOT,
    OP_OR,
    OP_XNOR,
    OP_XOR,
)


class Vec:
    """An immutable, LSB-first vector of nets bound to a :class:`Module`."""

    __slots__ = ("module", "nets")

    def __init__(self, module: "Module", nets: Sequence[int]):
        self.module = module
        self.nets = tuple(nets)

    # -- container protocol -------------------------------------------
    def __len__(self) -> int:
        return len(self.nets)

    def __iter__(self) -> Iterator["Vec"]:
        for net in self.nets:
            yield Vec(self.module, (net,))

    def __getitem__(self, idx) -> "Vec":
        if isinstance(idx, slice):
            return Vec(self.module, self.nets[idx])
        return Vec(self.module, (self.nets[idx],))

    @property
    def width(self) -> int:
        return len(self.nets)

    # -- bitwise operators --------------------------------------------
    def _binary(self, other: "Vec", op: int) -> "Vec":
        other = self.module._coerce(other, len(self))
        if len(other) != len(self):
            raise NetlistError(
                f"width mismatch: {len(self)} vs {len(other)}")
        outs = [self.module._gate(op, a, b)
                for a, b in zip(self.nets, other.nets)]
        return Vec(self.module, outs)

    def __and__(self, other) -> "Vec":
        return self._binary(other, OP_AND)

    def __or__(self, other) -> "Vec":
        return self._binary(other, OP_OR)

    def __xor__(self, other) -> "Vec":
        return self._binary(other, OP_XOR)

    def __invert__(self) -> "Vec":
        outs = [self.module._gate(OP_NOT, n) for n in self.nets]
        return Vec(self.module, outs)

    def nand(self, other) -> "Vec":
        return self._binary(other, OP_NAND)

    def nor(self, other) -> "Vec":
        return self._binary(other, OP_NOR)

    def xnor(self, other) -> "Vec":
        return self._binary(other, OP_XNOR)

    # -- reductions ----------------------------------------------------
    def _reduce(self, op: int) -> "Vec":
        nets = list(self.nets)
        if not nets:
            raise NetlistError("cannot reduce an empty vector")
        while len(nets) > 1:
            nxt = []
            for i in range(0, len(nets) - 1, 2):
                nxt.append(self.module._gate(op, nets[i], nets[i + 1]))
            if len(nets) % 2:
                nxt.append(nets[-1])
            nets = nxt
        return Vec(self.module, nets)

    def reduce_and(self) -> "Vec":
        return self._reduce(OP_AND)

    def reduce_or(self) -> "Vec":
        return self._reduce(OP_OR)

    def reduce_xor(self) -> "Vec":
        return self._reduce(OP_XOR)

    def any(self) -> "Vec":
        return self.reduce_or()

    def all(self) -> "Vec":
        return self.reduce_and()

    def parity(self) -> "Vec":
        return self.reduce_xor()

    # -- comparisons (named methods: __eq__ stays identity) ------------
    def eq(self, other) -> "Vec":
        return self.xnor(other).reduce_and()

    def ne(self, other) -> "Vec":
        return self._binary(other, OP_XOR).reduce_or()

    def is_zero(self) -> "Vec":
        return ~self.reduce_or()

    # -- shape ops -------------------------------------------------------
    def repeat(self, n: int) -> "Vec":
        if len(self) != 1:
            raise NetlistError("repeat() needs a 1-bit vector")
        return Vec(self.module, self.nets * n)

    def zext(self, width: int) -> "Vec":
        if width < len(self):
            raise NetlistError("zext() cannot shrink a vector")
        pad = self.module.const(0, width - len(self))
        return self.module.cat(self, pad) if width > len(self) else self

    def named(self, name: str) -> "Vec":
        """Buffer through nets with a stable name (debug/probe points)."""
        outs = []
        for i, net in enumerate(self.nets):
            label = name if len(self.nets) == 1 else f"{name}[{i}]"
            out = self.module._named_net(label)
            self.module.circuit.add_gate(OP_BUF, (net,), out,
                                         self.module._path())
            outs.append(out)
        return Vec(self.module, outs)


class Module:
    """Builder for a gate-level :class:`Circuit`."""

    def __init__(self, name: str):
        self.circuit = Circuit(name)
        self._scope_stack: list[str] = []
        # per-scope counters: a temp net's name depends only on its own
        # scope's elaboration, so sibling instances keep stable names
        # when one of them grows (content-addressed store reuse across
        # design variants relies on this)
        self._gensym: dict[str, int] = {}
        self._const_nets: dict[int, int] = {}
        self._pending_regs: list[tuple[Vec, Vec]] = []
        self._pending_forwards: list[tuple[str, Vec]] = []

    # ------------------------------------------------------------------
    # scoping / naming
    # ------------------------------------------------------------------
    @contextmanager
    def scope(self, name: str):
        """Enter an instance scope; gates/flops get the nested path."""
        self._scope_stack.append(name)
        try:
            yield self
        finally:
            self._scope_stack.pop()

    def _path(self) -> str:
        return "/".join(self._scope_stack)

    def _named_net(self, name: str) -> int:
        path = self._path()
        full = f"{path}/{name}" if path else name
        return self.circuit.new_net(full)

    def _tmp_net(self) -> int:
        path = self._path()
        count = self._gensym.get(path, 0) + 1
        self._gensym[path] = count
        return self._named_net(f"t{count}")

    # ------------------------------------------------------------------
    # primitives
    # ------------------------------------------------------------------
    def _gate(self, op: int, *ins: int) -> int:
        folded = self._fold(op, ins)
        if folded is not None:
            return folded
        out = self._tmp_net()
        self.circuit.add_gate(op, ins, out, self._path())
        return out

    def _fold(self, op: int, ins: tuple[int, ...]) -> int | None:
        """Peephole constant folding (what synthesis would clean up).

        Degenerate gates — muxes with identical arms, logic against
        constants — would otherwise create nets that can never toggle,
        polluting coverage metrics and fault lists.
        """
        c0 = self._const_nets.get(0, -1)
        c1 = self._const_nets.get(1, -1)

        def const_net(bit: int) -> int:
            return self.const(bit).nets[0]

        if op == OP_NOT:
            a = ins[0]
            if a == c0:
                return const_net(1)
            if a == c1:
                return const_net(0)
            return None
        if op == OP_AND:
            a, b = ins
            if a == c0 or b == c0:
                return const_net(0)
            if a == c1:
                return b
            if b == c1:
                return a
            if a == b:
                return a
            return None
        if op == OP_OR:
            a, b = ins
            if a == c1 or b == c1:
                return const_net(1)
            if a == c0:
                return b
            if b == c0:
                return a
            if a == b:
                return a
            return None
        if op == OP_XOR:
            a, b = ins
            if a == b:
                return const_net(0)
            if a == c0:
                return b
            if b == c0:
                return a
            if a == c1:
                return self._gate(OP_NOT, b)
            if b == c1:
                return self._gate(OP_NOT, a)
            return None
        if op == OP_MUX:
            sel, a, b = ins
            if a == b:
                return a
            if sel == c1:
                return a
            if sel == c0:
                return b
            if a == c1 and b == c0:
                return sel
            if a == c0 and b == c1:
                return self._gate(OP_NOT, sel)
            return None
        return None

    def _coerce(self, value, width: int) -> Vec:
        if isinstance(value, Vec):
            if len(value) == 1 and width > 1:
                return value.repeat(width)
            return value
        if isinstance(value, int):
            return self.const(value, width)
        raise NetlistError(f"cannot coerce {value!r} to a {width}-bit Vec")

    def const(self, value: int, width: int = 1) -> Vec:
        """A constant vector (shared const-0/const-1 source nets)."""
        nets = []
        for i in range(width):
            bit = (value >> i) & 1
            if bit not in self._const_nets:
                net = self.circuit.new_net(f"const{bit}")
                self.circuit.add_gate(OP_CONST1 if bit else OP_CONST0,
                                      (), net)
                self._const_nets[bit] = net
            nets.append(self._const_nets[bit])
        return Vec(self, nets)

    def input(self, name: str, width: int = 1) -> Vec:
        if name in self.circuit.inputs:
            raise NetlistError(f"duplicate input {name!r}")
        nets = [self.circuit.new_net(
            name if width == 1 else f"{name}[{i}]") for i in range(width)]
        self.circuit.inputs[name] = nets
        return Vec(self, nets)

    def output(self, name: str, vec: Vec) -> None:
        if name in self.circuit.outputs:
            raise NetlistError(f"duplicate output {name!r}")
        self.circuit.outputs[name] = list(vec.nets)

    # ------------------------------------------------------------------
    # registers
    # ------------------------------------------------------------------
    def reg(self, name: str, d: Vec, en: Vec | None = None,
            rst: Vec | None = None, init: int = 0) -> Vec:
        """A feed-forward register; returns the q vector."""
        q = self.declare_reg(name, len(d), en=en, rst=rst, init=init)
        self.connect_reg(q, d)
        return q

    def declare_reg(self, name: str, width: int, en: Vec | None = None,
                    rst: Vec | None = None, init: int = 0) -> Vec:
        """Declare a register whose d input is connected later.

        Needed for feedback (FSM state, counters).  The returned q vector
        is usable immediately; call :meth:`connect_reg` exactly once.
        """
        path = self._path()
        en_net = self._single_net(en, "enable")
        rst_net = self._single_net(rst, "reset")
        q_nets, d_nets = [], []
        for i in range(width):
            label = name if width == 1 else f"{name}[{i}]"
            q_net = self._named_net(label)
            d_net = self._named_net(f"{label}.d")
            full = f"{path}/{label}" if path else label
            self.circuit.flops.append(
                _make_flop(full, d_net, q_net, path, en_net, rst_net,
                           (init >> i) & 1))
            q_nets.append(q_net)
            d_nets.append(d_net)
        q = Vec(self, q_nets)
        self._pending_regs.append((q, Vec(self, d_nets)))
        return q

    def connect_reg(self, q: Vec, d: Vec) -> None:
        for pending_q, d_stub in self._pending_regs:
            if pending_q.nets == q.nets:
                if len(d) != len(d_stub):
                    raise NetlistError(
                        f"register width {len(d_stub)} != d width {len(d)}")
                for src, dst in zip(d.nets, d_stub.nets):
                    self.circuit.add_gate(OP_BUF, (src,), dst, self._path())
                self._pending_regs.remove((pending_q, d_stub))
                return
        raise NetlistError("connect_reg: register not pending")

    # ------------------------------------------------------------------
    # forward references (combinational, must stay acyclic)
    # ------------------------------------------------------------------
    def forward(self, name: str, width: int) -> Vec:
        """Declare nets whose driver is connected later via
        :meth:`resolve` — for module-ordering problems like "the core
        needs the memory's read data, the memory needs the core's
        address".  The usual acyclicity check still applies at build
        time, so forwards cannot create combinational loops silently.
        """
        nets = [self._named_net(
            name if width == 1 else f"{name}[{i}]")
            for i in range(width)]
        vec = Vec(self, nets)
        self._pending_forwards.append((name, vec))
        return vec

    def resolve(self, fwd: Vec, actual: Vec) -> None:
        """Drive a forward-declared vector with its actual source."""
        for name, pending in self._pending_forwards:
            if pending.nets == fwd.nets:
                if len(actual) != len(fwd):
                    raise NetlistError(
                        f"forward {name!r}: width mismatch "
                        f"{len(fwd)} vs {len(actual)}")
                for src, dst in zip(actual.nets, fwd.nets):
                    self.circuit.add_gate(OP_BUF, (src,), dst,
                                          self._path())
                self._pending_forwards.remove((name, pending))
                return
        raise NetlistError("resolve: vector was not forward-declared "
                           "(or already resolved)")

    def _single_net(self, vec: Vec | None, what: str) -> int | None:
        if vec is None:
            return None
        if len(vec) != 1:
            raise NetlistError(f"{what} must be 1 bit wide")
        return vec.nets[0]

    # ------------------------------------------------------------------
    # memories
    # ------------------------------------------------------------------
    def memory(self, name: str, depth: int, width: int, addr: Vec,
               wdata: Vec, we: Vec) -> Vec:
        """Instantiate a synchronous single-port memory; returns rdata."""
        need = max(1, (depth - 1).bit_length())
        if len(addr) < need:
            raise NetlistError(
                f"memory {name!r}: address width {len(addr)} cannot "
                f"reach depth {depth}")
        if len(wdata) != width:
            raise NetlistError(f"memory {name!r}: wdata width mismatch")
        path = self._path()
        rdata = [self._named_net(f"{name}.rdata[{i}]") for i in range(width)]
        full = f"{path}/{name}" if path else name
        from .netlist import MemoryBlock
        self.circuit.memories.append(MemoryBlock(
            name=full, depth=depth, width=width, addr=tuple(addr.nets),
            wdata=tuple(wdata.nets), we=we.nets[0], rdata=tuple(rdata),
            path=path))
        return Vec(self, rdata)

    # ------------------------------------------------------------------
    # structural helpers
    # ------------------------------------------------------------------
    def cat(self, *vecs: Vec) -> Vec:
        """Concatenate vectors, first argument at the LSB end."""
        nets: list[int] = []
        for v in vecs:
            nets.extend(v.nets)
        return Vec(self, nets)

    def mux(self, sel: Vec, a: Vec, b: Vec) -> Vec:
        """Per-bit 2:1 mux: result is ``a`` when sel is 1, else ``b``."""
        width = max(len(a) if isinstance(a, Vec) else 1,
                    len(b) if isinstance(b, Vec) else 1)
        a = self._coerce(a, width)
        b = self._coerce(b, width)
        if len(sel) != 1:
            raise NetlistError("mux select must be 1 bit")
        if len(a) != len(b):
            raise NetlistError("mux arm width mismatch")
        outs = [self._gate(OP_MUX, sel.nets[0], x, y)
                for x, y in zip(a.nets, b.nets)]
        return Vec(self, outs)

    def build(self) -> Circuit:
        """Finalize and validate the circuit."""
        if self._pending_regs:
            names = [self.circuit.net_names[q.nets[0]]
                     for q, _ in self._pending_regs]
            raise NetlistError(f"unconnected registers: {names}")
        if self._pending_forwards:
            names = [name for name, _ in self._pending_forwards]
            raise NetlistError(f"unresolved forwards: {names}")
        self.circuit.validate()
        return self.circuit


def _make_flop(name, d, q, path, en, rst, init):
    from .netlist import Flop
    return Flop(name=name, d=d, q=q, path=path, en=en, rst=rst, init=init)
